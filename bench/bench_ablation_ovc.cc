// Ablation: offset-value-coded sorting × fused preprocessing, the two
// upstream-of-probe attacks of DESIGN.md §10.
//
// Workloads: the Figure-11 framed median (executor record sort + §4.5
// permutation preprocessing) and framed COUNT(DISTINCT) (argument hashing
// + Algorithm-1 prevIdcs), the two evaluator families with the heaviest
// kPreprocess share. Each (ovc, fused) combination runs both; the
// baseline is the uncoded/unfused configuration in the same run, per the
// ROADMAP acceptance: fused preprocessing >= 1.5x on kPreprocess and
// >= 1.8x on sort+preprocess+tree_build, with bit-identical outputs —
// also under a budget that forces OVC-coded external merges.
//
// Writes BENCH_ovc.json: one entry per (config, workload) with phase
// seconds and the full profile, plus one "aggregate" entry per config
// with the cross-workload speedups the acceptance criteria read.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/counters.h"
#include "obs/profile.h"
#include "storage/tpch_gen.h"
#include "window/executor.h"

namespace {

using namespace hwf;

bool ColumnsBitIdentical(const Column& a, const Column& b) {
  if (a.size() != b.size() || a.type() != b.type()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.IsNull(i) != b.IsNull(i)) return false;
    if (a.IsNull(i)) continue;
    if (a.type() == DataType::kInt64) {
      if (a.GetInt64(i) != b.GetInt64(i)) return false;
    } else {
      const double x = a.GetDouble(i);
      const double y = b.GetDouble(i);
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

struct Config {
  const char* label;
  bool use_ovc;
  bool fuse;
  size_t memory_limit_bytes;  // 0 = unlimited
};

}  // namespace

int main() {
  using namespace hwf;

  const size_t n = bench::Scaled(size_t{1} << 22);
  Table lineitem = GenerateLineitem(n, /*seed=*/5);
  const size_t price = lineitem.MustColumnIndex("l_extendedprice");
  const size_t partkey = lineitem.MustColumnIndex("l_partkey");
  const size_t shipdate = lineitem.MustColumnIndex("l_shipdate");

  WindowSpec spec;
  spec.order_by = {SortKey{shipdate}};
  spec.frame.begin = FrameBound::Preceding(262143);

  WindowFunctionCall median;
  median.kind = WindowFunctionKind::kMedian;
  median.argument = price;
  WindowFunctionCall count_distinct;
  count_distinct.kind = WindowFunctionKind::kCountDistinct;
  count_distinct.argument = partkey;

  struct Workload {
    const char* label;
    const WindowFunctionCall* call;
  };
  const std::vector<Workload> workloads = {{"median", &median},
                                           {"count_distinct", &count_distinct}};
  // Forced-spill config: the budget must clear the executor's fail-fast
  // floor (the n*8-byte permutation + slack, ~34MB at n=2^22) yet stay far
  // below the full working set, so it scales with n — records, sort
  // scratch, and tree levels then go through the OVC-coded external
  // merges and level eviction.
  const size_t spill_limit = 3 * n * sizeof(size_t);
  const std::vector<Config> configs = {
      {"baseline", false, false, 0},
      {"ovc", true, false, 0},
      {"fused", false, true, 0},
      {"ovc+fused", true, true, 0},
      {"ovc+fused-spill", true, true, spill_limit},
  };

  bench::PrintHeader("Ablation: OVC sort x fused preprocessing (n = " +
                     std::to_string(n) + ")");
  std::printf("%-14s %-15s %12s %10s %10s %10s %10s %9s\n", "config",
              "workload", "M tuples/s", "sort[s]", "prep[s]", "build[s]",
              "nonprobe", "identical");

  bench::BenchJson json("ovc");
  // Per-config sums across workloads; [0] is the baseline.
  std::vector<double> preprocess_sum(configs.size(), 0);
  std::vector<double> nonprobe_sum(configs.size(), 0);
  std::vector<Column> baselines;
  bool all_identical = true;

  for (size_t ci = 0; ci < configs.size(); ++ci) {
    const Config& config = configs[ci];
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
      const Workload& workload = workloads[wi];
      WindowExecutorOptions options;
      options.tree.use_ovc = config.use_ovc;
      options.tree.fuse_preprocess = config.fuse;
      options.memory_limit_bytes = config.memory_limit_bytes;
      // Scheduler noise dwarfs the effect under measurement on shared
      // machines, so keep the repeat with the smallest non-probe total.
      // The budgeted config runs once: spilled probes are long, and its
      // numbers feed only the bit-identity check, not the speedups.
      const int repeats = config.memory_limit_bytes > 0 ? 1 : 3;
      const uint64_t spill_files_before =
          obs::Value(obs::Counter::kMemSpillFilesCreated);
      std::unique_ptr<obs::ExecutionProfile> profile;
      double mtps = 0;
      double sort = 0;
      double prep = 0;
      double build = 0;
      double nonprobe = -1;
      for (int r = 0; r < repeats; ++r) {
        auto rep_profile = std::make_unique<obs::ExecutionProfile>();
        const double rep_mtps =
            bench::MeasureThroughput(lineitem, spec, *workload.call, options,
                                     nullptr, rep_profile.get());
        const double rep_sort =
            rep_profile->phase_seconds(obs::ProfilePhase::kSort);
        const double rep_prep =
            rep_profile->phase_seconds(obs::ProfilePhase::kPreprocess);
        const double rep_build =
            rep_profile->phase_seconds(obs::ProfilePhase::kTreeBuild);
        const double rep_nonprobe = rep_sort + rep_prep + rep_build;
        if (nonprobe < 0 || rep_nonprobe < nonprobe) {
          mtps = rep_mtps;
          sort = rep_sort;
          prep = rep_prep;
          build = rep_build;
          nonprobe = rep_nonprobe;
          profile = std::move(rep_profile);
        }
      }
      if (config.memory_limit_bytes > 0) {
        HWF_CHECK_MSG(obs::Value(obs::Counter::kMemSpillFilesCreated) >
                          spill_files_before,
                      "the budgeted config did not actually spill");
      }
      preprocess_sum[ci] += prep;
      nonprobe_sum[ci] += nonprobe;

      // MeasureThroughput discards the result; evaluate once more
      // (unmeasured) for the differential check against the baseline.
      StatusOr<Column> result =
          EvaluateWindowFunction(lineitem, spec, *workload.call, options);
      HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
      bool identical = true;
      if (ci == 0) {
        baselines.push_back(std::move(*result));
      } else {
        identical = ColumnsBitIdentical(*result, baselines[wi]);
        all_identical = all_identical && identical;
      }

      std::printf("%-14s %-15s %12.3f %10.3f %10.3f %10.3f %10.3f %9s\n",
                  config.label, workload.label, mtps, sort, prep, build,
                  nonprobe, identical ? "yes" : "NO");
      std::fflush(stdout);

      char buf[512];
      std::snprintf(
          buf, sizeof buf,
          "{\"label\": \"%s/%s\", \"config\": \"%s\", \"workload\": \"%s\", "
          "\"use_ovc\": %s, \"fuse_preprocess\": %s, "
          "\"memory_limit_bytes\": %zu, \"throughput_mtps\": %.4f, "
          "\"sort_seconds\": %.4f, \"preprocess_seconds\": %.4f, "
          "\"tree_build_seconds\": %.4f, \"nonprobe_seconds\": %.4f, "
          "\"bit_identical\": %s",
          config.label, workload.label, config.label, workload.label,
          config.use_ovc ? "true" : "false", config.fuse ? "true" : "false",
          config.memory_limit_bytes, mtps, sort, prep, build, nonprobe,
          identical ? "true" : "false");
      json.AddRaw(std::string(buf) + ", \"profile\": " + profile->ToJson() +
                  "}");
    }
  }

  // Aggregate speedups over the in-run baseline — what the acceptance
  // criteria (and the observability CI smoke) read.
  std::printf("\n%-14s %22s %22s\n", "config", "preprocess speedup",
              "nonprobe speedup");
  for (size_t ci = 1; ci < configs.size(); ++ci) {
    const double prep_speedup =
        preprocess_sum[ci] > 0 ? preprocess_sum[0] / preprocess_sum[ci] : 0;
    const double nonprobe_speedup =
        nonprobe_sum[ci] > 0 ? nonprobe_sum[0] / nonprobe_sum[ci] : 0;
    std::printf("%-14s %21.2fx %21.2fx\n", configs[ci].label, prep_speedup,
                nonprobe_speedup);
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"label\": \"aggregate/%s\", \"config\": \"%s\", "
                  "\"preprocess_speedup\": %.3f, \"nonprobe_speedup\": %.3f, "
                  "\"baseline_preprocess_seconds\": %.4f, "
                  "\"baseline_nonprobe_seconds\": %.4f}",
                  configs[ci].label, configs[ci].label, prep_speedup,
                  nonprobe_speedup, preprocess_sum[0], nonprobe_sum[0]);
    json.AddRaw(buf);
  }
  json.WriteDefault();
  HWF_CHECK_MSG(all_identical,
                "an OVC/fused run diverged from the uncoded/unfused baseline");
  return 0;
}
