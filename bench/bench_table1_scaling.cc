// Table 1: state-of-the-art algorithms for holistic aggregates and their
// complexities. This benchmark verifies the table empirically: it measures
// each algorithm at problem sizes n and 4n (frame = 5% of n, serial
// execution, single task — Table 1 lists *serial* runtimes) and reports
// the implied growth exponent e where t ~ n^e:
//
//   aggregate    algorithm          paper says          expected exponent
//   dist. count  incremental        O(n)                ~1
//   dist. count  merge sort tree    O(n log n)          ~1 (+log factor)
//   dist. aggr.  naive              O(n²)               ~2
//   dist. aggr.  merge sort tree    O(n log n)          ~1
//   percentile   incremental        O(n²)               ~2
//   percentile   segment tree       O(n log² n)         ~1
//   percentile   order stat. tree   O(n log n)          ~1
//   percentile   merge sort tree    O(n log n)          ~1
//   rank         order stat. tree   O(n log n)          ~1
//   rank         merge sort tree    O(n log n)          ~1
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/segment_tree.h"
#include "bench/bench_util.h"
#include "storage/tpch_gen.h"
#include "window/executor.h"

namespace {

using namespace hwf;

double TimeEngineOnce(size_t n, const WindowFunctionCall& call,
                      WindowEngine engine, bool single_task) {
  Table lineitem = GenerateLineitem(n, /*seed=*/21);
  WindowSpec spec;
  spec.order_by = {SortKey{lineitem.MustColumnIndex("l_shipdate")}};
  spec.frame.begin =
      FrameBound::Preceding(std::max<int64_t>(1, static_cast<int64_t>(n) / 20) -
                            1);
  WindowExecutorOptions options;
  options.engine = engine;
  if (single_task) options.morsel_size = size_t{1} << 40;
  ThreadPool single(0);
  bench::Timer timer;
  StatusOr<Column> result =
      EvaluateWindowFunction(lineitem, spec, call, options, single);
  HWF_CHECK(result.ok());
  return timer.Seconds();
}

/// Min of two runs reduces noise on the small configurations.
double TimeEngine(size_t n, const WindowFunctionCall& call,
                  WindowEngine engine, bool single_task) {
  const double a = TimeEngineOnce(n, call, engine, single_task);
  const double b = TimeEngineOnce(n, call, engine, single_task);
  return std::min(a, b);
}

double TimeSortedListSegmentTree(size_t n) {
  Table lineitem = GenerateLineitem(n, /*seed=*/21);
  const Column& price =
      lineitem.column(lineitem.MustColumnIndex("l_extendedprice"));
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = price.GetDouble(i);
  const size_t frame = std::max<size_t>(1, n / 20);
  bench::Timer timer;
  auto tree = SortedListSegmentTree::Build(values);
  double checksum = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i + 1 >= frame ? i + 1 - frame : 0;
    const size_t size = i + 1 - lo;
    checksum += tree.SelectKth(lo, i + 1, size / 2);
  }
  const double seconds = timer.Seconds();
  volatile double sink = checksum;  // Defeat dead-code elimination.
  (void)sink;
  return seconds;
}

void Report(const char* aggregate, const char* algorithm,
            const char* paper_complexity, double t1, double t2,
            double size_ratio) {
  const double exponent = std::log(t2 / t1) / std::log(size_ratio);
  std::printf("%-12s %-18s %-14s %9.3fs %9.3fs %9.2f\n", aggregate, algorithm,
              paper_complexity, t1, t2, exponent);
}

}  // namespace

int main() {
  using namespace hwf;

  const size_t small = bench::Scaled(4000);
  const size_t small4 = 4 * small;
  // The incremental percentile's O(n·s) memmove term needs a larger n
  // before it dominates the constant per-row overheads.
  const size_t medium = bench::Scaled(60000);
  const size_t medium4 = 4 * medium;
  const size_t large = bench::Scaled(60000);
  const size_t large4 = 4 * large;

  bench::PrintHeader("Table 1: empirical growth exponents (serial, frame = "
                     "5% of n; t ~ n^e)");
  std::printf("%-12s %-18s %-14s %10s %10s %9s\n", "aggregate", "algorithm",
              "paper", "t(n)", "t(4n)", "exponent");

  WindowFunctionCall distinct;
  distinct.kind = WindowFunctionKind::kCountDistinct;
  distinct.argument = 1;  // l_partkey
  Report("dist.count", "incremental", "O(n)",
         TimeEngine(large, distinct, WindowEngine::kIncremental, true),
         TimeEngine(large4, distinct, WindowEngine::kIncremental, true), 4);
  Report("dist.count", "merge sort tree", "O(n log n)",
         TimeEngine(large, distinct, WindowEngine::kMergeSortTree, false),
         TimeEngine(large4, distinct, WindowEngine::kMergeSortTree, false),
         4);

  WindowFunctionCall sum_distinct;
  sum_distinct.kind = WindowFunctionKind::kSumDistinct;
  sum_distinct.argument = 1;
  Report("dist.aggr", "naive", "O(n^2)",
         TimeEngine(small, sum_distinct, WindowEngine::kNaive, true),
         TimeEngine(small4, sum_distinct, WindowEngine::kNaive, true), 4);
  Report("dist.aggr", "merge sort tree", "O(n log n)",
         TimeEngine(large, sum_distinct, WindowEngine::kMergeSortTree, false),
         TimeEngine(large4, sum_distinct, WindowEngine::kMergeSortTree, false),
         4);

  WindowFunctionCall median;
  median.kind = WindowFunctionKind::kMedian;
  median.argument = 3;  // l_extendedprice
  Report("percentile", "incremental", "O(n^2)",
         TimeEngine(medium, median, WindowEngine::kIncremental, true),
         TimeEngine(medium4, median, WindowEngine::kIncremental, true), 4);
  Report("percentile", "segment tree", "O(n log^2 n)",
         TimeSortedListSegmentTree(large), TimeSortedListSegmentTree(large4),
         4);
  Report("percentile", "order stat. tree", "O(n log n)",
         TimeEngine(large, median, WindowEngine::kOrderStatisticTree, true),
         TimeEngine(large4, median, WindowEngine::kOrderStatisticTree, true),
         4);
  Report("percentile", "merge sort tree", "O(n log n)",
         TimeEngine(large, median, WindowEngine::kMergeSortTree, false),
         TimeEngine(large4, median, WindowEngine::kMergeSortTree, false), 4);

  WindowFunctionCall rank;
  rank.kind = WindowFunctionKind::kRank;
  rank.order_by = {SortKey{3}};
  Report("rank", "order stat. tree", "O(n log n)",
         TimeEngine(large, rank, WindowEngine::kOrderStatisticTree, true),
         TimeEngine(large4, rank, WindowEngine::kOrderStatisticTree, true),
         4);
  Report("rank", "merge sort tree", "O(n log n)",
         TimeEngine(large, rank, WindowEngine::kMergeSortTree, false),
         TimeEngine(large4, rank, WindowEngine::kMergeSortTree, false), 4);

  std::printf(
      "\nExponents near 1 confirm (near-)linear scaling, near 2 quadratic;\n"
      "log factors inflate the exponent slightly above 1.\n");
  return 0;
}
