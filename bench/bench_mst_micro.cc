// Micro-benchmarks of the merge sort tree primitives under
// google-benchmark: build, CountLess and Select per tree size, plus the
// preprocessing steps (Algorithm 1 and permutation arrays).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "mst/merge_sort_tree.h"
#include "mst/permutation.h"
#include "mst/prev_index.h"
#include "parallel/thread_pool.h"

namespace {

using namespace hwf;

std::vector<uint32_t> RandomKeys(size_t n) {
  Pcg32 rng(n);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) k = rng.Next();
  return keys;
}

void BM_TreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> keys = RandomKeys(n);
  ThreadPool single(0);
  for (auto _ : state) {
    auto tree = MergeSortTree<uint32_t>::Build(keys, {}, single);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_TreeBuild)->Range(1 << 10, 1 << 20);

void BM_CountLess(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> keys = RandomKeys(n);
  ThreadPool single(0);
  auto tree = MergeSortTree<uint32_t>::Build(keys, {}, single);
  Pcg32 rng(7);
  for (auto _ : state) {
    const size_t i = rng.Bounded(static_cast<uint32_t>(n));
    benchmark::DoNotOptimize(tree.CountLess(0, i + 1, keys[i]));
  }
}
BENCHMARK(BM_CountLess)->Range(1 << 10, 1 << 20);

void BM_Select(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  // A shuffled permutation, as the percentile path builds.
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<uint32_t>(i);
  Pcg32 shuffle(3);
  for (size_t i = n; i > 1; --i) {
    std::swap(keys[i - 1], keys[shuffle.Bounded(static_cast<uint32_t>(i))]);
  }
  ThreadPool single(0);
  auto tree = MergeSortTree<uint32_t>::Build(keys, {}, single);
  Pcg32 rng(11);
  for (auto _ : state) {
    // Median within a random key window of ~n/8 elements.
    const uint32_t lo = rng.Bounded(static_cast<uint32_t>(n - n / 8));
    const uint32_t hi = lo + static_cast<uint32_t>(n / 8);
    benchmark::DoNotOptimize(
        tree.Select(lo, hi, static_cast<size_t>(n / 16)));
  }
}
BENCHMARK(BM_Select)->Range(1 << 10, 1 << 20);

void BM_PrevIndices(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Pcg32 rng(n);
  std::vector<uint64_t> codes(n);
  for (auto& c : codes) c = rng.Bounded(static_cast<uint32_t>(n / 30 + 1));
  ThreadPool single(0);
  for (auto _ : state) {
    auto prev = ComputePrevIndices<uint32_t>(codes, single);
    benchmark::DoNotOptimize(prev.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_PrevIndices)->Range(1 << 12, 1 << 20);

void BM_Permutation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> keys = RandomKeys(n);
  ThreadPool single(0);
  for (auto _ : state) {
    auto perm = ComputePermutation<uint32_t>(
        n, [&](size_t a, size_t b) { return keys[a] < keys[b]; }, single);
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Permutation)->Range(1 << 12, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
