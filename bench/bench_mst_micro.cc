// Micro-benchmarks of the merge sort tree primitives under
// google-benchmark: build, CountLess and Select per tree size, plus the
// preprocessing steps (Algorithm 1 and permutation arrays).
//
// Extra flags (consumed before google-benchmark sees the command line):
//   --kernel={heap,loser}   merge kernel ablation for the build benchmarks
//                           (default loser; heap is the seed kernel)
//   --levels_json=PATH      additionally writes per-level build timings for
//                           both kernels as JSON to PATH, so kernel speedups
//                           are reproducible and trackable (BENCH_*.json)
//   --probe_batch=N         group size for the *Batch probe benchmarks
//                           (default MergeSortTreeOptions{}.probe_batch_size;
//                           0 answers the same query stream scalarly, for
//                           apples-to-apples kernel-off numbers)
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "mst/merge_sort_tree.h"
#include "mst/permutation.h"
#include "mst/prev_index.h"
#include "obs/profile.h"
#include "parallel/thread_pool.h"

namespace {

using namespace hwf;

MergeKernel g_kernel = MergeKernel::kLoserTree;
size_t g_probe_batch = MergeSortTreeOptions{}.probe_batch_size;

const char* KernelName(MergeKernel kernel) {
  return kernel == MergeKernel::kHeap ? "heap" : "loser";
}

std::vector<uint32_t> RandomKeys(size_t n) {
  Pcg32 rng(n);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) k = rng.Next();
  return keys;
}

void BM_TreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> keys = RandomKeys(n);
  ThreadPool single(0);
  MergeSortTreeOptions options;
  options.kernel = g_kernel;
  for (auto _ : state) {
    auto tree = MergeSortTree<uint32_t>::Build(keys, options, single);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
  state.SetLabel(KernelName(g_kernel));
}
BENCHMARK(BM_TreeBuild)->Range(1 << 10, 1 << 20);

// Parallel build at the paper's default f = k = 32 — the bottleneck phase
// of Fig. 14, under the kernel selected with --kernel.
void BM_TreeBuildParallel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> keys = RandomKeys(n);
  MergeSortTreeOptions options;
  options.kernel = g_kernel;
  for (auto _ : state) {
    auto tree =
        MergeSortTree<uint32_t>::Build(keys, options, ThreadPool::Default());
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
  state.SetLabel(KernelName(g_kernel));
}
BENCHMARK(BM_TreeBuildParallel)->Range(1 << 16, 1 << 22);

void BM_CountLess(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> keys = RandomKeys(n);
  ThreadPool single(0);
  auto tree = MergeSortTree<uint32_t>::Build(keys, {}, single);
  Pcg32 rng(7);
  for (auto _ : state) {
    const size_t i = rng.Bounded(static_cast<uint32_t>(n));
    benchmark::DoNotOptimize(tree.CountLess(0, i + 1, keys[i]));
  }
}
BENCHMARK(BM_CountLess)->Range(1 << 10, 1 << 20);

void BM_Select(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  // A shuffled permutation, as the percentile path builds.
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<uint32_t>(i);
  Pcg32 shuffle(3);
  for (size_t i = n; i > 1; --i) {
    std::swap(keys[i - 1], keys[shuffle.Bounded(static_cast<uint32_t>(i))]);
  }
  ThreadPool single(0);
  auto tree = MergeSortTree<uint32_t>::Build(keys, {}, single);
  Pcg32 rng(11);
  for (auto _ : state) {
    // Median within a random key window of ~n/8 elements.
    const uint32_t lo = rng.Bounded(static_cast<uint32_t>(n - n / 8));
    const uint32_t hi = lo + static_cast<uint32_t>(n / 8);
    benchmark::DoNotOptimize(
        tree.Select(lo, hi, static_cast<size_t>(n / 16)));
  }
}
BENCHMARK(BM_Select)->Range(1 << 10, 1 << 20);

// The batched probe kernel over a stream of CountLess queries, group size
// --probe_batch (0 = per-query scalar descent over the same stream). Items
// processed = queries answered, so items/s comparisons across group sizes
// show the pipelining win directly.
void BM_CountLessBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> keys = RandomKeys(n);
  ThreadPool single(0);
  auto tree = MergeSortTree<uint32_t>::Build(keys, {}, single);
  constexpr size_t kStream = 2048;
  Pcg32 rng(13);
  std::vector<MergeSortTree<uint32_t>::CountQuery> queries(kStream);
  for (auto& q : queries) {
    const size_t i = rng.Bounded(static_cast<uint32_t>(n));
    q = {0, i + 1, keys[i]};
  }
  std::vector<size_t> out(kStream);
  for (auto _ : state) {
    if (g_probe_batch == 0) {
      for (size_t q = 0; q < kStream; ++q) {
        out[q] =
            tree.CountLess(queries[q].pos_lo, queries[q].pos_hi,
                           queries[q].threshold);
      }
    } else {
      tree.CountLessBatch(queries, g_probe_batch, out.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(kStream) * state.iterations());
  state.SetLabel("batch=" + std::to_string(g_probe_batch));
}
BENCHMARK(BM_CountLessBatch)->Range(1 << 14, 1 << 22);

void BM_SelectBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<uint32_t>(i);
  Pcg32 shuffle(3);
  for (size_t i = n; i > 1; --i) {
    std::swap(keys[i - 1], keys[shuffle.Bounded(static_cast<uint32_t>(i))]);
  }
  ThreadPool single(0);
  auto tree = MergeSortTree<uint32_t>::Build(keys, {}, single);
  constexpr size_t kStream = 2048;
  Pcg32 rng(17);
  std::vector<KeyRange<uint32_t>> range_pool(kStream);
  std::vector<MergeSortTree<uint32_t>::SelectQuery> queries(kStream);
  for (size_t q = 0; q < kStream; ++q) {
    // Median within a random key window of ~n/8 elements.
    const uint32_t lo = rng.Bounded(static_cast<uint32_t>(n - n / 8));
    range_pool[q] = {lo, lo + static_cast<uint32_t>(n / 8)};
    queries[q] = {static_cast<uint32_t>(q), 1, n / 16};
  }
  std::vector<size_t> out(kStream);
  for (auto _ : state) {
    if (g_probe_batch == 0) {
      for (size_t q = 0; q < kStream; ++q) {
        std::span<const KeyRange<uint32_t>> span(&range_pool[q], 1);
        out[q] = tree.Select(span, queries[q].rank);
      }
    } else {
      tree.SelectBatch(range_pool, queries, g_probe_batch, out.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(kStream) * state.iterations());
  state.SetLabel("batch=" + std::to_string(g_probe_batch));
}
BENCHMARK(BM_SelectBatch)->Range(1 << 14, 1 << 22);

void BM_PrevIndices(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Pcg32 rng(n);
  std::vector<uint64_t> codes(n);
  for (auto& c : codes) c = rng.Bounded(static_cast<uint32_t>(n / 30 + 1));
  ThreadPool single(0);
  for (auto _ : state) {
    auto prev = ComputePrevIndices<uint32_t>(codes, single);
    benchmark::DoNotOptimize(prev.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_PrevIndices)->Range(1 << 12, 1 << 20);

void BM_Permutation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> keys = RandomKeys(n);
  ThreadPool single(0);
  for (auto _ : state) {
    auto perm = ComputePermutation<uint32_t>(
        n, [&](size_t a, size_t b) { return keys[a] < keys[b]; }, single);
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Permutation)->Range(1 << 12, 1 << 20);

/// Measures one serial build per kernel at n = 2^20, f = k = 32, and
/// writes per-level wall times (best of `reps`) as JSON:
///   {"n":..., "fanout":32, "sampling":32,
///    "kernels":{"heap":{"levels":[s,...],"total":s},
///               "loser":{...}},
///    "speedup_total": heap/loser}
/// Per-level timings come from the tree build's ExecutionProfile reporting
/// (the same channel WindowExecutorOptions::profile uses), so this file and
/// executor profiles can never disagree about what was measured.
void WriteLevelsJson(const std::string& path) {
  const size_t n = 1 << 20;
  const int reps = 5;
  std::vector<uint32_t> keys = RandomKeys(n);
  ThreadPool single(0);
  std::string body = "{\n  \"n\": " + std::to_string(n) +
                     ", \"fanout\": 32, \"sampling\": 32,\n  \"kernels\": {";
  double totals[2] = {0, 0};
  const MergeKernel kernels[2] = {MergeKernel::kHeap, MergeKernel::kLoserTree};
  for (int ki = 0; ki < 2; ++ki) {
    std::vector<double> best;
    for (int rep = 0; rep < reps; ++rep) {
      obs::ExecutionProfile profile;
      MergeSortTreeOptions options;
      options.kernel = kernels[ki];
      options.profile = &profile;
      auto tree = MergeSortTree<uint32_t>::Build(keys, options, single);
      benchmark::DoNotOptimize(tree.size());
      const std::vector<double> level_seconds = profile.tree_level_seconds();
      if (best.empty()) best = level_seconds;
      double total = 0, best_total = 0;
      for (double s : level_seconds) total += s;
      for (double s : best) best_total += s;
      if (total < best_total) best = level_seconds;
    }
    double total = 0;
    std::string levels;
    for (double s : best) {
      if (!levels.empty()) levels += ", ";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6f", s);
      levels += buf;
      total += s;
    }
    totals[ki] = total;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", total);
    body += std::string(ki == 0 ? "" : ",") + "\n    \"" +
            KernelName(kernels[ki]) + "\": {\"levels\": [" + levels +
            "], \"total\": " + buf + "}";
  }
  char speedup[32];
  std::snprintf(speedup, sizeof speedup, "%.3f",
                totals[1] > 0 ? totals[0] / totals[1] : 0.0);
  body += "\n  },\n  \"speedup_total\": " + std::string(speedup) + "\n}\n";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote per-level build timings to %s\n",
                 path.c_str());
  } else {
    std::fprintf(stderr, "failed to open %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our flags before handing the rest to google-benchmark.
  std::string levels_json;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--kernel=", 9) == 0) {
      const char* v = argv[i] + 9;
      if (std::strcmp(v, "heap") == 0) {
        g_kernel = MergeKernel::kHeap;
      } else if (std::strcmp(v, "loser") == 0) {
        g_kernel = MergeKernel::kLoserTree;
      } else {
        std::fprintf(stderr, "unknown --kernel value '%s' (heap|loser)\n", v);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--levels_json=", 14) == 0) {
      levels_json = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--probe_batch=", 14) == 0) {
      g_probe_batch = static_cast<size_t>(std::atoll(argv[i] + 14));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!levels_json.empty()) WriteLevelsJson(levels_json);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
