// Figure 12: throughput of a framed median for increasingly non-monotonic
// window frames. The frame keeps a constant size of ~500 rows but its
// *position* jumps pseudorandomly by up to ±m·499 rows, m in [0, 1]
// (the paper's construction, reused from Wesley & Xu):
//
//   rows between m*mod(l_extendedprice*7703, 499) preceding
//        and 500 - m*mod(l_extendedprice*7703, 499) following
//
// Expected shape: at m = 0 (monotonic) the incremental algorithm is
// competitive; any non-monotonicity makes it fall behind the merge sort
// tree and eventually behind even the naive algorithm, because every
// frame move triggers near-complete state teardown/rebuild (§6.5). The
// merge sort tree is unaffected: it never relies on frame overlap.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "storage/tpch_gen.h"
#include "window/executor.h"

int main() {
  using namespace hwf;

  const size_t n = bench::Scaled(8000);
  Table lineitem = GenerateLineitem(n, /*seed=*/4);
  const size_t price = lineitem.MustColumnIndex("l_extendedprice");
  const size_t shipdate = lineitem.MustColumnIndex("l_shipdate");

  bench::PrintHeader(
      "Figure 12: framed median vs non-monotonicity m, n = " +
      std::to_string(n) + ", frame size 500");
  std::printf("%-6s %18s %18s %18s   [M tuples/s]\n", "m", "merge sort tree",
              "incremental", "naive");

  WindowFunctionCall median;
  median.kind = WindowFunctionKind::kMedian;
  median.argument = price;

  for (double m : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    // Materialize the per-row offset expressions as columns.
    Table table = GenerateLineitem(n, /*seed=*/4);
    Column begin_off(DataType::kInt64);
    Column end_off(DataType::kInt64);
    for (size_t i = 0; i < n; ++i) {
      const int64_t cents = static_cast<int64_t>(
          std::llround(table.column(price).GetDouble(i) * 100.0));
      const int64_t jump =
          static_cast<int64_t>(std::llround(m * ((cents * 7703) % 499)));
      begin_off.AppendInt64(jump);
      end_off.AppendInt64(500 - jump);
    }
    table.AddColumn("begin_off", std::move(begin_off));
    table.AddColumn("end_off", std::move(end_off));

    WindowSpec spec;
    spec.order_by = {SortKey{shipdate}};
    spec.frame.begin =
        FrameBound::PrecedingColumn(table.MustColumnIndex("begin_off"));
    spec.frame.end =
        FrameBound::FollowingColumn(table.MustColumnIndex("end_off"));

    std::printf("%-6.2f", m);
    for (WindowEngine engine :
         {WindowEngine::kMergeSortTree, WindowEngine::kIncremental,
          WindowEngine::kNaive}) {
      WindowExecutorOptions options;
      options.engine = engine;
      std::printf(" %18.3f",
                  bench::MeasureThroughput(table, spec, median, options));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
