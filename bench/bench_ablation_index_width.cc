// Ablation: 32-bit vs 64-bit tree indices (§5.1). The paper picks the
// width per partition at runtime: 32-bit indices halve the tree's memory
// footprint and the saved bandwidth also speeds up build and probe.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "mst/merge_sort_tree.h"
#include "parallel/thread_pool.h"
#include "storage/tpch_gen.h"
#include "window/executor.h"

int main() {
  using namespace hwf;

  const size_t n = bench::Scaled(1000000);
  bench::PrintHeader("Ablation: tree index width, n = " + std::to_string(n));

  // Raw tree: memory and build+probe time per width.
  {
    Pcg32 rng(41);
    std::vector<uint32_t> keys32(n);
    std::vector<uint64_t> keys64(n);
    for (size_t i = 0; i < n; ++i) {
      keys32[i] = rng.Next();
      keys64[i] = keys32[i];
    }
    ThreadPool single(0);
    bench::Timer t32;
    auto tree32 = MergeSortTree<uint32_t>::Build(std::move(keys32), {}, single);
    size_t check = 0;
    for (size_t i = 0; i < n; i += 3) check += tree32.CountLess(0, i + 1, 1u << 30);
    const double s32 = t32.Seconds();
    bench::Timer t64;
    auto tree64 = MergeSortTree<uint64_t>::Build(std::move(keys64), {}, single);
    for (size_t i = 0; i < n; i += 3) {
      check += tree64.CountLess(0, i + 1, uint64_t{1} << 30);
    }
    const double s64 = t64.Seconds();
    volatile size_t sink = check;  // Defeat dead-code elimination.
    (void)sink;
    std::printf("raw tree     32-bit: %7.3fs %7.1f MB   64-bit: %7.3fs %7.1f MB\n",
                s32, static_cast<double>(tree32.MemoryUsageBytes()) / 1e6,
                s64, static_cast<double>(tree64.MemoryUsageBytes()) / 1e6);
  }

  // End-to-end: framed distinct count through the window operator.
  {
    Table lineitem = GenerateLineitem(n, /*seed=*/42);
    WindowSpec spec;
    spec.order_by = {SortKey{lineitem.MustColumnIndex("l_shipdate")}};
    WindowFunctionCall call;
    call.kind = WindowFunctionKind::kCountDistinct;
    call.argument = lineitem.MustColumnIndex("l_partkey");
    for (int width : {32, 64}) {
      WindowExecutorOptions options;
      options.force_index_width = width;
      double seconds;
      bench::MeasureThroughput(lineitem, spec, call, options, &seconds);
      std::printf("distinct count end-to-end, %d-bit indices: %7.3fs\n",
                  width, seconds);
    }
  }
  return 0;
}
