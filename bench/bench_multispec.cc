// Multi-window-spec benchmark: shared-sort scaling with the number of
// OVER clauses (k compatible specs should cost ~1 sort, not k) and the
// hash-partitioning regime against the global sort across PARTITION BY
// cardinalities. Verifies in-binary that the optimized paths return
// bit-identical results, and emits BENCH_multispec.json with
// hardware-independent ratio gates.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/random.h"
#include "obs/profile.h"
#include "storage/column.h"
#include "storage/table.h"
#include "window/executor.h"

namespace hwf {
namespace {

Table MakeTable(size_t rows, size_t partition_cardinality, uint64_t seed) {
  Pcg32 rng(seed);
  Column grp(DataType::kInt64);
  Column ord(DataType::kInt64);
  Column val(DataType::kInt64);
  Column aux(DataType::kInt64);
  for (size_t i = 0; i < rows; ++i) {
    grp.AppendInt64(static_cast<int64_t>(rng.Bounded(
        static_cast<uint32_t>(partition_cardinality))));
    ord.AppendInt64(static_cast<int64_t>(rng.Bounded(1u << 20)));
    val.AppendInt64(static_cast<int64_t>(rng.Bounded(100000)));
    aux.AppendInt64(static_cast<int64_t>(rng.Bounded(1u << 16)));
  }
  Table table;
  table.AddColumn("grp", std::move(grp));
  table.AddColumn("ord", std::move(ord));
  table.AddColumn("val", std::move(val));
  table.AddColumn("aux", std::move(aux));
  return table;
}

WindowFunctionCall SumCall(size_t argument) {
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kSum;
  call.argument = argument;
  return call;
}

/// `count` distinct specs that one sort chain can serve: a finest producer
/// ordering by (ord, aux), then prefix/exact consumers distinguished by
/// frame. `compatible = false` flips every second spec to an incompatible
/// ordering (descending, or partitioned differently) so the plan needs
/// ~count/2 sorts.
std::vector<WindowSpec> MakeSpecs(size_t count, bool compatible) {
  std::vector<WindowSpec> specs;
  for (size_t i = 0; i < count; ++i) {
    WindowSpec spec;
    spec.partition_by = {0};
    if (compatible || i % 2 == 0) {
      if (i == 0) {
        spec.order_by = {SortKey{1, true, false}, SortKey{3, true, false}};
      } else {
        spec.order_by = {SortKey{1, true, false}};
        spec.frame.mode = FrameMode::kRows;
        spec.frame.begin = FrameBound::Preceding(static_cast<int64_t>(i * 50));
        spec.frame.end = FrameBound::CurrentRow();
      }
    } else {
      // Incompatible: flip direction and use a different key per spec so
      // nothing shares.
      spec.order_by = {SortKey{(i % 4 == 1) ? size_t{3} : size_t{1},
                               false, i % 4 == 3}};
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

bool BitIdentical(const Column& a, const Column& b) {
  if (a.size() != b.size() || a.type() != b.type()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.IsNull(i) != b.IsNull(i)) return false;
    if (a.IsNull(i)) continue;
    switch (a.type()) {
      case DataType::kInt64:
        if (a.GetInt64(i) != b.GetInt64(i)) return false;
        break;
      case DataType::kDouble:
        if (a.GetDouble(i) != b.GetDouble(i)) return false;
        break;
      case DataType::kString:
        if (a.GetString(i) != b.GetString(i)) return false;
        break;
    }
  }
  return true;
}

struct RunResult {
  double seconds = 0;
  double sort_seconds = 0;
  std::vector<std::vector<Column>> columns;
};

RunResult RunMultiSpec(const Table& table, const std::vector<WindowSpec>& specs,
                       const std::vector<WindowFunctionCall>& calls,
                       const WindowExecutorOptions& base_options) {
  std::vector<WindowSpecGroup> groups;
  groups.reserve(specs.size());
  for (const WindowSpec& spec : specs) {
    groups.push_back(WindowSpecGroup{&spec, {calls.data(), calls.size()}});
  }
  obs::ExecutionProfile profile;
  WindowExecutorOptions options = base_options;
  options.profile = &profile;
  bench::Timer timer;
  StatusOr<std::vector<std::vector<Column>>> result =
      EvaluateWindowSpecGroups(table, groups, options);
  RunResult run;
  run.seconds = timer.Seconds();
  HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  run.sort_seconds = profile.phase_seconds(obs::ProfilePhase::kSort) +
                     profile.phase_seconds(obs::ProfilePhase::kPartition);
  run.columns = std::move(*result);
  return run;
}

RunResult RunPerSpec(const Table& table, const std::vector<WindowSpec>& specs,
                     const std::vector<WindowFunctionCall>& calls,
                     const WindowExecutorOptions& base_options) {
  RunResult run;
  bench::Timer timer;
  for (const WindowSpec& spec : specs) {
    obs::ExecutionProfile profile;
    WindowExecutorOptions options = base_options;
    options.profile = &profile;
    StatusOr<std::vector<Column>> result =
        EvaluateWindowFunctions(table, spec, {calls.data(), calls.size()},
                                options);
    HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    run.sort_seconds += profile.phase_seconds(obs::ProfilePhase::kSort) +
                        profile.phase_seconds(obs::ProfilePhase::kPartition);
    run.columns.push_back(std::move(*result));
  }
  run.seconds = timer.Seconds();
  return run;
}

void CheckBitIdentity(const RunResult& multi, const RunResult& single,
                      const char* context) {
  HWF_CHECK_MSG(multi.columns.size() == single.columns.size(), context);
  for (size_t g = 0; g < multi.columns.size(); ++g) {
    HWF_CHECK_MSG(multi.columns[g].size() == single.columns[g].size(),
                  context);
    for (size_t c = 0; c < multi.columns[g].size(); ++c) {
      HWF_CHECK_MSG(BitIdentical(multi.columns[g][c], single.columns[g][c]),
                    context);
    }
  }
}

}  // namespace
}  // namespace hwf

int main() {
  using namespace hwf;  // NOLINT

  const size_t kRows = bench::Scaled(400000);
  bench::BenchJson json("multispec");

  // --- spec-count sweep ----------------------------------------------------
  // k compatible specs: the shared-sort plan pays one sort chain, so the
  // sort phase should stay flat as k grows while the naive per-spec loop
  // pays k sorts. The mixed variant interleaves incompatible orderings and
  // must still match the per-spec results bit for bit.
  bench::PrintHeader("shared-sort scaling: k specs vs per-spec execution");
  std::printf("%-22s %10s %12s %12s %12s\n", "workload", "specs", "multi s",
              "per-spec s", "multi sort s");
  const Table table = MakeTable(kRows, 4, 42);
  const std::vector<WindowFunctionCall> calls = {SumCall(2)};
  double compat8_multi = 0;
  double compat8_single = 0;
  for (const bool compatible : {true, false}) {
    for (size_t k = 1; k <= 8; ++k) {
      const std::vector<WindowSpec> specs = MakeSpecs(k, compatible);
      const RunResult multi = RunMultiSpec(table, specs, calls, {});
      const RunResult single = RunPerSpec(table, specs, calls, {});
      CheckBitIdentity(multi, single, "spec-count sweep bit-identity");
      if (compatible && k == 8) {
        compat8_multi = multi.seconds;
        compat8_single = single.seconds;
      }
      char label[48];
      std::snprintf(label, sizeof label, "specs=%zu_%s", k,
                    compatible ? "compatible" : "mixed");
      std::printf("%-22s %10zu %12.4f %12.4f %12.4f\n", label, k,
                  multi.seconds, single.seconds, multi.sort_seconds);
      char entry[256];
      std::snprintf(entry, sizeof entry,
                    "{\"label\": \"%s\", \"specs\": %zu, \"seconds\": %.4f, "
                    "\"per_spec_seconds\": %.4f, \"sort_seconds\": %.4f, "
                    "\"per_spec_sort_seconds\": %.4f}",
                    label, k, multi.seconds, single.seconds,
                    multi.sort_seconds, single.sort_seconds);
      json.AddRaw(entry);
    }
  }
  // Hardware-independent gate: 8 compatible specs in one execution vs 8
  // independent executions. Sharing must keep this well under 1.0.
  {
    const double ratio =
        compat8_single > 0 ? compat8_multi / compat8_single : 1.0;
    std::printf("shared-sort ratio (8 compatible, multi/per-spec) %.4f\n",
                ratio);
    char entry[96];
    std::snprintf(entry, sizeof entry,
                  "{\"label\": \"shared_sort_ratio\", \"ratio\": %.4f}",
                  ratio);
    json.AddRaw(entry);
  }

  // --- PARTITION BY cardinality sweep --------------------------------------
  // The hash partitioner's regime: many small partitions. Global sort vs
  // forced hash partitioning on the same workload; kAuto must pick the
  // winner at both ends.
  bench::PrintHeader("hash partitioning vs global sort by cardinality");
  std::printf("%-22s %12s %12s %12s\n", "cardinality", "global s", "hash s",
              "auto s");
  double high_card_global = 0;
  double high_card_hash = 0;
  for (const size_t card : {size_t{4}, size_t{256}, size_t{4096},
                            size_t{65536}}) {
    const Table part_table = MakeTable(kRows, card, 43);
    WindowSpec spec;
    spec.partition_by = {0};
    spec.order_by = {SortKey{1, true, false}};
    const std::vector<WindowSpec> specs = {spec};

    WindowExecutorOptions global_opts;
    global_opts.hash_partition = HashPartitionMode::kOff;
    WindowExecutorOptions hash_opts;
    hash_opts.hash_partition = HashPartitionMode::kForce;

    const RunResult global = RunMultiSpec(part_table, specs, calls,
                                          global_opts);
    const RunResult hashed = RunMultiSpec(part_table, specs, calls, hash_opts);
    const RunResult autod = RunMultiSpec(part_table, specs, calls, {});
    CheckBitIdentity(hashed, global, "hash-regime bit-identity");
    CheckBitIdentity(autod, global, "auto-regime bit-identity");
    if (card == 65536) {
      high_card_global = global.sort_seconds;
      high_card_hash = hashed.sort_seconds;
    }
    char label[32];
    std::snprintf(label, sizeof label, "cardinality=%zu", card);
    std::printf("%-22s %12.4f %12.4f %12.4f\n", label, global.seconds,
                hashed.seconds, autod.seconds);
    char entry[288];
    std::snprintf(entry, sizeof entry,
                  "{\"label\": \"%s\", \"rows\": %zu, "
                  "\"global_seconds\": %.4f, \"hash_seconds\": %.4f, "
                  "\"auto_seconds\": %.4f, \"global_sort_seconds\": %.4f, "
                  "\"hash_sort_seconds\": %.4f}",
                  label, kRows, global.seconds, hashed.seconds, autod.seconds,
                  global.sort_seconds, hashed.sort_seconds);
    json.AddRaw(entry);
  }
  // Gate: on its regime (64K partitions) the hash partitioner's sort phase
  // must beat the global comparison sort.
  {
    const double ratio =
        high_card_global > 0 ? high_card_hash / high_card_global : 1.0;
    std::printf("hash-partition sort ratio (64K partitions, hash/global) "
                "%.4f\n", ratio);
    char entry[96];
    std::snprintf(entry, sizeof entry,
                  "{\"label\": \"hash_partition_ratio\", \"ratio\": %.4f}",
                  ratio);
    json.AddRaw(entry);
  }

  json.WriteDefault();
  return 0;
}
