// Ablation: fractional cascading on/off (§4.2). Without the cascading
// pointers every tree level re-runs a full binary search, turning the
// query phase from O(n log n) into O(n log² n). The build gets slightly
// cheaper (no pointer recording); total time should clearly favor
// cascading, and the gap should widen with n.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "mst/merge_sort_tree.h"
#include "parallel/thread_pool.h"

int main() {
  using namespace hwf;

  ThreadPool single(0);
  bench::PrintHeader("Ablation: fractional cascading (windowed rank, "
                     "single-threaded)");
  std::printf("%-10s %14s %14s %14s %14s %8s\n", "n", "build+q [s]",
              "build [s]", "no-casc [s]", "no-c build", "speedup");

  for (size_t base : {50000u, 200000u, 800000u}) {
    const size_t n = bench::Scaled(base);
    Pcg32 rng(23);
    std::vector<uint32_t> keys(n);
    for (auto& k : keys) k = rng.Next();

    double total[2];
    double build[2];
    for (int casc = 1; casc >= 0; --casc) {
      MergeSortTreeOptions options;
      options.use_cascading = casc != 0;
      bench::Timer timer;
      auto tree = MergeSortTree<uint32_t>::Build(keys, options, single);
      build[casc] = timer.Seconds();
      size_t checksum = 0;
      for (size_t i = 0; i < n; ++i) {
        checksum += tree.CountLess(0, i + 1, keys[i]);
      }
      total[casc] = timer.Seconds();
      volatile size_t sink = checksum;  // Defeat dead-code elimination.
      (void)sink;
    }
    std::printf("%-10zu %14.3f %14.3f %14.3f %14.3f %7.2fx\n", n, total[1],
                build[1], total[0], build[0], total[0] / total[1]);
  }
  return 0;
}
