// Figure 14: execution-phase breakdown of a framed (running) distinct
// count. The paper's phases:
//   1. partition/sort setup of the window operator
//   2. populate the (hash, position) array       (Algorithm 1, line 4)
//   3. sort it — thread-local runs + merge       (Algorithm 1, line 5)
//   4. compute prevIdcs                          (Algorithm 1, lines 7+)
//   5. build the merge sort tree levels
//   6. compute all results from the tree
//
// The reproduced quantity is the *proportion* of time per phase (the
// paper ran SF10 on 40 hardware threads; this runs a scaled-down input on
// one core — see EXPERIMENTS.md).
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/bench_util.h"
#include "mst/merge_sort_tree.h"
#include "mst/prev_index.h"
#include "parallel/parallel_sort.h"
#include "storage/tpch_gen.h"

int main() {
  using namespace hwf;

  const size_t n = bench::Scaled(2000000);
  Table lineitem = GenerateLineitem(n, /*seed=*/14);
  const Column& shipdate =
      lineitem.column(lineitem.MustColumnIndex("l_shipdate"));
  const Column& partkey =
      lineitem.column(lineitem.MustColumnIndex("l_partkey"));
  ThreadPool& pool = ThreadPool::Default();

  struct Phase {
    const char* name;
    double seconds;
  };
  std::vector<Phase> phases;
  bench::Timer total;
  bench::Timer timer;

  // Phase 1: window operator setup — sort by the frame ORDER BY.
  std::vector<uint32_t> sorted(n);
  std::iota(sorted.begin(), sorted.end(), 0);
  ParallelSort(
      sorted,
      [&](uint32_t a, uint32_t b) {
        const int64_t da = shipdate.GetInt64(a);
        const int64_t db = shipdate.GetInt64(b);
        if (da != db) return da < db;
        return a < b;
      },
      pool);
  phases.push_back({"sort by frame ORDER BY", timer.Seconds()});
  timer.Reset();

  // Phase 2: populate the (hash, position) array (Algorithm 1 line 4).
  std::vector<std::pair<uint64_t, uint32_t>> pairs(n);
  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          pairs[i] = {partkey.Hash(sorted[i]), static_cast<uint32_t>(i)};
        }
      },
      pool);
  phases.push_back({"populate hash array", timer.Seconds()});
  timer.Reset();

  // Phase 3: sort it (thread-local sort + merge).
  ParallelSort(
      pairs, [](const auto& a, const auto& b) { return a < b; }, pool);
  phases.push_back({"sort hash array", timer.Seconds()});
  timer.Reset();

  // Phase 4: compute prevIdcs (Algorithm 1 lines 7+).
  std::vector<uint32_t> prev(n);
  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          if (i > 0 && pairs[i].first == pairs[i - 1].first) {
            prev[pairs[i].second] = pairs[i - 1].second + 1;
          } else {
            prev[pairs[i].second] = 0;
          }
        }
      },
      pool);
  phases.push_back({"compute prevIdcs", timer.Seconds()});
  timer.Reset();

  // Phase 5: build the merge sort tree.
  auto tree = MergeSortTree<uint32_t>::Build(std::move(prev), {}, pool);
  phases.push_back({"build merge sort tree", timer.Seconds()});
  timer.Reset();

  // Phase 6: compute all results (running frame: [0, i+1)).
  std::vector<uint32_t> result(n);
  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          result[i] =
              static_cast<uint32_t>(tree.CountLess(0, i + 1, 1));
        }
      },
      pool);
  phases.push_back({"compute results", timer.Seconds()});

  const double total_seconds = total.Seconds();
  bench::PrintHeader(
      "Figure 14: phase breakdown of a running COUNT(DISTINCT l_partkey), "
      "n = " +
      std::to_string(n));
  std::printf("%-28s %10s %8s\n", "phase", "time [s]", "share");
  for (const Phase& phase : phases) {
    std::printf("%-28s %10.3f %7.1f%%\n", phase.name, phase.seconds,
                100.0 * phase.seconds / total_seconds);
  }
  std::printf("%-28s %10.3f\n", "total", total_seconds);
  std::printf("(distinct count at the last row: %u)\n", result[n - 1]);
  return 0;
}
