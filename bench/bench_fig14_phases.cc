// Figure 14: execution-phase breakdown of a framed (running) distinct
// count. The paper's phases:
//   1. partition/sort setup of the window operator
//   2. populate the (hash, position) array       (Algorithm 1, line 4)
//   3. sort it — thread-local runs + merge       (Algorithm 1, line 5)
//   4. compute prevIdcs                          (Algorithm 1, lines 7+)
//   5. build the merge sort tree levels
//   6. compute all results from the tree
//
// The reproduced quantity is the *proportion* of time per phase (the
// paper ran SF10 on 40 hardware threads; this runs a scaled-down input on
// one core — see EXPERIMENTS.md).
//
// Observability: the run executes with span tracing enabled and writes
//   --trace=PATH    Chrome trace_event JSON (default BENCH_fig14_trace.json)
//                   — phase spans plus the nested sort/merge/tree-level
//                   spans, loadable in chrome://tracing or Perfetto
//   --profile=PATH  ExecutionProfile JSON (default BENCH_fig14_phases.json)
//                   — the same breakdown folded into the standard phase
//                   taxonomy with per-tree-level build seconds and counters
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "mst/merge_sort_tree.h"
#include "mst/prev_index.h"
#include "obs/counters.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "parallel/parallel_sort.h"
#include "storage/tpch_gen.h"

int main(int argc, char** argv) {
  using namespace hwf;

  std::string trace_path = "BENCH_fig14_trace.json";
  std::string profile_path = "BENCH_fig14_phases.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      profile_path = argv[i] + 10;
    } else {
      std::fprintf(stderr, "unknown flag %s (--trace=PATH, --profile=PATH)\n",
                   argv[i]);
      return 1;
    }
  }

  const size_t n = bench::Scaled(2000000);
  Table lineitem = GenerateLineitem(n, /*seed=*/14);
  const Column& shipdate =
      lineitem.column(lineitem.MustColumnIndex("l_shipdate"));
  const Column& partkey =
      lineitem.column(lineitem.MustColumnIndex("l_partkey"));
  ThreadPool& pool = ThreadPool::Default();

  obs::Tracer::Get().Enable();
  obs::ExecutionProfile profile;
  const obs::CounterSnapshot counters_before = obs::SnapshotCounters();

  struct Phase {
    const char* name;
    double seconds;
  };
  std::vector<Phase> phases;
  bench::Timer total;
  bench::Timer timer;

  // Phase 1: window operator setup — sort by the frame ORDER BY.
  std::vector<uint32_t> sorted(n);
  {
    HWF_TRACE_SCOPE_ARG("fig14.sort_order_by", "n", n);
    std::iota(sorted.begin(), sorted.end(), 0);
    ParallelSort(
        sorted,
        [&](uint32_t a, uint32_t b) {
          const int64_t da = shipdate.GetInt64(a);
          const int64_t db = shipdate.GetInt64(b);
          if (da != db) return da < db;
          return a < b;
        },
        pool);
  }
  phases.push_back({"sort by frame ORDER BY", timer.Seconds()});
  profile.AddPhaseSeconds(obs::ProfilePhase::kSort, timer.Seconds());
  timer.Reset();

  // Phase 2: populate the (hash, position) array (Algorithm 1 line 4).
  std::vector<std::pair<uint64_t, uint32_t>> pairs(n);
  {
    HWF_TRACE_SCOPE("fig14.populate_hash_array");
    ParallelFor(
        0, n,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            pairs[i] = {partkey.Hash(sorted[i]), static_cast<uint32_t>(i)};
          }
        },
        pool);
  }
  phases.push_back({"populate hash array", timer.Seconds()});
  profile.AddPhaseSeconds(obs::ProfilePhase::kPreprocess, timer.Seconds());
  timer.Reset();

  // Phase 3: sort it (thread-local sort + merge).
  {
    HWF_TRACE_SCOPE("fig14.sort_hash_array");
    ParallelSort(
        pairs, [](const auto& a, const auto& b) { return a < b; }, pool);
  }
  phases.push_back({"sort hash array", timer.Seconds()});
  profile.AddPhaseSeconds(obs::ProfilePhase::kPreprocess, timer.Seconds());
  timer.Reset();

  // Phase 4: compute prevIdcs (Algorithm 1 lines 7+).
  std::vector<uint32_t> prev(n);
  {
    HWF_TRACE_SCOPE("fig14.compute_prev_idcs");
    ParallelFor(
        0, n,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            if (i > 0 && pairs[i].first == pairs[i - 1].first) {
              prev[pairs[i].second] = pairs[i - 1].second + 1;
            } else {
              prev[pairs[i].second] = 0;
            }
          }
        },
        pool);
  }
  phases.push_back({"compute prevIdcs", timer.Seconds()});
  profile.AddPhaseSeconds(obs::ProfilePhase::kPreprocess, timer.Seconds());
  timer.Reset();

  // Phase 5: build the merge sort tree. The build itself reports per-level
  // seconds (and the kTreeBuild phase total) into the attached profile.
  MergeSortTreeOptions tree_options;
  tree_options.profile = &profile;
  auto tree =
      MergeSortTree<uint32_t>::Build(std::move(prev), tree_options, pool);
  phases.push_back({"build merge sort tree", timer.Seconds()});
  timer.Reset();

  // Phase 6: compute all results (running frame: [0, i+1)).
  std::vector<uint32_t> result(n);
  {
    HWF_TRACE_SCOPE("fig14.compute_results");
    ParallelFor(
        0, n,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            result[i] = static_cast<uint32_t>(tree.CountLess(0, i + 1, 1));
          }
        },
        pool);
  }
  phases.push_back({"compute results", timer.Seconds()});
  profile.AddPhaseSeconds(obs::ProfilePhase::kProbe, timer.Seconds());

  const double total_seconds = total.Seconds();
  profile.SetRows(n);
  profile.SetPartitions(1);
  profile.SetEngine("fig14_pipeline");
  profile.SetTotalSeconds(total_seconds);
  profile.CaptureCountersSince(counters_before);

  bench::PrintHeader(
      "Figure 14: phase breakdown of a running COUNT(DISTINCT l_partkey), "
      "n = " +
      std::to_string(n));
  std::printf("%-28s %10s %8s\n", "phase", "time [s]", "share");
  for (const Phase& phase : phases) {
    std::printf("%-28s %10.3f %7.1f%%\n", phase.name, phase.seconds,
                100.0 * phase.seconds / total_seconds);
  }
  std::printf("%-28s %10.3f\n", "total", total_seconds);
  std::printf("(distinct count at the last row: %u)\n", result[n - 1]);

  bench::BenchJson json("fig14_phases");
  json.Add("count_distinct_running",
           static_cast<double>(n) / total_seconds / 1e6, &profile);
  if (!json.WriteFile(profile_path)) return 1;
  const Status trace_status = obs::Tracer::Get().WriteChromeTrace(trace_path);
  if (!trace_status.ok()) {
    std::fprintf(stderr, "%s\n", trace_status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", trace_path.c_str());
  return 0;
}
