// Memory-governance ablation: the Figure-10 median query under a sweep of
// memory budgets, from unlimited down to a small multiple of the
// irreducible working set. Reports throughput, peak reserved bytes, and
// the spill counters, and verifies each budgeted run bit-identically
// against the unlimited baseline — the acceptance scenario for the
// spill subsystem (DESIGN.md §7).
//
// Expected shape: modest budgets cost little (only finished tree levels
// are evicted and probes touch one page per level per range); as the
// budget approaches the floor the external sort engages and throughput
// becomes I/O-shaped, but results never change and the peak reservation
// stays under the hard limit.
//
// At the default scale n = 2^20 (the near-floor point is page-cache-miss
// bound and dominates the runtime); HWF_BENCH_SCALE=16 reproduces the
// paper-scale n = 2^24 run.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/counters.h"
#include "storage/tpch_gen.h"
#include "window/executor.h"
#include "window/frame.h"

namespace {

using namespace hwf;

struct BudgetPoint {
  const char* label;
  size_t limit_bytes;  // 0 = unlimited
};

bool ColumnsBitIdentical(const Column& a, const Column& b) {
  if (a.size() != b.size() || a.type() != b.type()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.IsNull(i) != b.IsNull(i)) return false;
    if (a.IsNull(i)) continue;
    const double x = a.GetDouble(i);
    const double y = b.GetDouble(i);
    if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace hwf;

  const size_t n = bench::Scaled(size_t{1} << 20);
  Table lineitem = GenerateLineitem(n, /*seed=*/2);
  WindowSpec spec;
  spec.order_by = {SortKey{lineitem.MustColumnIndex("l_shipdate")}};
  const int64_t frame = std::max<int64_t>(1, static_cast<int64_t>(n) / 20);
  spec.frame.begin = FrameBound::Preceding(frame - 1);
  WindowFunctionCall median;
  median.kind = WindowFunctionKind::kMedian;
  median.argument = 3;  // l_extendedprice

  // Budgets relative to the unsheddable per-row state (sorted permutation
  // + frame descriptors). That floor dominates the footprint, so the
  // interesting band is narrow: 4x stays fully resident (pure bookkeeping
  // overhead), 1.5x evicts some tree levels, 1.25x evicts everything
  // evictable and denies the in-memory sort buffer.
  const size_t irreducible =
      n * (sizeof(size_t) + sizeof(FrameRanges)) + (size_t{64} << 10);
  const std::vector<BudgetPoint> points = {
      {"unlimited", 0},
      {"4x floor", irreducible * 4},
      {"1.5x floor", irreducible + irreducible / 2},
      {"1.25x floor", irreducible + irreducible / 4},
  };

  bench::PrintHeader("Spill ablation: median(l_extendedprice), n = " +
                     std::to_string(n) + ", frame = 5% of input");
  std::printf("%-12s %12s %14s %14s %12s %10s %9s\n", "budget", "M tuples/s",
              "peak reserved", "spill written", "spill read", "evictions",
              "identical");

  bench::BenchJson json("spill_budget");
  Column baseline(DataType::kDouble);
  bool all_identical = true;
  for (const BudgetPoint& point : points) {
    WindowExecutorOptions options;
    options.memory_limit_bytes = point.limit_bytes;
    obs::ExecutionProfile profile;
    const obs::CounterSnapshot before = obs::SnapshotCounters();
    const double mtps = bench::MeasureThroughput(lineitem, spec, median,
                                                 options, nullptr, &profile);
    const obs::CounterSnapshot after = obs::SnapshotCounters();
    const uint64_t written = after[obs::Counter::kMemSpillBytesWritten] -
                             before[obs::Counter::kMemSpillBytesWritten];
    const uint64_t read = after[obs::Counter::kMemSpillBytesRead] -
                          before[obs::Counter::kMemSpillBytesRead];
    const uint64_t evicted = after[obs::Counter::kMemMstLevelsEvicted] -
                             before[obs::Counter::kMemMstLevelsEvicted];

    // MeasureThroughput discards the result column; evaluate once more
    // (unmeasured) for the differential check.
    StatusOr<Column> result =
        EvaluateWindowFunction(lineitem, spec, median, options);
    HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    bool identical = true;
    if (point.limit_bytes == 0) {
      baseline = std::move(*result);
    } else {
      identical = ColumnsBitIdentical(*result, baseline);
      all_identical = all_identical && identical;
      HWF_CHECK_MSG(profile.peak_reserved_bytes() <= point.limit_bytes,
                    "peak reservation exceeded the hard limit");
    }

    std::printf("%-12s %12.3f %14zu %14llu %12llu %10llu %9s\n", point.label,
                mtps, profile.peak_reserved_bytes(),
                static_cast<unsigned long long>(written),
                static_cast<unsigned long long>(read),
                static_cast<unsigned long long>(evicted),
                identical ? "yes" : "NO");
    std::fflush(stdout);

    char extra[256];
    std::snprintf(extra, sizeof extra,
                  ", \"memory_limit_bytes\": %zu, \"peak_reserved_bytes\": "
                  "%zu, \"spill_bytes_written\": %llu, \"spill_bytes_read\": "
                  "%llu, \"levels_evicted\": %llu, \"bit_identical\": %s",
                  point.limit_bytes, profile.peak_reserved_bytes(),
                  static_cast<unsigned long long>(written),
                  static_cast<unsigned long long>(read),
                  static_cast<unsigned long long>(evicted),
                  identical ? "true" : "false");
    char mtps_buf[32];
    std::snprintf(mtps_buf, sizeof mtps_buf, "%.4f", mtps);
    json.AddRaw(std::string("{\"label\": \"") + point.label +
                "\", \"throughput_mtps\": " + mtps_buf + extra +
                ", \"profile\": " + profile.ToJson() + "}");
  }
  json.WriteDefault();
  HWF_CHECK_MSG(all_identical,
                "a budgeted run diverged from the unlimited baseline");
  return 0;
}
