// Figure 13: runtime of a windowed rank for different fanout f and
// cascading-pointer sampling k, single-threaded, uniform random integers.
// The paper's grid (f ∈ {2..256}, k ∈ {1..1024}) reports runtimes relative
// to the fastest cell; f = k = 32 is the configuration Hyper ships because
// it is near-optimal in time while exponentially smaller in memory than
// smaller fanouts.
//
// Expected shape: a shallow basin around mid-sized f and k; very small k
// at large f explodes (many pointers per sample); very large k degrades
// toward non-cascaded searches.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "mst/merge_sort_tree.h"
#include "parallel/thread_pool.h"

int main() {
  using namespace hwf;

  const size_t n = bench::Scaled(200000);
  Pcg32 rng(13);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) k = rng.Next();

  // Rank query workload: running frame, rank of the current row's key.
  ThreadPool single(0);
  const std::vector<size_t> fanouts = {2, 4, 8, 16, 32, 64, 128, 256};
  const std::vector<size_t> samplings = {1,  2,  4,   8,   16,  32,
                                         64, 128, 256, 512, 1024};

  std::vector<std::vector<double>> seconds(
      fanouts.size(), std::vector<double>(samplings.size()));
  double best = 1e100;
  for (size_t fi = 0; fi < fanouts.size(); ++fi) {
    for (size_t ki = 0; ki < samplings.size(); ++ki) {
      MergeSortTreeOptions options;
      options.fanout = fanouts[fi];
      options.sampling = samplings[ki];
      bench::Timer timer;
      auto tree = MergeSortTree<uint32_t>::Build(keys, options, single);
      size_t checksum = 0;
      for (size_t i = 0; i < n; ++i) {
        checksum += tree.CountLess(0, i + 1, keys[i]);
      }
      seconds[fi][ki] = timer.Seconds();
      if (seconds[fi][ki] < best) best = seconds[fi][ki];
      volatile size_t sink = checksum;  // Defeat dead-code elimination.
      (void)sink;
    }
  }

  bench::PrintHeader(
      "Figure 13: windowed rank build+query time (relative to best), n = " +
      std::to_string(n) + ", single-threaded");
  std::printf("fanout\\k ");
  for (size_t k : samplings) std::printf("%7zu", k);
  std::printf("\n");
  for (size_t fi = 0; fi < fanouts.size(); ++fi) {
    std::printf("%-8zu ", fanouts[fi]);
    for (size_t ki = 0; ki < samplings.size(); ++ki) {
      std::printf("%7.2f", seconds[fi][ki] / best);
    }
    std::printf("\n");
  }

  // Memory consumption at the paper's two highlighted configurations.
  for (auto [f, k] : {std::pair<size_t, size_t>{16, 4}, {32, 32}}) {
    MergeSortTreeOptions options;
    options.fanout = f;
    options.sampling = k;
    auto tree = MergeSortTree<uint32_t>::Build(keys, options, single);
    std::printf("memory at f=%zu k=%zu: %.1f MB\n", f, k,
                static_cast<double>(tree.MemoryUsageBytes()) / 1e6);
  }
  return 0;
}
