// Figure 10: throughput of holistic window functions for increasing
// problem sizes, frame = 5% of the input. Four panels: median, rank,
// lead, distinct count. Engines per panel as in the paper (the order
// statistic tree competes on median/rank; the incremental algorithm on
// median and distinct count; naive everywhere).
//
// Expected shape: naive/incremental medians never become competitive; the
// order statistic tree is competitive at small inputs but falls behind as
// the frame approaches the task size; the merge sort tree scales to the
// largest inputs. (Absolute numbers differ from the paper — 1 core here
// vs. 20 — but the who-wins ordering at large n is preserved because the
// task-based rebuild penalty is independent of the worker count.)
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "storage/tpch_gen.h"
#include "window/executor.h"

namespace {

using namespace hwf;

struct Series {
  const char* name;
  WindowEngine engine;
  // Skip configurations whose naive-style cost n·frame exceeds this.
  double max_quadratic_work;
};

void RunPanel(const char* title, const WindowFunctionCall& call,
              const std::vector<Series>& series,
              const std::vector<size_t>& sizes, bench::BenchJson* json) {
  bench::PrintHeader(std::string("Figure 10 panel: ") + title +
                     " (frame = 5% of input)");
  std::printf("%-10s", "n");
  for (const Series& s : series) std::printf(" %22s", s.name);
  std::printf("   [M tuples/s]\n");
  for (size_t n : sizes) {
    Table lineitem = GenerateLineitem(n, /*seed=*/2);
    WindowSpec spec;
    spec.order_by = {SortKey{lineitem.MustColumnIndex("l_shipdate")}};
    const int64_t frame = std::max<int64_t>(1, static_cast<int64_t>(n) / 20);
    spec.frame.begin = FrameBound::Preceding(frame - 1);

    std::printf("%-10zu", n);
    for (const Series& s : series) {
      const double quadratic_work =
          static_cast<double>(n) * static_cast<double>(frame);
      if (quadratic_work > s.max_quadratic_work) {
        std::printf(" %22s", "-");
        continue;
      }
      WindowExecutorOptions options;
      options.engine = s.engine;
      obs::ExecutionProfile profile;
      const double mtps = bench::MeasureThroughput(lineitem, spec, call,
                                                   options, nullptr, &profile);
      std::printf(" %22.3f", mtps);
      std::fflush(stdout);
      json->Add(std::string(title) + "/" + s.name + "/n=" + std::to_string(n),
                mtps, &profile);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace hwf;

  std::vector<size_t> sizes;
  for (size_t n : {10000u, 30000u, 100000u, 1000000u}) {
    sizes.push_back(bench::Scaled(n));
  }
  const size_t price_col = 3;    // l_extendedprice
  const size_t partkey_col = 1;  // l_partkey
  bench::BenchJson json("fig10_input_size");

  // Cost caps keep the quadratic competitors within the time budget; the
  // paper's plots similarly stop showing them once they are off the chart.
  constexpr double kNaiveCap = 1.5e9;
  constexpr double kIncMedianCap = 2.5e9;
  constexpr double kAlways = 1e18;

  {
    WindowFunctionCall median;
    median.kind = WindowFunctionKind::kMedian;
    median.argument = price_col;
    RunPanel("median(l_extendedprice)", median,
             {{"merge sort tree", WindowEngine::kMergeSortTree, kAlways},
              {"order stat. tree", WindowEngine::kOrderStatisticTree, kAlways},
              {"incremental", WindowEngine::kIncremental, kIncMedianCap},
              {"naive", WindowEngine::kNaive, kNaiveCap}},
             sizes, &json);
  }
  {
    WindowFunctionCall rank;
    rank.kind = WindowFunctionKind::kRank;
    rank.order_by = {SortKey{price_col}};
    RunPanel("rank(order by l_extendedprice)", rank,
             {{"merge sort tree", WindowEngine::kMergeSortTree, kAlways},
              {"order stat. tree", WindowEngine::kOrderStatisticTree, kAlways},
              {"naive", WindowEngine::kNaive, kNaiveCap}},
             sizes, &json);
  }
  {
    WindowFunctionCall lead;
    lead.kind = WindowFunctionKind::kLead;
    lead.argument = price_col;
    lead.order_by = {SortKey{price_col}};
    lead.param = 1;
    RunPanel("lead(l_extendedprice order by l_extendedprice)", lead,
             {{"merge sort tree", WindowEngine::kMergeSortTree, kAlways},
              {"naive", WindowEngine::kNaive, kNaiveCap}},
             sizes, &json);
  }
  {
    WindowFunctionCall distinct;
    distinct.kind = WindowFunctionKind::kCountDistinct;
    distinct.argument = partkey_col;
    RunPanel("count(distinct l_partkey)", distinct,
             {{"merge sort tree", WindowEngine::kMergeSortTree, kAlways},
              {"incremental", WindowEngine::kIncremental, kAlways},
              {"naive", WindowEngine::kNaive, kNaiveCap}},
             sizes, &json);
  }
  json.WriteDefault();
  return 0;
}
