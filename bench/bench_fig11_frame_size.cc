// Figure 11: throughput of a framed median for increasing frame sizes.
//
//   median(l_extendedprice) over (order by l_shipdate
//     rows between SIZE preceding and current row)
//
// Expected shape: the merge sort tree is flat (frame-size independent);
// naive and incremental start competitive at tiny frames and collapse
// quickly (paper crossovers at 130 / 700 rows); the order statistic tree
// survives longer but loses once the frame approaches the 20 000-tuple
// task size; a single-threaded incremental ("DuckDB-like", one task,
// no thread pool) is shown for reference.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "storage/tpch_gen.h"
#include "window/executor.h"

int main() {
  using namespace hwf;

  const size_t n = bench::Scaled(300000);
  Table lineitem = GenerateLineitem(n, /*seed=*/3);
  const size_t price = lineitem.MustColumnIndex("l_extendedprice");
  const size_t shipdate = lineitem.MustColumnIndex("l_shipdate");

  std::vector<int64_t> frame_sizes = {1,    4,     16,    64,     256,  1024,
                                      4096, 16384, 65536, 262144};
  bench::PrintHeader("Figure 11: framed median vs frame size, n = " +
                     std::to_string(n));
  std::printf("%-10s %18s %18s %18s %18s %18s   [M tuples/s]\n", "frame",
              "merge sort tree", "order stat. tree", "incremental", "naive",
              "incr. 1-thread");

  WindowFunctionCall median;
  median.kind = WindowFunctionKind::kMedian;
  median.argument = price;

  for (int64_t frame : frame_sizes) {
    if (static_cast<size_t>(frame) > n) break;
    WindowSpec spec;
    spec.order_by = {SortKey{shipdate}};
    spec.frame.begin = FrameBound::Preceding(frame - 1);

    std::printf("%-10ld", frame);
    const double quadratic_work =
        static_cast<double>(n) * static_cast<double>(frame);

    auto run = [&](WindowEngine engine, double cap) {
      if (quadratic_work > cap) {
        std::printf(" %18s", "-");
        return;
      }
      WindowExecutorOptions options;
      options.engine = engine;
      std::printf(" %18.3f",
                  bench::MeasureThroughput(lineitem, spec, median, options));
      std::fflush(stdout);
    };
    run(WindowEngine::kMergeSortTree, 1e18);
    run(WindowEngine::kOrderStatisticTree, 1e18);
    run(WindowEngine::kIncremental, 2.5e9);
    run(WindowEngine::kNaive, 1.5e9);
    // Single-threaded, single-task incremental (no morsel rebuilds).
    if (quadratic_work > 2.5e9) {
      std::printf(" %18s", "-");
    } else {
      WindowExecutorOptions options;
      options.engine = WindowEngine::kIncremental;
      options.morsel_size = size_t{1} << 40;
      ThreadPool single(0);
      bench::Timer t;
      StatusOr<Column> result =
          EvaluateWindowFunction(lineitem, spec, median, options, single);
      HWF_CHECK(result.ok());
      std::printf(" %18.3f", static_cast<double>(n) / t.Seconds() / 1e6);
    }
    std::printf("\n");
  }

  // SQL's default frame: UNBOUNDED PRECEDING .. CURRENT ROW — frame size
  // grows to n; only the merge sort tree remains usable (§6.4).
  {
    WindowSpec spec;
    spec.order_by = {SortKey{shipdate}};
    WindowExecutorOptions options;
    std::printf("%-10s %18.3f %18s %18s %18s %18s\n", "UNBOUNDED",
                bench::MeasureThroughput(lineitem, spec, median, options),
                "-", "-", "-", "-");
  }
  return 0;
}
