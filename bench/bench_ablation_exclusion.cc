// Ablation: cost of frame-exclusion support (our extension of §4.7).
//
// Exclusion splits frames into up to three ranges. For count/rank/
// percentile queries the per-range decomposition is free; for DISTINCT
// aggregates a gap-walk correction re-discovers values whose only pre-gap
// occurrence hides inside the exclusion hole — O(hole size) per row, i.e.
// O(1) for EXCLUDE CURRENT ROW and O(peer group) for EXCLUDE GROUP/TIES.
#include <cstdio>

#include "bench/bench_util.h"
#include "storage/tpch_gen.h"
#include "window/executor.h"

int main() {
  using namespace hwf;

  const size_t n = bench::Scaled(300000);
  Table lineitem = GenerateLineitem(n, /*seed=*/61);
  // Use l_quantity (50 distinct values) as the frame order so that
  // EXCLUDE GROUP hits substantial peer groups, and l_partkey as the
  // distinct-counted column.
  const size_t quantity = lineitem.MustColumnIndex("l_quantity");
  const size_t shipdate = lineitem.MustColumnIndex("l_shipdate");
  const size_t partkey = lineitem.MustColumnIndex("l_partkey");

  bench::PrintHeader(
      "Ablation: exclusion-clause overhead, count(distinct l_partkey), n = " +
      std::to_string(n));
  std::printf("%-34s %12s %12s\n", "frame / exclusion", "time [s]",
              "vs baseline");

  double baseline = 0;
  struct Config {
    const char* name;
    size_t order_col;
    FrameExclusion exclusion;
  };
  const Config configs[] = {
      {"sliding, EXCLUDE NO OTHERS", shipdate, FrameExclusion::kNoOthers},
      {"sliding, EXCLUDE CURRENT ROW", shipdate, FrameExclusion::kCurrentRow},
      {"sliding, EXCLUDE GROUP (dates)", shipdate, FrameExclusion::kGroup},
      {"sliding, EXCLUDE TIES (dates)", shipdate, FrameExclusion::kTies},
      {"sliding, EXCLUDE GROUP (quantity)", quantity,
       FrameExclusion::kGroup},
  };
  for (const Config& config : configs) {
    WindowSpec spec;
    spec.order_by = {SortKey{config.order_col}};
    spec.frame.begin = FrameBound::Preceding(4999);
    spec.frame.end = FrameBound::Following(5000);
    spec.frame.exclusion = config.exclusion;
    WindowFunctionCall call;
    call.kind = WindowFunctionKind::kCountDistinct;
    call.argument = partkey;
    double seconds;
    bench::MeasureThroughput(lineitem, spec, call, {}, &seconds);
    if (baseline == 0) baseline = seconds;
    std::printf("%-34s %12.3f %11.2fx\n", config.name, seconds,
                seconds / baseline);
  }
  std::printf(
      "\nEXCLUDE CURRENT ROW costs a constant per row; GROUP/TIES cost\n"
      "grows with the peer-group size (the l_quantity ordering has ~%zu\n"
      "rows per peer group).\n",
      n / 50);
  return 0;
}
