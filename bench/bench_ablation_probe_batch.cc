// Ablation: the batched, prefetch-pipelined probe kernel (group-at-a-time
// Count/Select) against the scalar one-query-at-a-time descent.
//
// Workload: Figure 11's framed median at a large frame — the probe phase
// is all tree descents, each one a chain of dependent cache misses, so the
// group size directly controls how many independent misses the kernel
// keeps in flight. Expected shape: throughput climbs steeply from group
// size 1, saturates around the line-fill-buffer depth (10-16 on most
// cores), and stays flat after; probe_batch=0 (kernel off, the seed path)
// sets the baseline.
//
// Writes BENCH_probe_batch.json: one entry per group size with total
// throughput, probe-phase seconds, the probe-phase speedup over the scalar
// baseline, and the full phase profile.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/profile.h"
#include "storage/tpch_gen.h"
#include "window/executor.h"

int main() {
  using namespace hwf;

  const size_t n = bench::Scaled(size_t{1} << 22);
  Table lineitem = GenerateLineitem(n, /*seed=*/3);
  const size_t price = lineitem.MustColumnIndex("l_extendedprice");
  const size_t shipdate = lineitem.MustColumnIndex("l_shipdate");

  WindowSpec spec;
  spec.order_by = {SortKey{shipdate}};
  spec.frame.begin = FrameBound::Preceding(262143);

  WindowFunctionCall median;
  median.kind = WindowFunctionKind::kMedian;
  median.argument = price;

  bench::PrintHeader(
      "Ablation: probe batch size (framed median, 256Ki frame, n = " +
      std::to_string(n) + ")");
  std::printf("%-12s %14s %14s %14s %14s\n", "batch", "[M tuples/s]",
              "probe [s]", "probe speedup", "total speedup");

  bench::BenchJson json("probe_batch");
  const std::vector<size_t> batch_sizes = {0, 1, 2, 4, 8, 16, 32, 64, 128, 256};
  double scalar_probe = 0;
  double scalar_total = 0;
  for (const size_t batch : batch_sizes) {
    WindowExecutorOptions options;
    options.tree.probe_batch_size = batch;
    obs::ExecutionProfile profile;
    double seconds = 0;
    const double mtps = bench::MeasureThroughput(lineitem, spec, median,
                                                 options, &seconds, &profile);
    const double probe = profile.phase_seconds(obs::ProfilePhase::kProbe);
    if (batch == 0) {
      scalar_probe = probe;
      scalar_total = seconds;
    }
    const double probe_speedup = probe > 0 ? scalar_probe / probe : 0;
    std::printf("%-12zu %14.3f %14.3f %13.2fx %13.2fx\n", batch, mtps, probe,
                probe_speedup, seconds > 0 ? scalar_total / seconds : 0);
    std::fflush(stdout);

    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"label\": \"batch=%zu\", \"probe_batch\": %zu, "
                  "\"throughput_mtps\": %.4f, \"probe_seconds\": %.4f, "
                  "\"probe_speedup\": %.3f",
                  batch, batch, mtps, probe, probe_speedup);
    json.AddRaw(std::string(buf) + ", \"profile\": " + profile.ToJson() + "}");
  }
  json.WriteDefault();
  return 0;
}
