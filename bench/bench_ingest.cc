// Streaming-ingest benchmark: APPEND/UPSERT batch throughput into the
// catalog's delta buffer, warm probe latency as a function of resident
// delta size (the merged main+delta cursor against a cache-off cold
// rebuild), and the cost of folding the delta back into the base. Emits
// BENCH_ingest.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/random.h"
#include "obs/histogram.h"
#include "service/service.h"
#include "storage/column.h"
#include "storage/table.h"

namespace hwf {
namespace {

using service::QueryResult;
using service::QueryService;
using service::ServiceOptions;

Table MakeTable(size_t rows, uint64_t seed) {
  Pcg32 rng(seed);
  Column grp(DataType::kInt64);
  Column ord(DataType::kInt64);
  Column val(DataType::kInt64);
  Column price(DataType::kDouble);
  for (size_t i = 0; i < rows; ++i) {
    grp.AppendInt64(static_cast<int64_t>(rng.Bounded(4)));
    ord.AppendInt64(static_cast<int64_t>(rng.Bounded(1u << 20)));
    val.AppendInt64(static_cast<int64_t>(rng.Bounded(100000)));
    price.AppendDouble(rng.NextDouble() * 1000.0);
  }
  Table table;
  table.AddColumn("grp", std::move(grp));
  table.AddColumn("ord", std::move(ord));
  table.AddColumn("val", std::move(val));
  table.AddColumn("price", std::move(price));
  return table;
}

/// The probe workload: a holistic selection function, so the post-append
/// path runs through the merged main+delta cursor rather than a rebuild.
const char* kProbeSql =
    "select percentile_disc(0.5 order by val) over (order by ord rows "
    "between 300 preceding and current row) from t";

double MedianQuerySeconds(QueryService& svc, const std::string& sql,
                          size_t repeats, obs::HistogramSnapshot* snap_out) {
  obs::LatencyHistogram latency;
  for (size_t i = 0; i < repeats; ++i) {
    bench::Timer timer;
    StatusOr<QueryResult> result = svc.Query(sql);
    HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    latency.Record(static_cast<uint64_t>(timer.Seconds() * 1e6));
  }
  const obs::HistogramSnapshot snap = latency.Snapshot();
  if (snap_out != nullptr) *snap_out = snap;
  return snap.Quantile(0.5) * 1e-6;
}

}  // namespace
}  // namespace hwf

int main() {
  using namespace hwf;  // NOLINT

  const size_t kBaseRows = bench::Scaled(200000);
  const size_t kBatchRows = bench::Scaled(5000);
  const size_t kBatches = 20;
  const size_t kWarmRepeats = 12;
  bench::BenchJson json("ingest");

  // --- APPEND / UPSERT batch throughput ----------------------------------
  // O(batch) buffering into the delta: no re-sort, no tree rebuild, no
  // epoch churn. Throughput here is the wire-to-buffered rate.
  bench::PrintHeader("ingest throughput: rows/sec buffered per batch kind");
  std::printf("%-10s %10s %14s\n", "kind", "seconds", "Mrows/s");
  {
    ServiceOptions options;
    options.auto_compact = false;
    QueryService svc(options);
    svc.RegisterTable("t", MakeTable(kBaseRows, 42));
    std::vector<Table> batches;
    for (size_t b = 0; b < kBatches; ++b) {
      batches.push_back(MakeTable(kBatchRows, 100 + b));
    }
    bench::Timer timer;
    for (const Table& batch : batches) {
      StatusOr<service::Catalog::TableMeta> meta = svc.AppendRows("t", batch);
      HWF_CHECK_MSG(meta.ok(), meta.status().ToString().c_str());
    }
    const double seconds = timer.Seconds();
    const double mtps =
        static_cast<double>(kBatches * kBatchRows) / seconds / 1e6;
    std::printf("%-10s %10.4f %14.3f\n", "append", seconds, mtps);
    char entry[192];
    std::snprintf(entry, sizeof entry,
                  "{\"label\": \"append\", \"rows\": %zu, \"batches\": %zu, "
                  "\"seconds\": %.4f, \"throughput_mtps\": %.4f}",
                  kBatches * kBatchRows, kBatches, seconds, mtps);
    json.AddRaw(entry);
  }
  {
    // Keyed upsert against a table whose keys all collide: every row is an
    // in-place rewrite through the key index (the worst case).
    ServiceOptions options;
    options.auto_compact = false;
    QueryService svc(options);
    const size_t rows = kBaseRows / 2;
    Pcg32 rng(7);
    auto keyed = [&](uint64_t seed) {
      Pcg32 r(seed);
      Column k(DataType::kInt64);
      Column v(DataType::kInt64);
      for (size_t i = 0; i < rows; ++i) {
        k.AppendInt64(static_cast<int64_t>(i));
        v.AppendInt64(static_cast<int64_t>(r.Bounded(100000)));
      }
      Table t;
      t.AddColumn("k", std::move(k));
      t.AddColumn("v", std::move(v));
      return t;
    };
    (void)rng;
    StatusOr<uint64_t> epoch = svc.RegisterTable("u", keyed(1), "k");
    HWF_CHECK_MSG(epoch.ok(), epoch.status().ToString().c_str());
    Table rewrite = keyed(2);
    bench::Timer timer;
    StatusOr<service::Catalog::TableMeta> meta = svc.UpsertRows("u", rewrite);
    const double seconds = timer.Seconds();
    HWF_CHECK_MSG(meta.ok(), meta.status().ToString().c_str());
    const double mtps = static_cast<double>(rows) / seconds / 1e6;
    std::printf("%-10s %10.4f %14.3f\n", "upsert", seconds, mtps);
    char entry[160];
    std::snprintf(entry, sizeof entry,
                  "{\"label\": \"upsert_rewrite\", \"rows\": %zu, "
                  "\"seconds\": %.4f, \"throughput_mtps\": %.4f}",
                  rows, seconds, mtps);
    json.AddRaw(entry);
  }

  // --- probe latency vs resident delta size -------------------------------
  // Two numbers per delta size. `first` is the first post-append query:
  // rebuild-free by design (delta tree + merged cursor instead of an
  // O(n log n) re-sort/rebuild), but its scalar O(log^2) selects cost more
  // per row than the batched kernel. `p50` is the steady state after the
  // cursor's crossover policy rebuilt the combined tree — it should sit on
  // top of the delta-free baseline, proving repeat-heavy workloads
  // re-amortize to full batched-kernel speed.
  bench::PrintHeader("probe latency vs delta size (merged cursor)");
  std::printf("%-18s %10s %14s %14s\n", "delta", "rows", "first s",
              "steady p50 s");
  double p50_base = 0;
  double p50_mid = 0;
  for (const double frac : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    ServiceOptions options;
    options.auto_compact = false;
    QueryService svc(options);
    svc.RegisterTable("t", MakeTable(kBaseRows, 42));
    // Warm the base-state artifacts, then land the delta.
    HWF_CHECK_MSG(svc.Query(kProbeSql).ok(), "warm-up query failed");
    const size_t delta_rows = static_cast<size_t>(
        static_cast<double>(kBaseRows) * frac);
    double first_seconds = 0;
    if (delta_rows > 0) {
      StatusOr<service::Catalog::TableMeta> meta =
          svc.AppendRows("t", MakeTable(delta_rows, 999));
      HWF_CHECK_MSG(meta.ok(), meta.status().ToString().c_str());
      bench::Timer first;
      HWF_CHECK_MSG(svc.Query(kProbeSql).ok(), "merge query failed");
      first_seconds = first.Seconds();
    }
    obs::HistogramSnapshot snap;
    const double p50 = MedianQuerySeconds(svc, kProbeSql, kWarmRepeats, &snap);
    if (frac == 0.0) p50_base = p50;
    if (frac == 0.05) p50_mid = p50;
    char label[48];
    std::snprintf(label, sizeof label, "probe_delta=%.2f", frac);
    std::printf("%-18s %10zu %14.6f %14.6f\n", label, delta_rows,
                first_seconds, p50);
    char entry[256];
    std::snprintf(entry, sizeof entry,
                  "{\"label\": \"%s\", \"delta_rows\": %zu, "
                  "\"first_seconds\": %.6f, \"seconds\": %.6f, "
                  "\"latency\": ",
                  label, delta_rows, first_seconds, p50);
    json.AddRaw(std::string(entry) +
                bench::HistogramQuantilesJson(snap, 1e-6) + "}");
  }
  // Hardware-independent gate: steady-state warm probes with a 5% delta vs
  // none. The crossover policy must pin this near 1.0 — regressions here
  // mean appended state is still paying merged-cursor (or worse, rebuild)
  // costs on every repeat query.
  {
    const double ratio = p50_base > 0 ? p50_mid / p50_base : 1.0;
    std::printf("steady-state overhead ratio (5%% / none) %.4f\n", ratio);
    char entry[96];
    std::snprintf(entry, sizeof entry,
                  "{\"label\": \"merged_probe_overhead\", \"ratio\": %.4f}",
                  ratio);
    json.AddRaw(entry);
  }

  // --- comparator: the same delta with the cache off (cold rebuild) -------
  {
    ServiceOptions options;
    options.auto_compact = false;
    options.enable_cache = false;
    QueryService svc(options);
    svc.RegisterTable("t", MakeTable(kBaseRows, 42));
    const size_t delta_rows = kBaseRows / 20;
    HWF_CHECK_MSG(svc.AppendRows("t", MakeTable(delta_rows, 999)).ok(),
                  "append failed");
    obs::HistogramSnapshot snap;
    const double p50 =
        MedianQuerySeconds(svc, kProbeSql, kWarmRepeats / 2 + 1, &snap);
    std::printf("cold rebuild (cache off, 5%% delta) p50 %.6f s\n", p50);
    char entry[160];
    std::snprintf(entry, sizeof entry,
                  "{\"label\": \"cold_rebuild_delta=0.05\", "
                  "\"delta_rows\": %zu, \"seconds\": %.6f}",
                  delta_rows, p50);
    json.AddRaw(entry);
  }

  // --- compaction cost -----------------------------------------------------
  bench::PrintHeader("compaction: folding a 10% delta into the base");
  {
    ServiceOptions options;
    options.auto_compact = false;
    QueryService svc(options);
    svc.RegisterTable("t", MakeTable(kBaseRows, 42));
    HWF_CHECK_MSG(svc.AppendRows("t", MakeTable(kBaseRows / 10, 999)).ok(),
                  "append failed");
    // Materialization happens on first lookup; include it by querying once
    // so the timed section is the fold alone.
    HWF_CHECK_MSG(svc.Query(kProbeSql).ok(), "pre-compaction query failed");
    bench::Timer timer;
    StatusOr<service::Catalog::TableMeta> meta = svc.CompactTable("t");
    const double seconds = timer.Seconds();
    HWF_CHECK_MSG(meta.ok(), meta.status().ToString().c_str());
    std::printf("compacted %zu rows in %.4f s\n", meta->base_rows, seconds);
    char entry[128];
    std::snprintf(entry, sizeof entry,
                  "{\"label\": \"compact_delta=0.10\", \"rows\": %zu, "
                  "\"seconds\": %.4f}",
                  meta->base_rows, seconds);
    json.AddRaw(entry);
  }

  json.WriteDefault();
  return 0;
}
