// Service-level throughput: queries/sec through the concurrent query
// service as a function of session count, with the cross-query tree cache
// on and off, plus the cold/warm latency split that shows a cache hit is
// probe-only. Emits BENCH_service.json.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/random.h"
#include "service/service.h"
#include "storage/column.h"
#include "storage/table.h"

namespace hwf {
namespace {

using service::QueryResult;
using service::QueryService;
using service::ServiceOptions;

Table MakeTable(size_t rows) {
  Pcg32 rng(42);
  Column grp(DataType::kInt64);
  Column ord(DataType::kInt64);
  Column val(DataType::kInt64);
  Column price(DataType::kDouble);
  for (size_t i = 0; i < rows; ++i) {
    grp.AppendInt64(static_cast<int64_t>(rng.Bounded(4)));
    ord.AppendInt64(static_cast<int64_t>(rng.Bounded(1u << 20)));
    val.AppendInt64(static_cast<int64_t>(rng.Bounded(100000)));
    price.AppendDouble(rng.NextDouble() * 1000.0);
  }
  Table table;
  table.AddColumn("grp", std::move(grp));
  table.AddColumn("ord", std::move(ord));
  table.AddColumn("val", std::move(val));
  table.AddColumn("price", std::move(price));
  return table;
}

/// A mix of holistic and distributive queries over a few distinct specs,
/// so concurrent sessions contend for (and share) cached build artifacts.
std::vector<std::string> QueryMix() {
  return {
      "select median(price) over (order by ord rows between 200 preceding "
      "and current row) from t",
      "select sum(val) over (partition by grp order by ord rows between 100 "
      "preceding and 100 following) from t",
      "select count(distinct val) over (order by ord rows between 150 "
      "preceding and current row) from t",
      "select rank() over (partition by grp order by ord groups between 50 "
      "preceding and 50 following) from t",
      "select percentile_disc(0.9 order by price) over (order by ord rows "
      "between 300 preceding and current row) from t",
  };
}

/// Fires `total` queries round-robin from `clients` threads; returns
/// elapsed seconds. Every query must succeed.
double RunWave(QueryService& svc, const std::vector<std::string>& queries,
               size_t clients, size_t total) {
  bench::Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t q = c; q < total; q += clients) {
        StatusOr<QueryResult> result = svc.Query(queries[q % queries.size()]);
        HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return timer.Seconds();
}

}  // namespace
}  // namespace hwf

int main() {
  using namespace hwf;  // NOLINT

  const size_t kRows = bench::Scaled(120000);
  const size_t kQueriesPerConfig = bench::Scaled(40);
  const std::vector<std::string> queries = QueryMix();
  bench::BenchJson json("service");

  bench::PrintHeader("service throughput: queries/sec vs sessions");
  std::printf("%-10s %-8s %10s %12s\n", "sessions", "cache", "seconds",
              "queries/s");
  for (bool cache_on : {false, true}) {
    for (size_t sessions : {1, 2, 4, 8}) {
      ServiceOptions options;
      options.num_sessions = sessions;
      options.max_queued = kQueriesPerConfig + sessions;
      options.enable_cache = cache_on;
      QueryService svc(options);
      svc.RegisterTable("t", MakeTable(kRows));
      // Warm-up wave: primes the cache (when on) and faults the table in,
      // so the measured wave reflects steady-state serving.
      RunWave(svc, queries, sessions, queries.size());
      const double seconds =
          RunWave(svc, queries, sessions, kQueriesPerConfig);
      const double qps = static_cast<double>(kQueriesPerConfig) / seconds;
      std::printf("%-10zu %-8s %10.3f %12.1f\n", sessions,
                  cache_on ? "on" : "off", seconds, qps);
      char entry[256];
      std::snprintf(entry, sizeof entry,
                    "{\"label\": \"sessions=%zu cache=%s\", "
                    "\"sessions\": %zu, \"cache\": %s, \"queries\": %zu, "
                    "\"seconds\": %.4f, \"qps\": %.2f}",
                    sessions, cache_on ? "on" : "off", sessions,
                    cache_on ? "true" : "false", kQueriesPerConfig, seconds,
                    qps);
      json.AddRaw(entry);
    }
  }

  // Telemetry overhead A/B: per-query warm latency with the telemetry
  // record path on vs off. The ratio entry is hardware-independent, so the
  // regression gate can hold it to a tight band; the acceptance criterion
  // is "no measurable warm-latency regression".
  bench::PrintHeader("telemetry overhead: warm latency on vs off");
  {
    const size_t kWarmQueries = bench::Scaled(60);
    double p50_seconds[2] = {0, 0};
    for (const bool telemetry_on : {true, false}) {
      ServiceOptions options;
      options.num_sessions = 1;
      options.max_queued = 4;
      options.enable_telemetry = telemetry_on;
      QueryService svc(options);
      svc.RegisterTable("t", MakeTable(kRows));
      RunWave(svc, queries, 1, queries.size());  // warm the cache
      obs::LatencyHistogram latency;
      for (size_t q = 0; q < kWarmQueries; ++q) {
        bench::Timer timer;
        StatusOr<QueryResult> result =
            svc.Query(queries[q % queries.size()]);
        HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
        latency.Record(static_cast<uint64_t>(timer.Seconds() * 1e6));
      }
      const obs::HistogramSnapshot snap = latency.Snapshot();
      p50_seconds[telemetry_on ? 0 : 1] = snap.Quantile(0.5) * 1e-6;
      std::printf("telemetry=%-4s p50 %.6f s  p99 %.6f s\n",
                  telemetry_on ? "on" : "off", snap.Quantile(0.5) * 1e-6,
                  snap.Quantile(0.99) * 1e-6);
      char entry[160];
      std::snprintf(entry, sizeof entry,
                    "{\"label\": \"warm_telemetry_%s\", \"queries\": %zu, "
                    "\"p50_seconds\": %.6f, \"latency\": ",
                    telemetry_on ? "on" : "off", kWarmQueries,
                    snap.Quantile(0.5) * 1e-6);
      json.AddRaw(std::string(entry) +
                  bench::HistogramQuantilesJson(snap, 1e-6) + "}");
    }
    const double ratio =
        p50_seconds[1] > 0 ? p50_seconds[0] / p50_seconds[1] : 1.0;
    std::printf("overhead ratio (on/off) %.4f\n", ratio);
    char entry[96];
    std::snprintf(entry, sizeof entry,
                  "{\"label\": \"telemetry_overhead\", \"ratio\": %.4f}",
                  ratio);
    json.AddRaw(entry);
  }

  // Cold vs warm latency for one repeated query: the warm run's profile
  // must show no sort and no tree build — a cache hit is probe-only.
  bench::PrintHeader("repeated-query latency: cold build vs cached probe");
  {
    QueryService svc;
    svc.RegisterTable("t", MakeTable(kRows));
    const std::string& sql = queries[0];
    const char* labels[2] = {"repeat_cold", "repeat_warm"};
    for (int run = 0; run < 2; ++run) {
      bench::Timer timer;
      StatusOr<QueryResult> result = svc.Query(sql);
      const double seconds = timer.Seconds();
      HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
      std::printf("%-12s %8.4f s  (sort %.4f s, build %.4f s, probe %.4f s)\n",
                  labels[run], seconds,
                  result->profile->phase_seconds(obs::ProfilePhase::kSort),
                  result->profile->phase_seconds(obs::ProfilePhase::kTreeBuild),
                  result->profile->phase_seconds(obs::ProfilePhase::kProbe));
      char entry[192];
      std::snprintf(entry, sizeof entry,
                    "{\"label\": \"%s\", \"seconds\": %.4f, \"profile\": ",
                    labels[run], seconds);
      json.AddRaw(std::string(entry) + result->profile->ToJson() + "}");
    }
  }

  json.WriteDefault();
  return 0;
}
