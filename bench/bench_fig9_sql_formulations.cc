// Figure 9: throughput of a framed median on a tiny (20 000 tuple) data
// set — native support vs. the traditional SQL formulations.
//
//   select percentile_disc(0.5 order by l_extendedprice)
//     over (order by l_shipdate rows between 999 preceding and current row)
//   from lineitem
//
// Series (paper → here):
//   PostgreSQL/DuckDB/Hyper self-join        → nested-loop self-join plan
//   PostgreSQL/DuckDB/Hyper corr. subquery   → correlated-subquery plan
//   Tableau client-side                      → single-threaded incremental
//   Hyper naive                              → kNaive engine
//   Hyper merge sort tree                    → kMergeSortTree engine
//
// Expected shape: both SQL plans are orders of magnitude slower; even the
// naive native algorithm beats them; the merge sort tree wins overall
// (paper: naive 3× over best SQL, MST 63×).
#include <cstdio>

#include "baselines/sql_rewrite.h"
#include "bench/bench_util.h"
#include "storage/tpch_gen.h"
#include "window/executor.h"

int main() {
  using namespace hwf;
  using bench::Timer;

  const size_t n = bench::Scaled(20000);
  Table lineitem = GenerateLineitem(n, /*seed=*/1);
  const size_t price = lineitem.MustColumnIndex("l_extendedprice");
  const size_t shipdate = lineitem.MustColumnIndex("l_shipdate");
  const int64_t kPreceding = 999;

  bench::PrintHeader("Figure 9: framed median, " + std::to_string(n) +
                     " tuples, ROWS BETWEEN 999 PRECEDING AND CURRENT ROW");
  std::printf("%-34s %12s %14s\n", "approach", "time [s]", "tuples/s");
  std::printf("%-34s %12s %14s\n", "--------", "--------", "--------");

  auto report = [&](const char* name, double seconds) {
    std::printf("%-34s %12.3f %14.0f\n", name, seconds,
                static_cast<double>(n) / seconds);
  };

  {
    Timer t;
    Column result = SelfJoinFramedMedian(lineitem, price, shipdate, kPreceding);
    report("SQL rewrite: self-join", t.Seconds());
  }
  {
    Timer t;
    Column result =
        CorrelatedSubqueryFramedMedian(lineitem, price, shipdate, kPreceding);
    report("SQL rewrite: correlated subquery", t.Seconds());
  }

  WindowSpec spec;
  spec.order_by = {SortKey{shipdate}};
  spec.frame.begin = FrameBound::Preceding(kPreceding);
  WindowFunctionCall median;
  median.kind = WindowFunctionKind::kMedian;
  median.argument = price;

  {
    // "Tableau client-side": the incremental algorithm, single-threaded,
    // one task (no morsel parallelism).
    WindowExecutorOptions options;
    options.engine = WindowEngine::kIncremental;
    options.morsel_size = size_t{1} << 40;
    ThreadPool single(0);
    Timer t;
    StatusOr<Column> result =
        EvaluateWindowFunction(lineitem, spec, median, options, single);
    HWF_CHECK(result.ok());
    report("client-side incremental (Tableau)", t.Seconds());
  }
  {
    WindowExecutorOptions options;
    options.engine = WindowEngine::kNaive;
    double seconds;
    bench::MeasureThroughput(lineitem, spec, median, options, &seconds);
    report("native: naive algorithm", seconds);
  }
  {
    WindowExecutorOptions options;
    options.engine = WindowEngine::kMergeSortTree;
    double seconds;
    bench::MeasureThroughput(lineitem, spec, median, options, &seconds);
    report("native: merge sort tree", seconds);
  }
  return 0;
}
