#ifndef HWF_BENCH_BENCH_UTIL_H_
#define HWF_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/macros.h"
#include "storage/table.h"
#include "window/executor.h"

namespace hwf {
namespace bench {

/// Wall-clock timer.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Global size multiplier: HWF_BENCH_SCALE=2 doubles every problem size,
/// =0.25 shrinks for smoke runs. Default 1.
inline double Scale() {
  if (const char* env = std::getenv("HWF_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 1.0;
}

inline size_t Scaled(size_t n) {
  return static_cast<size_t>(static_cast<double>(n) * Scale());
}

/// Times one full window evaluation; returns throughput in M tuples/s.
inline double MeasureThroughput(const Table& table, const WindowSpec& spec,
                                const WindowFunctionCall& call,
                                const WindowExecutorOptions& options,
                                double* seconds_out = nullptr) {
  Timer timer;
  StatusOr<Column> result = EvaluateWindowFunction(table, spec, call, options);
  const double seconds = timer.Seconds();
  HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  if (seconds_out != nullptr) *seconds_out = seconds;
  return static_cast<double>(table.num_rows()) / seconds / 1e6;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace bench
}  // namespace hwf

#endif  // HWF_BENCH_BENCH_UTIL_H_
