#ifndef HWF_BENCH_BENCH_UTIL_H_
#define HWF_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "obs/histogram.h"
#include "obs/profile.h"
#include "storage/table.h"
#include "window/executor.h"

namespace hwf {
namespace bench {

/// Wall-clock timer.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Global size multiplier: HWF_BENCH_SCALE=2 doubles every problem size,
/// =0.25 shrinks for smoke runs. Default 1.
inline double Scale() {
  if (const char* env = std::getenv("HWF_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 1.0;
}

inline size_t Scaled(size_t n) {
  return static_cast<size_t>(static_cast<double>(n) * Scale());
}

/// Times one full window evaluation; returns throughput in M tuples/s.
/// When `profile` is non-null it is attached to the run via
/// WindowExecutorOptions::profile, so the caller gets the phase breakdown
/// of exactly the measured execution.
inline double MeasureThroughput(const Table& table, const WindowSpec& spec,
                                const WindowFunctionCall& call,
                                const WindowExecutorOptions& options,
                                double* seconds_out = nullptr,
                                obs::ExecutionProfile* profile = nullptr) {
  WindowExecutorOptions run_options = options;
  if (profile != nullptr) run_options.profile = profile;
  Timer timer;
  StatusOr<Column> result =
      EvaluateWindowFunction(table, spec, call, run_options);
  const double seconds = timer.Seconds();
  HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  if (seconds_out != nullptr) *seconds_out = seconds;
  return static_cast<double>(table.num_rows()) / seconds / 1e6;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Serializes a latency-histogram snapshot as one JSON object with the
/// standard quantiles. Recorded values are multiplied by `scale` (e.g.
/// 1e-6 when the histogram holds microseconds and the JSON wants seconds).
inline std::string HistogramQuantilesJson(const obs::HistogramSnapshot& snap,
                                          double scale) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"count\": %llu, \"p50\": %.6f, \"p90\": %.6f, "
                "\"p99\": %.6f, \"p999\": %.6f, \"mean\": %.6f}",
                static_cast<unsigned long long>(snap.count),
                snap.Quantile(0.5) * scale, snap.Quantile(0.9) * scale,
                snap.Quantile(0.99) * scale, snap.Quantile(0.999) * scale,
                snap.Mean() * scale);
  return buf;
}

/// Unified BENCH_*.json emission: every figure benchmark that records
/// machine-readable results goes through this writer, and per-measurement
/// phase breakdowns use ExecutionProfile::ToJson() — one schema for every
/// benchmark instead of bespoke JSON assembly per file.
///
/// File schema:
///   {"bench": <name>, "scale": <HWF_BENCH_SCALE>,
///    "entries": [{"label": ..., <metrics...>, "profile": {...}}, ...]}
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Appends one measurement. `profile` may be null (entry without a phase
  /// breakdown); `throughput_mtps` < 0 omits the throughput field.
  void Add(const std::string& label, double throughput_mtps,
           const obs::ExecutionProfile* profile) {
    std::string entry = "{\"label\": \"" + label + "\"";
    if (throughput_mtps >= 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4f", throughput_mtps);
      entry += std::string(", \"throughput_mtps\": ") + buf;
    }
    if (profile != nullptr) {
      entry += ", \"profile\": " + profile->ToJson();
    }
    entry += "}";
    entries_.push_back(std::move(entry));
  }

  /// Appends one pre-serialized JSON object (for benchmark-specific fields
  /// that do not fit the label/throughput/profile shape).
  void AddRaw(std::string json_object) {
    entries_.push_back(std::move(json_object));
  }

  /// Writes the file; returns false (and logs) on failure. The
  /// conventional path is "BENCH_<name>.json" in the working directory.
  bool WriteFile(const std::string& path) const {
    std::string body = "{\"bench\": \"" + bench_name_ + "\"";
    char scale[32];
    std::snprintf(scale, sizeof scale, "%.3f", Scale());
    body += std::string(", \"scale\": ") + scale + ",\n \"entries\": [";
    for (size_t i = 0; i < entries_.size(); ++i) {
      body += (i == 0 ? "\n  " : ",\n  ") + entries_[i];
    }
    body += "\n]}\n";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "failed to open %s\n", path.c_str());
      return false;
    }
    std::fwrite(body.data(), 1, body.size(), file);
    std::fclose(file);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    return true;
  }

  bool WriteDefault() const {
    return WriteFile("BENCH_" + bench_name_ + ".json");
  }

 private:
  std::string bench_name_;
  std::vector<std::string> entries_;
};

}  // namespace bench
}  // namespace hwf

#endif  // HWF_BENCH_BENCH_UTIL_H_
