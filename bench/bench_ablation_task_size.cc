// Ablation: the task-based-parallelism penalty of incremental algorithms
// (§3.2). Every task starts from an empty aggregation state and rebuilds
// its first frame from scratch, so the duplicated work grows as tasks
// shrink — this is what pushes incremental algorithms back to O(n²) under
// task-based parallelism. The merge sort tree is task-size-insensitive:
// its index is shared read-only across tasks.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "storage/tpch_gen.h"
#include "window/executor.h"

int main() {
  using namespace hwf;

  const size_t n = bench::Scaled(200000);
  const int64_t frame = 20000;
  Table lineitem = GenerateLineitem(n, /*seed=*/51);
  WindowSpec spec;
  spec.order_by = {SortKey{lineitem.MustColumnIndex("l_shipdate")}};
  spec.frame.begin = FrameBound::Preceding(frame - 1);
  WindowFunctionCall distinct;
  distinct.kind = WindowFunctionKind::kCountDistinct;
  distinct.argument = lineitem.MustColumnIndex("l_partkey");

  bench::PrintHeader(
      "Ablation: task (morsel) size vs incremental rebuild overhead, n = " +
      std::to_string(n) + ", frame = " + std::to_string(frame));
  std::printf("%-12s %18s %18s\n", "task size", "incremental [s]",
              "merge sort tree [s]");
  for (size_t morsel : {1000u, 4000u, 20000u, 100000u, 1000000u}) {
    WindowExecutorOptions options;
    options.morsel_size = morsel;
    options.engine = WindowEngine::kIncremental;
    double inc_seconds;
    bench::MeasureThroughput(lineitem, spec, distinct, options, &inc_seconds);
    options.engine = WindowEngine::kMergeSortTree;
    double mst_seconds;
    bench::MeasureThroughput(lineitem, spec, distinct, options, &mst_seconds);
    std::printf("%-12zu %18.3f %18.3f\n", morsel, inc_seconds, mst_seconds);
  }
  std::printf(
      "\nSmaller tasks mean more frame rebuilds for the incremental\n"
      "algorithm; the merge sort tree's cost is flat.\n");
  return 0;
}
