// Ablation: 2-way vs 3-way quicksort partitioning (§5.3). Framed distinct
// counts feed the sorter arrays where most entries are 0 (first
// occurrences in prevIdcs). A Lomuto-style 2-way partition degenerates on
// such duplicate-heavy inputs — inside introsort, the depth budget
// converts the O(n²) into a heapsort fallback, still several times slower
// than the 3-way Dutch-national-flag partition that handles the duplicate
// run in one linear pass.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "parallel/introsort.h"

namespace {

using namespace hwf;

std::vector<uint32_t> MakeInput(size_t n, double zero_fraction,
                                uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint32_t> data(n);
  for (auto& v : data) {
    v = rng.NextDouble() < zero_fraction ? 0 : rng.Next();
  }
  return data;
}

double TimeSort(std::vector<uint32_t> data, PartitionScheme scheme) {
  bench::Timer timer;
  Introsort(data.begin(), data.end(), std::less<uint32_t>(), scheme);
  return timer.Seconds();
}

}  // namespace

int main() {
  using namespace hwf;

  const size_t n = bench::Scaled(1000000);
  bench::PrintHeader("Ablation: quicksort partitioning scheme, n = " +
                     std::to_string(n));
  std::printf("%-34s %12s %12s %9s\n", "input", "2-way [s]", "3-way [s]",
              "slowdown");
  struct Case {
    const char* name;
    double zero_fraction;
  };
  for (const Case& c :
       {Case{"uniform random (few duplicates)", 0.0},
        Case{"50% zeros", 0.5},
        Case{"90% zeros (distinct-count-like)", 0.9},
        Case{"99% zeros", 0.99}}) {
    std::vector<uint32_t> data = MakeInput(n, c.zero_fraction, 31);
    const double two = TimeSort(data, PartitionScheme::kTwoWay);
    const double three = TimeSort(data, PartitionScheme::kThreeWay);
    std::printf("%-34s %12.3f %12.3f %8.2fx\n", c.name, two, three,
                two / three);
  }
  std::printf(
      "\nFramed distinct counts on near-unique columns produce prevIdcs\n"
      "arrays that are almost all zeros — the bottom rows are the inputs\n"
      "that motivated Hyper's switch to 3-way partitioning.\n");
  return 0;
}
