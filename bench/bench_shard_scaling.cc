// Scatter/gather scaling: queries/sec through the coordinator as a
// function of worker count (1, 2, 4 workers on loopback TCP), over
// holistic window queries that cover the shard key. The fleet runs
// in-process — each worker is a full QueryService behind the real wire
// protocol on its own socket, so the measurement includes CSV
// serialization, the network hop and the gather merge, and the workers'
// subqueries execute concurrently on separate cores exactly as a
// multi-host fleet would. Emits BENCH_shard.json with a 1->4 worker
// qps ratio entry (lower is better; 0.625 = the 1.6x scaling target).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/random.h"
#include "dist/coordinator.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "service/tcp_server.h"
#include "storage/column.h"
#include "storage/table.h"

namespace hwf {
namespace {

using dist::Coordinator;
using dist::CoordinatorOptions;
using service::QueryService;
using service::TcpServer;

/// Shard-key cardinality well above the largest fleet so the hash split
/// stays balanced.
constexpr int kGroups = 64;

Table MakeTable(size_t rows) {
  Pcg32 rng(42);
  Column grp(DataType::kInt64);
  Column ord(DataType::kInt64);
  Column val(DataType::kInt64);
  Column price(DataType::kDouble);
  for (size_t i = 0; i < rows; ++i) {
    grp.AppendInt64(static_cast<int64_t>(rng.Bounded(kGroups)));
    ord.AppendInt64(static_cast<int64_t>(rng.Bounded(1u << 20)));
    val.AppendInt64(static_cast<int64_t>(rng.Bounded(100000)));
    price.AppendDouble(rng.NextDouble() * 1000.0);
  }
  Table table;
  table.AddColumn("grp", std::move(grp));
  table.AddColumn("ord", std::move(ord));
  table.AddColumn("val", std::move(val));
  table.AddColumn("price", std::move(price));
  return table;
}

/// Holistic-heavy mix, every spec partitioned by the shard key so the
/// whole wave scatters.
std::vector<std::string> QueryMix() {
  return {
      "select median(price) over (partition by grp order by ord rows "
      "between 200 preceding and current row) from t",
      "select count(distinct val) over (partition by grp order by ord rows "
      "between 150 preceding and current row) from t",
      "select percentile_disc(0.9 order by price) over (partition by grp "
      "order by ord rows between 300 preceding and current row) from t",
      "select sum(val) over (partition by grp order by ord rows between "
      "100 preceding and 100 following) from t",
  };
}

service::ServiceOptions WorkerOptions(ThreadPool* pool) {
  service::ServiceOptions options;
  options.pool = pool;
  return options;
}

struct Worker {
  /// Each worker gets a fixed one-thread compute slice, modeling a fleet
  /// of identical single-core hosts: adding workers adds capacity. (With
  /// the default shared pool, one worker's morsel parallelism already
  /// saturates the machine and the sweep measures nothing.)
  ThreadPool pool{1};
  QueryService svc;
  obs::MetricsRegistry registry;
  std::unique_ptr<TcpServer> server;
  int port = 0;

  Worker() : svc(WorkerOptions(&pool)) {
    server = std::make_unique<TcpServer>([this](int fd) {
      service::ServeServiceConnection(fd, &svc, &registry);
    });
    StatusOr<int> bound = server->Listen(0);
    HWF_CHECK_MSG(bound.ok(), bound.status().ToString().c_str());
    port = *bound;
    server->Start();
  }
  ~Worker() { server->Stop(); }
};

/// One fleet size end-to-end: spin up `num_workers` workers, register the
/// sharded table through a coordinator, run the query mix `rounds` times
/// sequentially, return qps.
double RunFleet(size_t num_workers, const Table& table, size_t rounds,
                double* seconds_out, size_t* queries_out) {
  std::vector<std::unique_ptr<Worker>> workers;
  CoordinatorOptions options;
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(std::make_unique<Worker>());
    options.workers.push_back("127.0.0.1:" +
                              std::to_string(workers.back()->port));
  }
  Coordinator coordinator(std::move(options));
  Status registered = coordinator.RegisterTable("t", table, {"grp"});
  HWF_CHECK_MSG(registered.ok(), registered.ToString().c_str());

  const std::vector<std::string> queries = QueryMix();
  // One untimed warmup wave builds every worker's sort/tree artifacts, so
  // the measured waves compare steady-state scatter latency.
  for (const std::string& sql : queries) {
    StatusOr<dist::CoordinatorQueryResult> result = coordinator.Query(sql);
    HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    HWF_CHECK(result->regime ==
              "scatter(" + std::to_string(num_workers) + ")");
  }

  const size_t total = rounds * queries.size();
  bench::Timer timer;
  for (size_t q = 0; q < total; ++q) {
    StatusOr<dist::CoordinatorQueryResult> result =
        coordinator.Query(queries[q % queries.size()]);
    HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  }
  const double seconds = timer.Seconds();
  *seconds_out = seconds;
  *queries_out = total;
  return static_cast<double>(total) / seconds;
}

}  // namespace
}  // namespace hwf

int main() {
  using namespace hwf;

  const size_t kRows = bench::Scaled(120000);
  const size_t kRounds = 3;
  const Table table = MakeTable(kRows);

  bench::BenchJson json("shard");
  bench::PrintHeader("scatter/gather qps vs worker count");
  std::printf("%zu rows, shard key grp (%d groups), %zu queries/wave\n",
              table.num_rows(), kGroups, QueryMix().size() * kRounds);

  double qps_by_workers[3] = {0, 0, 0};
  const size_t fleet_sizes[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    double seconds = 0;
    size_t queries = 0;
    qps_by_workers[i] =
        RunFleet(fleet_sizes[i], table, kRounds, &seconds, &queries);
    std::printf("workers=%zu  %6.3f s  %8.2f qps\n", fleet_sizes[i], seconds,
                qps_by_workers[i]);
    char entry[160];
    std::snprintf(entry, sizeof entry,
                  "{\"label\": \"workers=%zu\", \"workers\": %zu, "
                  "\"queries\": %zu, \"seconds\": %.4f, \"qps\": %.2f}",
                  fleet_sizes[i], fleet_sizes[i], queries, seconds,
                  qps_by_workers[i]);
    json.AddRaw(entry);
  }

  // The scaling gate: qps(1 worker) / qps(4 workers). Lower is better;
  // 0.625 corresponds to the 1.6x scaling floor. Hardware-independent
  // enough to gate in CI — both sides run on the same machine in the same
  // process.
  const double ratio =
      qps_by_workers[2] > 0 ? qps_by_workers[0] / qps_by_workers[2] : 1.0;
  std::printf("1->4 worker qps ratio %.4f (%.2fx scaling)\n", ratio,
              ratio > 0 ? 1.0 / ratio : 0.0);
  char entry[96];
  std::snprintf(entry, sizeof entry,
                "{\"label\": \"scaling_1_to_4\", \"ratio\": %.4f}", ratio);
  json.AddRaw(entry);

  json.WriteDefault();
  return 0;
}
