#!/usr/bin/env python3
"""Lint Prometheus text-exposition (0.0.4) output.

Reads an exposition payload from a file (or stdin) and checks it against the
format rules hwf_serve's METRICS command promises:

  - metric and label names match the Prometheus alphabets;
  - every sample is preceded by a # TYPE for its family, declared once;
  - all samples of a family are contiguous (no interleaving);
  - counter families end in _total;
  - summaries have in-range, per-series monotone quantiles plus _sum/_count;
  - no duplicate series (same name + label set);
  - sample values parse as floats (Inf/NaN allowed);
  - the payload ends with a newline.

Exit code 0 when clean, 1 with one line per violation otherwise.

Flags:
  --require NAME           fail unless a family NAME was exposed
  --require-nonzero NAME   fail unless some sample of family NAME is > 0
"""

import argparse
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}

# name{labels} value [timestamp]
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?\s*$"
)

LABEL_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def parse_labels(raw, errors, lineno):
    """Returns the label set as a sorted tuple of (key, value) pairs."""
    labels = []
    pos = 0
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if not m:
            errors.append(f"line {lineno}: malformed labels: {{{raw}}}")
            return None
        key = m.group("key")
        if not LABEL_NAME_RE.match(key):
            errors.append(f"line {lineno}: bad label name {key!r}")
        labels.append((key, m.group("value")))
        pos = m.end()
    keys = [k for k, _ in labels]
    if len(keys) != len(set(keys)):
        errors.append(f"line {lineno}: duplicate label name in {{{raw}}}")
    return tuple(sorted(labels))


def base_family(name):
    """Family a sample belongs to: strips summary/histogram suffixes."""
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(raw):
    if raw in ("+Inf", "Inf"):
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    return float(raw)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default="-",
                        help="exposition file ('-' for stdin)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME", help="fail unless family NAME exists")
    parser.add_argument("--require-nonzero", action="append", default=[],
                        metavar="NAME",
                        help="fail unless some sample of NAME is > 0")
    args = parser.parse_args()

    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, "r", encoding="utf-8") as f:
            text = f.read()

    errors = []
    if text and not text.endswith("\n"):
        errors.append("payload does not end with a newline")

    declared_types = {}     # family -> type
    family_closed = set()   # families whose sample block has ended
    current_family = None
    seen_series = set()     # (sample name, labels)
    family_max = {}         # family -> max sample value (for --require-nonzero)
    # (family, labels) -> list of (quantile, value) for summary monotonicity
    summary_quantiles = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3:
                    errors.append(f"line {lineno}: malformed {parts[1]} line")
                    continue
                name = parts[2]
                if not METRIC_NAME_RE.match(name):
                    errors.append(
                        f"line {lineno}: bad metric name {name!r} in {parts[1]}")
                if parts[1] == "TYPE":
                    mtype = parts[3].strip() if len(parts) > 3 else ""
                    if mtype not in TYPES:
                        errors.append(
                            f"line {lineno}: unknown type {mtype!r} for {name}")
                    if name in declared_types:
                        errors.append(
                            f"line {lineno}: duplicate TYPE for {name}")
                    declared_types[name] = mtype
                    if mtype == "counter" and not name.endswith("_total"):
                        errors.append(
                            f"line {lineno}: counter {name} must end in _total")
            # Other comments are allowed and ignored.
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        labels_raw = m.group("labels")
        labels = ()
        if labels_raw is not None:
            parsed = parse_labels(labels_raw, errors, lineno)
            if parsed is None:
                continue
            labels = parsed
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            errors.append(
                f"line {lineno}: unparseable value {m.group('value')!r}")
            continue

        family = base_family(name)
        if family not in declared_types:
            errors.append(
                f"line {lineno}: sample {name} has no preceding # TYPE "
                f"for family {family}")
        if family != current_family:
            if family in family_closed:
                errors.append(
                    f"line {lineno}: family {family} samples are not "
                    f"contiguous")
            if current_family is not None:
                family_closed.add(current_family)
            current_family = family

        series_key = (name, labels)
        if series_key in seen_series:
            errors.append(f"line {lineno}: duplicate series {name}{{{labels}}}")
        seen_series.add(series_key)

        if not math.isnan(value):
            family_max[family] = max(family_max.get(family, -math.inf), value)

        if declared_types.get(family) == "summary" and name == family:
            quantile = dict(labels).get("quantile")
            if quantile is None:
                errors.append(
                    f"line {lineno}: summary sample {name} missing "
                    f"quantile label")
            else:
                try:
                    q = float(quantile)
                except ValueError:
                    errors.append(
                        f"line {lineno}: bad quantile {quantile!r}")
                    q = None
                if q is not None:
                    if not (0.0 <= q <= 1.0):
                        errors.append(
                            f"line {lineno}: quantile {q} outside [0, 1]")
                    other = tuple(kv for kv in labels if kv[0] != "quantile")
                    summary_quantiles.setdefault((family, other), []).append(
                        (q, value, lineno))

    for family, mtype in declared_types.items():
        if mtype != "summary":
            continue
        series_labels = {other for (fam, other) in summary_quantiles
                         if fam == family}
        for other in series_labels:
            if (family + "_sum", other) not in seen_series:
                errors.append(f"summary {family} missing {family}_sum")
            if (family + "_count", other) not in seen_series:
                errors.append(f"summary {family} missing {family}_count")
            points = sorted(summary_quantiles[(family, other)])
            for (q1, v1, _), (q2, v2, ln) in zip(points, points[1:]):
                if not (math.isnan(v1) or math.isnan(v2)) and v2 < v1:
                    errors.append(
                        f"line {ln}: summary {family} quantile {q2} value "
                        f"{v2} < quantile {q1} value {v1}")

    for name in args.require:
        if name not in declared_types:
            errors.append(f"required family {name} not exposed")
    for name in args.require_nonzero:
        if name not in declared_types:
            errors.append(f"required family {name} not exposed")
        elif family_max.get(name, 0) <= 0:
            errors.append(f"required family {name} has no sample > 0")

    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"FAIL: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(f"OK: {len(seen_series)} series in {len(declared_types)} families")
    return 0


if __name__ == "__main__":
    sys.exit(main())
