// hwf_serve — line-protocol TCP front door for the query service.
//
//   hwf_serve --port 0 --table lineitem=lineitem.csv --sessions 4
//
// Prints "LISTENING <port>" on stdout once the socket is bound (with
// --port 0 the kernel picks the port), then serves each connection on its
// own thread. Protocol: one command per line, responses framed as
//
//   OK <nbytes>\n<nbytes of payload>      (results, stats)
//   OK\n                                  (acknowledgements)
//   ERR <code> <message>\n
//
// Commands:
//   QUERY <sql>        execute synchronously, respond with the result
//                      (header carries "id=<n>" for trace correlation)
//   SUBMIT <sql>       enqueue; respond with framed payload "ID <n>\n"
//   WAIT <id>          block for a submitted query's result
//   CANCEL <id>        request cooperative cancellation
//   FORMAT csv|json    set this connection's result format (default csv)
//   TIMEOUT <seconds>  set this connection's per-query deadline (0 = none)
//   STATS              service + cache statistics as JSON
//   METRICS            Prometheus text-exposition metrics
//   PROFILE <id>       retained profile of a finished query as JSON
//   APPEND <t> <n>     read n bytes of CSV (with header) and append the
//                      rows to table t; responds "ROWS <appended> ..."
//   UPSERT <t> <n>     as APPEND, but keyed upsert (needs --key for t)
//   COMPACT <t>        synchronously fold t's delta into its base
//   PING               liveness check, responds "OK 5\nPONG\n"
//   QUIT               close the connection
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, drain in-flight
// queries, write the final metrics/trace dumps and close the slow-query
// log before exiting 0.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "mem/memory_budget.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/result_format.h"
#include "service/service.h"
#include "storage/csv.h"

namespace {

using namespace hwf;

void Usage() {
  std::fprintf(
      stderr,
      "usage: hwf_serve --table NAME=FILE.csv [options]\n"
      "\n"
      "options:\n"
      "  --port N              listen port (default 0 = kernel-assigned;\n"
      "                        the chosen port is printed as LISTENING N)\n"
      "  --table NAME=FILE     register a CSV file as table NAME "
      "(repeatable)\n"
      "  --key NAME=COLUMN     declare COLUMN as table NAME's UPSERT key\n"
      "  --sessions N          concurrent query executions (default 2)\n"
      "  --queue N             admission queue depth (default 16)\n"
      "  --memory_limit BYTES  admission budget, K/M/G suffix ok "
      "(default unlimited)\n"
      "  --reservation BYTES   per-query admission reservation (default "
      "64M)\n"
      "  --cache_bytes BYTES   tree cache capacity, 0 disables (default "
      "256M)\n"
      "  --timeout SECONDS     default per-query deadline (default none)\n"
      "  --slow_query_log FILE JSON-lines slow-query log (default off)\n"
      "  --slow_query_ms N     slow-query threshold in ms (default 100)\n"
      "  --trace FILE          write a Chrome trace on shutdown\n"
      "  --metrics_dump FILE   write a final metrics snapshot on shutdown\n");
}

/// Signal-driven shutdown: the handler breaks the accept loop by shutting
/// the listener down (accept returns, the loop exits) — the only
/// async-signal-safe way to interrupt accept without polling.
volatile sig_atomic_t g_stop = 0;
int g_listener = -1;

void HandleStopSignal(int) {
  g_stop = 1;
  if (g_listener >= 0) ::shutdown(g_listener, SHUT_RDWR);
}

/// What a connection handler needs: the service plus the metrics registry
/// backing the METRICS command.
struct ServerContext {
  service::QueryService* svc = nullptr;
  obs::MetricsRegistry* registry = nullptr;
};

/// Reads exactly `size` bytes (an APPEND/UPSERT payload); false on
/// EOF/error before the payload is complete.
bool ReadExact(int fd, size_t size, std::string* out) {
  out->resize(size);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, out->data() + got, size - got);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one \n-terminated line; false on EOF/error.
bool ReadLine(int fd, std::string* line) {
  line->clear();
  char c;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return !line->empty();
    if (c == '\n') return true;
    if (c != '\r') line->push_back(c);
  }
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Frames `payload` as "OK <nbytes>[ <extra>]\n<payload>". Existing clients
/// parse the byte count with strtoull, which stops at the space, so header
/// extras (like "id=<n>") are backwards compatible.
bool SendPayload(int fd, const std::string& payload,
                 const std::string& header_extra = std::string()) {
  std::string header = "OK " + std::to_string(payload.size());
  if (!header_extra.empty()) header += " " + header_extra;
  return WriteAll(fd, header + "\n" + payload);
}

bool SendOk(int fd) { return WriteAll(fd, "OK\n"); }

bool SendError(int fd, const Status& status) {
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return WriteAll(fd, "ERR " + std::to_string(service::ExitCodeForStatus(
                                   status)) +
                          " " + message + "\n");
}

void ServeConnection(int fd, ServerContext ctx) {
  service::QueryService* svc = ctx.svc;
  service::ResultFormat format = service::ResultFormat::kCsv;
  double timeout_seconds = -1;  // service default
  std::string line;
  while (ReadLine(fd, &line)) {
    const size_t space = line.find(' ');
    std::string command = line.substr(0, space);
    for (char& c : command) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    const std::string rest =
        space == std::string::npos ? std::string() : line.substr(space + 1);

    if (command == "QUIT") {
      SendOk(fd);
      break;
    }
    if (command == "PING") {
      SendPayload(fd, "PONG\n");
      continue;
    }
    if (command == "STATS") {
      SendPayload(fd, svc->StatsJson());
      continue;
    }
    if (command == "METRICS") {
      SendPayload(fd, ctx.registry->RenderText());
      continue;
    }
    if (command == "PROFILE") {
      char* end = nullptr;
      const uint64_t id = std::strtoull(rest.c_str(), &end, 10);
      if (end == rest.c_str()) {
        SendError(fd, Status::InvalidArgument("PROFILE needs a query id"));
        continue;
      }
      StatusOr<std::string> profile = svc->RetainedProfileJson(id);
      if (!profile.ok()) {
        SendError(fd, profile.status());
      } else {
        SendPayload(fd, *profile + "\n");
      }
      continue;
    }
    if (command == "FORMAT") {
      StatusOr<service::ResultFormat> parsed =
          service::ParseResultFormat(rest);
      if (!parsed.ok()) {
        SendError(fd, parsed.status());
        continue;
      }
      format = *parsed;
      SendOk(fd);
      continue;
    }
    if (command == "TIMEOUT") {
      timeout_seconds = std::atof(rest.c_str());
      SendOk(fd);
      continue;
    }
    if (command == "QUERY" || command == "SUBMIT") {
      if (rest.empty()) {
        SendError(fd, Status::InvalidArgument(command + " needs SQL text"));
        continue;
      }
      service::QueryOptions options;
      options.timeout_seconds = timeout_seconds;
      if (command == "SUBMIT") {
        StatusOr<uint64_t> id = svc->Submit(rest, options);
        if (!id.ok()) {
          SendError(fd, id.status());
        } else {
          SendPayload(fd, "ID " + std::to_string(*id) + "\n");
        }
        continue;
      }
      StatusOr<service::QueryResult> result = svc->Query(rest, options);
      if (!result.ok()) {
        SendError(fd, result.status());
      } else {
        SendPayload(fd, service::FormatTable(result->table, format),
                    "id=" + std::to_string(result->query_id));
      }
      continue;
    }
    if (command == "APPEND" || command == "UPSERT") {
      // "<table> <nbytes>": the CSV payload (with header) follows the line.
      const size_t sep = rest.find(' ');
      if (sep == std::string::npos) {
        SendError(fd, Status::InvalidArgument(command +
                                              " wants: <table> <nbytes>"));
        continue;
      }
      const std::string table_name = rest.substr(0, sep);
      char* end = nullptr;
      const std::string count_text = rest.substr(sep + 1);
      const uint64_t nbytes = std::strtoull(count_text.c_str(), &end, 10);
      if (end == count_text.c_str()) {
        SendError(fd, Status::InvalidArgument(command + " needs a byte "
                                              "count"));
        continue;
      }
      std::string payload;
      if (!ReadExact(fd, static_cast<size_t>(nbytes), &payload)) break;
      StatusOr<Table> rows = ParseCsv(payload);
      if (!rows.ok()) {
        SendError(fd, rows.status());
        continue;
      }
      StatusOr<service::Catalog::TableMeta> meta =
          command == "APPEND" ? svc->AppendRows(table_name, *rows)
                              : svc->UpsertRows(table_name, *rows);
      if (!meta.ok()) {
        SendError(fd, meta.status());
        continue;
      }
      SendPayload(fd, "ROWS " + std::to_string(rows->num_rows()) +
                          " minor=" + std::to_string(meta->minor) +
                          " delta=" + std::to_string(meta->delta_rows) +
                          "\n");
      continue;
    }
    if (command == "COMPACT") {
      if (rest.empty()) {
        SendError(fd, Status::InvalidArgument("COMPACT needs a table name"));
        continue;
      }
      StatusOr<service::Catalog::TableMeta> meta = svc->CompactTable(rest);
      if (!meta.ok()) {
        SendError(fd, meta.status());
        continue;
      }
      SendPayload(fd, "COMPACTED base=" + std::to_string(meta->base_rows) +
                          " minor=" + std::to_string(meta->minor) + "\n");
      continue;
    }
    if (command == "WAIT" || command == "CANCEL") {
      char* end = nullptr;
      const uint64_t id = std::strtoull(rest.c_str(), &end, 10);
      if (end == rest.c_str()) {
        SendError(fd, Status::InvalidArgument(command + " needs a query id"));
        continue;
      }
      if (command == "CANCEL") {
        Status status = svc->Cancel(id);
        if (status.ok()) {
          SendOk(fd);
        } else {
          SendError(fd, status);
        }
        continue;
      }
      StatusOr<service::QueryResult> result = svc->Wait(id);
      if (!result.ok()) {
        SendError(fd, result.status());
      } else {
        SendPayload(fd, service::FormatTable(result->table, format),
                    "id=" + std::to_string(result->query_id));
      }
      continue;
    }
    SendError(fd, Status::InvalidArgument("unknown command '" + command +
                                          "'"));
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  std::vector<std::pair<std::string, std::string>> tables;
  std::vector<std::pair<std::string, std::string>> keys;
  std::string trace_path;
  std::string metrics_dump_path;
  service::ServiceOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--port") {
      port = std::atoi(next());
    } else if (flag == "--table") {
      const std::string spec = next();
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "error: --table wants NAME=FILE, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      tables.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (flag == "--key") {
      const std::string spec = next();
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "error: --key wants NAME=COLUMN, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      keys.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (flag == "--sessions") {
      options.num_sessions = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--queue") {
      options.max_queued = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--memory_limit") {
      if (!mem::ParseMemorySize(next(), &options.memory_limit_bytes)) {
        std::fprintf(stderr, "error: bad --memory_limit\n");
        return 2;
      }
    } else if (flag == "--reservation") {
      if (!mem::ParseMemorySize(next(),
                                &options.per_query_reservation_bytes)) {
        std::fprintf(stderr, "error: bad --reservation\n");
        return 2;
      }
    } else if (flag == "--cache_bytes") {
      if (!mem::ParseMemorySize(next(), &options.cache_capacity_bytes)) {
        std::fprintf(stderr, "error: bad --cache_bytes\n");
        return 2;
      }
      options.enable_cache = options.cache_capacity_bytes > 0;
    } else if (flag == "--timeout") {
      options.default_timeout_seconds = std::atof(next());
    } else if (flag == "--slow_query_log") {
      options.slow_query_log_path = next();
    } else if (flag == "--slow_query_ms") {
      options.slow_query_seconds = std::atof(next()) / 1000.0;
    } else if (flag == "--trace") {
      trace_path = next();
    } else if (flag == "--metrics_dump") {
      metrics_dump_path = next();
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      Usage();
      return 2;
    }
  }
  if (tables.empty()) {
    Usage();
    return 2;
  }

  if (!trace_path.empty()) obs::Tracer::Get().Enable();

  service::QueryService svc(options);
  obs::MetricsRegistry registry;
  obs::RegisterProcessCounters(&registry);
  svc.RegisterMetrics(&registry);
  for (const auto& [name, path] : tables) {
    StatusOr<Table> table = ReadCsvFile(path);
    if (!table.ok()) {
      std::fprintf(stderr, "error loading %s: %s\n", path.c_str(),
                   table.status().ToString().c_str());
      return service::ExitCodeForStatus(table.status());
    }
    std::string key_column;
    for (const auto& [key_table, column] : keys) {
      if (key_table == name) key_column = column;
    }
    if (key_column.empty()) {
      svc.RegisterTable(name, std::move(*table));
    } else {
      StatusOr<uint64_t> registered =
          svc.RegisterTable(name, std::move(*table), key_column);
      if (!registered.ok()) {
        std::fprintf(stderr, "error registering %s: %s\n", name.c_str(),
                     registered.status().ToString().c_str());
        return service::ExitCodeForStatus(registered.status());
      }
    }
    std::fprintf(stderr, "registered table %s from %s\n", name.c_str(),
                 path.c_str());
  }

  ::signal(SIGPIPE, SIG_IGN);
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  g_listener = listener;
  struct sigaction action {};
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::perror("bind");
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
  if (::listen(listener, 64) < 0) {
    std::perror("listen");
    return 1;
  }
  std::printf("LISTENING %d\n", ntohs(addr.sin_port));
  std::fflush(stdout);

  const ServerContext ctx{&svc, &registry};
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (g_stop) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    std::thread(ServeConnection, fd, ctx).detach();
  }
  ::close(listener);

  // Graceful shutdown: drain in-flight queries (Shutdown joins the
  // sessions and closes the slow-query log), then write the final
  // observability artifacts.
  std::fprintf(stderr, "shutting down: draining in-flight queries\n");
  svc.Shutdown();
  if (!metrics_dump_path.empty()) {
    const std::string text = registry.RenderText();
    if (std::FILE* file = std::fopen(metrics_dump_path.c_str(), "w")) {
      std::fwrite(text.data(), 1, text.size(), file);
      std::fclose(file);
      std::fprintf(stderr, "wrote final metrics to %s\n",
                   metrics_dump_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   metrics_dump_path.c_str());
    }
  }
  if (!trace_path.empty()) {
    Status written = obs::Tracer::Get().WriteChromeTrace(trace_path);
    if (written.ok()) {
      std::fprintf(stderr, "wrote trace to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    }
  }
  return 0;
}
