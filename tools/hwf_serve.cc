// hwf_serve — line-protocol TCP front door for the query service.
//
// Two roles, selected by --coordinator:
//
//   worker (default):
//     hwf_serve --port 0 --table lineitem=lineitem.csv --sessions 4
//     Serves the full single-process command set against a local
//     QueryService. May start with no tables at all: a coordinator
//     distributes shards to it over the wire with REGISTER.
//
//   coordinator:
//     hwf_serve --coordinator --worker 127.0.0.1:4141 --worker \
//         127.0.0.1:4142 --table trades=trades.csv --shard_key trades=grp
//     Hash-shards each --table by its --shard_key columns across the
//     worker fleet at startup, then scatters eligible queries to all
//     shards and gathers the results back into the original row order
//     (byte-identical to single-process execution). Queries that do not
//     partition by the shard key run on a designated fallback worker
//     holding a full copy.
//
// Prints "LISTENING <port>" on stdout once the socket is bound (with
// --port 0 the kernel picks the port), then serves each connection on its
// own thread. Protocol: one command per line, responses framed as
//
//   OK <nbytes>\n<nbytes of payload>      (results, stats)
//   OK\n                                  (acknowledgements)
//   ERR <code> <message>\n
//
// Worker commands:
//   QUERY <sql>        execute synchronously, respond with the result
//                      (header carries "id=<n>" for trace correlation)
//   SUBMIT <sql>       enqueue; respond with framed payload "ID <n>\n"
//   WAIT <id>          block for a submitted query's result
//   CANCEL <id>        request cooperative cancellation
//   HELLO [version]    protocol-version handshake; replies "HWF <v>"
//   FORMAT csv|json    set this connection's result format (default csv)
//   TIMEOUT <seconds>  set this connection's per-query deadline (0 = none)
//   STATS              service + cache statistics as JSON
//   METRICS            Prometheus text-exposition metrics
//   PROFILE <id>       retained profile of a finished query as JSON
//   REGISTER <t> <n> [key=<col>]
//                      read n bytes of CSV and register/replace table t
//   APPEND <t> <n>     read n bytes of CSV (with header) and append the
//                      rows to table t; responds "ROWS <appended> ..."
//   UPSERT <t> <n>     as APPEND, but keyed upsert (needs --key for t)
//   COMPACT <t>        synchronously fold t's delta into its base
//   PING               liveness check, responds "OK 5\nPONG\n"
//   QUIT               close the connection
//
// The coordinator front door speaks the same framing with QUERY/EXPLAIN/
// HELLO/FORMAT/TIMEOUT/STATS/METRICS/REGISTER/APPEND/COMPACT/PING/QUIT;
// SUBMIT, WAIT, CANCEL, UPSERT and PROFILE answer ERR 5 (not implemented
// in coordinator mode). A QUERY response header carries
// "id=<n> regime=<scatter(N)|fallback>".
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, drain in-flight
// queries, write the final metrics/trace dumps and close the slow-query
// log before exiting 0.
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "mem/memory_budget.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/result_format.h"
#include "service/service.h"
#include "service/tcp_server.h"
#include "storage/csv.h"

namespace {

using namespace hwf;

void Usage() {
  std::fprintf(
      stderr,
      "usage: hwf_serve [--table NAME=FILE.csv] [options]\n"
      "       hwf_serve --coordinator --worker HOST:PORT [...] [options]\n"
      "\n"
      "options:\n"
      "  --port N              listen port (default 0 = kernel-assigned;\n"
      "                        the chosen port is printed as LISTENING N)\n"
      "  --table NAME=FILE     register a CSV file as table NAME "
      "(repeatable)\n"
      "  --key NAME=COLUMN     declare COLUMN as table NAME's UPSERT key\n"
      "  --sessions N          concurrent query executions (default 2)\n"
      "  --queue N             admission queue depth (default 16)\n"
      "  --memory_limit BYTES  admission budget, K/M/G suffix ok "
      "(default unlimited)\n"
      "  --reservation BYTES   per-query admission reservation (default "
      "64M)\n"
      "  --cache_bytes BYTES   tree cache capacity, 0 disables (default "
      "256M)\n"
      "  --timeout SECONDS     default per-query deadline (default none)\n"
      "  --slow_query_log FILE JSON-lines slow-query log (default off)\n"
      "  --slow_query_ms N     slow-query threshold in ms (default 100)\n"
      "  --trace FILE          write a Chrome trace on shutdown\n"
      "  --metrics_dump FILE   write a final metrics snapshot on shutdown\n"
      "\n"
      "coordinator options:\n"
      "  --coordinator         run as scatter/gather coordinator\n"
      "  --worker HOST:PORT    worker endpoint (repeatable; list order\n"
      "                        defines shard numbering)\n"
      "  --shard_key NAME=COLS shard table NAME by the comma-separated\n"
      "                        COLS (must be PARTITION BY columns)\n"
      "  --shard_retries N     retries per shard sub-query (default 2)\n");
}

/// Signal-driven shutdown: the handler breaks the accept loop by shutting
/// the listener down (accept returns, the loop exits) — the only
/// async-signal-safe way to interrupt accept without polling.
volatile sig_atomic_t g_stop = 0;
int g_listener = -1;

void HandleStopSignal(int) {
  g_stop = 1;
  if (g_listener >= 0) ::shutdown(g_listener, SHUT_RDWR);
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t comma = text.find(',', begin);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > begin) parts.push_back(text.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return parts;
}

/// The coordinator's own line-protocol front door: same framing as a
/// worker, but QUERY scatters across the fleet. Async commands (SUBMIT/
/// WAIT/CANCEL), UPSERT and PROFILE are not implemented in this mode.
void ServeCoordinatorConnection(int fd, dist::Coordinator* coordinator,
                                obs::MetricsRegistry* registry) {
  using service::SendErrorFd;
  using service::SendOkFd;
  using service::SendPayloadFd;
  service::ResultFormat format = service::ResultFormat::kCsv;
  double timeout_seconds = -1;  // coordinator default
  std::string line;
  while (service::ReadLineFd(fd, &line)) {
    const size_t space = line.find(' ');
    std::string command = line.substr(0, space);
    for (char& c : command) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    const std::string rest =
        space == std::string::npos ? std::string() : line.substr(space + 1);

    if (command == "QUIT") {
      SendOkFd(fd);
      break;
    }
    if (command == "PING") {
      SendPayloadFd(fd, "PONG\n");
      continue;
    }
    if (command == "HELLO") {
      service::HandleHello(fd, rest);
      continue;
    }
    if (command == "STATS") {
      SendPayloadFd(fd, coordinator->StatsJson());
      continue;
    }
    if (command == "METRICS") {
      SendPayloadFd(fd, registry->RenderText());
      continue;
    }
    if (command == "FORMAT") {
      StatusOr<service::ResultFormat> parsed =
          service::ParseResultFormat(rest);
      if (!parsed.ok()) {
        SendErrorFd(fd, parsed.status());
        continue;
      }
      format = *parsed;
      SendOkFd(fd);
      continue;
    }
    if (command == "TIMEOUT") {
      timeout_seconds = std::atof(rest.c_str());
      SendOkFd(fd);
      continue;
    }
    if (command == "QUERY") {
      if (rest.empty()) {
        SendErrorFd(fd, Status::InvalidArgument("QUERY needs SQL text"));
        continue;
      }
      StatusOr<dist::CoordinatorQueryResult> result =
          coordinator->Query(rest, timeout_seconds);
      if (!result.ok()) {
        SendErrorFd(fd, result.status());
      } else {
        SendPayloadFd(fd, service::FormatTable(result->table, format),
                      "id=" + std::to_string(result->query_id) +
                          " regime=" + result->regime);
      }
      continue;
    }
    if (command == "EXPLAIN") {
      if (rest.empty()) {
        SendErrorFd(fd, Status::InvalidArgument("EXPLAIN needs SQL text"));
        continue;
      }
      StatusOr<std::string> plan = coordinator->Explain(rest);
      if (!plan.ok()) {
        SendErrorFd(fd, plan.status());
      } else {
        SendPayloadFd(fd, *plan);
      }
      continue;
    }
    if (command == "REGISTER") {
      // "<table> <nbytes> [key=<col>[,<col>...]]": the CSV payload follows
      // the line; key= names the shard key columns.
      const size_t sep = rest.find(' ');
      if (sep == std::string::npos) {
        SendErrorFd(fd, Status::InvalidArgument(
                            "REGISTER wants: <table> <nbytes> [key=<cols>]"));
        continue;
      }
      const std::string table_name = rest.substr(0, sep);
      char* end = nullptr;
      const std::string tail = rest.substr(sep + 1);
      const uint64_t nbytes = std::strtoull(tail.c_str(), &end, 10);
      if (end == tail.c_str()) {
        SendErrorFd(fd,
                    Status::InvalidArgument("REGISTER needs a byte count"));
        continue;
      }
      std::string key_text = end;
      std::vector<std::string> shard_key;
      const size_t key_pos = key_text.find("key=");
      if (key_pos != std::string::npos) {
        key_text = key_text.substr(key_pos + 4);
        const size_t key_end = key_text.find(' ');
        if (key_end != std::string::npos) key_text.resize(key_end);
        shard_key = SplitCommas(key_text);
      }
      std::string payload;
      if (!service::ReadExactFd(fd, static_cast<size_t>(nbytes), &payload)) {
        break;
      }
      StatusOr<Table> table = ParseCsv(payload);
      if (!table.ok()) {
        SendErrorFd(fd, table.status());
        continue;
      }
      const size_t rows = table->num_rows();
      Status registered =
          coordinator->RegisterTable(table_name, *table, shard_key);
      if (!registered.ok()) {
        SendErrorFd(fd, registered);
        continue;
      }
      SendPayloadFd(fd, "REGISTERED " + std::to_string(rows) + " workers=" +
                            std::to_string(coordinator->num_workers()) +
                            "\n");
      continue;
    }
    if (command == "APPEND") {
      const size_t sep = rest.find(' ');
      if (sep == std::string::npos) {
        SendErrorFd(fd,
                    Status::InvalidArgument("APPEND wants: <table> <nbytes>"));
        continue;
      }
      const std::string table_name = rest.substr(0, sep);
      char* end = nullptr;
      const std::string count_text = rest.substr(sep + 1);
      const uint64_t nbytes = std::strtoull(count_text.c_str(), &end, 10);
      if (end == count_text.c_str()) {
        SendErrorFd(fd, Status::InvalidArgument("APPEND needs a byte count"));
        continue;
      }
      std::string payload;
      if (!service::ReadExactFd(fd, static_cast<size_t>(nbytes), &payload)) {
        break;
      }
      StatusOr<Table> rows = ParseCsv(payload);
      if (!rows.ok()) {
        SendErrorFd(fd, rows.status());
        continue;
      }
      StatusOr<size_t> appended =
          coordinator->AppendRows(table_name, *rows);
      if (!appended.ok()) {
        SendErrorFd(fd, appended.status());
        continue;
      }
      SendPayloadFd(fd, "ROWS " + std::to_string(*appended) + "\n");
      continue;
    }
    if (command == "COMPACT") {
      if (rest.empty()) {
        SendErrorFd(fd, Status::InvalidArgument("COMPACT needs a table name"));
        continue;
      }
      Status compacted = coordinator->CompactTable(rest);
      if (!compacted.ok()) {
        SendErrorFd(fd, compacted);
        continue;
      }
      SendPayloadFd(fd, "COMPACTED\n");
      continue;
    }
    if (command == "SUBMIT" || command == "WAIT" || command == "CANCEL" ||
        command == "UPSERT" || command == "PROFILE") {
      SendErrorFd(fd, Status::NotImplemented(
                          command + " is not available in coordinator mode"));
      continue;
    }
    SendErrorFd(fd, Status::InvalidArgument("unknown command '" + command +
                                            "'"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  bool coordinator_mode = false;
  std::vector<std::pair<std::string, std::string>> tables;
  std::vector<std::pair<std::string, std::string>> keys;
  std::vector<std::pair<std::string, std::string>> shard_keys;
  std::string trace_path;
  std::string metrics_dump_path;
  service::ServiceOptions options;
  dist::CoordinatorOptions coordinator_options;
  bool sessions_set = false;
  bool queue_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto parse_name_value = [&](std::vector<std::pair<std::string,
                                                      std::string>>* out,
                                const char* shape) {
      const std::string spec = next();
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "error: %s wants %s, got '%s'\n", flag.c_str(),
                     shape, spec.c_str());
        std::exit(2);
      }
      out->emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    };
    if (flag == "--port") {
      port = std::atoi(next());
    } else if (flag == "--coordinator") {
      coordinator_mode = true;
    } else if (flag == "--worker") {
      coordinator_options.workers.push_back(next());
    } else if (flag == "--shard_key") {
      parse_name_value(&shard_keys, "NAME=COL[,COL...]");
    } else if (flag == "--shard_retries") {
      coordinator_options.shard_retries =
          static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--table") {
      parse_name_value(&tables, "NAME=FILE");
    } else if (flag == "--key") {
      parse_name_value(&keys, "NAME=COLUMN");
    } else if (flag == "--sessions") {
      options.num_sessions = static_cast<size_t>(std::atoll(next()));
      sessions_set = true;
    } else if (flag == "--queue") {
      options.max_queued = static_cast<size_t>(std::atoll(next()));
      queue_set = true;
    } else if (flag == "--memory_limit") {
      if (!mem::ParseMemorySize(next(), &options.memory_limit_bytes)) {
        std::fprintf(stderr, "error: bad --memory_limit\n");
        return 2;
      }
    } else if (flag == "--reservation") {
      if (!mem::ParseMemorySize(next(),
                                &options.per_query_reservation_bytes)) {
        std::fprintf(stderr, "error: bad --reservation\n");
        return 2;
      }
    } else if (flag == "--cache_bytes") {
      if (!mem::ParseMemorySize(next(), &options.cache_capacity_bytes)) {
        std::fprintf(stderr, "error: bad --cache_bytes\n");
        return 2;
      }
      options.enable_cache = options.cache_capacity_bytes > 0;
    } else if (flag == "--timeout") {
      options.default_timeout_seconds = std::atof(next());
      coordinator_options.default_timeout_seconds =
          options.default_timeout_seconds;
    } else if (flag == "--slow_query_log") {
      options.slow_query_log_path = next();
    } else if (flag == "--slow_query_ms") {
      options.slow_query_seconds = std::atof(next()) / 1000.0;
    } else if (flag == "--trace") {
      trace_path = next();
    } else if (flag == "--metrics_dump") {
      metrics_dump_path = next();
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      Usage();
      return 2;
    }
  }
  if (coordinator_mode && coordinator_options.workers.empty()) {
    std::fprintf(stderr, "error: --coordinator needs at least one --worker\n");
    return 2;
  }
  if (!coordinator_mode &&
      (!coordinator_options.workers.empty() || !shard_keys.empty())) {
    std::fprintf(stderr,
                 "error: --worker/--shard_key need --coordinator\n");
    return 2;
  }

  if (!trace_path.empty()) obs::Tracer::Get().Enable();
  ::signal(SIGPIPE, SIG_IGN);
  struct sigaction action {};
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  obs::MetricsRegistry registry;
  obs::RegisterProcessCounters(&registry);

  // Final observability artifacts. Must run while the service object whose
  // histograms back the registry's summaries is still alive, i.e. inside
  // the role branch, before svc/coordinator go out of scope.
  const auto write_final_artifacts = [&] {
    if (!metrics_dump_path.empty()) {
      const std::string text = registry.RenderText();
      if (std::FILE* file = std::fopen(metrics_dump_path.c_str(), "w")) {
        std::fwrite(text.data(), 1, text.size(), file);
        std::fclose(file);
        std::fprintf(stderr, "wrote final metrics to %s\n",
                     metrics_dump_path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n",
                     metrics_dump_path.c_str());
      }
    }
    if (!trace_path.empty()) {
      Status written = obs::Tracer::Get().WriteChromeTrace(trace_path);
      if (written.ok()) {
        std::fprintf(stderr, "wrote trace to %s\n", trace_path.c_str());
      } else {
        std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      }
    }
  };

  if (coordinator_mode) {
    if (sessions_set) {
      coordinator_options.max_concurrent_queries = options.num_sessions;
    }
    if (queue_set) coordinator_options.max_queued_queries = options.max_queued;
    dist::Coordinator coordinator(coordinator_options);
    coordinator.RegisterMetrics(&registry);
    for (const auto& [name, path] : tables) {
      StatusOr<Table> table = ReadCsvFile(path);
      if (!table.ok()) {
        std::fprintf(stderr, "error loading %s: %s\n", path.c_str(),
                     table.status().ToString().c_str());
        return service::ExitCodeForStatus(table.status());
      }
      std::vector<std::string> shard_key;
      for (const auto& [key_table, columns] : shard_keys) {
        if (key_table == name) shard_key = SplitCommas(columns);
      }
      Status registered = coordinator.RegisterTable(name, *table, shard_key);
      if (!registered.ok()) {
        std::fprintf(stderr, "error registering %s: %s\n", name.c_str(),
                     registered.ToString().c_str());
        return service::ExitCodeForStatus(registered);
      }
      std::fprintf(stderr, "registered table %s from %s across %zu worker(s)\n",
                   name.c_str(), path.c_str(), coordinator.num_workers());
    }

    service::TcpServer server(
        [&](int fd) { ServeCoordinatorConnection(fd, &coordinator, &registry); },
        /*detach_connections=*/true);
    StatusOr<int> bound = server.Listen(port);
    if (!bound.ok()) {
      std::fprintf(stderr, "error: %s\n", bound.status().ToString().c_str());
      return 1;
    }
    g_listener = server.listener_fd();
    std::printf("LISTENING %d\n", *bound);
    std::fflush(stdout);
    server.AcceptLoop();
    std::fprintf(stderr, "shutting down coordinator\n");
    write_final_artifacts();
  } else {
    service::QueryService svc(options);
    svc.RegisterMetrics(&registry);
    for (const auto& [name, path] : tables) {
      StatusOr<Table> table = ReadCsvFile(path);
      if (!table.ok()) {
        std::fprintf(stderr, "error loading %s: %s\n", path.c_str(),
                     table.status().ToString().c_str());
        return service::ExitCodeForStatus(table.status());
      }
      std::string key_column;
      for (const auto& [key_table, column] : keys) {
        if (key_table == name) key_column = column;
      }
      if (key_column.empty()) {
        svc.RegisterTable(name, std::move(*table));
      } else {
        StatusOr<uint64_t> registered =
            svc.RegisterTable(name, std::move(*table), key_column);
        if (!registered.ok()) {
          std::fprintf(stderr, "error registering %s: %s\n", name.c_str(),
                       registered.status().ToString().c_str());
          return service::ExitCodeForStatus(registered.status());
        }
      }
      std::fprintf(stderr, "registered table %s from %s\n", name.c_str(),
                   path.c_str());
    }
    if (tables.empty()) {
      std::fprintf(stderr,
                   "no tables registered; waiting for REGISTER commands\n");
    }

    service::TcpServer server(
        [&](int fd) { service::ServeServiceConnection(fd, &svc, &registry); },
        /*detach_connections=*/true);
    StatusOr<int> bound = server.Listen(port);
    if (!bound.ok()) {
      std::fprintf(stderr, "error: %s\n", bound.status().ToString().c_str());
      return 1;
    }
    g_listener = server.listener_fd();
    std::printf("LISTENING %d\n", *bound);
    std::fflush(stdout);
    server.AcceptLoop();

    // Graceful shutdown: drain in-flight queries (Shutdown joins the
    // sessions and closes the slow-query log), then write the final
    // observability artifacts.
    std::fprintf(stderr, "shutting down: draining in-flight queries\n");
    svc.Shutdown();
    write_final_artifacts();
  }
  return 0;
}
