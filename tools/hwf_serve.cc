// hwf_serve — line-protocol TCP front door for the query service.
//
//   hwf_serve --port 0 --table lineitem=lineitem.csv --sessions 4
//
// Prints "LISTENING <port>" on stdout once the socket is bound (with
// --port 0 the kernel picks the port), then serves each connection on its
// own thread. Protocol: one command per line, responses framed as
//
//   OK <nbytes>\n<nbytes of payload>      (results, stats)
//   OK\n                                  (acknowledgements)
//   ERR <code> <message>\n
//
// Commands:
//   QUERY <sql>        execute synchronously, respond with the result
//   SUBMIT <sql>       enqueue; respond with framed payload "ID <n>\n"
//   WAIT <id>          block for a submitted query's result
//   CANCEL <id>        request cooperative cancellation
//   FORMAT csv|json    set this connection's result format (default csv)
//   TIMEOUT <seconds>  set this connection's per-query deadline (0 = none)
//   STATS              service + cache statistics as JSON
//   PING               liveness check, responds "OK 5\nPONG\n"
//   QUIT               close the connection
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "mem/memory_budget.h"
#include "service/result_format.h"
#include "service/service.h"
#include "storage/csv.h"

namespace {

using namespace hwf;

void Usage() {
  std::fprintf(
      stderr,
      "usage: hwf_serve --table NAME=FILE.csv [options]\n"
      "\n"
      "options:\n"
      "  --port N              listen port (default 0 = kernel-assigned;\n"
      "                        the chosen port is printed as LISTENING N)\n"
      "  --table NAME=FILE     register a CSV file as table NAME "
      "(repeatable)\n"
      "  --sessions N          concurrent query executions (default 2)\n"
      "  --queue N             admission queue depth (default 16)\n"
      "  --memory_limit BYTES  admission budget, K/M/G suffix ok "
      "(default unlimited)\n"
      "  --reservation BYTES   per-query admission reservation (default "
      "64M)\n"
      "  --cache_bytes BYTES   tree cache capacity, 0 disables (default "
      "256M)\n"
      "  --timeout SECONDS     default per-query deadline (default none)\n");
}

/// Reads one \n-terminated line; false on EOF/error.
bool ReadLine(int fd, std::string* line) {
  line->clear();
  char c;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return !line->empty();
    if (c == '\n') return true;
    if (c != '\r') line->push_back(c);
  }
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool SendPayload(int fd, const std::string& payload) {
  return WriteAll(fd,
                  "OK " + std::to_string(payload.size()) + "\n" + payload);
}

bool SendOk(int fd) { return WriteAll(fd, "OK\n"); }

bool SendError(int fd, const Status& status) {
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return WriteAll(fd, "ERR " + std::to_string(service::ExitCodeForStatus(
                                   status)) +
                          " " + message + "\n");
}

std::string StatsJson(const service::QueryService& svc) {
  const service::QueryService::Stats s = svc.stats();
  std::string out = "{";
  auto field = [&out](const char* name, uint64_t value, bool comma = true) {
    out += std::string("\"") + name + "\":" + std::to_string(value);
    if (comma) out += ",";
  };
  field("queued", s.queued);
  field("executing", s.executing);
  field("admitted", s.admitted);
  field("rejected", s.rejected);
  field("cancelled", s.cancelled);
  field("completed", s.completed);
  field("reserved_bytes", s.reserved_bytes);
  out += "\"cache\":{";
  field("hits", s.cache.hits);
  field("misses", s.cache.misses);
  field("evictions", s.cache.evictions);
  field("entries", s.cache.entries);
  field("bytes", s.cache.bytes);
  field("capacity_bytes", s.cache.capacity_bytes, /*comma=*/false);
  out += "}}\n";
  return out;
}

void ServeConnection(int fd, service::QueryService* svc) {
  service::ResultFormat format = service::ResultFormat::kCsv;
  double timeout_seconds = -1;  // service default
  std::string line;
  while (ReadLine(fd, &line)) {
    const size_t space = line.find(' ');
    std::string command = line.substr(0, space);
    for (char& c : command) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    const std::string rest =
        space == std::string::npos ? std::string() : line.substr(space + 1);

    if (command == "QUIT") {
      SendOk(fd);
      break;
    }
    if (command == "PING") {
      SendPayload(fd, "PONG\n");
      continue;
    }
    if (command == "STATS") {
      SendPayload(fd, StatsJson(*svc));
      continue;
    }
    if (command == "FORMAT") {
      StatusOr<service::ResultFormat> parsed =
          service::ParseResultFormat(rest);
      if (!parsed.ok()) {
        SendError(fd, parsed.status());
        continue;
      }
      format = *parsed;
      SendOk(fd);
      continue;
    }
    if (command == "TIMEOUT") {
      timeout_seconds = std::atof(rest.c_str());
      SendOk(fd);
      continue;
    }
    if (command == "QUERY" || command == "SUBMIT") {
      if (rest.empty()) {
        SendError(fd, Status::InvalidArgument(command + " needs SQL text"));
        continue;
      }
      service::QueryOptions options;
      options.timeout_seconds = timeout_seconds;
      if (command == "SUBMIT") {
        StatusOr<uint64_t> id = svc->Submit(rest, options);
        if (!id.ok()) {
          SendError(fd, id.status());
        } else {
          SendPayload(fd, "ID " + std::to_string(*id) + "\n");
        }
        continue;
      }
      StatusOr<service::QueryResult> result = svc->Query(rest, options);
      if (!result.ok()) {
        SendError(fd, result.status());
      } else {
        SendPayload(fd, service::FormatTable(result->table, format));
      }
      continue;
    }
    if (command == "WAIT" || command == "CANCEL") {
      char* end = nullptr;
      const uint64_t id = std::strtoull(rest.c_str(), &end, 10);
      if (end == rest.c_str()) {
        SendError(fd, Status::InvalidArgument(command + " needs a query id"));
        continue;
      }
      if (command == "CANCEL") {
        Status status = svc->Cancel(id);
        if (status.ok()) {
          SendOk(fd);
        } else {
          SendError(fd, status);
        }
        continue;
      }
      StatusOr<service::QueryResult> result = svc->Wait(id);
      if (!result.ok()) {
        SendError(fd, result.status());
      } else {
        SendPayload(fd, service::FormatTable(result->table, format));
      }
      continue;
    }
    SendError(fd, Status::InvalidArgument("unknown command '" + command +
                                          "'"));
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  std::vector<std::pair<std::string, std::string>> tables;
  service::ServiceOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--port") {
      port = std::atoi(next());
    } else if (flag == "--table") {
      const std::string spec = next();
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "error: --table wants NAME=FILE, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      tables.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (flag == "--sessions") {
      options.num_sessions = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--queue") {
      options.max_queued = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--memory_limit") {
      if (!mem::ParseMemorySize(next(), &options.memory_limit_bytes)) {
        std::fprintf(stderr, "error: bad --memory_limit\n");
        return 2;
      }
    } else if (flag == "--reservation") {
      if (!mem::ParseMemorySize(next(),
                                &options.per_query_reservation_bytes)) {
        std::fprintf(stderr, "error: bad --reservation\n");
        return 2;
      }
    } else if (flag == "--cache_bytes") {
      if (!mem::ParseMemorySize(next(), &options.cache_capacity_bytes)) {
        std::fprintf(stderr, "error: bad --cache_bytes\n");
        return 2;
      }
      options.enable_cache = options.cache_capacity_bytes > 0;
    } else if (flag == "--timeout") {
      options.default_timeout_seconds = std::atof(next());
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      Usage();
      return 2;
    }
  }
  if (tables.empty()) {
    Usage();
    return 2;
  }

  service::QueryService svc(options);
  for (const auto& [name, path] : tables) {
    StatusOr<Table> table = ReadCsvFile(path);
    if (!table.ok()) {
      std::fprintf(stderr, "error loading %s: %s\n", path.c_str(),
                   table.status().ToString().c_str());
      return service::ExitCodeForStatus(table.status());
    }
    svc.RegisterTable(name, std::move(*table));
    std::fprintf(stderr, "registered table %s from %s\n", name.c_str(),
                 path.c_str());
  }

  ::signal(SIGPIPE, SIG_IGN);
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::perror("bind");
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
  if (::listen(listener, 64) < 0) {
    std::perror("listen");
    return 1;
  }
  std::printf("LISTENING %d\n", ntohs(addr.sin_port));
  std::fflush(stdout);

  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    std::thread(ServeConnection, fd, &svc).detach();
  }
  ::close(listener);
  return 0;
}
