#!/usr/bin/env bash
# End-to-end smoke of sharded scatter/gather execution: starts two plain
# hwf_serve workers and one coordinator sharding a table across them by
# PARTITION BY key, byte-diffs a grid of scattered window queries (plus a
# non-covering fallback query) against a single-process server over the
# same CSV, routes an APPEND batch through the coordinator and re-diffs,
# checks the hwf_shard_* metrics surface and the EXPLAIN regime line, and
# finally kill -9's a worker to verify the retry-then-clean-failure path:
# the client gets the mapped ResourceExhausted exit code promptly, and the
# coordinator survives to answer STATS with the failure recorded.
#
# Usage: tools/shard_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD=${1:-build}
SERVE=$BUILD/tools/hwf_serve
CLIENT=$BUILD/tools/hwf_client
TOOLS=$(dirname "$0")
WORK=$(mktemp -d)
PIDS_TO_KILL=()
cleanup() {
  for pid in "${PIDS_TO_KILL[@]:-}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

start_server() {  # start_server OUT_FILE ARGS... ; echoes "pid port"
  local out=$1; shift
  "$SERVE" --port 0 "$@" >"$out" 2>"$out.err" &
  local pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(awk '/^LISTENING/{print $2; exit}' "$out" 2>/dev/null || true)
    [ -n "$port" ] && break
    kill -0 "$pid" 2>/dev/null || fail "server exited: $(cat "$out.err")"
    sleep 0.1
  done
  [ -n "$port" ] || fail "server did not report a port"
  echo "$pid $port"
}

# --- data -----------------------------------------------------------------
python3 - "$WORK/t.csv" <<'EOF'
import random, sys
random.seed(19)
with open(sys.argv[1], "w") as f:
    f.write("grp,ord,val,price\n")
    for _ in range(60000):
        f.write("%d,%d,%d,%.6f\n" % (random.randrange(8),
                random.randrange(1 << 20), random.randrange(50000),
                random.random() * 1000))
EOF

# --- fleet: two workers, one coordinator, one reference -------------------
read -r W1_PID W1_PORT < <(start_server "$WORK/w1.out")
read -r W2_PID W2_PORT < <(start_server "$WORK/w2.out")
PIDS_TO_KILL+=("$W1_PID" "$W2_PID")
read -r COORD_PID COORD_PORT < <(start_server "$WORK/coord.out" \
  --coordinator --worker "127.0.0.1:$W1_PORT" --worker "127.0.0.1:$W2_PORT" \
  --table "t=$WORK/t.csv" --shard_key t=grp --shard_retries 2 \
  --metrics_dump "$WORK/coord_final.prom")
PIDS_TO_KILL+=("$COORD_PID")
read -r REF_PID REF_PORT < <(start_server "$WORK/ref.out" \
  --table "t=$WORK/t.csv")
PIDS_TO_KILL+=("$REF_PID")
echo "workers on $W1_PORT/$W2_PORT, coordinator on $COORD_PORT, reference on $REF_PORT"

# --- scattered queries byte-identical to single-process -------------------
# Every spec partitions by the shard key, so the whole grid scatters;
# the mix covers holistic, distinct, rank, value and offset kinds plus a
# multi-call statement with FILTER.
QUERIES=(
  "select median(price) over (partition by grp order by ord rows between 200 preceding and current row) from t"
  "select count(distinct val) over (partition by grp order by ord rows between 150 preceding and current row) from t"
  "select rank() over (partition by grp order by val rows between 100 preceding and current row) from t"
  "select percentile_disc(0.9 order by price) over (partition by grp order by ord rows between 300 preceding and current row) from t"
  "select lead(val, 2) over (partition by grp order by ord, val) from t"
  "select sum(price) filter (where val) over (partition by grp order by ord rows between 50 preceding and 50 following), first_value(val) over (partition by grp order by ord rows between 10 preceding and 10 following) from t"
)
for i in "${!QUERIES[@]}"; do
  "$CLIENT" --port "$COORD_PORT" "${QUERIES[$i]}" >"$WORK/sc$i.csv" \
    || fail "scattered query $i failed"
  "$CLIENT" --port "$REF_PORT" "${QUERIES[$i]}" >"$WORK/ref$i.csv" \
    || fail "reference query $i failed"
  cmp "$WORK/sc$i.csv" "$WORK/ref$i.csv" \
    || fail "scattered query $i differs from single-process result"
done
echo "scatter differential: ${#QUERIES[@]} queries byte-identical"

# --- fallback regime ------------------------------------------------------
FALLBACK_SQL="select sum(val) over (order by ord rows between 100 preceding and current row) from t"
"$CLIENT" --port "$COORD_PORT" "$FALLBACK_SQL" >"$WORK/fb.csv" \
  || fail "fallback query failed"
"$CLIENT" --port "$REF_PORT" "$FALLBACK_SQL" >"$WORK/fb_ref.csv"
cmp "$WORK/fb.csv" "$WORK/fb_ref.csv" \
  || fail "fallback result differs from single-process result"

"$CLIENT" --port "$COORD_PORT" --explain "${QUERIES[0]}" >"$WORK/plan_sc.txt"
grep -q '^regime: scatter(2)' "$WORK/plan_sc.txt" \
  || fail "scatter plan missing regime line: $(cat "$WORK/plan_sc.txt")"
"$CLIENT" --port "$COORD_PORT" --explain "$FALLBACK_SQL" >"$WORK/plan_fb.txt"
grep -q '^regime: fallback' "$WORK/plan_fb.txt" \
  || fail "fallback plan missing regime line: $(cat "$WORK/plan_fb.txt")"
echo "explain: regimes reported (scatter(2), fallback)"

# --- APPEND routed through the coordinator --------------------------------
python3 - "$WORK/delta.csv" <<'EOF'
import random, sys
random.seed(23)
with open(sys.argv[1], "w") as f:
    f.write("grp,ord,val,price\n")
    for _ in range(3000):
        f.write("%d,%d,%d,%.6f\n" % (random.randrange(8),
                random.randrange(1 << 20), random.randrange(50000),
                random.random() * 1000))
EOF
"$CLIENT" --port "$COORD_PORT" --append t --data "$WORK/delta.csv" \
  >"$WORK/append.out" || fail "coordinator append failed: $(cat "$WORK/append.out")"
grep -q '^ROWS 3000' "$WORK/append.out" \
  || fail "unexpected append response: $(cat "$WORK/append.out")"
"$CLIENT" --port "$REF_PORT" --append t --data "$WORK/delta.csv" >/dev/null \
  || fail "reference append failed"
"$CLIENT" --port "$COORD_PORT" "${QUERIES[0]}" >"$WORK/post_append.csv"
"$CLIENT" --port "$REF_PORT" "${QUERIES[0]}" >"$WORK/post_append_ref.csv"
cmp "$WORK/post_append.csv" "$WORK/post_append_ref.csv" \
  || fail "post-append scattered result differs from single-process"
rows=$(($(wc -l <"$WORK/post_append.csv") - 1))
[ "$rows" -eq 63000 ] || fail "post-append query saw $rows rows, want 63000"
echo "append: batch routed to shards, still byte-identical"

# --- shard metrics surface ------------------------------------------------
"$CLIENT" --port "$COORD_PORT" --metrics >"$WORK/metrics.prom"
python3 "$TOOLS/validate_metrics.py" \
  --require-nonzero hwf_shard_scatter_total \
  --require-nonzero hwf_shard_fallback_total \
  --require-nonzero hwf_shard_subqueries_total \
  --require-nonzero hwf_shard_workers \
  --require hwf_shard_retries_total \
  --require hwf_shard_failed_total \
  --require hwf_shard_latency_seconds \
  --require hwf_shard_straggler_seconds \
  "$WORK/metrics.prom" || fail "coordinator metrics failed validation"
echo "metrics: hwf_shard_* families present, scatter/fallback counted"

# --- kill a worker: retry, then clean failure, coordinator survives -------
kill -9 "$W2_PID"
START=$(date +%s)
set +e
"$CLIENT" --port "$COORD_PORT" "${QUERIES[0]}" >"$WORK/killed.out" 2>&1
KILL_RC=$?
set -e
ELAPSED=$(($(date +%s) - START))
[ "$KILL_RC" -eq 8 ] || fail "query after worker kill exited $KILL_RC, want 8 ($(head -c 300 "$WORK/killed.out"))"
[ "$ELAPSED" -le 30 ] || fail "failure took ${ELAPSED}s — retry loop not bounded"
grep -qi "unavailable after" "$WORK/killed.out" \
  || fail "error does not name the exhausted retries: $(cat "$WORK/killed.out")"

# The coordinator must still be alive and report the failure; the healthy
# worker's fallback copy is gone with worker choice fixed, but STATS and
# fallback-eligible tables must still answer.
"$CLIENT" --port "$COORD_PORT" --stats >"$WORK/stats.json"
python3 - "$WORK/stats.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
assert stats["failed_shards"] >= 1, stats
assert stats["retries"] >= 1, stats
workers = {w["endpoint"]: w for w in stats["workers"]}
assert any(not w["healthy"] for w in workers.values()), stats
EOF
echo "worker kill: clean ResourceExhausted in ${ELAPSED}s, failure recorded in stats"

echo "shard smoke: PASS"
