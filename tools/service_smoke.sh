#!/usr/bin/env bash
# End-to-end smoke of the query service front door: starts hwf_serve, runs
# eight concurrent hwf_client queries (one cancelled mid-flight), diffs one
# of them against the direct-executor path (hwf_cli), checks the telemetry
# surface (METRICS exposition, slow-query log, PROFILE lookup, per-query
# trace attribution, graceful shutdown), runs a streaming-ingest cycle
# (APPEND -> query -> COMPACT -> query, byte-diffed against a cold server
# over the concatenated data), and exercises admission rejection on a
# second, deliberately tiny service instance.
#
# Usage: tools/service_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD=${1:-build}
SERVE=$BUILD/tools/hwf_serve
CLIENT=$BUILD/tools/hwf_client
CLI=$BUILD/tools/hwf_cli
TOOLS=$(dirname "$0")
WORK=$(mktemp -d)
SERVE_PID=""
SERVE2_PID=""
SERVE3_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  [ -n "$SERVE2_PID" ] && kill "$SERVE2_PID" 2>/dev/null || true
  [ -n "$SERVE3_PID" ] && kill "$SERVE3_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# --- data -----------------------------------------------------------------
python3 - "$WORK/t.csv" <<'EOF'
import random, sys
random.seed(7)
with open(sys.argv[1], "w") as f:
    f.write("grp,ord,val,price\n")
    for _ in range(200000):
        f.write("%d,%d,%d,%.6f\n" % (random.randrange(4),
                random.randrange(1 << 20), random.randrange(100000),
                random.random() * 1000))
EOF

# Heavy enough that a client-side cancel 100 ms in always lands mid-flight
# and that the admission test below can observe it still executing: six
# distinct window specs means six separate sort + build + probe pipelines.
SLOW_SQL="select $(for k in 1 2 3 4 5 6; do
  printf 'percentile_disc(0.5 order by val) over (order by ord rows between 14000%d preceding and current row), ' "$k"
done) count(distinct val) over (order by ord rows between 149999 preceding \
and current row) from t"

start_server() {  # start_server OUT_FILE TABLE_SPEC ARGS... ; echoes the port
  local out=$1 spec=$2; shift 2
  "$SERVE" --port 0 --table "$spec" "$@" >"$out" 2>"$out.err" &
  local pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(awk '/^LISTENING/{print $2; exit}' "$out" 2>/dev/null || true)
    [ -n "$port" ] && break
    kill -0 "$pid" 2>/dev/null || fail "server exited: $(cat "$out.err")"
    sleep 0.1
  done
  [ -n "$port" ] || fail "server did not report a port"
  echo "$pid $port"
}

# --- main service: 8 concurrent clients, one cancelled mid-flight ---------
# HWF_THREADS=4 guarantees pool workers even on 1-core machines, so the
# trace-attribution check below sees a query's spans on multiple threads.
export HWF_THREADS=4
read -r SERVE_PID PORT < <(start_server "$WORK/serve.out" "t=$WORK/t.csv" \
  --sessions 4 --queue 32 \
  --slow_query_log "$WORK/slow.jsonl" --slow_query_ms 0 \
  --trace "$WORK/serve_trace.json" --metrics_dump "$WORK/final_metrics.prom")
unset HWF_THREADS
echo "serving on port $PORT"

QUERIES=(
  "select median(price) over (order by ord rows between 100 preceding and current row) from t"
  "select sum(val) over (partition by grp order by ord rows between 100 preceding and 100 following) from t"
  "select count(distinct val) over (order by ord rows between 150 preceding and current row) from t"
  "select rank() over (partition by grp order by ord groups between 50 preceding and 50 following) from t"
  "select percentile_disc(0.9 order by price) over (order by ord rows between 300 preceding and current row) from t"
  "select dense_rank() over (order by ord rows between 1000 preceding and current row) from t"
  "select first_value(val) over (order by ord rows between 10 preceding and 10 following exclude current row) from t"
)
PIDS=()
for i in "${!QUERIES[@]}"; do
  "$CLIENT" --port "$PORT" "${QUERIES[$i]}" >"$WORK/q$i.csv" 2>"$WORK/q$i.err" &
  PIDS+=($!)
done
# Client #8: cancelled 100 ms into the slow query; must exit 9 (Cancelled).
set +e
"$CLIENT" --port "$PORT" --cancel-after-ms 100 "$SLOW_SQL" \
  >"$WORK/cancelled.out" 2>&1
CANCEL_RC=$?
set -e
[ "$CANCEL_RC" -eq 9 ] || fail "cancelled query exited $CANCEL_RC, want 9 ($(cat "$WORK/cancelled.out"))"

for i in "${!PIDS[@]}"; do
  wait "${PIDS[$i]}" || fail "query $i failed: $(cat "$WORK/q$i.err")"
  rows=$(($(wc -l <"$WORK/q$i.csv") - 1))
  [ "$rows" -eq 200000 ] || fail "query $i returned $rows rows, want 200000"
done

# Differential: the served result of query 0 must match the direct
# executor byte for byte (hwf_cli appends the result as the last column).
"$CLI" --input "$WORK/t.csv" --function median --arg price --order-by ord \
  --frame-begin preceding:100 --frame-end current >"$WORK/direct.csv"
tail -n +2 "$WORK/q0.csv" >"$WORK/served.col"
tail -n +2 "$WORK/direct.csv" | awk -F, '{print $NF}' >"$WORK/direct.col"
cmp "$WORK/served.col" "$WORK/direct.col" \
  || fail "served result differs from direct executor"
echo "differential vs direct executor: identical"

# --- multi-spec sharing: two OVER clauses, one sort ------------------------
# The second spec's ordering is a strict prefix of the first's, so the
# shared-sort optimizer must serve both from one sort chain — observable
# below as a nonzero executor.sorts_shared counter in the metrics payload.
MULTI_SQL="select sum(val) over (partition by grp order by ord, val rows \
between 100 preceding and current row), median(price) over (partition by grp \
order by ord rows between 50 preceding and current row) from t"
"$CLIENT" --port "$PORT" "$MULTI_SQL" >"$WORK/multi.csv" \
  || fail "multi-spec query failed"
rows=$(($(wc -l <"$WORK/multi.csv") - 1))
[ "$rows" -eq 200000 ] || fail "multi-spec query returned $rows rows, want 200000"
cols=$(head -1 "$WORK/multi.csv" | awk -F, '{print NF}')
[ "$cols" -eq 2 ] || fail "multi-spec query returned $cols columns, want 2"
echo "multi-spec query: two OVER clauses answered"

# Stats must reflect the cancellation and report no leaked reservations.
"$CLIENT" --port "$PORT" --stats >"$WORK/stats.json"
python3 - "$WORK/stats.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
assert stats["cancelled"] >= 1, stats
assert stats["completed"] >= 7, stats
assert stats["reserved_bytes"] == 0, stats
EOF
echo "stats: cancellation recorded, reservations drained"

# --- telemetry: METRICS exposition, quantile sanity, PROFILE round trip ---
"$CLIENT" --port "$PORT" --metrics >"$WORK/metrics.prom"
python3 "$TOOLS/validate_metrics.py" \
  --require-nonzero hwf_query_stage_seconds \
  --require-nonzero hwf_executor_sorts_shared_total \
  --require hwf_service_queries_by_outcome_total \
  --require hwf_catalog_epoch \
  --require hwf_table_minor_version \
  "$WORK/metrics.prom" || fail "live METRICS payload failed validation"
python3 - "$WORK/metrics.prom" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
def q(stage, quantile):
    m = re.search(r'^hwf_query_stage_seconds\{[^}]*stage="%s"[^}]*'
                  r'quantile="%s"[^}]*\}\s+(\S+)' % (stage, quantile),
                  text, re.M)
    assert m, "missing stage=%s quantile=%s sample" % (stage, quantile)
    return float(m.group(1))
p50, p99 = q("total", "0.5"), q("total", "0.99")
assert p99 >= p50 >= 0, (p50, p99)
EOF
echo "metrics: exposition valid, total-stage p99 >= p50 >= 0"

# PROFILE round trip: run one query with --show-id, look its profile up.
"$CLIENT" --port "$PORT" --show-id "${QUERIES[0]}" \
  >/dev/null 2>"$WORK/show_id.err"
QID=$(sed -n 's/^id=//p' "$WORK/show_id.err" | head -1)
[ -n "$QID" ] || fail "--show-id printed no id: $(cat "$WORK/show_id.err")"
"$CLIENT" --port "$PORT" --profile-id "$QID" >"$WORK/profile.json"
python3 - "$WORK/profile.json" "$QID" <<'EOF'
import json, sys
record = json.load(open(sys.argv[1]))
assert record["query_id"] == int(sys.argv[2]), record
assert record["outcome"] == "ok", record
assert record["total_seconds"] >= record["exec_seconds"] >= 0, record
assert record["profile"] is not None, record
EOF
echo "profile: query $QID retained and retrievable"

# --- streaming ingest: append -> query -> compact -> query ----------------
# 5000 fresh rows land in t's delta buffer (below the auto-compaction
# ratio, so they stay resident). The same holistic window query answered
# over main+delta, answered again after the explicit fold, and answered by
# a cold server registered with the pre-concatenated CSV must all be
# byte-identical.
python3 - "$WORK/delta.csv" <<'EOF'
import random, sys
random.seed(11)
with open(sys.argv[1], "w") as f:
    f.write("grp,ord,val,price\n")
    for _ in range(5000):
        f.write("%d,%d,%d,%.6f\n" % (random.randrange(4),
                random.randrange(1 << 20), random.randrange(100000),
                random.random() * 1000))
EOF
ING_SQL="select percentile_disc(0.5 order by val) over (order by ord rows \
between 200 preceding and current row) from t"
"$CLIENT" --port "$PORT" "$ING_SQL" >/dev/null  # warm the base-state trees
"$CLIENT" --port "$PORT" --append t --data "$WORK/delta.csv" \
  >"$WORK/append.out" || fail "append failed: $(cat "$WORK/append.out")"
grep -q '^ROWS 5000' "$WORK/append.out" \
  || fail "unexpected append response: $(cat "$WORK/append.out")"
"$CLIENT" --port "$PORT" "$ING_SQL" >"$WORK/ing_merged.csv"
rows=$(($(wc -l <"$WORK/ing_merged.csv") - 1))
[ "$rows" -eq 205000 ] || fail "post-append query saw $rows rows, want 205000"

# The mutation gauges must reflect the resident delta.
"$CLIENT" --port "$PORT" --metrics >"$WORK/metrics_delta.prom"
python3 "$TOOLS/validate_metrics.py" \
  --require-nonzero hwf_table_minor_version \
  --require-nonzero hwf_table_delta_rows \
  --require-nonzero hwf_ingest_rows_appended_total \
  "$WORK/metrics_delta.prom" || fail "post-append metrics failed validation"

"$CLIENT" --port "$PORT" --compact t >"$WORK/compact.out" \
  || fail "compact failed: $(cat "$WORK/compact.out")"
grep -q '^COMPACTED base=205000' "$WORK/compact.out" \
  || fail "unexpected compact response: $(cat "$WORK/compact.out")"
"$CLIENT" --port "$PORT" "$ING_SQL" >"$WORK/ing_compacted.csv"
cmp "$WORK/ing_merged.csv" "$WORK/ing_compacted.csv" \
  || fail "post-compaction result differs from merged main+delta result"

# Cold reference: a fresh server over the concatenated CSV.
cp "$WORK/t.csv" "$WORK/combined.csv"
tail -n +2 "$WORK/delta.csv" >>"$WORK/combined.csv"
read -r SERVE3_PID PORT3 < <(start_server "$WORK/serve3.out" \
  "t=$WORK/combined.csv")
"$CLIENT" --port "$PORT3" "$ING_SQL" >"$WORK/ing_cold.csv"
kill "$SERVE3_PID" 2>/dev/null || true
SERVE3_PID=""
cmp "$WORK/ing_merged.csv" "$WORK/ing_cold.csv" \
  || fail "merged main+delta result differs from cold re-register"
echo "ingest: append -> query -> compact -> query identical to cold rebuild"

# --- graceful shutdown: drain, slow log intact, final metrics + trace -----
kill -TERM "$SERVE_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SERVE_PID" 2>/dev/null && fail "server did not exit on SIGTERM"
SERVE_PID=""

python3 "$TOOLS/validate_metrics.py" \
  --require-nonzero hwf_query_stage_seconds \
  --require hwf_catalog_epoch \
  --require hwf_table_minor_version \
  --require-nonzero hwf_ingest_compactions_total \
  "$WORK/final_metrics.prom" \
  || fail "final metrics dump failed validation"

# Every slow-log line (threshold 0 ms => all queries) is schema-complete
# JSON, and the cancelled query shows up with its outcome.
python3 - "$WORK/slow.jsonl" <<'EOF'
import json, sys
keys = {"query_id", "sql", "outcome", "total_seconds", "queue_wait_seconds",
        "exec_seconds", "parse_plan_seconds", "groups", "cache_hits",
        "cache_misses", "peak_reserved_bytes", "profile"}
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(lines) >= 8, len(lines)
for record in lines:
    assert keys <= set(record), sorted(keys - set(record))
outcomes = {r["outcome"] for r in lines}
assert "ok" in outcomes and "cancelled" in outcomes, outcomes
EOF
echo "slow-query log: $(wc -l <"$WORK/slow.jsonl") schema-complete lines"

# Trace attribution: some query id must appear on spans from at least two
# distinct threads (session thread + pool worker).
python3 - "$WORK/serve_trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
tids_by_query = {}
for e in events:
    qid = e.get("args", {}).get("query")
    if qid is not None:
        tids_by_query.setdefault(qid, set()).add(e["tid"])
assert tids_by_query, "no span carries a query id"
best = max(len(t) for t in tids_by_query.values())
assert best >= 2, "no query id spans >1 thread: %r" % tids_by_query
EOF
echo "trace: query ids attributed across threads"

# --- admission control: tiny instance rejects the overflow query ----------
# HWF_THREADS=1 makes execution serial, so the occupant query holds its
# session for seconds — long enough that the overflow submission below
# deterministically finds the queue and the admission budget full.
export HWF_THREADS=1
read -r SERVE2_PID PORT2 < <(start_server "$WORK/serve2.out" "t=$WORK/t.csv" \
  --sessions 1 --queue 1 --memory_limit 2M --reservation 1M)
unset HWF_THREADS
"$CLIENT" --port "$PORT2" "$SLOW_SQL" >/dev/null 2>&1 &
OCCUPANT=$!
sleep 0.5  # the occupant is now executing (or at least queued first)
"$CLIENT" --port "$PORT2" "$SLOW_SQL" >/dev/null 2>&1 &
QUEUED=$!
sleep 0.3
set +e
"$CLIENT" --port "$PORT2" "$SLOW_SQL" >"$WORK/rejected.out" 2>&1
REJECT_RC=$?
set -e
[ "$REJECT_RC" -eq 8 ] || fail "overflow query exited $REJECT_RC, want 8 ($(head -c 300 "$WORK/rejected.out"))"
echo "admission control: overflow rejected with ResourceExhausted"
kill "$SERVE2_PID" 2>/dev/null || true
SERVE2_PID=""
wait "$OCCUPANT" 2>/dev/null || true
wait "$QUEUED" 2>/dev/null || true

echo "service smoke: PASS"
