#!/usr/bin/env bash
# End-to-end smoke of the query service front door: starts hwf_serve, runs
# eight concurrent hwf_client queries (one cancelled mid-flight), diffs one
# of them against the direct-executor path (hwf_cli), and exercises
# admission rejection on a second, deliberately tiny service instance.
#
# Usage: tools/service_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD=${1:-build}
SERVE=$BUILD/tools/hwf_serve
CLIENT=$BUILD/tools/hwf_client
CLI=$BUILD/tools/hwf_cli
WORK=$(mktemp -d)
SERVE_PID=""
SERVE2_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  [ -n "$SERVE2_PID" ] && kill "$SERVE2_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# --- data -----------------------------------------------------------------
python3 - "$WORK/t.csv" <<'EOF'
import random, sys
random.seed(7)
with open(sys.argv[1], "w") as f:
    f.write("grp,ord,val,price\n")
    for _ in range(200000):
        f.write("%d,%d,%d,%.6f\n" % (random.randrange(4),
                random.randrange(1 << 20), random.randrange(100000),
                random.random() * 1000))
EOF

# Heavy enough that a client-side cancel 100 ms in always lands mid-flight
# and that the admission test below can observe it still executing: six
# distinct window specs means six separate sort + build + probe pipelines.
SLOW_SQL="select $(for k in 1 2 3 4 5 6; do
  printf 'percentile_disc(0.5 order by val) over (order by ord rows between 14000%d preceding and current row), ' "$k"
done) count(distinct val) over (order by ord rows between 149999 preceding \
and current row) from t"

start_server() {  # start_server OUT_FILE ARGS... ; echoes the port
  local out=$1; shift
  "$SERVE" --port 0 --table "t=$WORK/t.csv" "$@" >"$out" 2>"$out.err" &
  local pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(awk '/^LISTENING/{print $2; exit}' "$out" 2>/dev/null || true)
    [ -n "$port" ] && break
    kill -0 "$pid" 2>/dev/null || fail "server exited: $(cat "$out.err")"
    sleep 0.1
  done
  [ -n "$port" ] || fail "server did not report a port"
  echo "$pid $port"
}

# --- main service: 8 concurrent clients, one cancelled mid-flight ---------
read -r SERVE_PID PORT < <(start_server "$WORK/serve.out" --sessions 4 --queue 32)
echo "serving on port $PORT"

QUERIES=(
  "select median(price) over (order by ord rows between 100 preceding and current row) from t"
  "select sum(val) over (partition by grp order by ord rows between 100 preceding and 100 following) from t"
  "select count(distinct val) over (order by ord rows between 150 preceding and current row) from t"
  "select rank() over (partition by grp order by ord groups between 50 preceding and 50 following) from t"
  "select percentile_disc(0.9 order by price) over (order by ord rows between 300 preceding and current row) from t"
  "select dense_rank() over (order by ord rows between 1000 preceding and current row) from t"
  "select first_value(val) over (order by ord rows between 10 preceding and 10 following exclude current row) from t"
)
PIDS=()
for i in "${!QUERIES[@]}"; do
  "$CLIENT" --port "$PORT" "${QUERIES[$i]}" >"$WORK/q$i.csv" 2>"$WORK/q$i.err" &
  PIDS+=($!)
done
# Client #8: cancelled 100 ms into the slow query; must exit 9 (Cancelled).
set +e
"$CLIENT" --port "$PORT" --cancel-after-ms 100 "$SLOW_SQL" \
  >"$WORK/cancelled.out" 2>&1
CANCEL_RC=$?
set -e
[ "$CANCEL_RC" -eq 9 ] || fail "cancelled query exited $CANCEL_RC, want 9 ($(cat "$WORK/cancelled.out"))"

for i in "${!PIDS[@]}"; do
  wait "${PIDS[$i]}" || fail "query $i failed: $(cat "$WORK/q$i.err")"
  rows=$(($(wc -l <"$WORK/q$i.csv") - 1))
  [ "$rows" -eq 200000 ] || fail "query $i returned $rows rows, want 200000"
done

# Differential: the served result of query 0 must match the direct
# executor byte for byte (hwf_cli appends the result as the last column).
"$CLI" --input "$WORK/t.csv" --function median --arg price --order-by ord \
  --frame-begin preceding:100 --frame-end current >"$WORK/direct.csv"
tail -n +2 "$WORK/q0.csv" >"$WORK/served.col"
tail -n +2 "$WORK/direct.csv" | awk -F, '{print $NF}' >"$WORK/direct.col"
cmp "$WORK/served.col" "$WORK/direct.col" \
  || fail "served result differs from direct executor"
echo "differential vs direct executor: identical"

# Stats must reflect the cancellation and report no leaked reservations.
"$CLIENT" --port "$PORT" --stats >"$WORK/stats.json"
python3 - "$WORK/stats.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
assert stats["cancelled"] >= 1, stats
assert stats["completed"] >= 7, stats
assert stats["reserved_bytes"] == 0, stats
EOF
echo "stats: cancellation recorded, reservations drained"

# --- admission control: tiny instance rejects the overflow query ----------
# HWF_THREADS=1 makes execution serial, so the occupant query holds its
# session for seconds — long enough that the overflow submission below
# deterministically finds the queue and the admission budget full.
export HWF_THREADS=1
read -r SERVE2_PID PORT2 < <(start_server "$WORK/serve2.out" \
  --sessions 1 --queue 1 --memory_limit 2M --reservation 1M)
unset HWF_THREADS
"$CLIENT" --port "$PORT2" "$SLOW_SQL" >/dev/null 2>&1 &
OCCUPANT=$!
sleep 0.5  # the occupant is now executing (or at least queued first)
"$CLIENT" --port "$PORT2" "$SLOW_SQL" >/dev/null 2>&1 &
QUEUED=$!
sleep 0.3
set +e
"$CLIENT" --port "$PORT2" "$SLOW_SQL" >"$WORK/rejected.out" 2>&1
REJECT_RC=$?
set -e
[ "$REJECT_RC" -eq 8 ] || fail "overflow query exited $REJECT_RC, want 8 ($(head -c 300 "$WORK/rejected.out"))"
echo "admission control: overflow rejected with ResourceExhausted"
kill "$SERVE2_PID" 2>/dev/null || true
SERVE2_PID=""
wait "$OCCUPANT" 2>/dev/null || true
wait "$QUEUED" 2>/dev/null || true

echo "service smoke: PASS"
