// hwf_client — command-line client for the hwf_serve line protocol.
//
//   hwf_client --port 4140 "select sum(price) over (order by day rows \
//       between 6 preceding and current row) from trades"
//
//   hwf_client --port 4140 --format json --timeout 5 "select ..."
//   hwf_client --port 4140 --cancel-after-ms 50 "select ..."   # SUBMIT,
//       CANCEL mid-flight, then WAIT; exits 9 when cancellation won
//   hwf_client --port 4140 --stats
//   hwf_client --port 4140 --append trades --data new_rows.csv
//   hwf_client --port 4140 --compact trades
//
// Exit codes mirror the service's Status codes (see result_format.h):
// 0 success, 2 usage, 9 cancelled, 10 deadline exceeded, ...
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/status.h"
#include "service/result_format.h"

namespace {

using namespace hwf;

void Usage() {
  std::fprintf(stderr,
               "usage: hwf_client [options] \"SQL\"\n"
               "\n"
               "options:\n"
               "  --host HOST           server host (default 127.0.0.1)\n"
               "  --port N              server port (required)\n"
               "  --format csv|json     result format (default csv)\n"
               "  --timeout SECONDS     per-query deadline\n"
               "  --cancel-after-ms N   submit, cancel after N ms, wait\n"
               "  --stats               print service statistics instead\n"
               "  --metrics             print Prometheus metrics instead\n"
               "  --profile-id N        print a finished query's retained\n"
               "                        profile instead\n"
               "  --show-id             print the query's service id on "
               "stderr\n"
               "  --ping                liveness check instead of a query\n"
               "  --append TABLE        append CSV rows (see --data) to "
               "TABLE\n"
               "  --upsert TABLE        keyed upsert of CSV rows into TABLE\n"
               "  --data FILE           CSV payload for --append/--upsert\n"
               "                        (with header; '-' reads stdin)\n"
               "  --compact TABLE       fold TABLE's delta into its base\n");
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool ReadLine(int fd, std::string* line) {
  line->clear();
  char c;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return !line->empty();
    if (c == '\n') return true;
    if (c != '\r') line->push_back(c);
  }
}

bool ReadExact(int fd, size_t bytes, std::string* out) {
  out->assign(bytes, '\0');
  size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::read(fd, out->data() + got, bytes - got);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one framed server response ("OK", "OK <n>\n<payload>" or
/// "ERR <code> <message>").
Status ReadResponse(int fd, std::string* payload,
                    std::string* header_extra = nullptr) {
  payload->clear();
  if (header_extra != nullptr) header_extra->clear();
  std::string header;
  if (!ReadLine(fd, &header)) {
    return Status::Internal("connection closed while awaiting response");
  }
  if (header.rfind("ERR ", 0) == 0) {
    // "ERR <code> <message>"
    const size_t space = header.find(' ', 4);
    const int code = std::atoi(header.substr(4).c_str());
    std::string message = space == std::string::npos
                              ? std::string("server error")
                              : header.substr(space + 1);
    // Reconstruct a Status with the matching code so the exit code
    // round-trips through the client.
    static const StatusCode kCodes[] = {
        StatusCode::kInternal,          StatusCode::kInternal,
        StatusCode::kInternal,          StatusCode::kInvalidArgument,
        StatusCode::kOutOfRange,        StatusCode::kNotImplemented,
        StatusCode::kTypeMismatch,      StatusCode::kInternal,
        StatusCode::kResourceExhausted, StatusCode::kCancelled,
        StatusCode::kDeadlineExceeded,
    };
    const StatusCode status_code =
        code >= 0 && code < static_cast<int>(std::size(kCodes))
            ? kCodes[code]
            : StatusCode::kInternal;
    return Status(status_code, std::move(message));
  }
  if (header == "OK") return Status::OK();
  if (header.rfind("OK ", 0) == 0) {
    char* end = nullptr;
    const size_t bytes =
        static_cast<size_t>(std::strtoull(header.c_str() + 3, &end, 10));
    if (header_extra != nullptr && end != nullptr && *end == ' ') {
      *header_extra = end + 1;
    }
    if (!ReadExact(fd, bytes, payload)) {
      return Status::Internal("connection closed mid-payload");
    }
    return Status::OK();
  }
  return Status::Internal("malformed response header: " + header);
}

/// One protocol exchange. Returns the server's status; on OK, `payload`
/// holds the framed response body (empty for plain "OK" acks) and
/// `header_extra` (when non-null) whatever followed the byte count in the
/// header (e.g. "id=7").
Status Exchange(int fd, const std::string& command, std::string* payload,
                std::string* header_extra = nullptr) {
  if (!WriteAll(fd, command + "\n")) {
    payload->clear();
    return Status::Internal("connection closed while sending");
  }
  return ReadResponse(fd, payload, header_extra);
}

/// APPEND/UPSERT: the byte-counted CSV payload follows the command line.
Status ExchangeWithBody(int fd, const std::string& command,
                        const std::string& body, std::string* payload) {
  if (!WriteAll(fd, command + " " + std::to_string(body.size()) + "\n" +
                        body)) {
    payload->clear();
    return Status::Internal("connection closed while sending");
  }
  return ReadResponse(fd, payload);
}

/// Reads a whole file, or stdin for "-".
StatusOr<std::string> ReadDataFile(const std::string& path) {
  std::FILE* file = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open " + path);
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, file)) > 0) {
    data.append(buf, n);
  }
  if (file != stdin) std::fclose(file);
  return data;
}

int Connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string format;
  std::string sql;
  double timeout_seconds = -1;
  int cancel_after_ms = -1;
  bool stats = false;
  bool metrics = false;
  bool show_id = false;
  long long profile_id = -1;
  bool ping = false;
  std::string append_table;
  std::string upsert_table;
  std::string data_path;
  std::string compact_table;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--host") {
      host = next();
    } else if (flag == "--port") {
      port = std::atoi(next());
    } else if (flag == "--format") {
      format = next();
    } else if (flag == "--timeout") {
      timeout_seconds = std::atof(next());
    } else if (flag == "--cancel-after-ms") {
      cancel_after_ms = std::atoi(next());
    } else if (flag == "--stats") {
      stats = true;
    } else if (flag == "--metrics") {
      metrics = true;
    } else if (flag == "--show-id") {
      show_id = true;
    } else if (flag == "--profile-id") {
      profile_id = std::atoll(next());
    } else if (flag == "--ping") {
      ping = true;
    } else if (flag == "--append") {
      append_table = next();
    } else if (flag == "--upsert") {
      upsert_table = next();
    } else if (flag == "--data") {
      data_path = next();
    } else if (flag == "--compact") {
      compact_table = next();
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      return 0;
    } else if (flag.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      Usage();
      return 2;
    } else {
      sql = flag;
    }
  }
  const bool ingest = !append_table.empty() || !upsert_table.empty();
  if (ingest && data_path.empty()) {
    std::fprintf(stderr, "error: --append/--upsert need --data FILE\n");
    return 2;
  }
  if (port == 0 || (sql.empty() && !stats && !metrics && !ping &&
                    profile_id < 0 && !ingest && compact_table.empty())) {
    Usage();
    return 2;
  }

  const int fd = Connect(host, port);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s:%d\n", host.c_str(),
                 port);
    return 1;
  }

  auto run = [&]() -> Status {
    std::string payload;
    if (ping) {
      Status status = Exchange(fd, "PING", &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    if (stats) {
      Status status = Exchange(fd, "STATS", &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    if (metrics) {
      Status status = Exchange(fd, "METRICS", &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    if (profile_id >= 0) {
      Status status =
          Exchange(fd, "PROFILE " + std::to_string(profile_id), &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    if (ingest) {
      StatusOr<std::string> data = ReadDataFile(data_path);
      if (!data.ok()) return data.status();
      const std::string command =
          append_table.empty() ? "UPSERT " + upsert_table
                               : "APPEND " + append_table;
      Status status = ExchangeWithBody(fd, command, *data, &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      // Fall through only for an explicit chained --compact.
      if (compact_table.empty()) return Status::OK();
    }
    if (!compact_table.empty()) {
      Status status = Exchange(fd, "COMPACT " + compact_table, &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    if (!format.empty()) {
      if (Status s = Exchange(fd, "FORMAT " + format, &payload); !s.ok()) {
        return s;
      }
    }
    if (timeout_seconds >= 0) {
      if (Status s = Exchange(fd, "TIMEOUT " + std::to_string(timeout_seconds),
                              &payload);
          !s.ok()) {
        return s;
      }
    }
    if (cancel_after_ms < 0) {
      std::string extra;
      Status status = Exchange(fd, "QUERY " + sql, &payload, &extra);
      if (!status.ok()) return status;
      if (show_id && extra.rfind("id=", 0) == 0) {
        std::fprintf(stderr, "%s\n", extra.c_str());
      }
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    // Cancellation exercise: SUBMIT, sleep, CANCEL, WAIT.
    Status status = Exchange(fd, "SUBMIT " + sql, &payload);
    if (!status.ok()) return status;
    if (payload.rfind("ID ", 0) != 0) {
      return Status::Internal("unexpected SUBMIT response: " + payload);
    }
    const std::string id = payload.substr(3, payload.find('\n') - 3);
    std::this_thread::sleep_for(std::chrono::milliseconds(cancel_after_ms));
    if (Status s = Exchange(fd, "CANCEL " + id, &payload); !s.ok()) return s;
    status = Exchange(fd, "WAIT " + id, &payload);
    if (!status.ok()) return status;
    std::fputs(payload.c_str(), stdout);
    return Status::OK();
  };

  const Status status = run();
  std::string quit_payload;
  Exchange(fd, "QUIT", &quit_payload);
  ::close(fd);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  }
  return service::ExitCodeForStatus(status);
}
