// hwf_client — command-line client for the hwf_serve line protocol.
//
//   hwf_client --port 4140 "select sum(price) over (order by day rows \
//       between 6 preceding and current row) from trades"
//
//   hwf_client --port 4140 --format json --timeout 5 "select ..."
//   hwf_client --port 4140 --cancel-after-ms 50 "select ..."   # SUBMIT,
//       CANCEL mid-flight, then WAIT; exits 9 when cancellation won
//   hwf_client --port 4140 --stats
//   hwf_client --port 4140 --append trades --data new_rows.csv
//   hwf_client --port 4140 --compact trades
//
// The wire plumbing (framing, HELLO protocol-version handshake, connect
// timeout) lives in dist/wire_client.h, shared with the scatter/gather
// coordinator; this file is only flag parsing and command sequencing.
//
// Exit codes mirror the service's Status codes (see result_format.h):
// 0 success, 2 usage, 9 cancelled, 10 deadline exceeded, ...
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/status.h"
#include "dist/wire_client.h"
#include "service/result_format.h"

namespace {

using namespace hwf;

void Usage() {
  std::fprintf(stderr,
               "usage: hwf_client [options] \"SQL\"\n"
               "\n"
               "options:\n"
               "  --host HOST           server host (default 127.0.0.1)\n"
               "  --port N              server port (required)\n"
               "  --format csv|json     result format (default csv)\n"
               "  --timeout SECONDS     per-query deadline\n"
               "  --cancel-after-ms N   submit, cancel after N ms, wait\n"
               "  --explain             print the coordinator's plan for\n"
               "                        the SQL instead of executing it\n"
               "  --stats               print service statistics instead\n"
               "  --metrics             print Prometheus metrics instead\n"
               "  --profile-id N        print a finished query's retained\n"
               "                        profile instead\n"
               "  --show-id             print the query's service id on "
               "stderr\n"
               "  --ping                liveness check instead of a query\n"
               "  --no-handshake        skip the HELLO protocol-version "
               "check\n"
               "  --append TABLE        append CSV rows (see --data) to "
               "TABLE\n"
               "  --upsert TABLE        keyed upsert of CSV rows into TABLE\n"
               "  --data FILE           CSV payload for --append/--upsert\n"
               "                        (with header; '-' reads stdin)\n"
               "  --compact TABLE       fold TABLE's delta into its base\n");
}

/// Reads a whole file, or stdin for "-".
StatusOr<std::string> ReadDataFile(const std::string& path) {
  std::FILE* file = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open " + path);
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, file)) > 0) {
    data.append(buf, n);
  }
  if (file != stdin) std::fclose(file);
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string format;
  std::string sql;
  double timeout_seconds = -1;
  int cancel_after_ms = -1;
  bool explain = false;
  bool stats = false;
  bool metrics = false;
  bool show_id = false;
  bool handshake = true;
  long long profile_id = -1;
  bool ping = false;
  std::string append_table;
  std::string upsert_table;
  std::string data_path;
  std::string compact_table;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--host") {
      host = next();
    } else if (flag == "--port") {
      port = std::atoi(next());
    } else if (flag == "--format") {
      format = next();
    } else if (flag == "--timeout") {
      timeout_seconds = std::atof(next());
    } else if (flag == "--cancel-after-ms") {
      cancel_after_ms = std::atoi(next());
    } else if (flag == "--explain") {
      explain = true;
    } else if (flag == "--stats") {
      stats = true;
    } else if (flag == "--metrics") {
      metrics = true;
    } else if (flag == "--show-id") {
      show_id = true;
    } else if (flag == "--no-handshake") {
      handshake = false;
    } else if (flag == "--profile-id") {
      profile_id = std::atoll(next());
    } else if (flag == "--ping") {
      ping = true;
    } else if (flag == "--append") {
      append_table = next();
    } else if (flag == "--upsert") {
      upsert_table = next();
    } else if (flag == "--data") {
      data_path = next();
    } else if (flag == "--compact") {
      compact_table = next();
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      return 0;
    } else if (flag.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      Usage();
      return 2;
    } else {
      sql = flag;
    }
  }
  const bool ingest = !append_table.empty() || !upsert_table.empty();
  if (ingest && data_path.empty()) {
    std::fprintf(stderr, "error: --append/--upsert need --data FILE\n");
    return 2;
  }
  if (port == 0 || (sql.empty() && !stats && !metrics && !ping &&
                    profile_id < 0 && !ingest && compact_table.empty())) {
    Usage();
    return 2;
  }

  dist::WireClientOptions options;
  options.host = host;
  options.port = port;
  options.check_protocol_version = handshake;
  dist::WireClient client(options);
  if (Status connected = client.Connect(); !connected.ok()) {
    std::fprintf(stderr, "error: cannot connect to %s:%d: %s\n",
                 host.c_str(), port, connected.message().c_str());
    return 1;
  }

  auto run = [&]() -> Status {
    std::string payload;
    if (ping) {
      Status status = client.Exchange("PING", &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    if (stats) {
      Status status = client.Exchange("STATS", &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    if (metrics) {
      Status status = client.Exchange("METRICS", &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    if (profile_id >= 0) {
      Status status = client.Exchange("PROFILE " + std::to_string(profile_id),
                                      &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    if (ingest) {
      StatusOr<std::string> data = ReadDataFile(data_path);
      if (!data.ok()) return data.status();
      const std::string command =
          append_table.empty() ? "UPSERT " + upsert_table
                               : "APPEND " + append_table;
      Status status = client.ExchangeWithBody(command, *data, &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      // Fall through only for an explicit chained --compact.
      if (compact_table.empty()) return Status::OK();
    }
    if (!compact_table.empty()) {
      Status status = client.Exchange("COMPACT " + compact_table, &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    if (explain) {
      Status status = client.Exchange("EXPLAIN " + sql, &payload);
      if (!status.ok()) return status;
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    if (!format.empty()) {
      if (Status s = client.Exchange("FORMAT " + format, &payload); !s.ok()) {
        return s;
      }
    }
    if (timeout_seconds >= 0) {
      if (Status s = client.Exchange(
              "TIMEOUT " + std::to_string(timeout_seconds), &payload);
          !s.ok()) {
        return s;
      }
    }
    if (cancel_after_ms < 0) {
      std::string extra;
      Status status = client.Exchange("QUERY " + sql, &payload, &extra);
      if (!status.ok()) return status;
      if (show_id && extra.rfind("id=", 0) == 0) {
        std::fprintf(stderr, "%s\n", extra.c_str());
      }
      std::fputs(payload.c_str(), stdout);
      return Status::OK();
    }
    // Cancellation exercise: SUBMIT, sleep, CANCEL, WAIT.
    Status status = client.Exchange("SUBMIT " + sql, &payload);
    if (!status.ok()) return status;
    if (payload.rfind("ID ", 0) != 0) {
      return Status::Internal("unexpected SUBMIT response: " + payload);
    }
    const std::string id = payload.substr(3, payload.find('\n') - 3);
    std::this_thread::sleep_for(std::chrono::milliseconds(cancel_after_ms));
    if (Status s = client.Exchange("CANCEL " + id, &payload); !s.ok()) {
      return s;
    }
    status = client.Exchange("WAIT " + id, &payload);
    if (!status.ok()) return status;
    std::fputs(payload.c_str(), stdout);
    return Status::OK();
  };

  const Status status = run();
  std::string quit_payload;
  client.Exchange("QUIT", &quit_payload);
  client.Close();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  }
  return service::ExitCodeForStatus(status);
}
