#!/usr/bin/env python3
"""Gate benchmark regressions against committed baselines.

Compares one or more freshly produced BENCH_*.json files (the bench_util.h
BenchJson schema: {"bench", "scale", "entries": [{"label", <metrics>}]})
against committed baseline files, entry by entry, matched on "label".

For every metric present in both the baseline and the current entry the
check applies a direction-aware tolerance band:

  metric            direction      default tolerance (relative)
  qps               higher-better  0.5   (fail if current < baseline * 0.5)
  throughput_mtps   higher-better  0.5
  seconds           lower-better   1.0   (fail if current > baseline * 2.0)
  ratio             lower-better   0.3   (fail if current > baseline * 1.3)

Default bands are deliberately wide because absolute numbers move between
machines; hardware-independent metrics (like "ratio" overhead entries) can
be gated tighter with --tolerance. An entry label present in the baseline
but missing from the current run is a failure (a silently dropped
measurement must not pass the gate). Scale mismatch between the files is an
error unless --ignore-scale is given.

Usage:
  check_bench_regression.py \
      --baseline bench/baselines/BENCH_service.json \
      --current BENCH_service.json \
      [--metric qps --metric ratio] \
      [--tolerance qps=0.8] [--ignore-scale]

--baseline/--current may repeat; the i-th baseline is compared against the
i-th current file. Without --metric, every known metric found in both
entries is checked. Exit code 0 when all checks pass, 1 otherwise.
"""

import argparse
import json
import sys

# metric -> (higher_is_better, default relative tolerance)
METRICS = {
    "qps": (True, 0.5),
    "throughput_mtps": (True, 0.5),
    "seconds": (False, 1.0),
    "ratio": (False, 0.3),
}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"ERROR: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def entries_by_label(doc, path):
    result = {}
    for entry in doc.get("entries", []):
        label = entry.get("label")
        if label is None:
            continue
        if label in result:
            print(f"WARNING: duplicate label {label!r} in {path}; "
                  f"using the last occurrence", file=sys.stderr)
        result[label] = entry
    return result


def check_pair(baseline_path, current_path, metrics, tolerances,
               ignore_scale):
    baseline = load(baseline_path)
    current = load(current_path)
    failures = []
    checked = 0

    if not ignore_scale and baseline.get("scale") != current.get("scale"):
        failures.append(
            f"{current_path}: scale {current.get('scale')} does not match "
            f"baseline scale {baseline.get('scale')} "
            f"(rerun with the baseline's HWF_BENCH_SCALE or pass "
            f"--ignore-scale)")
        return checked, failures

    base_entries = entries_by_label(baseline, baseline_path)
    cur_entries = entries_by_label(current, current_path)

    for label, base_entry in base_entries.items():
        cur_entry = cur_entries.get(label)
        if cur_entry is None:
            failures.append(
                f"{current_path}: baseline entry {label!r} missing from "
                f"current run")
            continue
        for metric in metrics:
            if metric not in base_entry or metric not in cur_entry:
                continue
            base_value = float(base_entry[metric])
            cur_value = float(cur_entry[metric])
            higher_better, tol = METRICS[metric]
            tol = tolerances.get(metric, tol)
            checked += 1
            if base_value == 0:
                continue  # no meaningful relative band
            if higher_better:
                floor = base_value * (1.0 - tol)
                ok = cur_value >= floor
                band = f">= {floor:.4g}"
            else:
                ceil = base_value * (1.0 + tol)
                ok = cur_value <= ceil
                band = f"<= {ceil:.4g}"
            status = "ok  " if ok else "FAIL"
            print(f"  [{status}] {label!r} {metric}: baseline {base_value:.4g}"
                  f" current {cur_value:.4g} (band {band})")
            if not ok:
                failures.append(
                    f"{current_path}: {label!r} {metric} = {cur_value:.4g} "
                    f"outside band {band} (baseline {base_value:.4g}, "
                    f"tolerance {tol})")
    return checked, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", action="append", required=True,
                        help="committed baseline BENCH json (repeatable)")
    parser.add_argument("--current", action="append", required=True,
                        help="freshly produced BENCH json (repeatable, "
                             "zipped with --baseline)")
    parser.add_argument("--metric", action="append", default=[],
                        choices=sorted(METRICS),
                        help="metric to check (default: all known)")
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="METRIC=REL",
                        help="override relative tolerance, e.g. qps=0.8")
    parser.add_argument("--ignore-scale", action="store_true",
                        help="skip the scale-field equality check")
    args = parser.parse_args()

    if len(args.baseline) != len(args.current):
        print("ERROR: --baseline and --current counts differ",
              file=sys.stderr)
        return 2

    tolerances = {}
    for spec in args.tolerance:
        metric, _, value = spec.partition("=")
        if metric not in METRICS:
            print(f"ERROR: unknown metric in --tolerance: {metric!r}",
                  file=sys.stderr)
            return 2
        try:
            tolerances[metric] = float(value)
        except ValueError:
            print(f"ERROR: bad tolerance value: {spec!r}", file=sys.stderr)
            return 2

    metrics = args.metric or sorted(METRICS)

    total_checked = 0
    all_failures = []
    for baseline_path, current_path in zip(args.baseline, args.current):
        print(f"{baseline_path} vs {current_path}:")
        checked, failures = check_pair(baseline_path, current_path, metrics,
                                       tolerances, args.ignore_scale)
        total_checked += checked
        all_failures.extend(failures)

    if all_failures:
        print(f"\nFAIL: {len(all_failures)} regression(s) "
              f"({total_checked} checks)", file=sys.stderr)
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if total_checked == 0:
        print("\nFAIL: no metric checks ran (label or metric mismatch?)",
              file=sys.stderr)
        return 1
    print(f"\nOK: {total_checked} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
