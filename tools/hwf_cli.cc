// hwf_cli — run a framed window function over a CSV file.
//
// Examples:
//   hwf_cli --input trades.csv --function median --arg price
//           --order-by day --frame-begin preceding:6 --frame-end current
//
//   hwf_cli --input results.csv --function rank --func-order-by tps:desc
//           --order-by date --frame-begin unbounded --frame-end current
//
//   hwf_cli --input orders.csv --function count_distinct --arg custkey
//           --order-by orderdate --range --frame-begin preceding:30
//           --frame-end current --output with_mau.csv --format json
//
// The result is the input table plus one column (named after the
// function, or --as NAME), written to stdout or --output as CSV or JSON
// (--format). Every failure exits with the Status-code-specific exit code
// documented in service/result_format.h (2 = usage error).
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "mem/memory_budget.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "service/result_format.h"
#include "storage/csv.h"
#include "window/executor.h"

namespace {

using namespace hwf;

void Usage() {
  std::fprintf(
      stderr,
      "usage: hwf_cli --input FILE --function FN [options]\n"
      "\n"
      "functions: count_star count sum min max avg count_distinct\n"
      "           sum_distinct avg_distinct min_distinct max_distinct\n"
      "           rank dense_rank row_number percent_rank cume_dist ntile\n"
      "           percentile_disc percentile_cont median first_value\n"
      "           last_value nth_value lead lag mode\n"
      "\n"
      "options:\n"
      "  --arg COLUMN               function argument column\n"
      "  --order-by COL[:desc][:nulls_first]   frame ORDER BY (repeatable)\n"
      "  --func-order-by COL[:desc]            function-level ORDER BY\n"
      "  --partition-by COLUMN      PARTITION BY (repeatable)\n"
      "  --frame-begin SPEC         unbounded | current | preceding:N |\n"
      "                             following:N | preceding-col:COL | "
      "following-col:COL\n"
      "  --frame-end SPEC           (same forms; default current)\n"
      "  --range | --groups         frame mode (default ROWS)\n"
      "  --exclude current|group|ties\n"
      "  --filter COLUMN            FILTER clause (int64 boolean column)\n"
      "  --ignore-nulls             IGNORE NULLS (value functions)\n"
      "  --fraction F               percentile fraction (default 0.5)\n"
      "  --param N                  lead/lag offset, nth_value n, ntile "
      "buckets\n"
      "  --engine mst|naive|incremental|ost     (default mst)\n"
      "  --memory_limit BYTES       memory budget with optional K/M/G\n"
      "                             suffix (e.g. 256M); spills to disk\n"
      "                             instead of exceeding it (default "
      "unlimited)\n"
      "  --probe_batch N            tree probes kept in flight per thread by\n"
      "                             the batched probe kernel (default 16;\n"
      "                             0 = scalar probes)\n"
      "  --as NAME                  result column name\n"
      "  --format csv|json          output format (default csv)\n"
      "  --output FILE              write the result here (default stdout)\n"
      "  --explain                  print the execution profile to stderr\n"
      "  --profile FILE             write the execution profile as JSON\n"
      "  --trace FILE               write a Chrome trace_event JSON of the "
      "run\n"
      "\n"
      "exit codes: 0 ok, 2 usage, 3 invalid argument, 4 out of range,\n"
      "            5 not implemented, 6 type mismatch, 7 internal,\n"
      "            8 resource exhausted, 9 cancelled, 10 deadline "
      "exceeded\n");
}

std::optional<WindowFunctionKind> ParseFunction(const std::string& name) {
  static const std::pair<const char*, WindowFunctionKind> kFunctions[] = {
      {"count_star", WindowFunctionKind::kCountStar},
      {"count", WindowFunctionKind::kCount},
      {"sum", WindowFunctionKind::kSum},
      {"min", WindowFunctionKind::kMin},
      {"max", WindowFunctionKind::kMax},
      {"avg", WindowFunctionKind::kAvg},
      {"count_distinct", WindowFunctionKind::kCountDistinct},
      {"sum_distinct", WindowFunctionKind::kSumDistinct},
      {"avg_distinct", WindowFunctionKind::kAvgDistinct},
      {"min_distinct", WindowFunctionKind::kMinDistinct},
      {"max_distinct", WindowFunctionKind::kMaxDistinct},
      {"rank", WindowFunctionKind::kRank},
      {"dense_rank", WindowFunctionKind::kDenseRank},
      {"row_number", WindowFunctionKind::kRowNumber},
      {"percent_rank", WindowFunctionKind::kPercentRank},
      {"cume_dist", WindowFunctionKind::kCumeDist},
      {"ntile", WindowFunctionKind::kNtile},
      {"percentile_disc", WindowFunctionKind::kPercentileDisc},
      {"percentile_cont", WindowFunctionKind::kPercentileCont},
      {"median", WindowFunctionKind::kMedian},
      {"first_value", WindowFunctionKind::kFirstValue},
      {"last_value", WindowFunctionKind::kLastValue},
      {"nth_value", WindowFunctionKind::kNthValue},
      {"lead", WindowFunctionKind::kLead},
      {"lag", WindowFunctionKind::kLag},
      {"mode", WindowFunctionKind::kMode},
  };
  for (const auto& [fn_name, kind] : kFunctions) {
    if (name == fn_name) return kind;
  }
  return std::nullopt;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

Status ParseSortKey(const Table& table, const std::string& spec,
                    SortKey* key) {
  std::vector<std::string> parts = Split(spec, ':');
  StatusOr<size_t> column = table.ColumnIndex(parts[0]);
  if (!column.ok()) return column.status();
  key->column = *column;
  for (size_t i = 1; i < parts.size(); ++i) {
    if (parts[i] == "desc") {
      key->ascending = false;
    } else if (parts[i] == "asc") {
      key->ascending = true;
    } else if (parts[i] == "nulls_first") {
      key->nulls_first = true;
    } else if (parts[i] == "nulls_last") {
      key->nulls_first = false;
    } else {
      return Status::InvalidArgument("unknown sort modifier '" + parts[i] +
                                     "'");
    }
  }
  return Status::OK();
}

Status ParseFrameBound(const Table& table, const std::string& spec,
                       FrameBound* bound) {
  std::vector<std::string> parts = Split(spec, ':');
  const std::string& kind = parts[0];
  if (kind == "unbounded" || kind == "unbounded_preceding") {
    *bound = FrameBound::UnboundedPreceding();
  } else if (kind == "unbounded_following") {
    *bound = FrameBound::UnboundedFollowing();
  } else if (kind == "current") {
    *bound = FrameBound::CurrentRow();
  } else if ((kind == "preceding" || kind == "following") &&
             parts.size() == 2) {
    const int64_t offset = std::atoll(parts[1].c_str());
    *bound = kind == "preceding" ? FrameBound::Preceding(offset)
                                 : FrameBound::Following(offset);
  } else if ((kind == "preceding-col" || kind == "following-col") &&
             parts.size() == 2) {
    StatusOr<size_t> column = table.ColumnIndex(parts[1]);
    if (!column.ok()) return column.status();
    *bound = kind == "preceding-col" ? FrameBound::PrecedingColumn(*column)
                                     : FrameBound::FollowingColumn(*column);
  } else {
    return Status::InvalidArgument("bad frame bound '" + spec + "'");
  }
  return Status::OK();
}

/// Everything main() parsed from argv; column names still unresolved.
struct CliArgs {
  std::string input_path;
  std::string output_path;
  std::string function_name;
  WindowFunctionKind kind = WindowFunctionKind::kCountStar;
  std::string result_name;
  std::string engine_name = "mst";
  std::vector<std::string> order_specs;
  std::vector<std::string> func_order_specs;
  std::vector<std::string> partition_names;
  std::string arg_name;
  std::string filter_name;
  std::string begin_spec = "unbounded";
  std::string end_spec = "current";
  std::string exclude_spec;
  std::string format_name = "csv";
  FrameMode mode = FrameMode::kRows;
  bool ignore_nulls = false;
  double fraction = 0.5;
  int64_t param = 1;
  bool explain = false;
  size_t memory_limit_bytes = 0;
  size_t probe_batch = MergeSortTreeOptions{}.probe_batch_size;
  std::string profile_path;
  std::string trace_path;
};

/// The fallible part of the CLI: every failure is a Status, so main() can
/// map it to a distinct exit code.
Status RunCli(const CliArgs& args) {
  StatusOr<service::ResultFormat> format =
      service::ParseResultFormat(args.format_name);
  if (!format.ok()) return format.status();

  StatusOr<Table> table_or = ReadCsvFile(args.input_path);
  if (!table_or.ok()) return table_or.status();
  Table table = std::move(*table_or);

  WindowSpec spec;
  spec.frame.mode = args.mode;
  for (const std::string& name : args.partition_names) {
    StatusOr<size_t> column = table.ColumnIndex(name);
    if (!column.ok()) return column.status();
    spec.partition_by.push_back(*column);
  }
  for (const std::string& order : args.order_specs) {
    SortKey key;
    if (Status s = ParseSortKey(table, order, &key); !s.ok()) return s;
    spec.order_by.push_back(key);
  }
  if (Status s = ParseFrameBound(table, args.begin_spec, &spec.frame.begin);
      !s.ok()) {
    return s;
  }
  if (Status s = ParseFrameBound(table, args.end_spec, &spec.frame.end);
      !s.ok()) {
    return s;
  }
  if (!args.exclude_spec.empty()) {
    if (args.exclude_spec == "current") {
      spec.frame.exclusion = FrameExclusion::kCurrentRow;
    } else if (args.exclude_spec == "group") {
      spec.frame.exclusion = FrameExclusion::kGroup;
    } else if (args.exclude_spec == "ties") {
      spec.frame.exclusion = FrameExclusion::kTies;
    } else {
      return Status::InvalidArgument("bad --exclude '" + args.exclude_spec +
                                     "'");
    }
  }

  WindowFunctionCall call;
  call.kind = args.kind;
  call.ignore_nulls = args.ignore_nulls;
  call.fraction = args.fraction;
  call.param = args.param;
  if (!args.arg_name.empty()) {
    StatusOr<size_t> column = table.ColumnIndex(args.arg_name);
    if (!column.ok()) return column.status();
    call.argument = *column;
  }
  for (const std::string& order : args.func_order_specs) {
    SortKey key;
    if (Status s = ParseSortKey(table, order, &key); !s.ok()) return s;
    call.order_by.push_back(key);
  }
  if (!args.filter_name.empty()) {
    StatusOr<size_t> column = table.ColumnIndex(args.filter_name);
    if (!column.ok()) return column.status();
    call.filter = *column;
  }

  WindowExecutorOptions options;
  if (args.engine_name == "mst") {
    options.engine = WindowEngine::kMergeSortTree;
  } else if (args.engine_name == "naive") {
    options.engine = WindowEngine::kNaive;
  } else if (args.engine_name == "incremental") {
    options.engine = WindowEngine::kIncremental;
  } else if (args.engine_name == "ost") {
    options.engine = WindowEngine::kOrderStatisticTree;
  } else {
    return Status::InvalidArgument("unknown engine '" + args.engine_name +
                                   "'");
  }
  options.memory_limit_bytes = args.memory_limit_bytes;
  options.tree.probe_batch_size = args.probe_batch;
  obs::ExecutionProfile profile;
  const bool want_profile = args.explain || !args.profile_path.empty() ||
                            !args.trace_path.empty();
  if (want_profile) options.profile = &profile;
  if (!args.trace_path.empty()) obs::Tracer::Get().Enable();

  StatusOr<Column> result = EvaluateWindowFunction(table, spec, call, options);
  if (!result.ok()) return result.status();
  if (args.explain) {
    std::fprintf(stderr, "%s", profile.Explain().c_str());
  }
  if (!args.profile_path.empty()) {
    const std::string json = profile.ToJson();
    if (std::FILE* f = std::fopen(args.profile_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    } else {
      return Status::Internal("cannot open " + args.profile_path);
    }
  }
  if (!args.trace_path.empty()) {
    if (Status s = obs::Tracer::Get().WriteChromeTrace(args.trace_path);
        !s.ok()) {
      return s;
    }
  }
  table.AddColumn(
      args.result_name.empty() ? args.function_name : args.result_name,
      std::move(*result));

  const std::string rendered = service::FormatTable(table, *format);
  if (args.output_path.empty()) {
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  } else {
    std::FILE* f = std::fopen(args.output_path.c_str(), "w");
    if (f == nullptr) {
      return Status::Internal("cannot open " + args.output_path);
    }
    std::fwrite(rendered.data(), 1, rendered.size(), f);
    std::fclose(f);
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--input") {
      args.input_path = next();
    } else if (flag == "--output") {
      args.output_path = next();
    } else if (flag == "--function") {
      args.function_name = next();
    } else if (flag == "--arg") {
      args.arg_name = next();
    } else if (flag == "--order-by") {
      args.order_specs.push_back(next());
    } else if (flag == "--func-order-by") {
      args.func_order_specs.push_back(next());
    } else if (flag == "--partition-by") {
      args.partition_names.push_back(next());
    } else if (flag == "--frame-begin") {
      args.begin_spec = next();
    } else if (flag == "--frame-end") {
      args.end_spec = next();
    } else if (flag == "--range") {
      args.mode = FrameMode::kRange;
    } else if (flag == "--groups") {
      args.mode = FrameMode::kGroups;
    } else if (flag == "--exclude") {
      args.exclude_spec = next();
    } else if (flag == "--filter") {
      args.filter_name = next();
    } else if (flag == "--ignore-nulls") {
      args.ignore_nulls = true;
    } else if (flag == "--fraction") {
      args.fraction = std::atof(next());
    } else if (flag == "--param") {
      args.param = std::atoll(next());
    } else if (flag == "--engine") {
      args.engine_name = next();
    } else if (flag == "--memory_limit") {
      const char* value = next();
      if (!mem::ParseMemorySize(value, &args.memory_limit_bytes)) {
        std::fprintf(stderr, "error: bad --memory_limit '%s'\n", value);
        return 2;
      }
    } else if (flag == "--probe_batch") {
      args.probe_batch = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--as") {
      args.result_name = next();
    } else if (flag == "--format") {
      args.format_name = next();
    } else if (flag == "--explain") {
      args.explain = true;
    } else if (flag == "--profile") {
      args.profile_path = next();
    } else if (flag == "--trace") {
      args.trace_path = next();
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      Usage();
      return 2;
    }
  }

  if (args.input_path.empty() || args.function_name.empty()) {
    Usage();
    return 2;
  }
  std::optional<WindowFunctionKind> kind = ParseFunction(args.function_name);
  if (!kind.has_value()) {
    std::fprintf(stderr, "error: unknown function '%s'\n",
                 args.function_name.c_str());
    return 2;
  }
  args.kind = *kind;

  const Status status = RunCli(args);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  }
  return hwf::service::ExitCodeForStatus(status);
}
