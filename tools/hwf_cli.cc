// hwf_cli — run a framed window function over a CSV file.
//
// Examples:
//   hwf_cli --input trades.csv --function median --arg price
//           --order-by day --frame-begin preceding:6 --frame-end current
//
//   hwf_cli --input results.csv --function rank --func-order-by tps:desc
//           --order-by date --frame-begin unbounded --frame-end current
//
//   hwf_cli --input orders.csv --function count_distinct --arg custkey
//           --order-by orderdate --range --frame-begin preceding:30
//           --frame-end current --output with_mau.csv
//
// The result is the input table plus one column (named after the
// function, or --as NAME), written as CSV to stdout or --output.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "mem/memory_budget.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "storage/csv.h"
#include "window/executor.h"

namespace {

using namespace hwf;

void Usage() {
  std::fprintf(
      stderr,
      "usage: hwf_cli --input FILE --function FN [options]\n"
      "\n"
      "functions: count_star count sum min max avg count_distinct\n"
      "           sum_distinct avg_distinct min_distinct max_distinct\n"
      "           rank dense_rank row_number percent_rank cume_dist ntile\n"
      "           percentile_disc percentile_cont median first_value\n"
      "           last_value nth_value lead lag mode\n"
      "\n"
      "options:\n"
      "  --arg COLUMN               function argument column\n"
      "  --order-by COL[:desc][:nulls_first]   frame ORDER BY (repeatable)\n"
      "  --func-order-by COL[:desc]            function-level ORDER BY\n"
      "  --partition-by COLUMN      PARTITION BY (repeatable)\n"
      "  --frame-begin SPEC         unbounded | current | preceding:N |\n"
      "                             following:N | preceding-col:COL | "
      "following-col:COL\n"
      "  --frame-end SPEC           (same forms; default current)\n"
      "  --range | --groups         frame mode (default ROWS)\n"
      "  --exclude current|group|ties\n"
      "  --filter COLUMN            FILTER clause (int64 boolean column)\n"
      "  --ignore-nulls             IGNORE NULLS (value functions)\n"
      "  --fraction F               percentile fraction (default 0.5)\n"
      "  --param N                  lead/lag offset, nth_value n, ntile "
      "buckets\n"
      "  --engine mst|naive|incremental|ost     (default mst)\n"
      "  --memory_limit BYTES       memory budget with optional K/M/G\n"
      "                             suffix (e.g. 256M); spills to disk\n"
      "                             instead of exceeding it (default "
      "unlimited)\n"
      "  --probe_batch N            tree probes kept in flight per thread by\n"
      "                             the batched probe kernel (default 16;\n"
      "                             0 = scalar probes)\n"
      "  --as NAME                  result column name\n"
      "  --output FILE              write CSV here (default stdout)\n"
      "  --explain                  print the execution profile to stderr\n"
      "  --profile FILE             write the execution profile as JSON\n"
      "  --trace FILE               write a Chrome trace_event JSON of the "
      "run\n");
}

std::optional<WindowFunctionKind> ParseFunction(const std::string& name) {
  static const std::pair<const char*, WindowFunctionKind> kFunctions[] = {
      {"count_star", WindowFunctionKind::kCountStar},
      {"count", WindowFunctionKind::kCount},
      {"sum", WindowFunctionKind::kSum},
      {"min", WindowFunctionKind::kMin},
      {"max", WindowFunctionKind::kMax},
      {"avg", WindowFunctionKind::kAvg},
      {"count_distinct", WindowFunctionKind::kCountDistinct},
      {"sum_distinct", WindowFunctionKind::kSumDistinct},
      {"avg_distinct", WindowFunctionKind::kAvgDistinct},
      {"min_distinct", WindowFunctionKind::kMinDistinct},
      {"max_distinct", WindowFunctionKind::kMaxDistinct},
      {"rank", WindowFunctionKind::kRank},
      {"dense_rank", WindowFunctionKind::kDenseRank},
      {"row_number", WindowFunctionKind::kRowNumber},
      {"percent_rank", WindowFunctionKind::kPercentRank},
      {"cume_dist", WindowFunctionKind::kCumeDist},
      {"ntile", WindowFunctionKind::kNtile},
      {"percentile_disc", WindowFunctionKind::kPercentileDisc},
      {"percentile_cont", WindowFunctionKind::kPercentileCont},
      {"median", WindowFunctionKind::kMedian},
      {"first_value", WindowFunctionKind::kFirstValue},
      {"last_value", WindowFunctionKind::kLastValue},
      {"nth_value", WindowFunctionKind::kNthValue},
      {"lead", WindowFunctionKind::kLead},
      {"lag", WindowFunctionKind::kLag},
      {"mode", WindowFunctionKind::kMode},
  };
  for (const auto& [fn_name, kind] : kFunctions) {
    if (name == fn_name) return kind;
  }
  return std::nullopt;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseSortKey(const Table& table, const std::string& spec, SortKey* key) {
  std::vector<std::string> parts = Split(spec, ':');
  StatusOr<size_t> column = table.ColumnIndex(parts[0]);
  if (!column.ok()) {
    std::fprintf(stderr, "error: %s\n", column.status().ToString().c_str());
    return false;
  }
  key->column = *column;
  for (size_t i = 1; i < parts.size(); ++i) {
    if (parts[i] == "desc") {
      key->ascending = false;
    } else if (parts[i] == "asc") {
      key->ascending = true;
    } else if (parts[i] == "nulls_first") {
      key->nulls_first = true;
    } else if (parts[i] == "nulls_last") {
      key->nulls_first = false;
    } else {
      std::fprintf(stderr, "error: unknown sort modifier '%s'\n",
                   parts[i].c_str());
      return false;
    }
  }
  return true;
}

bool ParseFrameBound(const Table& table, const std::string& spec,
                     FrameBound* bound) {
  std::vector<std::string> parts = Split(spec, ':');
  const std::string& kind = parts[0];
  if (kind == "unbounded" || kind == "unbounded_preceding") {
    *bound = FrameBound::UnboundedPreceding();
  } else if (kind == "unbounded_following") {
    *bound = FrameBound::UnboundedFollowing();
  } else if (kind == "current") {
    *bound = FrameBound::CurrentRow();
  } else if ((kind == "preceding" || kind == "following") &&
             parts.size() == 2) {
    const int64_t offset = std::atoll(parts[1].c_str());
    *bound = kind == "preceding" ? FrameBound::Preceding(offset)
                                 : FrameBound::Following(offset);
  } else if ((kind == "preceding-col" || kind == "following-col") &&
             parts.size() == 2) {
    StatusOr<size_t> column = table.ColumnIndex(parts[1]);
    if (!column.ok()) {
      std::fprintf(stderr, "error: %s\n", column.status().ToString().c_str());
      return false;
    }
    *bound = kind == "preceding-col" ? FrameBound::PrecedingColumn(*column)
                                     : FrameBound::FollowingColumn(*column);
  } else {
    std::fprintf(stderr, "error: bad frame bound '%s'\n", spec.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path;
  std::string output_path;
  std::string function_name;
  std::string result_name;
  std::string engine_name = "mst";
  std::vector<std::string> order_specs;
  std::vector<std::string> func_order_specs;
  std::vector<std::string> partition_names;
  std::string arg_name;
  std::string filter_name;
  std::string begin_spec = "unbounded";
  std::string end_spec = "current";
  std::string exclude_spec;
  FrameMode mode = FrameMode::kRows;
  bool ignore_nulls = false;
  double fraction = 0.5;
  int64_t param = 1;
  bool explain = false;
  size_t memory_limit_bytes = 0;
  size_t probe_batch = MergeSortTreeOptions{}.probe_batch_size;
  std::string profile_path;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--input") {
      input_path = next();
    } else if (flag == "--output") {
      output_path = next();
    } else if (flag == "--function") {
      function_name = next();
    } else if (flag == "--arg") {
      arg_name = next();
    } else if (flag == "--order-by") {
      order_specs.push_back(next());
    } else if (flag == "--func-order-by") {
      func_order_specs.push_back(next());
    } else if (flag == "--partition-by") {
      partition_names.push_back(next());
    } else if (flag == "--frame-begin") {
      begin_spec = next();
    } else if (flag == "--frame-end") {
      end_spec = next();
    } else if (flag == "--range") {
      mode = FrameMode::kRange;
    } else if (flag == "--groups") {
      mode = FrameMode::kGroups;
    } else if (flag == "--exclude") {
      exclude_spec = next();
    } else if (flag == "--filter") {
      filter_name = next();
    } else if (flag == "--ignore-nulls") {
      ignore_nulls = true;
    } else if (flag == "--fraction") {
      fraction = std::atof(next());
    } else if (flag == "--param") {
      param = std::atoll(next());
    } else if (flag == "--engine") {
      engine_name = next();
    } else if (flag == "--memory_limit") {
      const char* value = next();
      if (!mem::ParseMemorySize(value, &memory_limit_bytes)) {
        std::fprintf(stderr, "error: bad --memory_limit '%s'\n", value);
        return 2;
      }
    } else if (flag == "--probe_batch") {
      probe_batch = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--as") {
      result_name = next();
    } else if (flag == "--explain") {
      explain = true;
    } else if (flag == "--profile") {
      profile_path = next();
    } else if (flag == "--trace") {
      trace_path = next();
    } else if (flag == "--help" || flag == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      Usage();
      return 2;
    }
  }

  if (input_path.empty() || function_name.empty()) {
    Usage();
    return 2;
  }
  std::optional<WindowFunctionKind> kind = ParseFunction(function_name);
  if (!kind.has_value()) {
    std::fprintf(stderr, "error: unknown function '%s'\n",
                 function_name.c_str());
    return 2;
  }

  StatusOr<Table> table_or = ReadCsvFile(input_path);
  if (!table_or.ok()) {
    std::fprintf(stderr, "error: %s\n", table_or.status().ToString().c_str());
    return 1;
  }
  Table table = std::move(*table_or);

  WindowSpec spec;
  spec.frame.mode = mode;
  for (const std::string& name : partition_names) {
    StatusOr<size_t> column = table.ColumnIndex(name);
    if (!column.ok()) {
      std::fprintf(stderr, "error: %s\n", column.status().ToString().c_str());
      return 1;
    }
    spec.partition_by.push_back(*column);
  }
  for (const std::string& order : order_specs) {
    SortKey key;
    if (!ParseSortKey(table, order, &key)) return 1;
    spec.order_by.push_back(key);
  }
  if (!ParseFrameBound(table, begin_spec, &spec.frame.begin)) return 1;
  if (!ParseFrameBound(table, end_spec, &spec.frame.end)) return 1;
  if (!exclude_spec.empty()) {
    if (exclude_spec == "current") {
      spec.frame.exclusion = FrameExclusion::kCurrentRow;
    } else if (exclude_spec == "group") {
      spec.frame.exclusion = FrameExclusion::kGroup;
    } else if (exclude_spec == "ties") {
      spec.frame.exclusion = FrameExclusion::kTies;
    } else {
      std::fprintf(stderr, "error: bad --exclude '%s'\n",
                   exclude_spec.c_str());
      return 2;
    }
  }

  WindowFunctionCall call;
  call.kind = *kind;
  call.ignore_nulls = ignore_nulls;
  call.fraction = fraction;
  call.param = param;
  if (!arg_name.empty()) {
    StatusOr<size_t> column = table.ColumnIndex(arg_name);
    if (!column.ok()) {
      std::fprintf(stderr, "error: %s\n", column.status().ToString().c_str());
      return 1;
    }
    call.argument = *column;
  }
  for (const std::string& order : func_order_specs) {
    SortKey key;
    if (!ParseSortKey(table, order, &key)) return 1;
    call.order_by.push_back(key);
  }
  if (!filter_name.empty()) {
    StatusOr<size_t> column = table.ColumnIndex(filter_name);
    if (!column.ok()) {
      std::fprintf(stderr, "error: %s\n", column.status().ToString().c_str());
      return 1;
    }
    call.filter = *column;
  }

  WindowExecutorOptions options;
  if (engine_name == "mst") {
    options.engine = WindowEngine::kMergeSortTree;
  } else if (engine_name == "naive") {
    options.engine = WindowEngine::kNaive;
  } else if (engine_name == "incremental") {
    options.engine = WindowEngine::kIncremental;
  } else if (engine_name == "ost") {
    options.engine = WindowEngine::kOrderStatisticTree;
  } else {
    std::fprintf(stderr, "error: unknown engine '%s'\n", engine_name.c_str());
    return 2;
  }
  options.memory_limit_bytes = memory_limit_bytes;
  options.tree.probe_batch_size = probe_batch;
  obs::ExecutionProfile profile;
  const bool want_profile =
      explain || !profile_path.empty() || !trace_path.empty();
  if (want_profile) options.profile = &profile;
  if (!trace_path.empty()) obs::Tracer::Get().Enable();

  StatusOr<Column> result = EvaluateWindowFunction(table, spec, call, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  if (explain) {
    std::fprintf(stderr, "%s", profile.Explain().c_str());
  }
  if (!profile_path.empty()) {
    const std::string json = profile.ToJson();
    if (std::FILE* f = std::fopen(profile_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "error: cannot open %s\n", profile_path.c_str());
      return 1;
    }
  }
  if (!trace_path.empty()) {
    Status status = obs::Tracer::Get().WriteChromeTrace(trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  table.AddColumn(result_name.empty() ? function_name : result_name,
                  std::move(*result));

  if (output_path.empty()) {
    const std::string csv = ToCsv(table);
    std::fwrite(csv.data(), 1, csv.size(), stdout);
  } else {
    Status status = WriteCsvFile(table, output_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
