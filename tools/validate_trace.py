#!/usr/bin/env python3
"""Validates hwf observability artifacts.

Checks two kinds of files (stdlib only, CI-friendly):

  --trace PATH    Chrome trace_event JSON as written by
                  obs::Tracer::WriteChromeTrace (loadable in
                  chrome://tracing / Perfetto).
  --profile PATH  Either a bare ExecutionProfile JSON (hwf_cli --profile)
                  or a BENCH_*.json file whose entries embed profiles
                  (bench::BenchJson).

Exits 0 when every file validates, 1 otherwise, printing one line per
problem.  Usage:

  python3 tools/validate_trace.py --trace BENCH_fig14_trace.json \
                                  --profile BENCH_fig14_phases.json
"""

import argparse
import json
import sys

PHASE_KEYS = (
    "partition",
    "sort",
    "preprocess",
    "frame_resolve",
    "tree_build",
    "probe",
    "spill",
)


def fail(errors, path, message):
    errors.append(f"{path}: {message}")


def validate_trace(path, errors):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(errors, path, "missing top-level traceEvents")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(errors, path, "traceEvents is not a list")
        return
    complete = 0
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(errors, path, f"{where} is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(errors, path, f"{where} missing '{key}'")
        ph = event.get("ph")
        if ph == "X":
            complete += 1
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    fail(errors, path, f"{where} bad '{key}': {value!r}")
        elif ph == "M":
            if event.get("name") != "thread_name":
                fail(errors, path, f"{where} unexpected metadata {event.get('name')!r}")
        else:
            fail(errors, path, f"{where} unexpected phase type {ph!r}")
    if complete == 0:
        fail(errors, path, "no complete ('X') events — was tracing enabled?")


def validate_profile_object(profile, path, where, errors):
    for key in ("rows", "partitions", "engine", "total_seconds", "phases",
                "tree_build_levels", "counters"):
        if key not in profile:
            fail(errors, path, f"{where} missing '{key}'")
    phases = profile.get("phases", {})
    if not isinstance(phases, dict):
        fail(errors, path, f"{where} phases is not an object")
        return
    for key in PHASE_KEYS:
        value = phases.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            fail(errors, path, f"{where} bad phase '{key}': {value!r}")
    for i, level in enumerate(profile.get("tree_build_levels", [])):
        if not isinstance(level, (int, float)) or level < 0:
            fail(errors, path, f"{where} bad tree_build_levels[{i}]: {level!r}")
    total = profile.get("total_seconds")
    if isinstance(total, (int, float)) and total < 0:
        fail(errors, path, f"{where} negative total_seconds: {total!r}")


def validate_profile(path, errors):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(errors, path, "top level is not an object")
        return
    if "entries" in doc:  # bench::BenchJson file wrapping profiles.
        for key in ("bench", "scale"):
            if key not in doc:
                fail(errors, path, f"missing '{key}'")
        entries = doc["entries"]
        if not isinstance(entries, list) or not entries:
            fail(errors, path, "entries is empty or not a list")
            return
        for i, entry in enumerate(entries):
            where = f"entries[{i}]"
            if "label" not in entry:
                fail(errors, path, f"{where} missing 'label'")
            if "profile" in entry:
                validate_profile_object(entry["profile"], path, where, errors)
    else:  # Bare ExecutionProfile::ToJson output.
        validate_profile_object(doc, path, "profile", errors)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", action="append", default=[],
                        help="Chrome trace_event JSON file")
    parser.add_argument("--profile", action="append", default=[],
                        help="ExecutionProfile or BENCH_*.json file")
    args = parser.parse_args()
    if not args.trace and not args.profile:
        parser.error("nothing to validate; pass --trace and/or --profile")

    errors = []
    for path in args.trace:
        try:
            validate_trace(path, errors)
        except (OSError, json.JSONDecodeError) as exc:
            fail(errors, path, str(exc))
    for path in args.profile:
        try:
            validate_profile(path, errors)
        except (OSError, json.JSONDecodeError) as exc:
            fail(errors, path, str(exc))

    for message in errors:
        print(f"error: {message}", file=sys.stderr)
    if not errors:
        total = len(args.trace) + len(args.profile)
        print(f"ok: {total} file(s) validated")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
