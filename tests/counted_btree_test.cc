#include "baselines/order_statistic_tree.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"

namespace hwf {
namespace {

TEST(CountedBTree, BasicOperations) {
  CountedBTree<int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.CountLess(5), 0u);
  tree.Insert(5);
  tree.Insert(1);
  tree.Insert(9);
  tree.Insert(5);
  EXPECT_EQ(tree.size(), 4u);
  EXPECT_EQ(tree.Kth(0), 1);
  EXPECT_EQ(tree.Kth(1), 5);
  EXPECT_EQ(tree.Kth(2), 5);
  EXPECT_EQ(tree.Kth(3), 9);
  EXPECT_EQ(tree.CountLess(5), 1u);
  EXPECT_EQ(tree.CountLess(6), 3u);
  EXPECT_EQ(tree.CountLess(100), 4u);
  EXPECT_TRUE(tree.Erase(5));
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_FALSE(tree.Erase(777));
  tree.CheckInvariants();
}

TEST(CountedBTree, ManySequentialInsertsSplitNodes) {
  CountedBTree<int> tree;
  const int n = 10000;
  for (int i = 0; i < n; ++i) tree.Insert(i);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; i += 97) {
    EXPECT_EQ(tree.Kth(static_cast<size_t>(i)), i);
    EXPECT_EQ(tree.CountLess(i), static_cast<size_t>(i));
  }
  // Drain from the front (forces borrows and merges).
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Erase(i));
    if (i % 512 == 0) tree.CheckInvariants();
  }
  EXPECT_TRUE(tree.empty());
}

TEST(CountedBTree, RandomizedAgainstMultiset) {
  Pcg32 rng(2024);
  CountedBTree<uint32_t> tree;
  std::multiset<uint32_t> oracle;
  for (int op = 0; op < 30000; ++op) {
    const uint32_t key = rng.Bounded(200);  // Heavy duplicates.
    const uint32_t action = rng.Bounded(100);
    if (action < 55 || oracle.empty()) {
      tree.Insert(key);
      oracle.insert(key);
    } else if (action < 85) {
      const bool in_oracle = oracle.find(key) != oracle.end();
      EXPECT_EQ(tree.Erase(key), in_oracle);
      if (in_oracle) oracle.erase(oracle.find(key));
    } else if (action < 95) {
      ASSERT_EQ(tree.size(), oracle.size());
      if (!oracle.empty()) {
        const size_t k = rng.Bounded(static_cast<uint32_t>(oracle.size()));
        auto it = oracle.begin();
        std::advance(it, k);
        EXPECT_EQ(tree.Kth(k), *it);
      }
    } else {
      const size_t expected = std::distance(oracle.begin(),
                                            oracle.lower_bound(key));
      EXPECT_EQ(tree.CountLess(key), expected);
    }
    if (op % 2500 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
}

TEST(CountedBTree, SlidingWindowPattern) {
  // The exact usage pattern of the kOrderStatisticTree engine: insert at
  // the front edge, erase at the back edge, query the median.
  Pcg32 rng(3);
  const size_t n = 5000;
  const size_t window = 257;
  std::vector<uint32_t> values(n);
  for (auto& v : values) v = rng.Bounded(1000);

  CountedBTree<std::pair<uint32_t, size_t>> tree;
  std::vector<uint32_t> sorted_window;
  for (size_t i = 0; i < n; ++i) {
    tree.Insert({values[i], i});
    if (i >= window) {
      ASSERT_TRUE(tree.Erase({values[i - window], i - window}));
    }
    const size_t begin = i >= window ? i - window + 1 : 0;
    sorted_window.assign(values.begin() + begin, values.begin() + i + 1);
    std::sort(sorted_window.begin(), sorted_window.end());
    const size_t k = sorted_window.size() / 2;
    EXPECT_EQ(tree.Kth(k).first, sorted_window[k]) << i;
  }
  tree.CheckInvariants();
}

TEST(CountedBTree, MoveSemantics) {
  CountedBTree<int> a;
  for (int i = 0; i < 100; ++i) a.Insert(i);
  CountedBTree<int> b = std::move(a);
  EXPECT_EQ(b.size(), 100u);
  b.CheckInvariants();
  CountedBTree<int> c;
  c.Insert(1);
  c = std::move(b);
  EXPECT_EQ(c.size(), 100u);
  c.CheckInvariants();
}

}  // namespace
}  // namespace hwf
