#include "mst/annotated_mst.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "mst/aggregate_ops.h"

namespace hwf {
namespace {

struct Fixture {
  std::vector<uint32_t> keys;
  std::vector<double> inputs;
};

Fixture MakeFixture(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  Fixture f;
  f.keys.resize(n);
  f.inputs.resize(n);
  for (size_t i = 0; i < n; ++i) {
    f.keys[i] = rng.Bounded(static_cast<uint32_t>(n / 3 + 2));
    f.inputs[i] = static_cast<double>(rng.Bounded(1000));
  }
  return f;
}

TEST(AnnotatedMst, SumHandChecked) {
  // keys:    3 1 2 1 0
  // inputs: 10 20 30 40 50
  auto tree = AnnotatedMergeSortTree<uint32_t, SumOps>::Build(
      {3, 1, 2, 1, 0}, {10, 20, 30, 40, 50});
  // Entries in [0,5) with key < 2: positions 1 (20), 3 (40), 4 (50).
  EXPECT_EQ(tree.AggregateLess(0, 5, 2).value(), 110.0);
  // Empty qualification.
  EXPECT_FALSE(tree.AggregateLess(0, 5, 0).has_value());
  EXPECT_FALSE(tree.AggregateLess(2, 2, 10).has_value());
  // Single element.
  EXPECT_EQ(tree.AggregateLess(0, 1, 4).value(), 10.0);
}

using Params = std::tuple<size_t, size_t, size_t>;

class AnnotatedMstParamTest : public ::testing::TestWithParam<Params> {};

TEST_P(AnnotatedMstParamTest, SumMatchesBruteForce) {
  const auto [n, fanout, sampling] = GetParam();
  MergeSortTreeOptions options;
  options.fanout = fanout;
  options.sampling = sampling;
  Fixture f = MakeFixture(n, n * 3 + fanout);
  auto tree = AnnotatedMergeSortTree<uint32_t, SumOps>::Build(
      f.keys, f.inputs, options);
  Pcg32 rng(n + 1);
  for (int q = 0; q < 150; ++q) {
    size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
    size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
    if (lo > hi) std::swap(lo, hi);
    const uint32_t t = rng.Bounded(static_cast<uint32_t>(n / 3 + 3));
    double expected = 0;
    bool any = false;
    for (size_t i = lo; i < hi; ++i) {
      if (f.keys[i] < t) {
        expected += f.inputs[i];
        any = true;
      }
    }
    std::optional<double> actual = tree.AggregateLess(lo, hi, t);
    ASSERT_EQ(actual.has_value(), any);
    if (any) {
      EXPECT_DOUBLE_EQ(*actual, expected);
    }
  }
}

TEST_P(AnnotatedMstParamTest, MinMaxMatchBruteForce) {
  const auto [n, fanout, sampling] = GetParam();
  MergeSortTreeOptions options;
  options.fanout = fanout;
  options.sampling = sampling;
  Fixture f = MakeFixture(n, n * 5 + sampling);
  auto min_tree = AnnotatedMergeSortTree<uint32_t, MinOps>::Build(
      f.keys, f.inputs, options);
  auto max_tree = AnnotatedMergeSortTree<uint32_t, MaxOps>::Build(
      f.keys, f.inputs, options);
  Pcg32 rng(n + 2);
  for (int q = 0; q < 100; ++q) {
    size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
    size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
    if (lo > hi) std::swap(lo, hi);
    const uint32_t t = rng.Bounded(static_cast<uint32_t>(n / 3 + 3));
    std::optional<double> expected_min;
    std::optional<double> expected_max;
    for (size_t i = lo; i < hi; ++i) {
      if (f.keys[i] < t) {
        expected_min = expected_min.has_value()
                           ? std::min(*expected_min, f.inputs[i])
                           : f.inputs[i];
        expected_max = expected_max.has_value()
                           ? std::max(*expected_max, f.inputs[i])
                           : f.inputs[i];
      }
    }
    EXPECT_EQ(min_tree.AggregateLess(lo, hi, t), expected_min);
    EXPECT_EQ(max_tree.AggregateLess(lo, hi, t), expected_max);
  }
}

TEST_P(AnnotatedMstParamTest, AvgStateMatchesBruteForce) {
  const auto [n, fanout, sampling] = GetParam();
  MergeSortTreeOptions options;
  options.fanout = fanout;
  options.sampling = sampling;
  Fixture f = MakeFixture(n, n * 7 + sampling);
  auto tree = AnnotatedMergeSortTree<uint32_t, AvgOps>::Build(
      f.keys, f.inputs, options);
  Pcg32 rng(n + 3);
  for (int q = 0; q < 100; ++q) {
    size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
    size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
    if (lo > hi) std::swap(lo, hi);
    const uint32_t t = rng.Bounded(static_cast<uint32_t>(n / 3 + 3));
    double sum = 0;
    int64_t count = 0;
    for (size_t i = lo; i < hi; ++i) {
      if (f.keys[i] < t) {
        sum += f.inputs[i];
        ++count;
      }
    }
    std::optional<AvgOps::State> actual = tree.AggregateLess(lo, hi, t);
    ASSERT_EQ(actual.has_value(), count > 0);
    if (count > 0) {
      EXPECT_DOUBLE_EQ(actual->sum, sum);
      EXPECT_EQ(actual->count, count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnnotatedMstParamTest,
    ::testing::Combine(::testing::Values<size_t>(1, 5, 32, 100, 1000),
                       ::testing::Values<size_t>(2, 4, 32),
                       ::testing::Values<size_t>(1, 8, 32)));

TEST(AnnotatedMst, ParallelChunkedBuildMatchesSerial) {
  // With more workers than runs, the payload-carrying chunked merge path
  // (§5.2) is exercised; aggregates must be identical to the serial build.
  ThreadPool serial_pool(0);
  ThreadPool parallel_pool(6);
  Fixture f = MakeFixture(30000, 99);
  MergeSortTreeOptions options;
  options.fanout = 16;
  auto serial = AnnotatedMergeSortTree<uint32_t, SumOps>::Build(
      f.keys, f.inputs, options, serial_pool);
  auto parallel = AnnotatedMergeSortTree<uint32_t, SumOps>::Build(
      f.keys, f.inputs, options, parallel_pool);
  Pcg32 rng(7);
  for (int q = 0; q < 300; ++q) {
    size_t lo = rng.Bounded(30001);
    size_t hi = rng.Bounded(30001);
    if (lo > hi) std::swap(lo, hi);
    const uint32_t t = rng.Bounded(10002);
    EXPECT_EQ(serial.AggregateLess(lo, hi, t),
              parallel.AggregateLess(lo, hi, t));
  }
}

TEST(AnnotatedMst, Int64SumsAreExact) {
  // Values near 2^53 would lose precision in doubles.
  std::vector<uint32_t> keys = {0, 1, 2, 3};
  std::vector<int64_t> inputs = {(int64_t{1} << 53) + 1, 1, 2, 3};
  auto tree = AnnotatedMergeSortTree<uint32_t, SumInt64Ops>::Build(
      std::move(keys), std::move(inputs));
  EXPECT_EQ(tree.AggregateLess(0, 4, 4).value(), (int64_t{1} << 53) + 7);
}

}  // namespace
}  // namespace hwf
