// Tests for the scatter/gather distribution layer: deterministic shard
// assignment, split/gather round trips, the wire client's handshake and
// failure handling, and full coordinator-vs-single-process differential
// runs over every window function kind.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "dist/gather.h"
#include "dist/sharding.h"
#include "dist/wire_client.h"
#include "dist/wire_protocol.h"
#include "obs/metrics.h"
#include "service/result_format.h"
#include "service/service.h"
#include "service/tcp_server.h"
#include "storage/csv.h"
#include "tests/window_test_util.h"

namespace hwf {
namespace {

using dist::Coordinator;
using dist::CoordinatorOptions;
using dist::WireClient;
using dist::WireClientOptions;
using service::QueryService;
using service::ResultFormat;
using service::ServiceOptions;
using service::TcpServer;

// The per-query memory limit injected by the forced-spill CI job changes
// nothing about correctness here but slows the many small differential
// queries; clear it like service_test does.
const bool g_env_cleared = [] {
  unsetenv("HWF_TEST_MEMORY_LIMIT");
  return true;
}();

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Shard assignment

TEST(ShardingTest, AssignmentIsDeterministic) {
  const Table table = test::MakeRandomTable(200, 31, 5);
  StatusOr<std::vector<uint32_t>> first = dist::AssignShards(table, {0}, 4);
  StatusOr<std::vector<uint32_t>> second = dist::AssignShards(table, {0}, 4);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    EXPECT_LT((*first)[row], 4u);
    EXPECT_EQ(dist::ShardOfRow(table, {0}, row, 4),
              static_cast<size_t>((*first)[row]))
        << "row " << row;
  }
}

TEST(ShardingTest, AssignmentDependsOnlyOnKeyValues) {
  // Two tables with identical key columns but different payloads must
  // shard identically — the hash is a pure function of the key values, so
  // appended rows join the partitions their key lives on.
  const Table a = test::MakeRandomTable(150, 7, 4);
  Table b;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.column_name(c) == "grp" || a.column_name(c) == "ord") {
      Column copy(a.column(c).type());
      for (size_t r = 0; r < a.num_rows(); ++r) {
        if (a.column(c).IsNull(r)) {
          copy.AppendNull();
        } else {
          copy.AppendInt64(a.column(c).GetInt64(r));
        }
      }
      b.AddColumn(a.column_name(c), std::move(copy));
    } else {
      Column filler(DataType::kInt64);
      for (size_t r = 0; r < a.num_rows(); ++r) {
        filler.AppendInt64(static_cast<int64_t>(r) * 977);
      }
      b.AddColumn(a.column_name(c), std::move(filler));
    }
  }
  StatusOr<std::vector<uint32_t>> from_a =
      dist::AssignShards(a, {0, 1}, 3);
  StatusOr<std::vector<uint32_t>> from_b =
      dist::AssignShards(b, {0, 1}, 3);
  ASSERT_TRUE(from_a.ok());
  ASSERT_TRUE(from_b.ok());
  EXPECT_EQ(*from_a, *from_b);
}

TEST(ShardingTest, SplitPartitionsEveryRowOnce) {
  const Table table = test::MakeRandomTable(300, 13, 6);
  StatusOr<dist::ShardSplit> split =
      dist::SplitByShardKey(table, {"grp"}, 4);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  std::vector<int> seen(table.num_rows(), 0);
  for (size_t s = 0; s < 4; ++s) {
    ASSERT_EQ(split->shards[s].num_rows(), split->rows[s].size());
    for (size_t i = 0; i < split->rows[s].size(); ++i) {
      if (i > 0) {
        EXPECT_LT(split->rows[s][i - 1], split->rows[s][i])
            << "shard row ids must stay in original order";
      }
      ++seen[split->rows[s][i]];
    }
  }
  for (size_t row = 0; row < table.num_rows(); ++row) {
    EXPECT_EQ(seen[row], 1) << "row " << row;
  }
  // Equal keys land in one shard: group rows by grp value and check that
  // each group maps to exactly one shard.
  StatusOr<std::vector<uint32_t>> assignment =
      dist::AssignShards(table, {0}, 4);
  ASSERT_TRUE(assignment.ok());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (size_t other = row + 1; other < table.num_rows(); ++other) {
      if (table.column(0).GetInt64(row) == table.column(0).GetInt64(other)) {
        ASSERT_EQ((*assignment)[row], (*assignment)[other]);
      }
    }
  }
}

TEST(ShardingTest, RejectsBadArguments) {
  const Table table = test::MakeRandomTable(10, 1);
  EXPECT_FALSE(dist::AssignShards(table, {0}, 0).ok());
  EXPECT_FALSE(dist::AssignShards(table, {}, 2).ok());
  EXPECT_FALSE(dist::AssignShards(table, {99}, 2).ok());
  EXPECT_FALSE(dist::SplitByShardKey(table, {"nope"}, 2).ok());
}

// ---------------------------------------------------------------------------
// Gather

void ExpectTablesBitIdentical(const Table& actual, const Table& expected) {
  ASSERT_EQ(actual.num_columns(), expected.num_columns());
  ASSERT_EQ(actual.num_rows(), expected.num_rows());
  for (size_t c = 0; c < expected.num_columns(); ++c) {
    ASSERT_EQ(actual.column_name(c), expected.column_name(c));
    const Column& a = actual.column(c);
    const Column& e = expected.column(c);
    ASSERT_EQ(a.type(), e.type()) << actual.column_name(c);
    for (size_t r = 0; r < expected.num_rows(); ++r) {
      ASSERT_EQ(a.IsNull(r), e.IsNull(r)) << "row " << r;
      if (a.IsNull(r)) continue;
      switch (a.type()) {
        case DataType::kInt64:
          ASSERT_EQ(a.GetInt64(r), e.GetInt64(r)) << "row " << r;
          break;
        case DataType::kDouble:
          ASSERT_EQ(a.GetDouble(r), e.GetDouble(r)) << "row " << r;
          break;
        case DataType::kString:
          ASSERT_EQ(a.GetString(r), e.GetString(r)) << "row " << r;
          break;
      }
    }
  }
}

TEST(GatherTest, SplitThenGatherRoundTrips) {
  const Table table = test::MakeRandomTable(250, 17, 5);
  StatusOr<dist::ShardSplit> split =
      dist::SplitByShardKey(table, {"grp"}, 3);
  ASSERT_TRUE(split.ok());
  StatusOr<Table> gathered = dist::GatherShardResults(
      split->shards, split->rows, table.num_rows());
  ASSERT_TRUE(gathered.ok()) << gathered.status().ToString();
  ExpectTablesBitIdentical(*gathered, table);
}

TEST(GatherTest, WidensCsvTypeFlippedShard) {
  // A double column whose shard happens to hold only integral values
  // re-parses as int64 after the CSV hop; gather must widen it back so
  // the merged column has one type.
  Table shard_a;
  {
    Column v(DataType::kDouble);
    v.AppendDouble(1.5);
    v.AppendDouble(2.25);
    shard_a.AddColumn("v", std::move(v));
  }
  StatusOr<Table> shard_b = ParseCsv("v\n3\n4\n");
  ASSERT_TRUE(shard_b.ok());
  ASSERT_EQ(shard_b->column(0).type(), DataType::kInt64);
  StatusOr<Table> gathered = dist::GatherShardResults(
      {shard_a, *shard_b}, {{0, 2}, {1, 3}}, 4);
  ASSERT_TRUE(gathered.ok()) << gathered.status().ToString();
  ASSERT_EQ(gathered->column(0).type(), DataType::kDouble);
  EXPECT_EQ(gathered->column(0).GetDouble(0), 1.5);
  EXPECT_EQ(gathered->column(0).GetDouble(1), 3.0);
  EXPECT_EQ(gathered->column(0).GetDouble(2), 2.25);
  EXPECT_EQ(gathered->column(0).GetDouble(3), 4.0);
}

TEST(GatherTest, RejectsMismatches) {
  const Table table = test::MakeRandomTable(40, 19, 4);
  StatusOr<dist::ShardSplit> split =
      dist::SplitByShardKey(table, {"grp"}, 2);
  ASSERT_TRUE(split.ok());
  // Row-count mismatch between a shard result and its permutation.
  StatusOr<Table> wrong_rows = dist::GatherShardResults(
      {split->shards[0], split->shards[1]},
      {split->rows[1], split->rows[0]}, table.num_rows());
  if (split->rows[0].size() != split->rows[1].size()) {
    EXPECT_FALSE(wrong_rows.ok());
  }
  // Column-name mismatch across shards.
  Table renamed;
  for (size_t c = 0; c < split->shards[1].num_columns(); ++c) {
    Column copy = split->shards[1].column(c);
    renamed.AddColumn("x" + std::to_string(c), std::move(copy));
  }
  EXPECT_FALSE(dist::GatherShardResults({split->shards[0], renamed},
                                        {split->rows[0], split->rows[1]},
                                        table.num_rows())
                   .ok());
}

// ---------------------------------------------------------------------------
// Type-list coercion (the "types=" ingest annotation)

TEST(ShardingTest, TypeListRoundTrips) {
  const Table table = test::MakeRandomTable(5, 3);
  const std::string list = dist::TypeList(table);
  StatusOr<std::vector<DataType>> types = dist::ParseTypeList(list);
  ASSERT_TRUE(types.ok());
  ASSERT_EQ(types->size(), table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    EXPECT_EQ((*types)[c], table.column(c).type());
  }
  EXPECT_FALSE(dist::ParseTypeList("int64,floatish").ok());
}

TEST(ShardingTest, CoerceToTypesRecoversFlippedColumns) {
  // "3\n4" under a declared double column widens; "7\n8" under a declared
  // string column re-renders as text; a double under a declared int64 is
  // an error (information would be lost).
  StatusOr<Table> parsed = ParseCsv("a,b\n3,7\n4,8\n");
  ASSERT_TRUE(parsed.ok());
  StatusOr<Table> coerced = dist::CoerceToTypes(
      {DataType::kDouble, DataType::kString}, *parsed);
  ASSERT_TRUE(coerced.ok()) << coerced.status().ToString();
  EXPECT_EQ(coerced->column(0).type(), DataType::kDouble);
  EXPECT_EQ(coerced->column(0).GetDouble(1), 4.0);
  EXPECT_EQ(coerced->column(1).type(), DataType::kString);
  EXPECT_EQ(coerced->column(1).GetString(0), "7");
  StatusOr<Table> halves = ParseCsv("a,b\n3.5,7\n4.5,8\n");
  ASSERT_TRUE(halves.ok());
  EXPECT_FALSE(dist::CoerceToTypes({DataType::kInt64, DataType::kInt64},
                                   *halves)
                   .ok());
}

// ---------------------------------------------------------------------------
// FROM-rewrite for fallback queries

TEST(RewriteFromTableTest, RewritesLastFromTarget) {
  StatusOr<std::string> basic = dist::RewriteFromTable(
      "select rank() over (order by x) from t", "t", "t__unsharded");
  ASSERT_TRUE(basic.ok());
  EXPECT_EQ(*basic, "select rank() over (order by x) from t__unsharded");

  StatusOr<std::string> semicolon = dist::RewriteFromTable(
      "select count(*) over () FROM t;", "t", "u");
  ASSERT_TRUE(semicolon.ok());
  EXPECT_EQ(*semicolon, "select count(*) over () FROM u;");

  // A column that happens to be named "from" must not confuse the scan:
  // the last FROM whose next token is the table wins.
  StatusOr<std::string> tricky = dist::RewriteFromTable(
      "select sum( from ) over (partition by t) from t", "t", "u");
  ASSERT_TRUE(tricky.ok());
  EXPECT_EQ(*tricky, "select sum( from ) over (partition by t) from u");

  EXPECT_FALSE(dist::RewriteFromTable("select 1 from other", "t", "u").ok());
}

// ---------------------------------------------------------------------------
// Wire client against fake and real servers

int FindClosedPort() {
  // Bind an ephemeral listener, note the port, close it: nothing listens
  // there immediately afterwards.
  TcpServer probe([](int) {});
  StatusOr<int> port = probe.Listen(0);
  EXPECT_TRUE(port.ok());
  probe.Stop();
  return *port;
}

TEST(WireClientTest, HandshakeAgainstRealServer) {
  QueryService svc;
  obs::MetricsRegistry registry;
  TcpServer server(
      [&](int fd) { service::ServeServiceConnection(fd, &svc, &registry); });
  StatusOr<int> port = server.Listen(0);
  ASSERT_TRUE(port.ok());
  server.Start();

  WireClientOptions options;
  options.port = *port;
  WireClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.server_protocol_version(), dist::kWireProtocolVersion);
  std::string payload;
  ASSERT_TRUE(client.Exchange("PING", &payload).ok());
  EXPECT_EQ(payload, "PONG\n");
  client.Close();
  server.Stop();
}

TEST(WireClientTest, VersionSkewFailsFast) {
  // A server that answers HELLO with a different protocol version: the
  // client must refuse the connection with a version-mismatch error
  // instead of limping along.
  TcpServer server([](int fd) {
    std::string line;
    while (service::ReadLineFd(fd, &line)) {
      service::SendPayloadFd(fd, "HWF 999\n");
    }
  });
  StatusOr<int> port = server.Listen(0);
  ASSERT_TRUE(port.ok());
  server.Start();

  WireClientOptions options;
  options.port = *port;
  WireClient client(options);
  Status connected = client.Connect();
  EXPECT_FALSE(connected.ok());
  EXPECT_NE(connected.message().find("protocol version"), std::string::npos)
      << connected.ToString();
  server.Stop();
}

TEST(WireClientTest, PreHandshakeServerReportsSkew) {
  // A server that predates HELLO answers "ERR 3 unknown command"; the
  // client maps that onto an explicit skew diagnosis.
  TcpServer server([](int fd) {
    std::string line;
    while (service::ReadLineFd(fd, &line)) {
      service::SendErrorFd(
          fd, Status::InvalidArgument("unknown command 'HELLO'"));
    }
  });
  StatusOr<int> port = server.Listen(0);
  ASSERT_TRUE(port.ok());
  server.Start();

  WireClientOptions options;
  options.port = *port;
  WireClient client(options);
  Status connected = client.Connect();
  EXPECT_FALSE(connected.ok());
  EXPECT_NE(connected.message().find("predates"), std::string::npos)
      << connected.ToString();
  server.Stop();
}

TEST(WireClientTest, RequestTimeoutDoesNotHang) {
  // The server completes the handshake and then goes silent; a client
  // with a request deadline must give up quickly with a retriable error.
  TcpServer server([](int fd) {
    std::string line;
    if (!service::ReadLineFd(fd, &line)) return;
    service::HandleHello(fd, "");
    // Swallow the next command and never answer; the following read
    // blocks until the server shuts the socket down.
    service::ReadLineFd(fd, &line);
    service::ReadLineFd(fd, &line);
  });
  StatusOr<int> port = server.Listen(0);
  ASSERT_TRUE(port.ok());
  server.Start();

  WireClientOptions options;
  options.port = *port;
  options.request_timeout_seconds = 0.2;
  WireClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  std::string payload;
  const double begin = NowSeconds();
  Status status = client.Exchange("PING", &payload);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(WireClient::IsRetriable(status)) << status.ToString();
  EXPECT_LT(NowSeconds() - begin, 3.0);
  client.Close();
  server.Stop();
}

TEST(WireClientTest, RetryExhaustionIsBoundedAndCounted) {
  WireClientOptions options;
  options.port = FindClosedPort();
  options.max_retries = 2;
  options.backoff_initial_seconds = 0.01;
  options.backoff_max_seconds = 0.02;
  WireClient client(options);
  std::string payload;
  size_t retries = 0;
  const double begin = NowSeconds();
  Status status = client.ExchangeRetrying("PING", &payload, nullptr,
                                          &retries);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(WireClient::IsRetriable(status));
  EXPECT_EQ(retries, 2u);
  EXPECT_LT(NowSeconds() - begin, 5.0);
}

// ---------------------------------------------------------------------------
// Coordinator end-to-end over in-process workers

struct InProcessWorker {
  QueryService svc;
  obs::MetricsRegistry registry;
  std::unique_ptr<TcpServer> server;
  int port = 0;

  explicit InProcessWorker(ServiceOptions options = {})
      : svc(std::move(options)) {
    server = std::make_unique<TcpServer>([this](int fd) {
      service::ServeServiceConnection(fd, &svc, &registry);
    });
    StatusOr<int> bound = server->Listen(0);
    EXPECT_TRUE(bound.ok());
    port = *bound;
    server->Start();
  }
  ~InProcessWorker() { server->Stop(); }
};

CoordinatorOptions FastOptions(const std::vector<int>& ports) {
  CoordinatorOptions options;
  for (const int port : ports) {
    options.workers.push_back("127.0.0.1:" + std::to_string(port));
  }
  options.shard_retries = 2;
  options.backoff_initial_seconds = 0.01;
  options.backoff_max_seconds = 0.05;
  options.connect_timeout_seconds = 2.0;
  return options;
}

/// One query per WindowFunctionKind (all 26), every spec partitioned by
/// the shard key so the whole list scatters.
std::vector<std::string> AllKindsSql() {
  return {
      "select count(*) over (partition by grp order by ord, val, name rows "
      "between 2 preceding and 1 following) from t",
      "select count(val) over (partition by grp order by ord rows between "
      "unbounded preceding and current row) from t",
      "select sum(price) over (partition by grp order by ord, val rows "
      "between 3 preceding and current row) from t",
      "select min(val) over (partition by grp order by ord range between 2 "
      "preceding and 2 following) from t",
      "select max(price) over (partition by grp order by ord groups between "
      "1 preceding and 1 following) from t",
      "select avg(price) over (partition by grp order by ord rows between "
      "off preceding and current row) from t",
      "select count(distinct val) over (partition by grp order by ord rows "
      "between 4 preceding and current row) from t",
      "select sum(distinct val) over (partition by grp order by ord rows "
      "between unbounded preceding and 1 following) from t",
      "select avg(distinct val) over (partition by grp order by ord rows "
      "between 3 preceding and 3 following) from t",
      "select min(distinct val) over (partition by grp order by ord rows "
      "between 2 preceding and current row) from t",
      "select max(distinct val) over (partition by grp order by ord rows "
      "between 2 preceding and current row) from t",
      "select rank() over (partition by grp order by val rows between 3 "
      "preceding and 1 following) from t",
      "select dense_rank() over (partition by grp order by val rows between "
      "unbounded preceding and current row) from t",
      "select row_number() over (partition by grp order by ord, val, name) "
      "from t",
      "select percent_rank() over (partition by grp order by val rows "
      "between 4 preceding and current row) from t",
      "select cume_dist() over (partition by grp order by val rows between "
      "3 preceding and 2 following) from t",
      "select ntile(3) over (partition by grp order by ord) from t",
      "select percentile_disc(0.5 order by price) over (partition by grp "
      "order by ord rows between 4 preceding and current row) from t",
      "select percentile_cont(0.25 order by price) over (partition by grp "
      "order by ord rows between 5 preceding and current row) from t",
      "select median(price) over (partition by grp order by ord rows "
      "between 3 preceding and 3 following) from t",
      "select first_value(name) over (partition by grp order by ord, val "
      "rows between 2 preceding and current row) from t",
      "select last_value(price) over (partition by grp order by ord rows "
      "between current row and 2 following) from t",
      "select nth_value(name, 2) over (partition by grp order by ord, val "
      "rows between 3 preceding and 1 following) from t",
      "select lead(val, 2) over (partition by grp order by ord, val, name) "
      "from t",
      "select lag(price, 1) over (partition by grp order by ord, val, name) "
      "from t",
      // Multi-call statement mixing specs, plus FILTER and IGNORE NULLS.
      "select sum(price) filter (where flag) over (partition by grp order "
      "by ord rows between 2 preceding and current row) as a, "
      "lead(name) ignore nulls over (partition by grp order by ord, val, "
      "name) as b, "
      "median(val) over (partition by grp order by ord groups between 1 "
      "preceding and 1 following) as c from t",
  };
}

TEST(CoordinatorTest, ScatteredExecutionIsByteIdenticalForAllKinds) {
  for (const uint64_t seed : {41ull, 42ull}) {
    const size_t rows = seed == 41 ? 163 : 240;
    const Table table = test::MakeRandomTable(rows, seed, 5);

    InProcessWorker w1, w2;
    Coordinator coordinator(FastOptions({w1.port, w2.port}));
    ASSERT_TRUE(coordinator.RegisterTable("t", table, {"grp"}).ok());

    QueryService reference;
    reference.RegisterTable("t", Table(table));

    for (const std::string& sql : AllKindsSql()) {
      StatusOr<dist::CoordinatorQueryResult> scattered =
          coordinator.Query(sql);
      ASSERT_TRUE(scattered.ok())
          << sql << ": " << scattered.status().ToString();
      EXPECT_EQ(scattered->regime, "scatter(2)") << sql;
      StatusOr<service::QueryResult> single = reference.Query(sql);
      ASSERT_TRUE(single.ok()) << sql;
      EXPECT_EQ(
          service::FormatTable(scattered->table, ResultFormat::kCsv),
          service::FormatTable(single->table, ResultFormat::kCsv))
          << "seed " << seed << ": " << sql;
    }
  }
}

TEST(CoordinatorTest, ModeMatchesUnderIncrementalEngine) {
  // mode is the one kind the default merge-sort-tree engine rejects
  // (single-process and distributed alike); under the incremental engine
  // it executes, and scattered results must still match byte-for-byte —
  // covering the last of the 26 function kinds.
  ServiceOptions incremental;
  incremental.executor.engine = WindowEngine::kIncremental;
  const Table table = test::MakeRandomTable(140, 45, 5);
  InProcessWorker w1{incremental}, w2{incremental};
  Coordinator coordinator(FastOptions({w1.port, w2.port}));
  ASSERT_TRUE(coordinator.RegisterTable("t", table, {"grp"}).ok());
  QueryService reference{incremental};
  reference.RegisterTable("t", Table(table));
  const std::string sql =
      "select mode(val) over (partition by grp order by ord rows between 3 "
      "preceding and current row) from t";
  StatusOr<dist::CoordinatorQueryResult> scattered = coordinator.Query(sql);
  ASSERT_TRUE(scattered.ok()) << scattered.status().ToString();
  EXPECT_EQ(scattered->regime, "scatter(2)");
  StatusOr<service::QueryResult> single = reference.Query(sql);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(service::FormatTable(scattered->table, ResultFormat::kCsv),
            service::FormatTable(single->table, ResultFormat::kCsv));
}

TEST(CoordinatorTest, UnsupportedFunctionErrorMatchesSingleProcess) {
  // Under the default engine mode is NotImplemented everywhere; the
  // coordinator must surface the worker's error, not hang or mangle it.
  const Table table = test::MakeRandomTable(60, 46, 4);
  InProcessWorker w1, w2;
  Coordinator coordinator(FastOptions({w1.port, w2.port}));
  ASSERT_TRUE(coordinator.RegisterTable("t", table, {"grp"}).ok());
  QueryService reference;
  reference.RegisterTable("t", Table(table));
  const std::string sql =
      "select mode(val) over (partition by grp order by ord rows between 3 "
      "preceding and current row) from t";
  StatusOr<dist::CoordinatorQueryResult> scattered = coordinator.Query(sql);
  StatusOr<service::QueryResult> single = reference.Query(sql);
  ASSERT_FALSE(scattered.ok());
  ASSERT_FALSE(single.ok());
  EXPECT_EQ(scattered.status().code(), single.status().code());
  EXPECT_NE(scattered.status().message().find("mode"), std::string::npos);
}

TEST(CoordinatorTest, FallbackMatchesSingleProcess) {
  const Table table = test::MakeRandomTable(180, 51, 4);
  InProcessWorker w1, w2;
  Coordinator coordinator(FastOptions({w1.port, w2.port}));
  ASSERT_TRUE(coordinator.RegisterTable("t", table, {"grp"}).ok());
  QueryService reference;
  reference.RegisterTable("t", Table(table));

  // No PARTITION BY at all, and a PARTITION BY that does not cover the
  // shard key: both must fall back and still match byte-for-byte.
  const std::vector<std::string> fallback_sql = {
      "select sum(price) over (order by ord, val, name rows between 3 "
      "preceding and current row) from t",
      "select rank() over (partition by flag order by val rows between 2 "
      "preceding and current row) from t",
  };
  for (const std::string& sql : fallback_sql) {
    StatusOr<dist::CoordinatorQueryResult> result = coordinator.Query(sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->regime, "fallback") << sql;
    StatusOr<service::QueryResult> single = reference.Query(sql);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(service::FormatTable(result->table, ResultFormat::kCsv),
              service::FormatTable(single->table, ResultFormat::kCsv))
        << sql;
  }
  const Coordinator::Stats stats = coordinator.stats();
  EXPECT_EQ(stats.fallback_queries, fallback_sql.size());
}

TEST(CoordinatorTest, ExplainReportsRegime) {
  const Table table = test::MakeRandomTable(60, 61, 4);
  InProcessWorker w1, w2;
  Coordinator coordinator(FastOptions({w1.port, w2.port}));
  ASSERT_TRUE(coordinator.RegisterTable("t", table, {"grp"}).ok());

  StatusOr<std::string> scatter = coordinator.Explain(
      "select rank() over (partition by grp order by val) from t");
  ASSERT_TRUE(scatter.ok());
  EXPECT_NE(scatter->find("regime: scatter(2)"), std::string::npos)
      << *scatter;
  StatusOr<std::string> fallback = coordinator.Explain(
      "select rank() over (order by val) from t");
  ASSERT_TRUE(fallback.ok());
  EXPECT_NE(fallback->find("regime: fallback"), std::string::npos);
  EXPECT_NE(fallback->find("shard key"), std::string::npos);
}

TEST(CoordinatorTest, AppendRoutesRowsToTheirPartitions) {
  const Table table = test::MakeRandomTable(120, 71, 4);
  InProcessWorker w1, w2;
  Coordinator coordinator(FastOptions({w1.port, w2.port}));
  ASSERT_TRUE(coordinator.RegisterTable("t", table, {"grp"}).ok());

  const Table batch = test::MakeRandomTable(40, 72, 4);
  StatusOr<size_t> appended = coordinator.AppendRows("t", batch);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(*appended, batch.num_rows());

  // Reference: the same rows appended to a single-process service.
  QueryService reference;
  reference.RegisterTable("t", Table(table));
  ASSERT_TRUE(reference.AppendRows("t", Table(batch)).ok());

  const std::string sql =
      "select sum(price) over (partition by grp order by ord, val, name "
      "rows between 3 preceding and current row) as s, "
      "rank() over (partition by grp order by val) as r from t";
  StatusOr<dist::CoordinatorQueryResult> scattered = coordinator.Query(sql);
  ASSERT_TRUE(scattered.ok()) << scattered.status().ToString();
  StatusOr<service::QueryResult> single = reference.Query(sql);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(service::FormatTable(scattered->table, ResultFormat::kCsv),
            service::FormatTable(single->table, ResultFormat::kCsv));
}

TEST(CoordinatorTest, KilledWorkerFailsQueryCleanlyAfterRetries) {
  const Table table = test::MakeRandomTable(150, 81, 6);
  auto w1 = std::make_unique<InProcessWorker>();
  auto w2 = std::make_unique<InProcessWorker>();
  Coordinator coordinator(FastOptions({w1->port, w2->port}));
  ASSERT_TRUE(coordinator.RegisterTable("t", table, {"grp"}).ok());

  const std::string sql =
      "select sum(val) over (partition by grp order by ord rows between 2 "
      "preceding and current row) from t";
  ASSERT_TRUE(coordinator.Query(sql).ok());

  // Kill worker 2 (listener and live connections): the next scattered
  // query must retry with backoff, then fail the whole query cleanly —
  // bounded time, no hang — while worker 1 stays healthy.
  w2.reset();
  const double begin = NowSeconds();
  StatusOr<dist::CoordinatorQueryResult> failed = coordinator.Query(sql);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted)
      << failed.status().ToString();
  EXPECT_LT(NowSeconds() - begin, 10.0);

  const Coordinator::Stats stats = coordinator.stats();
  EXPECT_GE(stats.retries, 2u);
  EXPECT_GE(stats.failed_shards, 1u);
  EXPECT_GE(stats.failed_queries, 1u);
  ASSERT_EQ(stats.workers.size(), 2u);
  EXPECT_TRUE(stats.workers[0].healthy);
  EXPECT_FALSE(stats.workers[1].healthy);
}

TEST(CoordinatorTest, ShardMetricsExport) {
  const Table table = test::MakeRandomTable(90, 91, 4);
  InProcessWorker w1, w2;
  Coordinator coordinator(FastOptions({w1.port, w2.port}));
  obs::MetricsRegistry registry;
  coordinator.RegisterMetrics(&registry);
  ASSERT_TRUE(coordinator.RegisterTable("t", table, {"grp"}).ok());
  ASSERT_TRUE(coordinator
                  .Query("select rank() over (partition by grp order by "
                         "val) from t")
                  .ok());
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("hwf_shard_scatter_total 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("hwf_shard_subqueries_total 2"), std::string::npos);
  EXPECT_NE(text.find("hwf_shard_latency_seconds"), std::string::npos);
  EXPECT_NE(text.find("hwf_shard_straggler_seconds"), std::string::npos);
  EXPECT_NE(text.find("hwf_shard_workers 2"), std::string::npos);
}

TEST(CoordinatorTest, SingleWorkerFleetStillScatters) {
  const Table table = test::MakeRandomTable(100, 95, 3);
  InProcessWorker w1;
  Coordinator coordinator(FastOptions({w1.port}));
  ASSERT_TRUE(coordinator.RegisterTable("t", table, {"grp"}).ok());
  QueryService reference;
  reference.RegisterTable("t", Table(table));
  const std::string sql =
      "select median(price) over (partition by grp order by ord rows "
      "between 2 preceding and current row) from t";
  StatusOr<dist::CoordinatorQueryResult> result = coordinator.Query(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->regime, "scatter(1)");
  StatusOr<service::QueryResult> single = reference.Query(sql);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(service::FormatTable(result->table, ResultFormat::kCsv),
            service::FormatTable(single->table, ResultFormat::kCsv));
  // Fallback on a one-worker fleet reuses the same full copy.
  StatusOr<dist::CoordinatorQueryResult> fallback = coordinator.Query(
      "select rank() over (order by val) from t");
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(fallback->regime, "fallback");
}

TEST(CoordinatorTest, DeadlinePropagatesToSubqueries) {
  const Table table = test::MakeRandomTable(80, 97, 4);
  InProcessWorker w1, w2;
  Coordinator coordinator(FastOptions({w1.port, w2.port}));
  ASSERT_TRUE(coordinator.RegisterTable("t", table, {"grp"}).ok());
  // An already-expired deadline fails before any work, quickly.
  StatusOr<dist::CoordinatorQueryResult> result = coordinator.Query(
      "select rank() over (partition by grp order by val) from t", 1e-9);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
}

}  // namespace
}  // namespace hwf
