#include <gtest/gtest.h>

#include <set>

#include "storage/column.h"
#include "storage/table.h"
#include "storage/tpch_gen.h"

namespace hwf {
namespace {

TEST(Value, RoundTripAndEquality) {
  EXPECT_EQ(Value::Int64(42), Value::Int64(42));
  EXPECT_FALSE(Value::Int64(42) == Value::Int64(43));
  EXPECT_FALSE(Value::Int64(42) == Value::Double(42.0));
  EXPECT_EQ(Value::Null(DataType::kInt64), Value::Null(DataType::kInt64));
  EXPECT_FALSE(Value::Null(DataType::kInt64) == Value::Int64(0));
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
  EXPECT_EQ(Value::Null(DataType::kDouble).ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
}

TEST(Column, AppendAndPositionalWrites) {
  Column column(DataType::kInt64);
  column.AppendInt64(1);
  column.AppendNull();
  column.AppendInt64(3);
  EXPECT_EQ(column.size(), 3u);
  EXPECT_FALSE(column.IsNull(0));
  EXPECT_TRUE(column.IsNull(1));
  EXPECT_EQ(column.GetInt64(2), 3);

  Column sized(DataType::kDouble, 4);
  EXPECT_EQ(sized.size(), 4u);
  EXPECT_TRUE(sized.IsNull(2));
  sized.SetDouble(2, 1.5);
  EXPECT_EQ(sized.GetDouble(2), 1.5);
  sized.SetNull(2);
  EXPECT_TRUE(sized.IsNull(2));
}

TEST(Column, HashIsValueBasedAndNullAware) {
  Column a(DataType::kInt64);
  a.AppendInt64(7);
  a.AppendInt64(7);
  a.AppendInt64(8);
  a.AppendNull();
  EXPECT_EQ(a.Hash(0), a.Hash(1));
  EXPECT_NE(a.Hash(0), a.Hash(2));
  EXPECT_NE(a.Hash(0), a.Hash(3));

  Column d(DataType::kDouble);
  d.AppendDouble(0.0);
  d.AppendDouble(-0.0);  // -0.0 == 0.0 in SQL comparisons.
  EXPECT_EQ(d.Hash(0), d.Hash(1));

  Column s(DataType::kString);
  s.AppendString("abc");
  s.AppendString("abc");
  s.AppendString("abd");
  EXPECT_EQ(s.Hash(0), s.Hash(1));
  EXPECT_NE(s.Hash(0), s.Hash(2));
}

TEST(Column, Compare) {
  Column s(DataType::kString);
  s.AppendString("apple");
  s.AppendString("banana");
  s.AppendString("apple");
  EXPECT_LT(s.Compare(0, 1), 0);
  EXPECT_GT(s.Compare(1, 0), 0);
  EXPECT_EQ(s.Compare(0, 2), 0);
}

TEST(Table, ColumnLookup) {
  Table table;
  table.AddColumn("a", Column::FromInt64({1, 2}));
  table.AddColumn("b", Column::FromDouble({1.5, 2.5}));
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.MustColumnIndex("b"), 1u);
  EXPECT_FALSE(table.ColumnIndex("zzz").ok());
}

TEST(Dates, RoundTrip) {
  EXPECT_EQ(DaysSinceEpoch(1970, 1, 1), 0);
  EXPECT_EQ(DayToString(0), "1970-01-01");
  EXPECT_EQ(DayToString(DaysSinceEpoch(1992, 1, 2)), "1992-01-02");
  EXPECT_EQ(DayToString(DaysSinceEpoch(1998, 12, 1)), "1998-12-01");
  EXPECT_EQ(DayToString(DaysSinceEpoch(2000, 2, 29)), "2000-02-29");
  // Leap year arithmetic across the century boundary.
  EXPECT_EQ(DaysSinceEpoch(2000, 3, 1) - DaysSinceEpoch(2000, 2, 28), 2);
  EXPECT_EQ(DaysSinceEpoch(1900, 3, 1) - DaysSinceEpoch(1899, 3, 1), 365);
}

TEST(Generators, LineitemShape) {
  Table t = GenerateLineitem(5000, 7);
  EXPECT_EQ(t.num_rows(), 5000u);
  const Column& price = t.column(t.MustColumnIndex("l_extendedprice"));
  const Column& ship = t.column(t.MustColumnIndex("l_shipdate"));
  const Column& receipt = t.column(t.MustColumnIndex("l_receiptdate"));
  const Column& part = t.column(t.MustColumnIndex("l_partkey"));
  const int64_t lo = DaysSinceEpoch(1992, 1, 2);
  const int64_t hi = DaysSinceEpoch(1998, 12, 1);
  std::set<int64_t> parts;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_GE(price.GetDouble(i), 900.0);
    EXPECT_LE(price.GetDouble(i), 105000.0);
    EXPECT_GE(ship.GetInt64(i), lo);
    EXPECT_LE(ship.GetInt64(i), hi);
    EXPECT_GT(receipt.GetInt64(i), ship.GetInt64(i));
    EXPECT_LE(receipt.GetInt64(i) - ship.GetInt64(i), 30);
    parts.insert(part.GetInt64(i));
  }
  // ~166 part keys → heavy duplication, like TPC-H's 30 rows per part.
  EXPECT_GT(parts.size(), 100u);
  EXPECT_LT(parts.size(), 200u);
}

TEST(Generators, Deterministic) {
  Table a = GenerateLineitem(1000, 42);
  Table b = GenerateLineitem(1000, 42);
  Table c = GenerateLineitem(1000, 43);
  const size_t price = a.MustColumnIndex("l_extendedprice");
  bool any_diff = false;
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.column(price).GetDouble(i), b.column(price).GetDouble(i));
    any_diff |= a.column(price).GetDouble(i) != c.column(price).GetDouble(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, TpccResultsShape) {
  Table t = GenerateTpccResults(500, 9);
  const Column& date = t.column(t.MustColumnIndex("submission_date"));
  const Column& tps = t.column(t.MustColumnIndex("tps"));
  for (size_t i = 1; i < t.num_rows(); ++i) {
    EXPECT_GT(date.GetInt64(i), date.GetInt64(i - 1));  // Increasing.
    EXPECT_GT(tps.GetDouble(i), 0.0);
  }
}

TEST(Generators, OrdersShape) {
  Table t = GenerateOrders(2000, 11);
  const Column& cust = t.column(t.MustColumnIndex("o_custkey"));
  std::set<int64_t> customers;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    customers.insert(cust.GetInt64(i));
  }
  EXPECT_GT(customers.size(), 100u);
  EXPECT_LE(customers.size(), 200u);
}

}  // namespace
}  // namespace hwf
