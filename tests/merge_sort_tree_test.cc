#include "mst/merge_sort_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/random.h"

namespace hwf {
namespace {

std::vector<uint32_t> RandomKeys(size_t n, uint32_t max_key, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = rng.Bounded(max_key + 1);
  return keys;
}

size_t BruteCountLess(const std::vector<uint32_t>& keys, size_t lo, size_t hi,
                      uint32_t threshold) {
  size_t count = 0;
  for (size_t i = lo; i < hi; ++i) {
    if (keys[i] < threshold) ++count;
  }
  return count;
}

TEST(MergeSortTree, EmptyAndSingle) {
  auto empty = MergeSortTree<uint32_t>::Build({}, {});
  EXPECT_EQ(empty.size(), 0u);

  auto single = MergeSortTree<uint32_t>::Build({7}, {});
  EXPECT_EQ(single.size(), 1u);
  EXPECT_EQ(single.CountLess(0, 1, 8), 1u);
  EXPECT_EQ(single.CountLess(0, 1, 7), 0u);
  EXPECT_EQ(single.CountLess(0, 0, 100), 0u);
}

TEST(MergeSortTree, TinyHandChecked) {
  // Keys:         5 1 4 2 3 0 7 6
  // Positions:    0 1 2 3 4 5 6 7
  std::vector<uint32_t> keys = {5, 1, 4, 2, 3, 0, 7, 6};
  MergeSortTreeOptions options;
  options.fanout = 2;
  options.sampling = 1;
  auto tree = MergeSortTree<uint32_t>::Build(keys, options);
  EXPECT_EQ(tree.CountLess(0, 8, 4), 4u);   // 1, 2, 3, 0
  EXPECT_EQ(tree.CountLess(2, 5, 4), 2u);   // 2, 3
  EXPECT_EQ(tree.CountLess(3, 7, 100), 4u); // whole range
  EXPECT_EQ(tree.CountLess(3, 3, 100), 0u); // empty range
}

TEST(MergeSortTree, SelectHandChecked) {
  // The bottom array is a permutation: Select(key range, i) returns the
  // i-th position whose key is in range.
  std::vector<uint32_t> keys = {5, 1, 4, 2, 3, 0, 7, 6};
  auto tree = MergeSortTree<uint32_t>::Build(keys, {});
  // Keys in [2, 6): positions 0(5), 2(4), 3(2), 4(3). In position order.
  EXPECT_EQ(tree.Select(2, 6, 0), 0u);
  EXPECT_EQ(tree.Select(2, 6, 1), 2u);
  EXPECT_EQ(tree.Select(2, 6, 2), 3u);
  EXPECT_EQ(tree.Select(2, 6, 3), 4u);
  KeyRange<uint32_t> ranges[2] = {{0, 2}, {6, 8}};
  // Keys in [0,2) or [6,8): positions 1(1), 5(0), 6(7), 7(6).
  std::span<const KeyRange<uint32_t>> span(ranges, 2);
  EXPECT_EQ(tree.CountKeysInRanges(span), 4u);
  EXPECT_EQ(tree.Select(span, 0), 1u);
  EXPECT_EQ(tree.Select(span, 1), 5u);
  EXPECT_EQ(tree.Select(span, 2), 6u);
  EXPECT_EQ(tree.Select(span, 3), 7u);
}

// (size, fanout, sampling, cascading)
using TreeParams = std::tuple<size_t, size_t, size_t, bool>;

class MergeSortTreeParamTest : public ::testing::TestWithParam<TreeParams> {};

TEST_P(MergeSortTreeParamTest, CountLessMatchesBruteForce) {
  const auto [n, fanout, sampling, cascading] = GetParam();
  MergeSortTreeOptions options;
  options.fanout = fanout;
  options.sampling = sampling;
  options.use_cascading = cascading;

  // Heavy duplicates: max key n/4 forces repeated values.
  std::vector<uint32_t> keys =
      RandomKeys(n, static_cast<uint32_t>(n / 4 + 1), /*seed=*/n * 31 + fanout);
  auto tree = MergeSortTree<uint32_t>::Build(keys, options);

  Pcg32 rng(n * 7 + sampling);
  for (int q = 0; q < 200; ++q) {
    size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
    size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
    if (lo > hi) std::swap(lo, hi);
    const uint32_t threshold = rng.Bounded(static_cast<uint32_t>(n / 2 + 2));
    EXPECT_EQ(tree.CountLess(lo, hi, threshold),
              BruteCountLess(keys, lo, hi, threshold))
        << "n=" << n << " lo=" << lo << " hi=" << hi << " t=" << threshold;
  }
}

TEST_P(MergeSortTreeParamTest, SelectMatchesBruteForce) {
  const auto [n, fanout, sampling, cascading] = GetParam();
  if (n == 0) return;
  MergeSortTreeOptions options;
  options.fanout = fanout;
  options.sampling = sampling;
  options.use_cascading = cascading;

  // A permutation, as used by percentiles.
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<uint32_t>(i);
  Pcg32 shuffle_rng(n * 13 + fanout);
  for (size_t i = n; i > 1; --i) {
    std::swap(keys[i - 1], keys[shuffle_rng.Bounded(static_cast<uint32_t>(i))]);
  }
  auto tree = MergeSortTree<uint32_t>::Build(keys, options);

  Pcg32 rng(n * 17 + sampling);
  for (int q = 0; q < 100; ++q) {
    uint32_t klo = rng.Bounded(static_cast<uint32_t>(n + 1));
    uint32_t khi = rng.Bounded(static_cast<uint32_t>(n + 1));
    if (klo > khi) std::swap(klo, khi);
    // Brute force: positions with key in [klo, khi), in order.
    std::vector<size_t> expected;
    for (size_t i = 0; i < n; ++i) {
      if (keys[i] >= klo && keys[i] < khi) expected.push_back(i);
    }
    KeyRange<uint32_t> range{klo, khi};
    std::span<const KeyRange<uint32_t>> span(&range, 1);
    ASSERT_EQ(tree.CountKeysInRanges(span), expected.size());
    // Spot-check a few selections.
    for (size_t probe = 0; probe < std::min<size_t>(expected.size(), 10);
         ++probe) {
      const size_t i =
          probe * std::max<size_t>(expected.size() / 10, 1) % expected.size();
      EXPECT_EQ(tree.Select(span, i), expected[i]) << "i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeSortTreeParamTest,
    ::testing::Combine(
        ::testing::Values<size_t>(0, 1, 2, 3, 7, 8, 9, 31, 32, 33, 100, 1000,
                                  4097),
        ::testing::Values<size_t>(2, 3, 4, 32),   // fanout
        ::testing::Values<size_t>(1, 4, 32, 64),  // sampling
        ::testing::Bool()));                      // cascading

TEST(MergeSortTree, MultiRangeSelectAcrossHoles) {
  const size_t n = 500;
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<uint32_t>(i);
  Pcg32 rng(99);
  for (size_t i = n; i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Bounded(static_cast<uint32_t>(i))]);
  }
  auto tree = MergeSortTree<uint32_t>::Build(keys, {});
  for (int q = 0; q < 50; ++q) {
    uint32_t bounds[6];
    for (auto& b : bounds) b = rng.Bounded(n + 1);
    std::sort(bounds, bounds + 6);
    KeyRange<uint32_t> ranges[3] = {{bounds[0], bounds[1]},
                                    {bounds[2], bounds[3]},
                                    {bounds[4], bounds[5]}};
    std::span<const KeyRange<uint32_t>> span(ranges, 3);
    std::vector<size_t> expected;
    for (size_t i = 0; i < n; ++i) {
      for (const auto& r : ranges) {
        if (keys[i] >= r.lo && keys[i] < r.hi) {
          expected.push_back(i);
          break;
        }
      }
    }
    ASSERT_EQ(tree.CountKeysInRanges(span), expected.size());
    for (size_t i = 0; i < expected.size(); i += 7) {
      EXPECT_EQ(tree.Select(span, i), expected[i]);
    }
  }
}

TEST(MergeSortTree, MemoryGrowsWithLevels) {
  auto small = MergeSortTree<uint32_t>::Build(RandomKeys(100, 50, 1), {});
  auto large = MergeSortTree<uint32_t>::Build(RandomKeys(10000, 50, 1), {});
  EXPECT_GT(large.MemoryUsageBytes(), small.MemoryUsageBytes());
  EXPECT_GE(large.num_levels(), small.num_levels());
}

TEST(MergeSortTree, SixtyFourBitIndexes) {
  std::vector<uint64_t> keys = {5, 1, 4, 2, 3, 0, 7, 6};
  auto tree = MergeSortTree<uint64_t>::Build(keys, {});
  EXPECT_EQ(tree.CountLess(0, 8, 4), 4u);
  EXPECT_EQ(tree.Select(uint64_t{2}, uint64_t{6}, 1), 2u);
}

TEST(MergeSortTree, CascadingMatchesNonCascading) {
  const size_t n = 2000;
  std::vector<uint32_t> keys = RandomKeys(n, 300, 5);
  MergeSortTreeOptions with;
  with.use_cascading = true;
  with.fanout = 4;
  with.sampling = 8;
  MergeSortTreeOptions without = with;
  without.use_cascading = false;
  auto tree_a = MergeSortTree<uint32_t>::Build(keys, with);
  auto tree_b = MergeSortTree<uint32_t>::Build(keys, without);
  Pcg32 rng(123);
  for (int q = 0; q < 300; ++q) {
    size_t lo = rng.Bounded(n + 1);
    size_t hi = rng.Bounded(n + 1);
    if (lo > hi) std::swap(lo, hi);
    const uint32_t t = rng.Bounded(301);
    EXPECT_EQ(tree_a.CountLess(lo, hi, t), tree_b.CountLess(lo, hi, t));
  }
  EXPECT_GT(tree_a.MemoryUsageBytes(), tree_b.MemoryUsageBytes());
}

TEST(MergeSortTree, ParallelChunkedBuildMatchesSerial) {
  // With more workers than runs, the upper levels use the §5.2 chunked
  // merge (MultiwaySelect splits). Every level must be bit-identical to
  // the serial build.
  ThreadPool serial_pool(0);
  ThreadPool parallel_pool(6);
  for (size_t n : {100u, 4097u, 50000u}) {
    for (size_t fanout : {2u, 32u}) {
      std::vector<uint32_t> keys = RandomKeys(n, static_cast<uint32_t>(n / 3 + 1), n);
      MergeSortTreeOptions options;
      options.fanout = fanout;
      auto serial = MergeSortTree<uint32_t>::Build(keys, options, serial_pool);
      auto parallel =
          MergeSortTree<uint32_t>::Build(keys, options, parallel_pool);
      ASSERT_EQ(serial.num_levels(), parallel.num_levels());
      for (size_t level = 0; level < serial.num_levels(); ++level) {
        ASSERT_EQ(serial.level_data(level), parallel.level_data(level))
            << "n=" << n << " fanout=" << fanout << " level=" << level;
      }
      // Queries agree too (exercises cascade pointers built in chunks).
      Pcg32 rng(n);
      for (int q = 0; q < 100; ++q) {
        size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
        size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
        if (lo > hi) std::swap(lo, hi);
        const uint32_t t = rng.Bounded(static_cast<uint32_t>(n / 3 + 2));
        ASSERT_EQ(serial.CountLess(lo, hi, t), parallel.CountLess(lo, hi, t));
      }
    }
  }
}

TEST(MergeSortTree, MultiwaySelectSplitsMatchMergePrefix) {
  Pcg32 rng(77);
  for (int round = 0; round < 20; ++round) {
    const size_t num_children = 1 + rng.Bounded(6);
    std::vector<std::vector<uint32_t>> children(num_children);
    std::vector<const uint32_t*> data(num_children);
    std::vector<size_t> lens(num_children);
    size_t total = 0;
    for (size_t c = 0; c < num_children; ++c) {
      children[c].resize(rng.Bounded(200));
      for (auto& v : children[c]) v = rng.Bounded(30);  // Heavy ties.
      std::sort(children[c].begin(), children[c].end());
      data[c] = children[c].data();
      lens[c] = children[c].size();
      total += lens[c];
    }
    // Reference merge with child-index tie-break.
    std::vector<std::pair<uint32_t, size_t>> merged;
    for (size_t c = 0; c < num_children; ++c) {
      for (uint32_t v : children[c]) merged.push_back({v, c});
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const auto& a, const auto& b) {
                       if (a.first != b.first) return a.first < b.first;
                       return a.second < b.second;
                     });
    for (size_t k = 0; k <= total; k += 17) {
      std::vector<size_t> offsets(num_children);
      internal_mst::MultiwaySelect<uint32_t>(data.data(), lens.data(),
                                             num_children, k, offsets.data());
      // The offsets must consume exactly the first k merged elements.
      std::vector<size_t> expected(num_children, 0);
      for (size_t i = 0; i < k; ++i) ++expected[merged[i].second];
      ASSERT_EQ(offsets, expected) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace hwf
