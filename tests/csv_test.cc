#include "storage/csv.h"

#include <gtest/gtest.h>

namespace hwf {
namespace {

TEST(Csv, ParsesTypedColumns) {
  StatusOr<Table> table = ParseCsv(
      "id,price,name\n"
      "1,1.5,apple\n"
      "2,2,banana\n"
      "3,-0.25,\"che,rry\"\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(table->column(0).type(), DataType::kInt64);
  EXPECT_EQ(table->column(1).type(), DataType::kDouble);
  EXPECT_EQ(table->column(2).type(), DataType::kString);
  EXPECT_EQ(table->column(0).GetInt64(2), 3);
  EXPECT_EQ(table->column(1).GetDouble(2), -0.25);
  EXPECT_EQ(table->column(2).GetString(2), "che,rry");
}

TEST(Csv, EmptyFieldsAreNullQuotedEmptyIsString) {
  StatusOr<Table> table = ParseCsv(
      "a,b\n"
      "1,x\n"
      ",\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->column(0).IsNull(1));
  EXPECT_FALSE(table->column(1).IsNull(1));
  EXPECT_EQ(table->column(1).GetString(1), "");
}

TEST(Csv, QuotedEscapesAndNewlines) {
  StatusOr<Table> table = ParseCsv(
      "text\n"
      "\"he said \"\"hi\"\"\"\n"
      "\"line1\nline2\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column(0).GetString(0), "he said \"hi\"");
  EXPECT_EQ(table->column(0).GetString(1), "line1\nline2");
}

TEST(Csv, CrlfAndTrailingBlankLines) {
  StatusOr<Table> table = ParseCsv("a,b\r\n1,2\r\n3,4\r\n\n\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->column(1).GetInt64(1), 4);
}

TEST(Csv, Errors) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());        // Field count mismatch.
  EXPECT_FALSE(ParseCsv("a\n\"unclosed\n").ok());  // Unterminated quote.
  EXPECT_FALSE(ReadCsvFile("/nonexistent/x.csv").ok());
}

TEST(Csv, IntColumnWithNullsStaysInt) {
  // (A fully blank LINE is skipped, so the NULL sits in a 2-column row.)
  StatusOr<Table> table = ParseCsv("v,w\n1,a\n,b\n3,c\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column(0).type(), DataType::kInt64);
  ASSERT_EQ(table->num_rows(), 3u);
  EXPECT_TRUE(table->column(0).IsNull(1));
  EXPECT_EQ(table->column(0).GetInt64(2), 3);
}

TEST(Csv, AllNullColumnDefaultsToString) {
  StatusOr<Table> table = ParseCsv("v,w\n,1\n,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column(0).type(), DataType::kString);
}

TEST(Csv, RoundTrip) {
  Table table;
  Column i(DataType::kInt64);
  i.AppendInt64(42);
  i.AppendNull();
  Column d(DataType::kDouble);
  d.AppendDouble(0.1);
  d.AppendDouble(-3e10);
  Column s(DataType::kString);
  s.AppendString("plain");
  s.AppendString("with \"quote\" and, comma\nand newline");
  table.AddColumn("i", std::move(i));
  table.AddColumn("d", std::move(d));
  table.AddColumn("s", std::move(s));

  StatusOr<Table> parsed = ParseCsv(ToCsv(table));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->column(0).GetInt64(0), 42);
  EXPECT_TRUE(parsed->column(0).IsNull(1));
  EXPECT_EQ(parsed->column(1).GetDouble(0), 0.1);
  EXPECT_EQ(parsed->column(1).GetDouble(1), -3e10);
  EXPECT_EQ(parsed->column(2).GetString(1),
            "with \"quote\" and, comma\nand newline");
}

TEST(Csv, FileRoundTrip) {
  Table table;
  table.AddColumn("x", Column::FromInt64({1, 2, 3}));
  const std::string path = ::testing::TempDir() + "/hwf_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  StatusOr<Table> parsed = ReadCsvFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 3u);
  EXPECT_EQ(parsed->column(0).GetInt64(2), 3);
}

TEST(Csv, CustomDelimiter) {
  StatusOr<Table> table = ParseCsv("a;b\n1;2\n", ';');
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_columns(), 2u);
  EXPECT_EQ(table->column(1).GetInt64(0), 2);
}

}  // namespace
}  // namespace hwf
