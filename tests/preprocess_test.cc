// Differential testing of the fused preprocessing pipeline
// (mst/preprocess.h): every artifact it emits must equal the legacy
// per-artifact reference (prev_index.h / permutation.h) bit for bit, with
// and without offset-value-coded sorting.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/random.h"
#include "mst/permutation.h"
#include "mst/preprocess.h"
#include "mst/prev_index.h"
#include "obs/counters.h"
#include "parallel/thread_pool.h"

namespace hwf {
namespace {

PreprocessRequest AllArtifacts() {
  PreprocessRequest req;
  req.want_prev = true;
  req.want_next = true;
  req.want_perm = true;
  req.want_dense = true;
  req.want_unique = true;
  return req;
}

// The paper's Figure 1 example (values a b b c a b c a): the fused prev
// must reproduce the documented encoded prevIdcs exactly.
TEST(Preprocess, PaperFigure1Example) {
  ThreadPool pool(3);
  const std::vector<uint64_t> codes = {0, 1, 1, 2, 0, 1, 2, 0};
  PreprocessRequest req;
  req.want_prev = true;
  const auto pre =
      PreprocessHashedCodes<uint32_t>(codes, req, pool, /*use_ovc=*/true);
  EXPECT_EQ(pre.prev, (std::vector<uint32_t>{0, 0, 2, 0, 1, 3, 4, 5}));
}

TEST(Preprocess, HashedCodesMatchLegacy) {
  ThreadPool pool(3);
  for (const bool use_ovc : {false, true}) {
    for (const size_t n :
         {size_t{0}, size_t{1}, size_t{2}, size_t{500}, size_t{20000}}) {
      Pcg32 rng(n * 3 + use_ovc);
      std::vector<uint64_t> codes(n);
      // Heavy duplicates so occurrence chains are long.
      for (auto& c : codes) c = rng.Bounded(32);

      const auto pre = PreprocessHashedCodes<uint32_t>(codes, AllArtifacts(),
                                                       pool, use_ovc);
      EXPECT_EQ(pre.prev, ComputePrevIndices<uint32_t>(codes, pool))
          << "n=" << n << " ovc=" << use_ovc;
      EXPECT_EQ(pre.next, ComputeNextIndices<uint32_t>(codes, pool))
          << "n=" << n << " ovc=" << use_ovc;

      // perm / dense / unique under "code order, position tiebreak".
      auto cmp = [&codes](size_t a, size_t b) { return codes[a] < codes[b]; };
      EXPECT_EQ(pre.perm, ComputePermutation<uint32_t>(n, cmp, pool));
      size_t legacy_distinct = 0;
      EXPECT_EQ(pre.dense_codes,
                ComputeDenseCodes<uint32_t>(n, cmp, &legacy_distinct, pool));
      EXPECT_EQ(pre.num_distinct, legacy_distinct);
      EXPECT_EQ(pre.unique_codes, ComputeUniqueCodes<uint32_t>(n, cmp, pool));
    }
  }
}

TEST(Preprocess, OrderKeysMatchLegacy) {
  ThreadPool pool(3);
  for (const bool use_ovc : {false, true}) {
    const size_t n = 15000;
    Pcg32 rng(77 + use_ovc);
    std::vector<uint8_t> null_rank(n);
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
      null_rank[i] = static_cast<uint8_t>(rng.Bounded(3));
      keys[i] = rng.Bounded(64);
    }
    auto get = [&](size_t i) {
      return std::pair<uint8_t, uint64_t>{null_rank[i], keys[i]};
    };
    auto cmp = [&](size_t a, size_t b) {
      if (null_rank[a] != null_rank[b]) return null_rank[a] < null_rank[b];
      return keys[a] < keys[b];
    };

    const auto pre = PreprocessOrderKeys<uint32_t>(n, get, AllArtifacts(),
                                                   pool, use_ovc);
    EXPECT_EQ(pre.perm, ComputePermutation<uint32_t>(n, cmp, pool));
    size_t legacy_distinct = 0;
    EXPECT_EQ(pre.dense_codes,
              ComputeDenseCodes<uint32_t>(n, cmp, &legacy_distinct, pool));
    EXPECT_EQ(pre.num_distinct, legacy_distinct);
    EXPECT_EQ(pre.unique_codes, ComputeUniqueCodes<uint32_t>(n, cmp, pool));
  }
}

// 64-bit index instantiation takes the emission pass through the other
// template (different record layout, same artifacts).
TEST(Preprocess, Uint64IndexMatchesLegacy) {
  ThreadPool pool(3);
  const size_t n = 4000;
  Pcg32 rng(5);
  std::vector<uint64_t> codes(n);
  for (auto& c : codes) c = rng.Bounded(16);
  const auto pre =
      PreprocessHashedCodes<uint64_t>(codes, AllArtifacts(), pool);
  EXPECT_EQ(pre.prev, ComputePrevIndices<uint64_t>(codes, pool));
  EXPECT_EQ(pre.next, ComputeNextIndices<uint64_t>(codes, pool));
}

TEST(Preprocess, FusedRowCounterAdvances) {
  ThreadPool pool(3);
  const std::vector<uint64_t> codes(1000, 7);
  PreprocessRequest req;
  req.want_prev = true;
  const obs::CounterSnapshot before = obs::SnapshotCounters();
  PreprocessHashedCodes<uint32_t>(codes, req, pool);
  const obs::CounterSnapshot delta =
      obs::SnapshotDelta(before, obs::SnapshotCounters());
  EXPECT_EQ(delta[obs::Counter::kMstPreprocessFusedRows], 1000u);
}

}  // namespace
}  // namespace hwf
