// Hand-checked SQL semantics on small inputs, validated against values
// derived from the SQL standard / PostgreSQL behavior. These anchor the
// naive oracle (and thereby the whole conformance suite) to real SQL.
#include <gtest/gtest.h>

#include <vector>

#include "storage/table.h"
#include "window/executor.h"

namespace hwf {
namespace {

Table SalesTable() {
  // row: id  amount
  //  0:   1   10
  //  1:   2   20
  //  2:   3   20
  //  3:   4   30
  //  4:   5   10
  Table table;
  table.AddColumn("id", Column::FromInt64({1, 2, 3, 4, 5}));
  table.AddColumn("amount", Column::FromInt64({10, 20, 20, 30, 10}));
  return table;
}

Column Eval(const Table& table, const WindowSpec& spec,
            const WindowFunctionCall& call,
            WindowEngine engine = WindowEngine::kMergeSortTree) {
  WindowExecutorOptions options;
  options.engine = engine;
  StatusOr<Column> result = EvaluateWindowFunction(table, spec, call, options);
  HWF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(*result);
}

std::vector<int64_t> Ints(const Column& column) {
  std::vector<int64_t> values;
  for (size_t i = 0; i < column.size(); ++i) {
    values.push_back(column.IsNull(i) ? -999 : column.GetInt64(i));
  }
  return values;
}

std::vector<double> Doubles(const Column& column) {
  std::vector<double> values;
  for (size_t i = 0; i < column.size(); ++i) {
    values.push_back(column.IsNull(i) ? -999.0 : column.GetDouble(i));
  }
  return values;
}

TEST(Semantics, RunningCountDistinct) {
  // count(distinct amount) over (order by id rows unbounded preceding):
  // amounts 10 20 20 30 10 → 1 2 2 3 3.
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kCountDistinct;
  call.argument = 1;
  for (WindowEngine engine :
       {WindowEngine::kMergeSortTree, WindowEngine::kNaive,
        WindowEngine::kIncremental}) {
    EXPECT_EQ(Ints(Eval(SalesTable(), spec, call, engine)),
              (std::vector<int64_t>{1, 2, 2, 3, 3}));
  }
}

TEST(Semantics, RunningSumDistinct) {
  // sum(distinct amount): 10, 30, 30, 60, 60.
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kSumDistinct;
  call.argument = 1;
  for (WindowEngine engine :
       {WindowEngine::kMergeSortTree, WindowEngine::kNaive,
        WindowEngine::kIncremental}) {
    EXPECT_EQ(Ints(Eval(SalesTable(), spec, call, engine)),
              (std::vector<int64_t>{10, 30, 30, 60, 60}));
  }
}

TEST(Semantics, FramedRank) {
  // rank(order by amount) over whole partition:
  // amounts 10 20 20 30 10 → ranks 1 3 3 5 1.
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kRank;
  call.order_by = {SortKey{1, true, false}};
  EXPECT_EQ(Ints(Eval(SalesTable(), spec, call)),
            (std::vector<int64_t>{1, 3, 3, 5, 1}));
}

TEST(Semantics, FramedDenseRank) {
  // dense_rank over whole partition: 1 2 2 3 1.
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kDenseRank;
  call.order_by = {SortKey{1, true, false}};
  EXPECT_EQ(Ints(Eval(SalesTable(), spec, call)),
            (std::vector<int64_t>{1, 2, 2, 3, 1}));
}

TEST(Semantics, RowNumberBreaksTiesByPosition) {
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kRowNumber;
  call.order_by = {SortKey{1, true, false}};
  // Sorted by (amount, position): 10@0, 10@4, 20@1, 20@2, 30@3.
  EXPECT_EQ(Ints(Eval(SalesTable(), spec, call)),
            (std::vector<int64_t>{1, 3, 4, 5, 2}));
}

TEST(Semantics, CumeDistWholePartition) {
  // cume_dist = peers-inclusive count / N: amounts 10 20 20 30 10 →
  // 0.4 0.8 0.8 1.0 0.4.
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kCumeDist;
  call.order_by = {SortKey{1, true, false}};
  const std::vector<double> result = Doubles(Eval(SalesTable(), spec, call));
  const std::vector<double> expected = {0.4, 0.8, 0.8, 1.0, 0.4};
  ASSERT_EQ(result.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(result[i], expected[i]) << i;
  }
}

TEST(Semantics, PercentRankWholePartition) {
  // percent_rank = (rank-1)/(N-1): ranks 1 3 3 5 1 → 0 .5 .5 1 0.
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kPercentRank;
  call.order_by = {SortKey{1, true, false}};
  const std::vector<double> result = Doubles(Eval(SalesTable(), spec, call));
  const std::vector<double> expected = {0, 0.5, 0.5, 1.0, 0};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(result[i], expected[i]) << i;
  }
}

TEST(Semantics, PercentileDiscMatchesPostgres) {
  // percentile_disc(0.5) over {10,20,20,30,10} = 20 (first value with
  // cume_dist >= 0.5).
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kPercentileDisc;
  call.argument = 1;
  call.fraction = 0.5;
  EXPECT_EQ(Ints(Eval(SalesTable(), spec, call)),
            (std::vector<int64_t>{20, 20, 20, 20, 20}));
  // fraction 0 → minimum, fraction 1 → maximum.
  call.fraction = 0.0;
  EXPECT_EQ(Ints(Eval(SalesTable(), spec, call))[0], 10);
  call.fraction = 1.0;
  EXPECT_EQ(Ints(Eval(SalesTable(), spec, call))[0], 30);
}

TEST(Semantics, PercentileContInterpolates) {
  // Sorted {10,10,20,20,30}; cont(0.5) = element at position 2 = 20;
  // cont(0.25) = interpolate(10,10 + ... ) position 1.0 = 10;
  // cont(0.375) = position 1.5 → 15.
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kPercentileCont;
  call.argument = 1;
  call.fraction = 0.375;
  EXPECT_DOUBLE_EQ(Doubles(Eval(SalesTable(), spec, call))[0], 15.0);
}

TEST(Semantics, SlidingMedian) {
  // median(amount) over (order by id rows between 1 preceding and current):
  // frames {10} {10,20} {20,20} {20,30} {30,10} → disc medians
  // 10 10 20 20 10.
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::Preceding(1);
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kMedian;
  call.argument = 1;
  EXPECT_EQ(Ints(Eval(SalesTable(), spec, call)),
            (std::vector<int64_t>{10, 10, 20, 20, 10}));
}

TEST(Semantics, FirstValueWithFunctionOrder) {
  // first_value(id order by amount desc) over running frame: best amount
  // so far (ties: earlier row), = ids 1 2 2 4 4.
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kFirstValue;
  call.argument = 0;
  call.order_by = {SortKey{1, false, false}};
  EXPECT_EQ(Ints(Eval(SalesTable(), spec, call)),
            (std::vector<int64_t>{1, 2, 2, 4, 4}));
}

TEST(Semantics, LeadWithinRunningFrame) {
  // lead(amount, 1 order by amount desc) over running frame: the next-best
  // amount after the current row at its insertion time.
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kLead;
  call.argument = 1;
  call.order_by = {SortKey{1, false, false}};
  call.param = 1;
  // Frames (by id): {10}; {20,10}; {20,20,10}; {30,20,20,10}; all.
  // Current rows in desc order: row0: 10 → lead none (NULL/-999);
  // row1: 20 → next 10; row2: second 20 → next 10; row3: 30 → next 20;
  // row4: last 10 (position-tiebreak: row0's 10 sorts before row4's) →
  // lead = NULL.
  EXPECT_EQ(Ints(Eval(SalesTable(), spec, call)),
            (std::vector<int64_t>{-999, 10, 10, 20, -999}));
}

TEST(Semantics, ExcludeCurrentRowMax) {
  // max(amount) over all other rows.
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  spec.frame.exclusion = FrameExclusion::kCurrentRow;
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kMax;
  call.argument = 1;
  EXPECT_EQ(Ints(Eval(SalesTable(), spec, call)),
            (std::vector<int64_t>{30, 30, 30, 20, 30}));
}

TEST(Semantics, DistinctCountWithGapValueOnlyInHole) {
  // Order: position i has value v[i]; frame = whole partition EXCLUDE
  // GROUP. Build data where a value's only occurrences outside the hole
  // are AFTER the hole — exercising the gap-walk correction.
  Table table;
  table.AddColumn("id", Column::FromInt64({1, 2, 3, 4, 5, 6}));
  // values:                                a  b  b  a  c  b   (a=0,b=1,c=2)
  table.AddColumn("v", Column::FromInt64({0, 1, 1, 0, 2, 1}));
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  spec.frame.exclusion = FrameExclusion::kCurrentRow;
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kCountDistinct;
  call.argument = 1;
  // Excluding row i: row 0 (a@0): rest {b,b,a,c,b} = 3.
  // row 4 (c@4): rest {a,b,b,a,b} = 2. Everything else = 3.
  EXPECT_EQ(Ints(Eval(table, spec, call)),
            (std::vector<int64_t>{3, 3, 3, 3, 2, 3}));
}

TEST(Semantics, WindowedMode) {
  // amounts 10 20 20 30 10, running frame: modes 10, 10*, 20, 20, 10.
  // (*frame {10,20}: tie between 10 and 20 resolves to the smaller value.)
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  WindowFunctionCall mode;
  mode.kind = WindowFunctionKind::kMode;
  mode.argument = 1;
  for (WindowEngine engine :
       {WindowEngine::kNaive, WindowEngine::kIncremental}) {
    EXPECT_EQ(Ints(Eval(SalesTable(), spec, mode, engine)),
              (std::vector<int64_t>{10, 10, 20, 20, 10}));
  }
  // The merge sort tree engine reports mode as out of coverage (§1).
  WindowExecutorOptions options;
  StatusOr<Column> result =
      EvaluateWindowFunction(SalesTable(), spec, mode, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotImplemented);
}

TEST(Semantics, NtileDistribution) {
  Table table;
  table.AddColumn("id", Column::FromInt64({1, 2, 3, 4, 5, 6, 7}));
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kNtile;
  call.order_by = {SortKey{0, true, false}};
  call.param = 3;
  // 7 rows in 3 buckets: sizes 3, 2, 2 → tiles 1 1 1 2 2 3 3.
  EXPECT_EQ(Ints(Eval(table, spec, call)),
            (std::vector<int64_t>{1, 1, 1, 2, 2, 3, 3}));
}

TEST(Semantics, NullsOrderingInRank) {
  Table table;
  Column v(DataType::kInt64);
  v.AppendInt64(5);
  v.AppendNull();
  v.AppendInt64(3);
  table.AddColumn("id", Column::FromInt64({1, 2, 3}));
  table.AddColumn("v", std::move(v));
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kRank;
  // ASC NULLS LAST: 3 < 5 < NULL → ranks 2, 3, 1.
  call.order_by = {SortKey{1, true, false}};
  EXPECT_EQ(Ints(Eval(table, spec, call)),
            (std::vector<int64_t>{2, 3, 1}));
  // ASC NULLS FIRST: NULL < 3 < 5 → ranks 3, 1, 2.
  call.order_by = {SortKey{1, true, true}};
  EXPECT_EQ(Ints(Eval(table, spec, call)),
            (std::vector<int64_t>{3, 1, 2}));
}

TEST(Semantics, EmptyFrameResults) {
  Table table;
  table.AddColumn("id", Column::FromInt64({1, 2, 3}));
  table.AddColumn("v", Column::FromInt64({10, 20, 30}));
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::Preceding(2);
  spec.frame.end = FrameBound::Preceding(2);
  // Row 0 and 1 have empty frames.
  WindowFunctionCall sum;
  sum.kind = WindowFunctionKind::kSum;
  sum.argument = 1;
  Column sums = Eval(table, spec, sum);
  EXPECT_TRUE(sums.IsNull(0));
  EXPECT_TRUE(sums.IsNull(1));
  EXPECT_EQ(sums.GetInt64(2), 10);

  WindowFunctionCall count;
  count.kind = WindowFunctionKind::kCountDistinct;
  count.argument = 1;
  Column counts = Eval(table, spec, count);
  EXPECT_EQ(counts.GetInt64(0), 0);
  EXPECT_EQ(counts.GetInt64(2), 1);
}

}  // namespace
}  // namespace hwf
