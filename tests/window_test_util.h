#ifndef HWF_TESTS_WINDOW_TEST_UTIL_H_
#define HWF_TESTS_WINDOW_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/table.h"
#include "window/executor.h"
#include "window/spec.h"

namespace hwf {
namespace test {

/// A small random table exercising all the tricky cases: duplicates, NULLs,
/// multiple partitions, int/double/string columns, and a boolean filter
/// column.
///
/// Columns: 0 grp (int64, `partitions` values), 1 ord (int64, duplicates,
/// some NULLs), 2 val (int64, duplicates, some NULLs), 3 price (double),
/// 4 name (string, some NULLs), 5 flag (int64 0/1), 6 off (int64 0..4,
/// per-row frame offsets).
inline Table MakeRandomTable(size_t rows, uint64_t seed, int partitions = 3,
                             double null_fraction = 0.15) {
  Pcg32 rng(seed);
  Column grp(DataType::kInt64);
  Column ord(DataType::kInt64);
  Column val(DataType::kInt64);
  Column price(DataType::kDouble);
  Column name(DataType::kString);
  Column flag(DataType::kInt64);
  Column off(DataType::kInt64);
  const char* names[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  for (size_t i = 0; i < rows; ++i) {
    grp.AppendInt64(static_cast<int64_t>(rng.Bounded(partitions)));
    if (rng.NextDouble() < null_fraction) {
      ord.AppendNull();
    } else {
      ord.AppendInt64(static_cast<int64_t>(rng.Bounded(20)));
    }
    if (rng.NextDouble() < null_fraction) {
      val.AppendNull();
    } else {
      val.AppendInt64(static_cast<int64_t>(rng.Bounded(12)));
    }
    price.AppendDouble(static_cast<double>(rng.Bounded(1000)) / 4.0);
    if (rng.NextDouble() < null_fraction) {
      name.AppendNull();
    } else {
      name.AppendString(names[rng.Bounded(5)]);
    }
    flag.AppendInt64(rng.Bounded(4) != 0 ? 1 : 0);
    off.AppendInt64(static_cast<int64_t>(rng.Bounded(5)));
  }
  Table table;
  table.AddColumn("grp", std::move(grp));
  table.AddColumn("ord", std::move(ord));
  table.AddColumn("val", std::move(val));
  table.AddColumn("price", std::move(price));
  table.AddColumn("name", std::move(name));
  table.AddColumn("flag", std::move(flag));
  table.AddColumn("off", std::move(off));
  return table;
}

inline void ExpectColumnsEqual(const Column& actual, const Column& expected,
                               const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  ASSERT_EQ(actual.type(), expected.type()) << context;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_EQ(actual.IsNull(i), expected.IsNull(i))
        << context << " row " << i;
    if (actual.IsNull(i)) continue;
    switch (actual.type()) {
      case DataType::kInt64:
        ASSERT_EQ(actual.GetInt64(i), expected.GetInt64(i))
            << context << " row " << i;
        break;
      case DataType::kDouble:
        ASSERT_NEAR(actual.GetDouble(i), expected.GetDouble(i),
                    1e-9 * (1.0 + std::abs(expected.GetDouble(i))))
            << context << " row " << i;
        break;
      case DataType::kString:
        ASSERT_EQ(actual.GetString(i), expected.GetString(i))
            << context << " row " << i;
        break;
    }
  }
}

/// Evaluates `call` with both the merge sort tree engine and the naive
/// oracle and requires identical results.
inline void ExpectMatchesNaive(const Table& table, const WindowSpec& spec,
                               const WindowFunctionCall& call,
                               const std::string& context,
                               const WindowExecutorOptions& base_options = {}) {
  WindowExecutorOptions mst_options = base_options;
  mst_options.engine = WindowEngine::kMergeSortTree;
  StatusOr<Column> mst = EvaluateWindowFunction(table, spec, call, mst_options);
  ASSERT_TRUE(mst.ok()) << context << ": " << mst.status().ToString();

  WindowExecutorOptions naive_options = base_options;
  naive_options.engine = WindowEngine::kNaive;
  StatusOr<Column> naive =
      EvaluateWindowFunction(table, spec, call, naive_options);
  ASSERT_TRUE(naive.ok()) << context << ": " << naive.status().ToString();

  ExpectColumnsEqual(*mst, *naive, context);
}

}  // namespace test
}  // namespace hwf

#endif  // HWF_TESTS_WINDOW_TEST_UTIL_H_
