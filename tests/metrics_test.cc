// Tests for the Prometheus metrics registry, query-id trace attribution,
// the slow-query log, retained profiles (PROFILE <id>), and the service's
// per-stage telemetry.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "service/service.h"
#include "storage/column.h"
#include "storage/table.h"

namespace hwf {
namespace {

using obs::LatencyHistogram;
using obs::MetricsRegistry;
using service::QueryResult;
using service::QueryService;
using service::ServiceOptions;

Table MakeTable(size_t rows) {
  Pcg32 rng(21);
  Column ord(DataType::kInt64);
  Column price(DataType::kDouble);
  for (size_t i = 0; i < rows; ++i) {
    ord.AppendInt64(static_cast<int64_t>(rng.Bounded(1u << 16)));
    price.AppendDouble(rng.NextDouble() * 100.0);
  }
  Table table;
  table.AddColumn("ord", std::move(ord));
  table.AddColumn("price", std::move(price));
  return table;
}

constexpr char kSql[] =
    "select median(price) over (order by ord rows between 50 preceding "
    "and current row) from t";

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(MetricsRegistry, RendersCounterAndGauge) {
  MetricsRegistry registry;
  registry.AddCounter("test_events_total", "events seen", {},
                      [] { return 41.0; });
  registry.AddGauge("test_depth", "current depth", {{"queue", "main"}},
                    [] { return 7.0; });
  const std::string text = registry.RenderText();
  EXPECT_TRUE(Contains(text, "# HELP test_events_total events seen\n"));
  EXPECT_TRUE(Contains(text, "# TYPE test_events_total counter\n"));
  EXPECT_TRUE(Contains(text, "test_events_total 41\n"));
  EXPECT_TRUE(Contains(text, "# TYPE test_depth gauge\n"));
  EXPECT_TRUE(Contains(text, "test_depth{queue=\"main\"} 7\n"));
  EXPECT_EQ(text.back(), '\n');
}

TEST(MetricsRegistry, LabeledSeriesShareOneFamilyHeader) {
  MetricsRegistry registry;
  registry.AddCounter("multi_total", "by kind", {{"kind", "a"}},
                      [] { return 1.0; });
  registry.AddCounter("multi_total", "by kind", {{"kind", "b"}},
                      [] { return 2.0; });
  const std::string text = registry.RenderText();
  // One TYPE header, two series, contiguous.
  size_t first = text.find("# TYPE multi_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE multi_total", first + 1), std::string::npos);
  EXPECT_TRUE(Contains(text, "multi_total{kind=\"a\"} 1\n"));
  EXPECT_TRUE(Contains(text, "multi_total{kind=\"b\"} 2\n"));
}

TEST(MetricsRegistry, SummaryRendersQuantilesSumCount) {
  LatencyHistogram histogram;
  for (uint64_t v = 1; v <= 100; ++v) histogram.Record(v * 1000);
  MetricsRegistry registry;
  registry.AddSummary("test_latency_seconds", "latency", {}, &histogram,
                      1e-6);
  const std::string text = registry.RenderText();
  EXPECT_TRUE(Contains(text, "# TYPE test_latency_seconds summary\n"));
  EXPECT_TRUE(Contains(text, "test_latency_seconds{quantile=\"0.5\"}"));
  EXPECT_TRUE(Contains(text, "test_latency_seconds{quantile=\"0.99\"}"));
  EXPECT_TRUE(Contains(text, "test_latency_seconds{quantile=\"0.999\"}"));
  EXPECT_TRUE(Contains(text, "test_latency_seconds_count 100\n"));
  // Sum: 1000 * (1+...+100) us = 5.05 s.
  EXPECT_TRUE(Contains(text, "test_latency_seconds_sum 5.05"));
}

TEST(MetricsRegistry, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.AddGauge("esc", "x", {{"v", "a\"b\\c\nd"}}, [] { return 1.0; });
  EXPECT_TRUE(Contains(registry.RenderText(), "{v=\"a\\\"b\\\\c\\nd\"}"));
}

TEST(MetricsRegistry, SanitizeMetricName) {
  EXPECT_EQ(obs::SanitizeMetricName("pool.tasks_submitted"),
            "pool_tasks_submitted");
  EXPECT_EQ(obs::SanitizeMetricName("a-b c"), "a_b_c");
}

TEST(MetricsRegistry, ProcessCountersAllExposed) {
  MetricsRegistry registry;
  obs::RegisterProcessCounters(&registry);
  const std::string text = registry.RenderText();
  EXPECT_TRUE(Contains(text, "hwf_pool_tasks_submitted_total"));
  EXPECT_TRUE(Contains(text, "hwf_cache_hits_total"));
  EXPECT_TRUE(Contains(text, "hwf_service_rejected_queue_full_total"));
}

TEST(TraceQueryId, ScopedQueryIdNestsAndRestores) {
  EXPECT_EQ(obs::CurrentQueryId(), 0u);
  {
    obs::ScopedQueryId outer(7);
    EXPECT_EQ(obs::CurrentQueryId(), 7u);
    {
      obs::ScopedQueryId inner(9);
      EXPECT_EQ(obs::CurrentQueryId(), 9u);
    }
    EXPECT_EQ(obs::CurrentQueryId(), 7u);
  }
  EXPECT_EQ(obs::CurrentQueryId(), 0u);
}

TEST(TraceQueryId, SpansCarryTheAmbientId) {
  obs::Tracer::Get().Clear();
  obs::Tracer::Get().Enable();
  {
    obs::ScopedQueryId scope(1234);
    HWF_TRACE_SCOPE("test.attributed");
  }
  { HWF_TRACE_SCOPE("test.unattributed"); }
  obs::Tracer::Get().Disable();
  bool found_attributed = false;
  for (const obs::TraceEvent& event : obs::Tracer::Get().Snapshot()) {
    if (std::string(event.name) == "test.attributed") {
      EXPECT_EQ(event.query_id, 1234u);
      found_attributed = true;
    }
    if (std::string(event.name) == "test.unattributed") {
      EXPECT_EQ(event.query_id, 0u);
    }
  }
  EXPECT_TRUE(found_attributed);
  const std::string json = obs::Tracer::Get().ToChromeTraceJson();
  EXPECT_TRUE(Contains(json, "\"query\": 1234"));
  obs::Tracer::Get().Clear();
}

TEST(TraceQueryId, ThreadPoolSubmitPropagatesTheSubmittersId) {
  // The worker must observe the submitter's ambient id. Raw Submit + own
  // condition variable so the task cannot be helped by this thread (which
  // would trivially share its TLS).
  ThreadPool pool(2);
  std::mutex mutex;
  std::condition_variable cv;
  bool ran = false;
  uint64_t observed = 0;
  {
    obs::ScopedQueryId scope(555);
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mutex);
      observed = obs::CurrentQueryId();
      ran = true;
      cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return ran; });
  EXPECT_EQ(observed, 555u);
  // And the worker's TLS must be restored: a task submitted outside any
  // query sees id 0 even on the same worker thread.
  ran = false;
  pool.Submit([&] {
    std::lock_guard<std::mutex> inner_lock(mutex);
    observed = obs::CurrentQueryId();
    ran = true;
    cv.notify_one();
  });
  cv.wait(lock, [&] { return ran; });
  EXPECT_EQ(observed, 0u);
}

TEST(ServiceTelemetry, StageHistogramsRecordQueries) {
  ServiceOptions options;
  options.num_sessions = 1;
  QueryService svc(options);
  svc.RegisterTable("t", MakeTable(4000));
  for (int i = 0; i < 3; ++i) {
    StatusOr<QueryResult> result = svc.Query(kSql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->query_id, 0u);
  }
  const service::ServiceTelemetry* telemetry = svc.telemetry();
  ASSERT_NE(telemetry, nullptr);
  using service::QueryStage;
  auto count = [&](QueryStage stage) {
    return telemetry->stages[static_cast<size_t>(stage)].Count();
  };
  EXPECT_EQ(count(QueryStage::kTotal), 3u);
  EXPECT_EQ(count(QueryStage::kQueueWait), 3u);
  EXPECT_EQ(count(QueryStage::kParsePlan), 3u);
  EXPECT_EQ(count(QueryStage::kSort), 3u);
  EXPECT_EQ(count(QueryStage::kTreeBuild), 3u);
  EXPECT_EQ(count(QueryStage::kProbe), 3u);
  // p99 >= p50 >= 0 for total latency.
  const obs::HistogramSnapshot total =
      telemetry->stages[static_cast<size_t>(QueryStage::kTotal)].Snapshot();
  EXPECT_GE(total.Quantile(0.99), total.Quantile(0.5));
  EXPECT_GE(total.Quantile(0.5), 0.0);
  // Outcome tally: 3 ok, nothing else.
  using service::QueryOutcome;
  EXPECT_EQ(telemetry->outcomes[static_cast<size_t>(QueryOutcome::kOk)]
                .Count(),
            3u);
  EXPECT_EQ(
      telemetry->outcome_counts[static_cast<size_t>(QueryOutcome::kOk)].load(),
      3u);
}

TEST(ServiceTelemetry, RejectionsAreCountedByCause) {
  ServiceOptions options;
  options.num_sessions = 1;
  options.max_queued = 0;  // every submission bounces off the queue
  QueryService svc(options);
  svc.RegisterTable("t", MakeTable(100));
  StatusOr<uint64_t> id = svc.Submit(kSql);
  EXPECT_FALSE(id.ok());
  const QueryService::Stats stats = svc.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.rejected_memory, 0u);
  using service::QueryOutcome;
  EXPECT_EQ(svc.telemetry()
                ->outcome_counts[static_cast<size_t>(QueryOutcome::kRejected)]
                .load(),
            1u);
}

TEST(ServiceTelemetry, RegisterMetricsRendersServiceFamilies) {
  ServiceOptions options;
  options.num_sessions = 1;
  QueryService svc(options);
  svc.RegisterTable("t", MakeTable(2000));
  MetricsRegistry registry;
  svc.RegisterMetrics(&registry);
  ASSERT_TRUE(svc.Query(kSql).ok());
  const std::string text = registry.RenderText();
  EXPECT_TRUE(Contains(text, "# TYPE hwf_service_queued gauge"));
  EXPECT_TRUE(Contains(text, "# TYPE hwf_query_stage_seconds summary"));
  EXPECT_TRUE(Contains(text, "hwf_query_stage_seconds_count{stage=\"total\"} 1"));
  EXPECT_TRUE(
      Contains(text, "hwf_service_queries_by_outcome_total{outcome=\"ok\"} 1"));
  EXPECT_TRUE(Contains(
      text, "hwf_service_rejected_by_cause_total{cause=\"queue_full\"} 0"));
}

TEST(ServiceTelemetry, StatsJsonIncludesLatencyAndOutcomes) {
  ServiceOptions options;
  options.num_sessions = 1;
  QueryService svc(options);
  svc.RegisterTable("t", MakeTable(2000));
  ASSERT_TRUE(svc.Query(kSql).ok());
  const std::string json = svc.StatsJson();
  EXPECT_TRUE(Contains(json, "\"latency\""));
  EXPECT_TRUE(Contains(json, "\"total\""));
  EXPECT_TRUE(Contains(json, "\"p99_seconds\""));
  EXPECT_TRUE(Contains(json, "\"outcomes\""));
  EXPECT_TRUE(Contains(json, "\"peak_queued\""));
  EXPECT_TRUE(Contains(json, "\"ok\":1"));
}

TEST(ServiceTelemetry, RetainedProfileRoundTrips) {
  ServiceOptions options;
  options.num_sessions = 1;
  options.retained_profiles = 2;
  QueryService svc(options);
  svc.RegisterTable("t", MakeTable(2000));
  StatusOr<QueryResult> result = svc.Query(kSql);
  ASSERT_TRUE(result.ok());
  StatusOr<std::string> profile = svc.RetainedProfileJson(result->query_id);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_TRUE(Contains(*profile, "\"query_id\": " +
                                     std::to_string(result->query_id)));
  EXPECT_TRUE(Contains(*profile, "\"outcome\": \"ok\""));
  EXPECT_TRUE(Contains(*profile, "\"queue_wait_seconds\""));
  EXPECT_TRUE(Contains(*profile, "\"exec_seconds\""));
  EXPECT_TRUE(Contains(*profile, "\"phases\""));  // embedded profile JSON
  EXPECT_FALSE(svc.RetainedProfileJson(999999).ok());
  // The ring retains only the most recent N.
  ASSERT_TRUE(svc.Query(kSql).ok());
  ASSERT_TRUE(svc.Query(kSql).ok());
  EXPECT_FALSE(svc.RetainedProfileJson(result->query_id).ok());
}

TEST(ServiceTelemetry, SlowQueryLogWritesSchemaCompleteLines) {
  const std::string path = ::testing::TempDir() + "/slow_query_test.jsonl";
  std::remove(path.c_str());
  {
    ServiceOptions options;
    options.num_sessions = 2;
    options.slow_query_log_path = path;
    options.slow_query_seconds = 0;  // every query is "slow"
    QueryService svc(options);
    svc.RegisterTable("t", MakeTable(2000));
    ASSERT_TRUE(svc.Query(kSql).ok());
    ASSERT_TRUE(svc.Query(kSql).ok());
    EXPECT_FALSE(svc.Query("select nope from t").ok());  // error outcome too
    svc.Shutdown();
    EXPECT_EQ(svc.stats().slow_queries, 3u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');  // complete record, no truncation
    for (const char* key :
         {"\"query_id\"", "\"sql\"", "\"outcome\"", "\"total_seconds\"",
          "\"queue_wait_seconds\"", "\"exec_seconds\"", "\"cache_hits\"",
          "\"cache_misses\"", "\"peak_reserved_bytes\"", "\"profile\""}) {
      EXPECT_TRUE(Contains(line, key)) << "line " << lines << ": " << line;
    }
  }
  EXPECT_EQ(lines, 3u);
  std::remove(path.c_str());
}

TEST(ServiceTelemetry, QueueWaitIsSubtractedFromExecTime) {
  // One session + a first query occupying it: the second query's record
  // must show queue wait > 0 and exec_seconds ~= total - queue_wait.
  const std::string path = ::testing::TempDir() + "/queue_wait_test.jsonl";
  std::remove(path.c_str());
  {
    ServiceOptions options;
    options.num_sessions = 1;
    options.slow_query_log_path = path;
    options.slow_query_seconds = 0;
    QueryService svc(options);
    svc.RegisterTable("t", MakeTable(30000));
    StatusOr<uint64_t> first = svc.Submit(kSql);
    ASSERT_TRUE(first.ok());
    StatusOr<uint64_t> second = svc.Submit(kSql);
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(svc.Wait(*first).ok());
    ASSERT_TRUE(svc.Wait(*second).ok());
    StatusOr<std::string> record = svc.RetainedProfileJson(*second);
    ASSERT_TRUE(record.ok());
    // Parse the three numbers back out of the JSON record.
    auto number = [&](const char* key) {
      const size_t pos = record->find(key);
      EXPECT_NE(pos, std::string::npos) << key;
      return std::atof(record->c_str() + pos + std::strlen(key) + 1);
    };
    const double total = number("\"total_seconds\":");
    const double queue_wait = number("\"queue_wait_seconds\":");
    const double exec = number("\"exec_seconds\":");
    EXPECT_GT(queue_wait, 0.0);
    EXPECT_NEAR(exec, total - queue_wait, 1e-5);
    EXPECT_LT(exec, total);
  }
  std::remove(path.c_str());
}

TEST(SlowQueryLog, JsonEscaped) {
  EXPECT_EQ(obs::JsonEscaped("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(obs::JsonEscaped(std::string_view("\x01", 1)), "\\u0001");
}

TEST(CounterDeltaTracker, TracksAndRebases) {
  obs::CounterDeltaTracker tracker;
  obs::Add(obs::Counter::kCacheHits, 3);
  EXPECT_EQ(tracker.DeltaOf(obs::Counter::kCacheHits), 3u);
  tracker.Rebase();
  EXPECT_EQ(tracker.DeltaOf(obs::Counter::kCacheHits), 0u);
  obs::Add(obs::Counter::kCacheHits, 2);
  const obs::CounterSnapshot delta = tracker.Delta();
  EXPECT_EQ(delta[obs::Counter::kCacheHits], 2u);
}

}  // namespace
}  // namespace hwf
