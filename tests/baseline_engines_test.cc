// The competitor engines (incremental, order statistic tree) must produce
// the same results as the naive oracle on their supported functions — the
// paper's comparisons are only meaningful if all engines agree.
#include <gtest/gtest.h>

#include <string>

#include "tests/window_test_util.h"

namespace hwf {
namespace {

using test::ExpectColumnsEqual;
using test::MakeRandomTable;

constexpr size_t kOrd = 1;
constexpr size_t kVal = 2;
constexpr size_t kPrice = 3;
constexpr size_t kOff = 6;

void ExpectEngineMatchesNaive(const Table& table, const WindowSpec& spec,
                              const WindowFunctionCall& call,
                              WindowEngine engine, const std::string& context,
                              size_t morsel_size = 32) {
  WindowExecutorOptions options;
  options.engine = engine;
  options.morsel_size = morsel_size;
  StatusOr<Column> actual = EvaluateWindowFunction(table, spec, call, options);
  ASSERT_TRUE(actual.ok()) << context << ": " << actual.status().ToString();

  options.engine = WindowEngine::kNaive;
  StatusOr<Column> expected =
      EvaluateWindowFunction(table, spec, call, options);
  ASSERT_TRUE(expected.ok()) << context;
  ExpectColumnsEqual(*actual, *expected, context);
}

WindowSpec SlidingSpec(int64_t preceding, int64_t following) {
  WindowSpec spec;
  spec.partition_by = {0};
  spec.order_by = {SortKey{kOrd, true, false}};
  spec.frame.begin = FrameBound::Preceding(preceding);
  spec.frame.end = FrameBound::Following(following);
  return spec;
}

TEST(IncrementalEngine, DistinctAggregates) {
  Table table = MakeRandomTable(250, 21);
  for (auto kind :
       {WindowFunctionKind::kCountDistinct, WindowFunctionKind::kSumDistinct,
        WindowFunctionKind::kAvgDistinct}) {
    WindowFunctionCall call;
    call.kind = kind;
    call.argument = kVal;
    ExpectEngineMatchesNaive(table, SlidingSpec(9, 4), call,
                             WindowEngine::kIncremental,
                             WindowFunctionKindName(kind));
  }
}

TEST(IncrementalEngine, Percentiles) {
  Table table = MakeRandomTable(250, 22);
  for (auto kind :
       {WindowFunctionKind::kMedian, WindowFunctionKind::kPercentileDisc,
        WindowFunctionKind::kPercentileCont}) {
    WindowFunctionCall call;
    call.kind = kind;
    call.argument = kPrice;
    call.fraction = 0.9;
    ExpectEngineMatchesNaive(table, SlidingSpec(15, 0), call,
                             WindowEngine::kIncremental,
                             WindowFunctionKindName(kind));
  }
}

TEST(IncrementalEngine, ModeMatchesNaive) {
  Table table = MakeRandomTable(300, 29);
  WindowFunctionCall mode;
  mode.kind = WindowFunctionKind::kMode;
  mode.argument = kVal;
  ExpectEngineMatchesNaive(table, SlidingSpec(11, 5), mode,
                           WindowEngine::kIncremental, "mode sliding");
  // Running frame and string argument.
  WindowSpec running;
  running.partition_by = {0};
  running.order_by = {SortKey{kOrd, true, false}};
  ExpectEngineMatchesNaive(table, running, mode, WindowEngine::kIncremental,
                           "mode running");
  mode.argument = 4;  // name column (strings)
  ExpectEngineMatchesNaive(table, SlidingSpec(9, 2), mode,
                           WindowEngine::kIncremental, "mode strings");
  // With FILTER.
  mode.argument = kVal;
  mode.filter = 5;
  ExpectEngineMatchesNaive(table, SlidingSpec(8, 8), mode,
                           WindowEngine::kIncremental, "mode filter");
}

TEST(IncrementalEngine, NonMonotonicFrames) {
  Table table = MakeRandomTable(200, 23);
  WindowSpec spec;
  spec.order_by = {SortKey{kOrd, true, false}};
  spec.frame.begin = FrameBound::PrecedingColumn(kOff);
  spec.frame.end = FrameBound::FollowingColumn(kOff);
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kCountDistinct;
  call.argument = kVal;
  ExpectEngineMatchesNaive(table, spec, call, WindowEngine::kIncremental,
                           "non-monotonic distinct count");
  call.kind = WindowFunctionKind::kMedian;
  call.argument = kPrice;
  ExpectEngineMatchesNaive(table, spec, call, WindowEngine::kIncremental,
                           "non-monotonic median");
}

TEST(IncrementalEngine, UnsupportedKindsReportNotImplemented) {
  Table table = MakeRandomTable(50, 24);
  WindowSpec spec = SlidingSpec(5, 0);
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kRank;
  call.order_by = {SortKey{kVal, true, false}};
  WindowExecutorOptions options;
  options.engine = WindowEngine::kIncremental;
  StatusOr<Column> result = EvaluateWindowFunction(table, spec, call, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotImplemented);
}

TEST(OrderStatisticTreeEngine, Percentiles) {
  Table table = MakeRandomTable(250, 25);
  for (auto kind :
       {WindowFunctionKind::kMedian, WindowFunctionKind::kPercentileDisc,
        WindowFunctionKind::kPercentileCont}) {
    WindowFunctionCall call;
    call.kind = kind;
    call.argument = kPrice;
    call.fraction = 0.25;
    ExpectEngineMatchesNaive(table, SlidingSpec(12, 3), call,
                             WindowEngine::kOrderStatisticTree,
                             WindowFunctionKindName(kind));
  }
}

TEST(OrderStatisticTreeEngine, Rank) {
  Table table = MakeRandomTable(250, 26);
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kRank;
  call.order_by = {SortKey{kVal, true, false}};
  ExpectEngineMatchesNaive(table, SlidingSpec(10, 10), call,
                           WindowEngine::kOrderStatisticTree, "rank");
}

TEST(OrderStatisticTreeEngine, RunningFrameWithLargeMorsels) {
  // Single morsel == the pure serial algorithm (no task rebuilds).
  Table table = MakeRandomTable(300, 27);
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kMedian;
  call.argument = kPrice;
  WindowSpec spec;
  spec.order_by = {SortKey{kOrd, true, false}};
  ExpectEngineMatchesNaive(table, spec, call,
                           WindowEngine::kOrderStatisticTree,
                           "running median single morsel",
                           /*morsel_size=*/1u << 30);
}

TEST(AllEngines, AgreeOnFramedMedian) {
  // The headline comparison of the paper: every engine computes the same
  // framed median.
  Table table = MakeRandomTable(400, 28, /*partitions=*/1,
                                /*null_fraction=*/0.0);
  WindowSpec spec;
  spec.order_by = {SortKey{kOrd, true, false}};
  spec.frame.begin = FrameBound::Preceding(49);
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kMedian;
  call.argument = kPrice;

  WindowExecutorOptions options;
  StatusOr<Column> reference = EvaluateWindowFunction(table, spec, call);
  ASSERT_TRUE(reference.ok());
  for (WindowEngine engine :
       {WindowEngine::kNaive, WindowEngine::kIncremental,
        WindowEngine::kOrderStatisticTree}) {
    options.engine = engine;
    StatusOr<Column> other =
        EvaluateWindowFunction(table, spec, call, options);
    ASSERT_TRUE(other.ok());
    ExpectColumnsEqual(*other, *reference,
                       "engine " + std::to_string(static_cast<int>(engine)));
  }
}

}  // namespace
}  // namespace hwf
