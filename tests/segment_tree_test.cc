#include "baselines/segment_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "mst/aggregate_ops.h"

namespace hwf {
namespace {

TEST(SegmentTree, SumHandChecked) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  auto tree = SegmentTree<SumOps>::Build(values);
  EXPECT_EQ(tree.Aggregate(0, 5).value(), 15.0);
  EXPECT_EQ(tree.Aggregate(1, 4).value(), 9.0);
  EXPECT_EQ(tree.Aggregate(2, 3).value(), 3.0);
  EXPECT_FALSE(tree.Aggregate(3, 3).has_value());
}

TEST(SegmentTree, EmptyTree) {
  auto tree = SegmentTree<SumOps>::Build(std::span<const double>());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Aggregate(0, 0).has_value());
}

TEST(SegmentTree, RandomizedAllAggregates) {
  Pcg32 rng(55);
  for (size_t n : {1u, 2u, 3u, 17u, 256u, 1000u}) {
    std::vector<double> values(n);
    for (auto& v : values) v = static_cast<double>(rng.Bounded(100));
    auto sum_tree = SegmentTree<SumOps>::Build(values);
    auto min_tree = SegmentTree<MinOps>::Build(values);
    auto max_tree = SegmentTree<MaxOps>::Build(values);
    auto avg_tree = SegmentTree<AvgOps>::Build(values);
    for (int q = 0; q < 200; ++q) {
      size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
      size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
      if (lo > hi) std::swap(lo, hi);
      if (lo == hi) {
        EXPECT_FALSE(sum_tree.Aggregate(lo, hi).has_value());
        continue;
      }
      double sum = 0;
      double mn = values[lo];
      double mx = values[lo];
      for (size_t i = lo; i < hi; ++i) {
        sum += values[i];
        mn = std::min(mn, values[i]);
        mx = std::max(mx, values[i]);
      }
      EXPECT_DOUBLE_EQ(sum_tree.Aggregate(lo, hi).value(), sum);
      EXPECT_EQ(min_tree.Aggregate(lo, hi).value(), mn);
      EXPECT_EQ(max_tree.Aggregate(lo, hi).value(), mx);
      auto avg = avg_tree.Aggregate(lo, hi).value();
      EXPECT_DOUBLE_EQ(avg.sum, sum);
      EXPECT_EQ(avg.count, static_cast<int64_t>(hi - lo));
    }
  }
}

TEST(SortedListSegmentTree, SelectKthHandChecked) {
  std::vector<double> values = {5, 1, 4, 2, 3};
  auto tree = SortedListSegmentTree::Build(values);
  // Range [1, 4): values {1, 4, 2} sorted {1, 2, 4}.
  EXPECT_EQ(tree.SelectKth(1, 4, 0), 1.0);
  EXPECT_EQ(tree.SelectKth(1, 4, 1), 2.0);
  EXPECT_EQ(tree.SelectKth(1, 4, 2), 4.0);
}

TEST(SortedListSegmentTree, RandomizedAgainstSort) {
  Pcg32 rng(77);
  for (size_t n : {1u, 7u, 64u, 100u, 1000u}) {
    std::vector<double> values(n);
    for (auto& v : values) v = static_cast<double>(rng.Bounded(50));
    auto tree = SortedListSegmentTree::Build(values);
    for (int q = 0; q < 100; ++q) {
      size_t lo = rng.Bounded(static_cast<uint32_t>(n));
      size_t hi = lo + 1 + rng.Bounded(static_cast<uint32_t>(n - lo));
      std::vector<double> sorted(values.begin() + lo, values.begin() + hi);
      std::sort(sorted.begin(), sorted.end());
      const size_t k = rng.Bounded(static_cast<uint32_t>(hi - lo));
      EXPECT_EQ(tree.SelectKth(lo, hi, k), sorted[k])
          << "n=" << n << " lo=" << lo << " hi=" << hi << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace hwf
