// Differential testing of the batched probe kernel (mst/probe_batch.h):
// for every query shape the kernel supports, the batch path must return
// results bit-identical to the scalar reference descent — including the
// per-query cover piece ORDER (the annotated tree's floating-point merges
// fold in visit order, so a reordered cover changes double results).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/random.h"
#include "mem/memory_budget.h"
#include "mst/aggregate_ops.h"
#include "mst/annotated_mst.h"
#include "mst/dense_rank_tree.h"
#include "mst/merge_sort_tree.h"
#include "obs/counters.h"
#include "tests/window_test_util.h"
#include "window/executor.h"
#include "window/spec.h"

namespace hwf {
namespace {

using test::MakeRandomTable;

// This suite manages its own budgets in the forced-spill tests; the CI
// forced-spill job's HWF_TEST_MEMORY_LIMIT would also throttle the
// in-memory baselines, which is fine for equivalence but makes the
// resident fast paths untested. Clear it and set budgets explicitly.
const bool g_env_cleared = [] {
  unsetenv("HWF_TEST_MEMORY_LIMIT");
  return true;
}();

template <typename Index>
std::vector<Index> RandomKeys(size_t n, Index max_key, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Index> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<Index>(rng.Bounded(static_cast<uint32_t>(max_key) + 1));
  }
  return keys;
}

template <typename Index>
std::vector<Index> ShuffledPermutation(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Index> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<Index>(i);
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Bounded(static_cast<uint32_t>(i))]);
  }
  return perm;
}

// (n, fanout, sampling, cascading, batch size)
using Params = std::tuple<size_t, size_t, size_t, bool, size_t>;

class ProbeBatchParamTest : public ::testing::TestWithParam<Params> {
 protected:
  MergeSortTreeOptions TreeOptions() const {
    const auto [n, fanout, sampling, cascading, batch] = GetParam();
    MergeSortTreeOptions options;
    options.fanout = fanout;
    options.sampling = sampling;
    options.use_cascading = cascading;
    options.probe_batch_size = batch;
    return options;
  }
};

TEST_P(ProbeBatchParamTest, CountLessBatchMatchesScalar) {
  const auto [n, fanout, sampling, cascading, batch] = GetParam();
  const MergeSortTreeOptions options = TreeOptions();
  const auto keys =
      RandomKeys<uint32_t>(n, static_cast<uint32_t>(n / 2 + 3), n * 7 + batch);
  const auto tree = MergeSortTree<uint32_t>::Build(keys, options);

  Pcg32 rng(n * 13 + fanout);
  std::vector<MergeSortTree<uint32_t>::CountQuery> queries;
  for (int q = 0; q < 400; ++q) {
    size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
    size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
    if (lo > hi) std::swap(lo, hi);
    const uint32_t threshold = rng.Bounded(static_cast<uint32_t>(n / 2 + 5));
    queries.push_back({lo, hi, threshold});
  }
  // Degenerate shapes: empty, full, threshold extremes.
  queries.push_back({0, n, 0});
  queries.push_back({0, n, static_cast<uint32_t>(n + 7)});
  queries.push_back({n / 2, n / 2, 1});

  std::vector<size_t> batched(queries.size());
  tree.CountLessBatch(queries, batch, batched.data());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(batched[q], tree.CountLess(queries[q].pos_lo, queries[q].pos_hi,
                                         queries[q].threshold))
        << "query " << q;
  }
}

TEST_P(ProbeBatchParamTest, VisitCountCoverBatchMatchesScalarOrder) {
  const auto [n, fanout, sampling, cascading, batch] = GetParam();
  const MergeSortTreeOptions options = TreeOptions();
  const auto keys =
      RandomKeys<uint32_t>(n, static_cast<uint32_t>(n / 3 + 2), n * 5 + 1);
  const auto tree = MergeSortTree<uint32_t>::Build(keys, options);

  using Piece = std::tuple<size_t, size_t, size_t>;
  Pcg32 rng(n * 17 + sampling);
  std::vector<MergeSortTree<uint32_t>::CountQuery> queries;
  for (int q = 0; q < 200; ++q) {
    size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
    size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
    if (lo > hi) std::swap(lo, hi);
    queries.push_back({lo, hi, rng.Bounded(static_cast<uint32_t>(n / 3 + 4))});
  }

  // The batch kernel must deliver every query's pieces consecutively and
  // in exactly the scalar DFS order.
  std::vector<std::vector<Piece>> batched(queries.size());
  size_t last_query = 0;
  tree.VisitCountCoverBatch(
      queries, batch,
      [&](size_t q, size_t level, size_t run_begin, size_t count) {
        if (q != last_query) {
          ASSERT_TRUE(batched[q].empty()) << "pieces of query " << q
                                          << " were not consecutive";
          last_query = q;
        }
        batched[q].emplace_back(level, run_begin, count);
      });
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<Piece> scalar;
    tree.VisitCountCover(queries[q].pos_lo, queries[q].pos_hi,
                         queries[q].threshold,
                         [&](size_t level, size_t run_begin, size_t count) {
                           scalar.emplace_back(level, run_begin, count);
                         });
    ASSERT_EQ(batched[q], scalar) << "query " << q;
  }
}

TEST_P(ProbeBatchParamTest, SelectBatchMatchesScalar) {
  const auto [n, fanout, sampling, cascading, batch] = GetParam();
  const MergeSortTreeOptions options = TreeOptions();
  const auto keys = ShuffledPermutation<uint32_t>(n, n * 31 + fanout);
  const auto tree = MergeSortTree<uint32_t>::Build(keys, options);

  Pcg32 rng(n * 37 + batch);
  std::vector<KeyRange<uint32_t>> range_pool;
  std::vector<MergeSortTree<uint32_t>::SelectQuery> queries;
  std::vector<size_t> scalar;
  for (int q = 0; q < 300; ++q) {
    // 1–3 disjoint ascending ranges, like the window evaluators produce.
    const uint32_t num_ranges = 1 + rng.Bounded(3);
    uint32_t bounds[6];
    for (uint32_t b = 0; b < 6; ++b) {
      bounds[b] = rng.Bounded(static_cast<uint32_t>(n + 1));
    }
    // Sorted ascending, so any prefix forms valid disjoint ranges.
    std::sort(bounds, bounds + 6);
    const uint32_t range_begin = static_cast<uint32_t>(range_pool.size());
    for (uint32_t r = 0; r < num_ranges; ++r) {
      range_pool.push_back({bounds[2 * r], bounds[2 * r + 1]});
    }
    std::span<const KeyRange<uint32_t>> span(range_pool.data() + range_begin,
                                             num_ranges);
    const size_t total = tree.CountKeysInRanges(span);
    if (total == 0) {
      range_pool.resize(range_begin);
      continue;
    }
    const size_t rank = rng.Bounded(static_cast<uint32_t>(total));
    queries.push_back({range_begin, num_ranges, rank});
    scalar.push_back(tree.Select(span, rank));
  }

  std::vector<size_t> batched(queries.size());
  tree.SelectBatch(range_pool, queries, batch, batched.data());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(batched[q], scalar[q]) << "query " << q;
  }
}

TEST_P(ProbeBatchParamTest, ProbeCursorReuseMatchesFreshSelect) {
  const auto [n, fanout, sampling, cascading, batch] = GetParam();
  const MergeSortTreeOptions options = TreeOptions();
  const auto keys = ShuffledPermutation<uint32_t>(n, n * 41 + 2);
  const auto tree = MergeSortTree<uint32_t>::Build(keys, options);

  Pcg32 rng(n * 43 + sampling);
  for (int q = 0; q < 150; ++q) {
    uint32_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
    uint32_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
    if (lo > hi) std::swap(lo, hi);
    KeyRange<uint32_t> range{lo, hi};
    std::span<const KeyRange<uint32_t>> span(&range, 1);
    MergeSortTree<uint32_t>::ProbeCursor cursor;
    const size_t total = tree.CountKeysInRanges(span, &cursor);
    ASSERT_EQ(total, tree.CountKeysInRanges(span));
    if (total == 0) continue;
    // Two selects sharing the cursor (the PERCENTILE_CONT pattern) must
    // match cursor-less selects.
    const size_t r1 = rng.Bounded(static_cast<uint32_t>(total));
    const size_t r2 = total - 1 - r1;
    ASSERT_EQ(tree.Select(span, r1, &cursor), tree.Select(span, r1));
    ASSERT_EQ(tree.Select(span, r2, &cursor), tree.Select(span, r2));
  }
}

TEST_P(ProbeBatchParamTest, AggregateLessBatchIsBitIdentical) {
  const auto [n, fanout, sampling, cascading, batch] = GetParam();
  const MergeSortTreeOptions options = TreeOptions();
  Pcg32 rng(n * 53 + fanout);
  std::vector<uint32_t> keys(n);
  std::vector<double> inputs(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = rng.Bounded(static_cast<uint32_t>(n / 3 + 2));
    // Values with non-associative addition so merge-order bugs show up.
    inputs[i] = (static_cast<double>(rng.Bounded(2000)) - 1000.0) * 1e-3 +
                static_cast<double>(rng.Bounded(1000)) * 1e9;
  }
  const auto tree = AnnotatedMergeSortTree<uint32_t, SumOps>::Build(
      keys, inputs, options);

  std::vector<AnnotatedMergeSortTree<uint32_t, SumOps>::CountQuery> queries;
  for (int q = 0; q < 300; ++q) {
    size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
    size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
    if (lo > hi) std::swap(lo, hi);
    queries.push_back({lo, hi, rng.Bounded(static_cast<uint32_t>(n / 3 + 4))});
  }

  std::vector<std::optional<double>> batched(queries.size());
  tree.AggregateLessBatch(queries, batch, batched.data());
  for (size_t q = 0; q < queries.size(); ++q) {
    const std::optional<double> scalar = tree.AggregateLess(
        queries[q].pos_lo, queries[q].pos_hi, queries[q].threshold);
    ASSERT_EQ(batched[q].has_value(), scalar.has_value()) << "query " << q;
    if (!scalar.has_value()) continue;
    // Bit-exact: the batch kernel must replay the scalar merge order.
    ASSERT_EQ(std::memcmp(&*batched[q], &*scalar, sizeof(double)), 0)
        << "query " << q << ": " << *batched[q] << " vs " << *scalar;
  }
}

TEST_P(ProbeBatchParamTest, DenseRankBatchMatchesScalar) {
  const auto [n, fanout, sampling, cascading, batch] = GetParam();
  const MergeSortTreeOptions options = TreeOptions();
  const auto codes =
      RandomKeys<uint32_t>(n, static_cast<uint32_t>(n / 4 + 2), n * 59 + 3);
  const auto tree = DenseRankTree<uint32_t>::Build(
      std::span<const uint32_t>(codes), options);

  Pcg32 rng(n * 61 + batch);
  std::vector<DenseRankTree<uint32_t>::DistinctQuery> queries;
  for (int q = 0; q < 250; ++q) {
    size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
    size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
    if (lo > hi) std::swap(lo, hi);
    queries.push_back(
        {lo, hi, codes[rng.Bounded(static_cast<uint32_t>(n))]});
  }
  std::vector<size_t> batched(queries.size());
  tree.CountDistinctLessBatch(queries, batch, batched.data());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(batched[q],
              tree.CountDistinctLess(queries[q].pos_lo, queries[q].pos_hi,
                                     queries[q].code))
        << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ProbeBatchParamTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 33, 700, 5000),
                       ::testing::Values<size_t>(2, 4, 32),
                       ::testing::Values<size_t>(1, 4, 32),
                       ::testing::Bool(),
                       ::testing::Values<size_t>(1, 7, 64)));

// Regression for the batch-vs-scalar cascade accounting discrepancy seen
// in BENCH_probe_batch.json (456M scalar vs 542M batched cascade lookups
// at n=2^22): the batch kernel used to count every speculatively decoded
// lookahead window as a lookup, while the scalar descent only counts the
// child searches it actually performs. The two paths do identical search
// work, so their counter deltas must match exactly.
TEST(ProbeBatch, CascadeLookupCountsMatchScalar) {
  for (const bool cascading : {true, false}) {
    const size_t n = 5000;
    MergeSortTreeOptions options;
    options.fanout = 8;
    options.sampling = 4;
    options.use_cascading = cascading;
    options.probe_batch_size = 16;
    const auto keys =
        RandomKeys<uint32_t>(n, static_cast<uint32_t>(n / 2), 1234);
    const auto tree = MergeSortTree<uint32_t>::Build(keys, options);

    Pcg32 rng(4321);
    std::vector<MergeSortTree<uint32_t>::CountQuery> queries;
    for (int q = 0; q < 500; ++q) {
      size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
      size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
      if (lo > hi) std::swap(lo, hi);
      queries.push_back({lo, hi, rng.Bounded(static_cast<uint32_t>(n / 2))});
    }

    const obs::CounterSnapshot before_scalar = obs::SnapshotCounters();
    for (const auto& q : queries) {
      tree.CountLess(q.pos_lo, q.pos_hi, q.threshold);
    }
    const obs::CounterSnapshot after_scalar = obs::SnapshotCounters();

    std::vector<size_t> batched(queries.size());
    tree.CountLessBatch(queries, options.probe_batch_size, batched.data());
    const obs::CounterSnapshot after_batch = obs::SnapshotCounters();

    const obs::CounterSnapshot scalar_delta =
        obs::SnapshotDelta(before_scalar, after_scalar);
    const obs::CounterSnapshot batch_delta =
        obs::SnapshotDelta(after_scalar, after_batch);
    EXPECT_EQ(scalar_delta[obs::Counter::kMstCascadeLookups],
              batch_delta[obs::Counter::kMstCascadeLookups])
        << "cascading=" << cascading;
    EXPECT_EQ(scalar_delta[obs::Counter::kMstBinarySearchFallbacks],
              batch_delta[obs::Counter::kMstBinarySearchFallbacks])
        << "cascading=" << cascading;
  }
}

// 64-bit index width takes the same kernel through the other template
// instantiation (uint64 keys change the prefetch strides and line counts).
TEST(ProbeBatch, Uint64IndexMatchesScalar) {
  const size_t n = 4096;
  MergeSortTreeOptions options;
  options.fanout = 4;
  options.sampling = 4;
  const auto keys = ShuffledPermutation<uint64_t>(n, 77);
  const auto tree = MergeSortTree<uint64_t>::Build(keys, options);
  Pcg32 rng(78);
  std::vector<KeyRange<uint64_t>> range_pool;
  std::vector<MergeSortTree<uint64_t>::SelectQuery> queries;
  std::vector<size_t> scalar;
  for (int q = 0; q < 200; ++q) {
    uint64_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
    uint64_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
    if (lo > hi) std::swap(lo, hi);
    const uint32_t range_begin = static_cast<uint32_t>(range_pool.size());
    range_pool.push_back({lo, hi});
    std::span<const KeyRange<uint64_t>> span(range_pool.data() + range_begin,
                                             1);
    const size_t total = tree.CountKeysInRanges(span);
    if (total == 0) {
      range_pool.resize(range_begin);
      continue;
    }
    const size_t rank = rng.Bounded(static_cast<uint32_t>(total));
    queries.push_back({range_begin, 1, rank});
    scalar.push_back(tree.Select(span, rank));
  }
  std::vector<size_t> batched(queries.size());
  tree.SelectBatch(range_pool, queries, /*group_size=*/16, batched.data());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(batched[q], scalar[q]) << "query " << q;
  }
}

// Forced spill: under a tight budget the tree evicts lower levels, so the
// batch kernel's prefetch pass runs against the spill page cache. Results
// must still match the scalar descent exactly.
TEST(ProbeBatch, SpilledLevelsMatchScalar) {
  const size_t n = 20000;
  mem::MemoryBudget budget(/*limit_bytes=*/64 << 10);
  MergeSortTreeOptions options;
  options.fanout = 4;
  options.sampling = 4;
  options.mem.budget = &budget;
  options.mem.allow_spill = true;
  const auto keys = ShuffledPermutation<uint32_t>(n, 91);
  const auto tree = MergeSortTree<uint32_t>::Build(keys, options);
  ASSERT_GT(tree.SpilledBytes(), 0u) << "budget did not force eviction";

  Pcg32 rng(92);
  std::vector<KeyRange<uint32_t>> range_pool;
  std::vector<MergeSortTree<uint32_t>::SelectQuery> selects;
  std::vector<size_t> scalar_select;
  std::vector<MergeSortTree<uint32_t>::CountQuery> counts;
  for (int q = 0; q < 250; ++q) {
    uint32_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
    uint32_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
    if (lo > hi) std::swap(lo, hi);
    counts.push_back({lo, hi, rng.Bounded(static_cast<uint32_t>(n + 1))});
    const uint32_t range_begin = static_cast<uint32_t>(range_pool.size());
    range_pool.push_back({lo, hi});
    std::span<const KeyRange<uint32_t>> span(range_pool.data() + range_begin,
                                             1);
    const size_t total = tree.CountKeysInRanges(span);
    if (total == 0) {
      range_pool.resize(range_begin);
      continue;
    }
    selects.push_back(
        {range_begin, 1, rng.Bounded(static_cast<uint32_t>(total))});
    scalar_select.push_back(tree.Select(span, selects.back().rank));
  }

  std::vector<size_t> batched_counts(counts.size());
  tree.CountLessBatch(counts, /*group_size=*/8, batched_counts.data());
  for (size_t q = 0; q < counts.size(); ++q) {
    ASSERT_EQ(batched_counts[q],
              tree.CountLess(counts[q].pos_lo, counts[q].pos_hi,
                             counts[q].threshold))
        << "count query " << q;
  }
  std::vector<size_t> batched_selects(selects.size());
  tree.SelectBatch(range_pool, selects, /*group_size=*/8,
                   batched_selects.data());
  for (size_t q = 0; q < selects.size(); ++q) {
    ASSERT_EQ(batched_selects[q], scalar_select[q]) << "select query " << q;
  }
}

// End-to-end: every batched window function must produce bit-identical
// columns with the kernel off (scalar reference), at a tiny group size
// (maximum retire-and-backfill churn), and at a large one.
class WindowBatchEquivalenceTest : public ::testing::Test {
 protected:
  // MakeRandomTable schema.
  static constexpr size_t kOrd = 1;
  static constexpr size_t kVal = 2;
  static constexpr size_t kPrice = 3;
  static constexpr size_t kFlag = 5;

  void ExpectBatchInvariant(const WindowSpec& spec,
                            const WindowFunctionCall& call,
                            const std::string& context) {
    const Table table = MakeRandomTable(6000, /*seed=*/123);
    WindowExecutorOptions options;
    options.tree.probe_batch_size = 0;
    StatusOr<Column> reference =
        EvaluateWindowFunction(table, spec, call, options);
    ASSERT_TRUE(reference.ok()) << context << ": "
                                << reference.status().ToString();
    for (const size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
      options.tree.probe_batch_size = batch;
      StatusOr<Column> result =
          EvaluateWindowFunction(table, spec, call, options);
      ASSERT_TRUE(result.ok()) << context << ": "
                               << result.status().ToString();
      ASSERT_EQ(result->size(), reference->size());
      for (size_t i = 0; i < result->size(); ++i) {
        ASSERT_EQ(result->IsNull(i), reference->IsNull(i))
            << context << " batch " << batch << " row " << i;
        if (result->IsNull(i)) continue;
        switch (result->type()) {
          case DataType::kInt64:
            ASSERT_EQ(result->GetInt64(i), reference->GetInt64(i))
                << context << " batch " << batch << " row " << i;
            break;
          case DataType::kDouble: {
            const double a = result->GetDouble(i);
            const double b = reference->GetDouble(i);
            ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
                << context << " batch " << batch << " row " << i << ": " << a
                << " vs " << b;
            break;
          }
          case DataType::kString:
            ASSERT_EQ(result->GetString(i), reference->GetString(i))
                << context << " batch " << batch << " row " << i;
            break;
        }
      }
    }
  }

  WindowSpec FramedSpec(int64_t preceding, int64_t following) {
    WindowSpec spec;
    spec.order_by.push_back(SortKey{kOrd, true, true});
    spec.frame.begin = FrameBound::Preceding(preceding);
    spec.frame.end = FrameBound::Following(following);
    return spec;
  }
};

TEST_F(WindowBatchEquivalenceTest, Median) {
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kMedian;
  call.argument = kPrice;
  ExpectBatchInvariant(FramedSpec(200, 50), call, "median");
}

TEST_F(WindowBatchEquivalenceTest, PercentileContWithFilter) {
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kPercentileCont;
  call.fraction = 0.37;
  call.argument = kPrice;
  call.filter = kFlag;
  ExpectBatchInvariant(FramedSpec(500, 0), call, "percentile_cont");
}

TEST_F(WindowBatchEquivalenceTest, NthValueIgnoreNulls) {
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kNthValue;
  call.param = 3;
  call.argument = kVal;
  call.ignore_nulls = true;
  ExpectBatchInvariant(FramedSpec(100, 100), call, "nth_value");
}

TEST_F(WindowBatchEquivalenceTest, LeadWithExclusion) {
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kLead;
  call.param = 2;
  call.argument = kPrice;
  WindowSpec spec = FramedSpec(300, 10);
  spec.frame.exclusion = FrameExclusion::kGroup;
  ExpectBatchInvariant(spec, call, "lead");
}

TEST_F(WindowBatchEquivalenceTest, CountDistinctWithExclusion) {
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kCountDistinct;
  call.argument = kVal;
  WindowSpec spec = FramedSpec(400, 0);
  spec.frame.exclusion = FrameExclusion::kCurrentRow;
  ExpectBatchInvariant(spec, call, "count_distinct");
}

TEST_F(WindowBatchEquivalenceTest, SumDistinctDouble) {
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kSumDistinct;
  call.argument = kPrice;
  ExpectBatchInvariant(FramedSpec(250, 250), call, "sum_distinct");
}

TEST_F(WindowBatchEquivalenceTest, DenseRank) {
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kDenseRank;
  ExpectBatchInvariant(FramedSpec(150, 150), call, "dense_rank");
}

}  // namespace
}  // namespace hwf
