// Randomized conformance fuzzing: generate random window specifications
// (frame mode, bounds, exclusion, partitioning, per-row offsets) and
// random function calls (argument, function order, FILTER, parameters) and
// require the merge sort tree engine to agree with the naive oracle on
// random tables with NULLs and heavy duplicates.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "tests/window_test_util.h"

namespace hwf {
namespace {

using test::ExpectMatchesNaive;
using test::MakeRandomTable;

// MakeRandomTable schema.
constexpr size_t kGrp = 0;
constexpr size_t kOrd = 1;
constexpr size_t kVal = 2;
constexpr size_t kPrice = 3;
constexpr size_t kName = 4;
constexpr size_t kFlag = 5;
constexpr size_t kOff = 6;

FrameBound RandomBound(Pcg32& rng, bool is_begin) {
  switch (rng.Bounded(5)) {
    case 0:
      return is_begin ? FrameBound::UnboundedPreceding()
                      : FrameBound::UnboundedFollowing();
    case 1:
      return FrameBound::CurrentRow();
    case 2:
      return FrameBound::Preceding(static_cast<int64_t>(rng.Bounded(20)));
    case 3:
      return FrameBound::Following(static_cast<int64_t>(rng.Bounded(20)));
    default:
      return rng.Bounded(2) ? FrameBound::PrecedingColumn(kOff)
                            : FrameBound::FollowingColumn(kOff);
  }
}

WindowSpec RandomSpec(Pcg32& rng) {
  WindowSpec spec;
  if (rng.Bounded(2)) spec.partition_by.push_back(kGrp);
  // Frame order: one or two keys with random modifiers.
  const size_t order_cols[] = {kOrd, kPrice, kName};
  const size_t num_order = 1 + rng.Bounded(2);
  for (size_t i = 0; i < num_order; ++i) {
    spec.order_by.push_back(SortKey{order_cols[rng.Bounded(3)],
                                    rng.Bounded(2) == 0,
                                    rng.Bounded(2) == 0});
  }
  switch (rng.Bounded(3)) {
    case 0:
      spec.frame.mode = FrameMode::kRows;
      break;
    case 1:
      spec.frame.mode = FrameMode::kGroups;
      break;
    default:
      // RANGE with offsets needs exactly one numeric key.
      spec.frame.mode = FrameMode::kRange;
      spec.order_by = {SortKey{rng.Bounded(2) ? kOrd : kPrice,
                               rng.Bounded(2) == 0, rng.Bounded(2) == 0}};
      break;
  }
  spec.frame.begin = RandomBound(rng, true);
  spec.frame.end = RandomBound(rng, false);
  switch (rng.Bounded(4)) {
    case 0:
      spec.frame.exclusion = FrameExclusion::kCurrentRow;
      break;
    case 1:
      spec.frame.exclusion = FrameExclusion::kGroup;
      break;
    case 2:
      spec.frame.exclusion = FrameExclusion::kTies;
      break;
    default:
      break;
  }
  return spec;
}

WindowFunctionCall RandomCall(Pcg32& rng) {
  static const WindowFunctionKind kKinds[] = {
      WindowFunctionKind::kCountStar,     WindowFunctionKind::kCount,
      WindowFunctionKind::kSum,           WindowFunctionKind::kMin,
      WindowFunctionKind::kMax,           WindowFunctionKind::kAvg,
      WindowFunctionKind::kCountDistinct, WindowFunctionKind::kSumDistinct,
      WindowFunctionKind::kAvgDistinct,   WindowFunctionKind::kMinDistinct,
      WindowFunctionKind::kMaxDistinct,   WindowFunctionKind::kRank,
      WindowFunctionKind::kDenseRank,     WindowFunctionKind::kRowNumber,
      WindowFunctionKind::kPercentRank,   WindowFunctionKind::kCumeDist,
      WindowFunctionKind::kNtile,         WindowFunctionKind::kPercentileDisc,
      WindowFunctionKind::kPercentileCont, WindowFunctionKind::kMedian,
      WindowFunctionKind::kFirstValue,    WindowFunctionKind::kLastValue,
      WindowFunctionKind::kNthValue,      WindowFunctionKind::kLead,
      WindowFunctionKind::kLag,
  };
  WindowFunctionCall call;
  call.kind = kKinds[rng.Bounded(sizeof(kKinds) / sizeof(kKinds[0]))];
  // Argument: numeric for aggregates/percentiles, any for value functions.
  switch (call.kind) {
    case WindowFunctionKind::kFirstValue:
    case WindowFunctionKind::kLastValue:
    case WindowFunctionKind::kNthValue:
    case WindowFunctionKind::kLead:
    case WindowFunctionKind::kLag: {
      const size_t args[] = {kVal, kPrice, kName};
      call.argument = args[rng.Bounded(3)];
      call.ignore_nulls = rng.Bounded(2) == 0;
      break;
    }
    case WindowFunctionKind::kCountDistinct: {
      const size_t args[] = {kVal, kPrice, kName};
      call.argument = args[rng.Bounded(3)];
      break;
    }
    default:
      call.argument = rng.Bounded(2) ? kVal : kPrice;
      break;
  }
  if (rng.Bounded(2)) {
    call.order_by.push_back(SortKey{rng.Bounded(2) ? kVal : kPrice,
                                    rng.Bounded(2) == 0,
                                    rng.Bounded(2) == 0});
  }
  if (rng.Bounded(3) == 0) call.filter = kFlag;
  call.fraction = static_cast<double>(rng.Bounded(101)) / 100.0;
  call.param = 1 + rng.Bounded(5);
  return call;
}

std::string Describe(const WindowSpec& spec, const WindowFunctionCall& call) {
  std::ostringstream out;
  out << WindowFunctionKindName(call.kind)
      << " mode=" << static_cast<int>(spec.frame.mode)
      << " begin=" << static_cast<int>(spec.frame.begin.kind) << "/"
      << spec.frame.begin.offset
      << " end=" << static_cast<int>(spec.frame.end.kind) << "/"
      << spec.frame.end.offset
      << " excl=" << static_cast<int>(spec.frame.exclusion)
      << " filter=" << call.filter.has_value()
      << " ignore_nulls=" << call.ignore_nulls << " param=" << call.param
      << " fraction=" << call.fraction;
  return out.str();
}

TEST(WindowFuzz, RandomSpecsAgreeWithOracle) {
  Pcg32 rng(20260707);
  const int kRounds = 150;
  for (int round = 0; round < kRounds; ++round) {
    Table table = MakeRandomTable(60 + rng.Bounded(60),
                                  /*seed=*/1000 + round,
                                  /*partitions=*/1 + rng.Bounded(4),
                                  /*null_fraction=*/0.2);
    WindowSpec spec = RandomSpec(rng);
    WindowFunctionCall call = RandomCall(rng);
    // Validation may legitimately reject a combination (e.g. dense_rank +
    // exclusion, rank with no usable order); skip those.
    if (!ValidateWindowSpec(table, spec).ok() ||
        !ValidateWindowCall(table, spec, call).ok()) {
      continue;
    }
    SCOPED_TRACE("round " + std::to_string(round) + ": " +
                 Describe(spec, call));
    WindowExecutorOptions options;
    options.morsel_size = 1 + rng.Bounded(64);
    options.tree.fanout = 2 + rng.Bounded(31);
    options.tree.sampling = 1 + rng.Bounded(64);
    ExpectMatchesNaive(table, spec, call,
                       "fuzz round " + std::to_string(round), options);
  }
}

}  // namespace
}  // namespace hwf
