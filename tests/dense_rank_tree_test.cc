#include "mst/dense_rank_tree.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"

namespace hwf {
namespace {

size_t BruteDistinctLess(const std::vector<uint32_t>& codes, size_t lo,
                         size_t hi, uint32_t code) {
  std::set<uint32_t> seen;
  for (size_t i = lo; i < hi; ++i) {
    if (codes[i] < code) seen.insert(codes[i]);
  }
  return seen.size();
}

TEST(DenseRankTree, HandChecked) {
  // codes:    2 0 2 1 0 1
  std::vector<uint32_t> codes = {2, 0, 2, 1, 0, 1};
  auto tree = DenseRankTree<uint32_t>::Build(codes);
  // Whole range, code 2: distinct {0, 1} = 2.
  EXPECT_EQ(tree.CountDistinctLess(0, 6, 2), 2u);
  // [0, 2): codes {2, 0}; distinct < 2 = {0} = 1.
  EXPECT_EQ(tree.CountDistinctLess(0, 2, 2), 1u);
  // [2, 5): codes {2, 1, 0}; distinct < 1 = {0}.
  EXPECT_EQ(tree.CountDistinctLess(2, 5, 1), 1u);
  // Nothing smaller than 0.
  EXPECT_EQ(tree.CountDistinctLess(0, 6, 0), 0u);
  // Empty range.
  EXPECT_EQ(tree.CountDistinctLess(3, 3, 99), 0u);
}

TEST(DenseRankTree, RandomizedAgainstBruteForce) {
  Pcg32 rng(31337);
  for (size_t n : {1u, 2u, 5u, 64u, 100u, 777u}) {
    std::vector<uint32_t> codes(n);
    const uint32_t num_codes = static_cast<uint32_t>(n / 4 + 2);
    for (auto& c : codes) c = rng.Bounded(num_codes);
    auto tree = DenseRankTree<uint32_t>::Build(codes);
    for (int q = 0; q < 200; ++q) {
      size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
      size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
      if (lo > hi) std::swap(lo, hi);
      const uint32_t code = rng.Bounded(num_codes + 1);
      EXPECT_EQ(tree.CountDistinctLess(lo, hi, code),
                BruteDistinctLess(codes, lo, hi, code))
          << "n=" << n << " lo=" << lo << " hi=" << hi << " code=" << code;
    }
  }
}

TEST(DenseRankTree, AllEqualAndAllDistinct) {
  std::vector<uint32_t> equal(100, 5);
  auto equal_tree = DenseRankTree<uint32_t>::Build(equal);
  EXPECT_EQ(equal_tree.CountDistinctLess(0, 100, 5), 0u);
  EXPECT_EQ(equal_tree.CountDistinctLess(0, 100, 6), 1u);

  std::vector<uint32_t> distinct(100);
  for (size_t i = 0; i < 100; ++i) distinct[i] = static_cast<uint32_t>(i);
  auto distinct_tree = DenseRankTree<uint32_t>::Build(distinct);
  EXPECT_EQ(distinct_tree.CountDistinctLess(0, 100, 50), 50u);
  EXPECT_EQ(distinct_tree.CountDistinctLess(25, 75, 50), 25u);
}

TEST(DenseRankTree, MemoryIsQuadraticInLogN) {
  std::vector<uint32_t> codes(4096);
  Pcg32 rng(1);
  for (auto& c : codes) c = rng.Bounded(100);
  auto tree = DenseRankTree<uint32_t>::Build(codes);
  // n log² n elements — just assert it is materially larger than n ints.
  EXPECT_GT(tree.MemoryUsageBytes(), codes.size() * sizeof(uint32_t) * 10);
}

}  // namespace
}  // namespace hwf
