// Frame-resolution fuzzing against an independent oracle.
//
// FrameResolver is shared by every engine, so the engine-agreement tests
// cannot catch its bugs. This suite recomputes each row's frame membership
// from first principles — "is position j inside row i's frame?" decided by
// direct scanning — and compares with the resolver's range decomposition.
#include "window/frame.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace hwf {
namespace {

struct Oracle {
  // Per position: sort key value (int; -1 = NULL, NULLs sort last) in
  // partition order, i.e. non-decreasing with NULLs at the end for
  // ascending keys, non-increasing with NULLs at the end for descending.
  std::vector<int> keys;
  bool ascending = true;
  FrameSpec frame;
  std::vector<int64_t> begin_offsets;  // Per row; used if non-empty.
  std::vector<int64_t> end_offsets;

  bool IsNull(size_t i) const { return keys[i] < 0; }
  bool Peers(size_t a, size_t b) const {
    if (IsNull(a) || IsNull(b)) return IsNull(a) && IsNull(b);
    return keys[a] == keys[b];
  }

  int64_t BeginOffset(size_t i) const {
    return begin_offsets.empty() ? frame.begin.offset
                                 : std::max<int64_t>(0, begin_offsets[i]);
  }
  int64_t EndOffset(size_t i) const {
    return end_offsets.empty() ? frame.end.offset
                               : std::max<int64_t>(0, end_offsets[i]);
  }

  /// Group index of a position (consecutive peers share a group).
  size_t GroupOf(size_t i) const {
    size_t group = 0;
    for (size_t j = 1; j <= i; ++j) {
      if (!Peers(j - 1, j)) ++group;
    }
    return group;
  }

  /// Whether position j is in the BASE frame of row i, by direct
  /// first-principles evaluation.
  bool InBaseFrame(size_t i, size_t j) const {
    const int64_t n = static_cast<int64_t>(keys.size());
    const int64_t pi = static_cast<int64_t>(i);
    const int64_t pj = static_cast<int64_t>(j);
    switch (frame.mode) {
      case FrameMode::kRows: {
        int64_t lo;
        int64_t hi;
        switch (frame.begin.kind) {
          case FrameBoundKind::kUnboundedPreceding:
            lo = 0;
            break;
          case FrameBoundKind::kPreceding:
            lo = pi - BeginOffset(i);
            break;
          case FrameBoundKind::kCurrentRow:
            lo = pi;
            break;
          case FrameBoundKind::kFollowing:
            lo = pi + BeginOffset(i);
            break;
          default:
            return false;
        }
        switch (frame.end.kind) {
          case FrameBoundKind::kUnboundedFollowing:
            hi = n - 1;
            break;
          case FrameBoundKind::kPreceding:
            hi = pi - EndOffset(i);
            break;
          case FrameBoundKind::kCurrentRow:
            hi = pi;
            break;
          case FrameBoundKind::kFollowing:
            hi = pi + EndOffset(i);
            break;
          default:
            return false;
        }
        return pj >= lo && pj <= hi;
      }
      case FrameMode::kRange: {
        // NULL current row: frame = its peer group (for offset bounds).
        auto begin_holds = [&]() -> bool {
          switch (frame.begin.kind) {
            case FrameBoundKind::kUnboundedPreceding:
              return true;
            case FrameBoundKind::kCurrentRow:
              // j at-or-after the start of i's peer group.
              for (size_t x = 0; x < keys.size(); ++x) {
                if (Peers(x, i)) return j >= x;
              }
              return false;
            case FrameBoundKind::kPreceding:
            case FrameBoundKind::kFollowing: {
              if (IsNull(i)) {
                // Frame = peer group: begin holds iff j >= first peer.
                for (size_t x = 0; x < keys.size(); ++x) {
                  if (Peers(x, i)) return j >= x;
                }
                return false;
              }
              // RANGE frames are positional: NULLs sort last here, so a
              // NULL j lies after any resolved start boundary.
              if (IsNull(j)) return true;
              const double off = static_cast<double>(BeginOffset(i));
              const double ki = keys[i];
              const double kj = keys[j];
              const bool preceding =
                  frame.begin.kind == FrameBoundKind::kPreceding;
              if (ascending) {
                return preceding ? kj >= ki - off : kj >= ki + off;
              }
              return preceding ? kj <= ki + off : kj <= ki - off;
            }
            default:
              return false;
          }
        };
        auto end_holds = [&]() -> bool {
          switch (frame.end.kind) {
            case FrameBoundKind::kUnboundedFollowing:
              return true;
            case FrameBoundKind::kCurrentRow:
              for (size_t x = keys.size(); x > 0; --x) {
                if (Peers(x - 1, i)) return j <= x - 1;
              }
              return false;
            case FrameBoundKind::kPreceding:
            case FrameBoundKind::kFollowing: {
              if (IsNull(i)) {
                for (size_t x = keys.size(); x > 0; --x) {
                  if (Peers(x - 1, i)) return j <= x - 1;
                }
                return false;
              }
              if (IsNull(j)) return false;
              const double off = static_cast<double>(EndOffset(i));
              const double ki = keys[i];
              const double kj = keys[j];
              const bool following =
                  frame.end.kind == FrameBoundKind::kFollowing;
              if (ascending) {
                return following ? kj <= ki + off : kj <= ki - off;
              }
              return following ? kj >= ki - off : kj >= ki + off;
            }
            default:
              return false;
          }
        };
        return begin_holds() && end_holds();
      }
      case FrameMode::kGroups: {
        const int64_t gi = static_cast<int64_t>(GroupOf(i));
        const int64_t gj = static_cast<int64_t>(GroupOf(j));
        int64_t lo;
        int64_t hi;
        switch (frame.begin.kind) {
          case FrameBoundKind::kUnboundedPreceding:
            lo = 0;
            break;
          case FrameBoundKind::kPreceding:
            lo = gi - BeginOffset(i);
            break;
          case FrameBoundKind::kCurrentRow:
            lo = gi;
            break;
          case FrameBoundKind::kFollowing:
            lo = gi + BeginOffset(i);
            break;
          default:
            return false;
        }
        switch (frame.end.kind) {
          case FrameBoundKind::kUnboundedFollowing:
            hi = static_cast<int64_t>(keys.size());
            break;
          case FrameBoundKind::kPreceding:
            hi = gi - EndOffset(i);
            break;
          case FrameBoundKind::kCurrentRow:
            hi = gi;
            break;
          case FrameBoundKind::kFollowing:
            hi = gi + EndOffset(i);
            break;
          default:
            return false;
        }
        return gj >= lo && gj <= hi;
      }
    }
    return false;
  }

  /// Full membership including exclusion.
  bool InFrame(size_t i, size_t j) const {
    if (!InBaseFrame(i, j)) return false;
    switch (frame.exclusion) {
      case FrameExclusion::kNoOthers:
        return true;
      case FrameExclusion::kCurrentRow:
        return j != i;
      case FrameExclusion::kGroup:
        return !Peers(i, j);
      case FrameExclusion::kTies:
        return j == i || !Peers(i, j);
    }
    return true;
  }
};

FrameResolver::Inputs BuildInputs(const Oracle& oracle) {
  const size_t n = oracle.keys.size();
  FrameResolver::Inputs inputs;
  inputs.n = n;
  inputs.frame = oracle.frame;
  inputs.ascending = oracle.ascending;
  // Peers / groups.
  inputs.peer_start.resize(n);
  inputs.peer_end.resize(n);
  inputs.group_index.resize(n);
  size_t begin = 0;
  size_t group = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (i == n || !oracle.Peers(i - 1, i)) {
      inputs.group_starts.push_back(begin);
      for (size_t j = begin; j < i; ++j) {
        inputs.peer_start[j] = begin;
        inputs.peer_end[j] = i;
        inputs.group_index[j] = group;
      }
      begin = i;
      ++group;
    }
  }
  inputs.group_starts.push_back(n);
  // Range keys (NULLs last in partition order by construction).
  inputs.range_keys.resize(n);
  inputs.range_key_valid.resize(n);
  size_t num_nulls = 0;
  for (size_t i = 0; i < n; ++i) {
    inputs.range_keys[i] = oracle.IsNull(i) ? 0 : oracle.keys[i];
    inputs.range_key_valid[i] = oracle.IsNull(i) ? 0 : 1;
    num_nulls += oracle.IsNull(i) ? 1 : 0;
  }
  inputs.nonnull_begin = 0;
  inputs.nonnull_end = n - num_nulls;
  // Per-row offsets.
  if (!oracle.begin_offsets.empty()) {
    if (oracle.frame.mode == FrameMode::kRange) {
      inputs.begin_offsets_numeric.assign(oracle.begin_offsets.begin(),
                                          oracle.begin_offsets.end());
    } else {
      inputs.begin_offsets = oracle.begin_offsets;
    }
  }
  if (!oracle.end_offsets.empty()) {
    if (oracle.frame.mode == FrameMode::kRange) {
      inputs.end_offsets_numeric.assign(oracle.end_offsets.begin(),
                                        oracle.end_offsets.end());
    } else {
      inputs.end_offsets = oracle.end_offsets;
    }
  }
  return inputs;
}

FrameBound RandomBound(Pcg32& rng, bool is_begin, bool with_columns) {
  switch (rng.Bounded(with_columns ? 5 : 4)) {
    case 0:
      return is_begin ? FrameBound::UnboundedPreceding()
                      : FrameBound::UnboundedFollowing();
    case 1:
      return FrameBound::CurrentRow();
    case 2:
      return FrameBound::Preceding(static_cast<int64_t>(rng.Bounded(8)));
    case 3:
      return FrameBound::Following(static_cast<int64_t>(rng.Bounded(8)));
    default:
      // Per-row offsets: the column index is a placeholder (0); the test
      // injects the evaluated offsets directly into the resolver inputs.
      return is_begin ? FrameBound::PrecedingColumn(0)
                      : FrameBound::FollowingColumn(0);
  }
}

TEST(FrameFuzz, ResolverMatchesFirstPrinciplesOracle) {
  Pcg32 rng(424242);
  for (int round = 0; round < 400; ++round) {
    Oracle oracle;
    const size_t n = 1 + rng.Bounded(40);
    oracle.ascending = rng.Bounded(2) == 0;
    // Keys in partition order: sorted with duplicates, NULLs at the end.
    std::vector<int> keys(n);
    for (auto& k : keys) k = static_cast<int>(rng.Bounded(12));
    std::sort(keys.begin(), keys.end());
    if (!oracle.ascending) std::reverse(keys.begin(), keys.end());
    const size_t nulls = rng.Bounded(4) == 0 ? rng.Bounded(n) / 3 : 0;
    for (size_t i = n - nulls; i < n; ++i) keys[i] = -1;
    oracle.keys = keys;

    oracle.frame.mode = static_cast<FrameMode>(rng.Bounded(3));
    const bool with_columns = rng.Bounded(3) == 0;
    oracle.frame.begin = RandomBound(rng, true, with_columns);
    oracle.frame.end = RandomBound(rng, false, with_columns);
    oracle.frame.exclusion = static_cast<FrameExclusion>(rng.Bounded(4));
    if (oracle.frame.begin.offset_column.has_value() ||
        oracle.frame.end.offset_column.has_value()) {
      oracle.begin_offsets.resize(n);
      oracle.end_offsets.resize(n);
      for (size_t i = 0; i < n; ++i) {
        oracle.begin_offsets[i] = static_cast<int64_t>(rng.Bounded(8));
        oracle.end_offsets[i] = static_cast<int64_t>(rng.Bounded(8));
      }
      if (!oracle.frame.begin.offset_column.has_value()) {
        oracle.begin_offsets.clear();
      }
      if (!oracle.frame.end.offset_column.has_value()) {
        oracle.end_offsets.clear();
      }
    }

    FrameResolver resolver(BuildInputs(oracle));
    for (size_t i = 0; i < n; ++i) {
      const FrameRanges ranges = resolver.Resolve(i);
      for (size_t j = 0; j < n; ++j) {
        ASSERT_EQ(ranges.Contains(j), oracle.InFrame(i, j))
            << "round " << round << " i=" << i << " j=" << j
            << " mode=" << static_cast<int>(oracle.frame.mode)
            << " excl=" << static_cast<int>(oracle.frame.exclusion)
            << " asc=" << oracle.ascending;
      }
    }
  }
}

}  // namespace
}  // namespace hwf
