#include "window/shared_sort.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "mst/tree_cache.h"
#include "obs/counters.h"
#include "tests/window_test_util.h"
#include "window/executor.h"

namespace hwf {
namespace {

using test::MakeRandomTable;

WindowSpec Spec(std::vector<size_t> partition_by, std::vector<SortKey> order_by,
                FrameSpec frame = {}) {
  WindowSpec spec;
  spec.partition_by = std::move(partition_by);
  spec.order_by = std::move(order_by);
  spec.frame = frame;
  return spec;
}

FrameSpec RowsFrame(FrameBound begin, FrameBound end) {
  FrameSpec frame;
  frame.mode = FrameMode::kRows;
  frame.begin = begin;
  frame.end = end;
  return frame;
}

// ---------------------------------------------------------------------------
// Coverage rules
// ---------------------------------------------------------------------------

TEST(OrderingCovers, PrefixOfLongerOrderingIsCovered) {
  WindowSpec producer = Spec({0}, {SortKey{1, true, false},
                                   SortKey{2, true, false}});
  WindowSpec consumer = Spec({0}, {SortKey{1, true, false}});
  EXPECT_TRUE(OrderingCovers(producer, consumer));
  // The converse needs keys the producer never sorted by.
  EXPECT_FALSE(OrderingCovers(consumer, producer));
  // The empty ORDER BY is a prefix of everything (same partition set).
  EXPECT_TRUE(OrderingCovers(producer, Spec({0}, {})));
}

TEST(OrderingCovers, ExactOrderingWithPermutedPartitionColumns) {
  WindowSpec a = Spec({0, 5}, {SortKey{1, true, false}});
  WindowSpec b = Spec({5, 0}, {SortKey{1, true, false}});
  EXPECT_TRUE(OrderingCovers(a, b));
  EXPECT_TRUE(OrderingCovers(b, a));
  // Duplicated partition columns dedup to the same set.
  EXPECT_TRUE(OrderingCovers(a, Spec({0, 5, 0}, {SortKey{1, true, false}})));
}

TEST(OrderingCovers, DirectionMismatchIsNotCovered) {
  WindowSpec asc = Spec({0}, {SortKey{1, true, false}});
  WindowSpec desc = Spec({0}, {SortKey{1, false, false}});
  EXPECT_FALSE(OrderingCovers(asc, desc));
  EXPECT_FALSE(OrderingCovers(desc, asc));
}

TEST(OrderingCovers, NullPlacementMismatchIsNotCovered) {
  WindowSpec nulls_last = Spec({0}, {SortKey{1, true, false}});
  WindowSpec nulls_first = Spec({0}, {SortKey{1, true, true}});
  EXPECT_FALSE(OrderingCovers(nulls_last, nulls_first));
}

TEST(OrderingCovers, DifferentPartitionSetsAreNotCovered) {
  WindowSpec by_grp = Spec({0}, {SortKey{1, true, false}});
  WindowSpec by_flag = Spec({5}, {SortKey{1, true, false}});
  WindowSpec by_both = Spec({0, 5}, {SortKey{1, true, false}});
  EXPECT_FALSE(OrderingCovers(by_grp, by_flag));
  EXPECT_FALSE(OrderingCovers(by_both, by_grp));
  EXPECT_FALSE(OrderingCovers(by_grp, by_both));
}

TEST(OrderingKeyTest, CanonicalAcrossPartitionPermutations) {
  const std::string key = OrderingKey(Spec({0, 5}, {SortKey{1, true, false}}));
  EXPECT_EQ(key, OrderingKey(Spec({5, 0}, {SortKey{1, true, false}})));
  EXPECT_EQ(key, OrderingKey(Spec({5, 0, 5}, {SortKey{1, true, false}})));
  EXPECT_NE(key, OrderingKey(Spec({0}, {SortKey{1, true, false}})));
  EXPECT_NE(key, OrderingKey(Spec({0, 5}, {SortKey{1, false, false}})));
  EXPECT_NE(key, OrderingKey(Spec({0, 5}, {SortKey{1, true, true}})));
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

TEST(PlanSharedSorts, FinerOrderingProducesForItsPrefixes) {
  // Input order puts the coarser specs first: the planner must still pick
  // the finest ordering as the producer.
  WindowSpec coarse = Spec({0}, {});
  WindowSpec mid = Spec({0}, {SortKey{1, true, false}});
  WindowSpec fine = Spec({0}, {SortKey{1, true, false},
                               SortKey{2, true, false}});
  std::vector<const WindowSpec*> specs = {&coarse, &mid, &fine};
  SharedSortPlan plan = PlanSharedSorts(specs);
  EXPECT_EQ(plan.num_producers, 1u);
  EXPECT_TRUE(plan.IsProducer(2));
  EXPECT_EQ(plan.producer[0], 2u);
  EXPECT_EQ(plan.producer[1], 2u);
  EXPECT_EQ(plan.reuse[0], SharedSortPlan::Reuse::kPrefix);
  EXPECT_EQ(plan.reuse[1], SharedSortPlan::Reuse::kPrefix);
  // Producers always precede their consumers in the sequence.
  EXPECT_EQ(plan.sequence.front(), 2u);
  EXPECT_EQ(plan.sequence.size(), 3u);
}

TEST(PlanSharedSorts, MixedCompatibleAndIncompatibleSpecs) {
  WindowSpec a = Spec({0}, {SortKey{1, true, false}});         // producer
  WindowSpec b = Spec({0}, {SortKey{1, true, false}},          // exact of a
                      RowsFrame(FrameBound::Preceding(3), FrameBound::CurrentRow()));
  WindowSpec c = Spec({0}, {SortKey{1, false, false}});        // desc: own sort
  WindowSpec d = Spec({5}, {SortKey{1, true, false}});         // other partition
  std::vector<const WindowSpec*> specs = {&a, &b, &c, &d};
  SharedSortPlan plan = PlanSharedSorts(specs);
  EXPECT_EQ(plan.num_producers, 3u);
  EXPECT_EQ(plan.producer[1], 0u);
  EXPECT_EQ(plan.reuse[1], SharedSortPlan::Reuse::kExact);
  EXPECT_TRUE(plan.IsProducer(0));
  EXPECT_TRUE(plan.IsProducer(2));
  EXPECT_TRUE(plan.IsProducer(3));

  const std::string text = plan.Describe(specs);
  EXPECT_NE(text.find("sort#0 <- spec#0"), std::string::npos) << text;
  EXPECT_NE(text.find("covers spec#1 (exact)"), std::string::npos) << text;
}

TEST(PlanSharedSorts, PartitionPermutationReusesVerbatim) {
  WindowSpec a = Spec({0, 5}, {SortKey{1, true, false}});
  WindowSpec b = Spec({5, 0}, {SortKey{1, true, false}});
  std::vector<const WindowSpec*> specs = {&a, &b};
  SharedSortPlan plan = PlanSharedSorts(specs);
  EXPECT_EQ(plan.num_producers, 1u);
  EXPECT_EQ(plan.reuse[1], SharedSortPlan::Reuse::kExact);
}

// ---------------------------------------------------------------------------
// WindowSpec canonical equality + hashing (window/spec.h)
// ---------------------------------------------------------------------------

TEST(WindowSpecEquality, HashAgreesWithEquality) {
  WindowSpec a = Spec({0}, {SortKey{1, true, false}},
                      RowsFrame(FrameBound::Preceding(5), FrameBound::CurrentRow()));
  WindowSpec b = a;
  WindowSpecHash hash;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(hash(a), hash(b));

  b.frame.begin = FrameBound::Preceding(6);
  EXPECT_FALSE(a == b);
  b = a;
  b.order_by[0].nulls_first = true;
  EXPECT_FALSE(a == b);

  // The parser's grouping structure: structurally equal specs collapse to
  // one group.
  std::unordered_map<WindowSpec, int, WindowSpecHash> groups;
  ++groups[a];
  WindowSpec a_copy = a;
  ++groups[a_copy];
  b.order_by[0].nulls_first = false;
  b.order_by[0].ascending = false;
  ++groups[b];
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[a], 2);
}

// ---------------------------------------------------------------------------
// Differential: multi-spec execution is bit-identical to per-spec
// ---------------------------------------------------------------------------

/// Exact equality, doubles compared bit-for-bit: shared and derived sorts
/// must reproduce the independent execution exactly, not approximately.
void ExpectBitIdentical(const Column& actual, const Column& expected,
                        const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  ASSERT_EQ(actual.type(), expected.type()) << context;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_EQ(actual.IsNull(i), expected.IsNull(i)) << context << " row " << i;
    if (actual.IsNull(i)) continue;
    switch (actual.type()) {
      case DataType::kInt64:
        ASSERT_EQ(actual.GetInt64(i), expected.GetInt64(i))
            << context << " row " << i;
        break;
      case DataType::kDouble:
        ASSERT_EQ(actual.GetDouble(i), expected.GetDouble(i))
            << context << " row " << i;
        break;
      case DataType::kString:
        ASSERT_EQ(actual.GetString(i), expected.GetString(i))
            << context << " row " << i;
        break;
    }
  }
}

struct SpecAndCalls {
  WindowSpec spec;
  std::vector<WindowFunctionCall> calls;
};

WindowFunctionCall Call(WindowFunctionKind kind,
                        std::optional<size_t> argument = std::nullopt) {
  WindowFunctionCall call;
  call.kind = kind;
  call.argument = argument;
  return call;
}

/// A mixed workload: one fine producer, prefix and exact consumers, a
/// permuted-partition consumer, and two incompatible specs that need their
/// own sorts.
std::vector<SpecAndCalls> MixedWorkload() {
  std::vector<SpecAndCalls> workload;
  workload.push_back({Spec({0}, {SortKey{1, true, false}}),
                      {Call(WindowFunctionKind::kSum, 2),
                       Call(WindowFunctionKind::kRank)}});
  workload.push_back(
      {Spec({0}, {SortKey{1, true, false}, SortKey{2, true, false}}),
       {Call(WindowFunctionKind::kCountDistinct, 2)}});
  workload.push_back(
      {Spec({0}, {SortKey{1, true, false}},
            RowsFrame(FrameBound::Preceding(9), FrameBound::CurrentRow())),
       {Call(WindowFunctionKind::kMedian, 3)}});
  workload.push_back({Spec({0, 5}, {SortKey{1, true, false}}),
                      {Call(WindowFunctionKind::kCount, 2)}});
  workload.push_back({Spec({5, 0}, {SortKey{1, true, false}}),
                      {Call(WindowFunctionKind::kSum, 3)}});
  workload.push_back({Spec({0}, {SortKey{1, false, true}}),
                      {Call(WindowFunctionKind::kRowNumber)}});
  workload.push_back({Spec({5}, {SortKey{3, true, false}}),
                      {Call(WindowFunctionKind::kMax, 2)}});
  return workload;
}

void ExpectMultiSpecMatchesPerSpec(const Table& table,
                                   const std::vector<SpecAndCalls>& workload,
                                   const WindowExecutorOptions& multi_options,
                                   const WindowExecutorOptions& single_options,
                                   const std::string& context) {
  std::vector<WindowSpecGroup> groups;
  groups.reserve(workload.size());
  for (const SpecAndCalls& entry : workload) {
    groups.push_back(WindowSpecGroup{&entry.spec, entry.calls});
  }
  StatusOr<std::vector<std::vector<Column>>> multi =
      EvaluateWindowSpecGroups(table, groups, multi_options);
  ASSERT_TRUE(multi.ok()) << context << ": " << multi.status().ToString();
  ASSERT_EQ(multi->size(), workload.size());

  for (size_t g = 0; g < workload.size(); ++g) {
    StatusOr<std::vector<Column>> single = EvaluateWindowFunctions(
        table, workload[g].spec, workload[g].calls, single_options);
    ASSERT_TRUE(single.ok()) << context << ": " << single.status().ToString();
    ASSERT_EQ((*multi)[g].size(), single->size());
    for (size_t c = 0; c < single->size(); ++c) {
      ExpectBitIdentical((*multi)[g][c], (*single)[c],
                         context + " group " + std::to_string(g) + " call " +
                             std::to_string(c));
    }
  }
}

TEST(SharedSortExecution, MultiSpecBitIdenticalToPerSpec) {
  Table table = MakeRandomTable(6000, 41);
  const obs::CounterDeltaTracker delta;
  ExpectMultiSpecMatchesPerSpec(table, MixedWorkload(), {}, {}, "mixed");
  // The workload plans to 4 producers over 7 specs: the finest
  // (grp; ord, val) spec covers specs 0 and 2 by prefix, the {0,5}/{5,0}
  // pair shares one sort verbatim, and the desc-ordered and
  // flag-partitioned specs pay their own. That is 3 reuses, one exact.
  EXPECT_GE(delta.DeltaOf(obs::Counter::kExecutorSortsShared), 3u);
  EXPECT_GE(delta.DeltaOf(obs::Counter::kExecutorSortsElided), 1u);
}

TEST(SharedSortExecution, SingleGroupWrapperUnchanged) {
  Table table = MakeRandomTable(2000, 7);
  SpecAndCalls entry{Spec({0}, {SortKey{1, true, false}}),
                     {Call(WindowFunctionKind::kSum, 2)}};
  const obs::CounterDeltaTracker delta;
  StatusOr<std::vector<Column>> result =
      EvaluateWindowFunctions(table, entry.spec, entry.calls);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // One spec: nothing to share.
  EXPECT_EQ(delta.DeltaOf(obs::Counter::kExecutorSortsShared), 0u);
}

TEST(SharedSortExecution, ForcedHashPartitioningBitIdentical) {
  Table table = MakeRandomTable(6000, 43, /*partitions=*/300);
  WindowExecutorOptions hash;
  hash.hash_partition = HashPartitionMode::kForce;
  WindowExecutorOptions global;
  global.hash_partition = HashPartitionMode::kOff;
  const obs::CounterDeltaTracker delta;
  ExpectMultiSpecMatchesPerSpec(table, MixedWorkload(), hash, global,
                                "forced-hash");
  EXPECT_GT(delta.DeltaOf(obs::Counter::kExecutorHashPartitionedRows), 0u);
}

TEST(SharedSortExecution, AutoHashEngagesOnHighCardinality) {
  // ~n/4 partitions of ~4 rows each: far past the kAuto thresholds.
  const size_t n = 20000;
  Column part(DataType::kInt64);
  Column val(DataType::kInt64);
  Pcg32 rng(17);
  for (size_t i = 0; i < n; ++i) {
    part.AppendInt64(static_cast<int64_t>(i / 4));
    val.AppendInt64(static_cast<int64_t>(rng.Bounded(1000)));
  }
  Table table;
  table.AddColumn("part", std::move(part));
  table.AddColumn("val", std::move(val));

  WindowSpec spec = Spec({0}, {SortKey{1, true, false}});
  std::vector<WindowFunctionCall> calls = {Call(WindowFunctionKind::kSum, 1)};
  WindowSpecGroup group{&spec, calls};

  WindowExecutorOptions auto_opts;  // kAuto is the default
  const obs::CounterDeltaTracker delta;
  StatusOr<std::vector<std::vector<Column>>> hashed =
      EvaluateWindowSpecGroups(table, {&group, 1}, auto_opts);
  ASSERT_TRUE(hashed.ok()) << hashed.status().ToString();
  EXPECT_EQ(delta.DeltaOf(obs::Counter::kExecutorHashPartitionedRows), n);

  WindowExecutorOptions off;
  off.hash_partition = HashPartitionMode::kOff;
  StatusOr<std::vector<std::vector<Column>>> global =
      EvaluateWindowSpecGroups(table, {&group, 1}, off);
  ASSERT_TRUE(global.ok()) << global.status().ToString();
  ExpectBitIdentical((*hashed)[0][0], (*global)[0][0], "auto-hash");
}

TEST(SharedSortExecution, AutoHashDeclinesLowCardinality) {
  // 3 partitions: the estimator must keep the global sort.
  Table table = MakeRandomTable(20000, 19, /*partitions=*/3);
  WindowSpec spec = Spec({0}, {SortKey{1, true, false}});
  std::vector<WindowFunctionCall> calls = {Call(WindowFunctionKind::kSum, 2)};
  WindowSpecGroup group{&spec, calls};
  const obs::CounterDeltaTracker delta;
  StatusOr<std::vector<std::vector<Column>>> result =
      EvaluateWindowSpecGroups(table, {&group, 1}, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(delta.DeltaOf(obs::Counter::kExecutorHashPartitionedRows), 0u);
}

TEST(SharedSortExecution, ForcedSpillBitIdentical) {
  Table table = MakeRandomTable(6000, 47);
  // Above the irreducible floor (n*8 + 64K = 112K) but tight enough to
  // push the sorts through the budgeted/spill paths; the hash partitioner
  // must fall back gracefully when its scratch does not fit.
  WindowExecutorOptions budgeted;
  budgeted.memory_limit_bytes = 192 << 10;
  budgeted.hash_partition = HashPartitionMode::kForce;
  ExpectMultiSpecMatchesPerSpec(table, MixedWorkload(), budgeted, {},
                                "forced-spill");
}

TEST(SharedSortExecution, IngestDeltaStateBitIdentical) {
  // Same seed => MakeRandomTable(base) is a row-wise prefix of the full
  // table, exactly the service's append pattern.
  const size_t base_rows = 4000;
  Table base = MakeRandomTable(base_rows, 53);
  Table full = MakeRandomTable(6000, 53);

  mst::TreeCache cache(64 << 20);
  WindowExecutorOptions warm;
  warm.tree_cache = &cache;
  warm.cache_key = "c.n" + std::to_string(base_rows);
  warm.content_cache_key = "c";

  std::vector<SpecAndCalls> workload = MixedWorkload();
  std::vector<WindowSpecGroup> groups;
  for (const SpecAndCalls& entry : workload) {
    groups.push_back(WindowSpecGroup{&entry.spec, entry.calls});
  }
  // Warm the base state's sort artifacts.
  StatusOr<std::vector<std::vector<Column>>> warmed =
      EvaluateWindowSpecGroups(base, groups, warm);
  ASSERT_TRUE(warmed.ok()) << warmed.status().ToString();

  WindowExecutorOptions delta = warm;
  delta.cache_key = "c.n" + std::to_string(full.num_rows());
  delta.delta_base_rows = base_rows;
  delta.delta_base_key = warm.cache_key;
  const obs::CounterDeltaTracker tracker;
  ExpectMultiSpecMatchesPerSpec(full, workload, delta, {}, "ingest-delta");
  EXPECT_GT(tracker.DeltaOf(obs::Counter::kIngestDeltaMerges), 0u);
}

}  // namespace
}  // namespace hwf
