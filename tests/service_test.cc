// Tests for the concurrent query service layer: SQL parsing/planning,
// admission control, cancellation, cross-query tree reuse and concurrent
// differential correctness.
#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "service/catalog.h"
#include "service/result_format.h"
#include "service/sql_parser.h"
#include "tests/window_test_util.h"
#include "window/executor.h"

namespace hwf {
namespace {

using service::ParsedStatement;
using service::ParseStatement;
using service::PlannedQuery;
using service::PlanQuery;
using service::QueryOptions;
using service::QueryResult;
using service::QueryService;
using service::ServiceOptions;

// This suite manages budgets through ServiceOptions/QueryOptions; the
// forced-spill CI job's HWF_TEST_MEMORY_LIMIT would act as a per-query
// limit, which (by design) disables cross-query tree caching and breaks
// the cache-hit assertions.
const bool g_env_cleared = [] {
  unsetenv("HWF_TEST_MEMORY_LIMIT");
  return true;
}();

/// Exact equality, including doubles bit-for-bit (the service differential
/// tests claim determinism, not approximation).
void ExpectBitIdentical(const Column& actual, const Column& expected,
                        const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  ASSERT_EQ(actual.type(), expected.type()) << context;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_EQ(actual.IsNull(i), expected.IsNull(i)) << context << " row " << i;
    if (actual.IsNull(i)) continue;
    switch (actual.type()) {
      case DataType::kInt64:
        ASSERT_EQ(actual.GetInt64(i), expected.GetInt64(i))
            << context << " row " << i;
        break;
      case DataType::kDouble:
        ASSERT_EQ(actual.GetDouble(i), expected.GetDouble(i))
            << context << " row " << i;
        break;
      case DataType::kString:
        ASSERT_EQ(actual.GetString(i), expected.GetString(i))
            << context << " row " << i;
        break;
    }
  }
}

/// The paper's Fig. 9 shape: a moving percentile over a sliding ROWS
/// window on TPC-H lineitem. Synthesized columns, same structure.
Table MakeLineitem(size_t rows) {
  Pcg32 rng(99);
  Column shipdate(DataType::kInt64);
  Column extendedprice(DataType::kDouble);
  for (size_t i = 0; i < rows; ++i) {
    shipdate.AppendInt64(static_cast<int64_t>(rng.Bounded(2500)));
    extendedprice.AppendDouble(static_cast<double>(rng.Bounded(1000000)) /
                               100.0);
  }
  Table table;
  table.AddColumn("l_shipdate", std::move(shipdate));
  table.AddColumn("l_extendedprice", std::move(extendedprice));
  return table;
}

// ---------------------------------------------------------------------------
// Parser and planner
// ---------------------------------------------------------------------------

TEST(SqlParser, Fig9RoundTripsBitIdenticalToHandBuiltSpec) {
  Table lineitem = MakeLineitem(20000);
  const std::string sql =
      "select percentile_disc(0.5 order by l_extendedprice) over "
      "(order by l_shipdate rows between 999 preceding and current row) "
      "from lineitem";
  StatusOr<PlannedQuery> plan = PlanQuery(sql, lineitem);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->groups.size(), 1u);
  ASSERT_EQ(plan->groups[0].calls.size(), 1u);

  // The hand-built formulation of the same query.
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.mode = FrameMode::kRows;
  spec.frame.begin = FrameBound::Preceding(999);
  spec.frame.end = FrameBound::CurrentRow();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kPercentileDisc;
  call.fraction = 0.5;
  call.argument = 1;
  call.order_by = {SortKey{1, true, false}};

  EXPECT_TRUE(plan->groups[0].spec == spec);
  const WindowFunctionCall& parsed = plan->groups[0].calls[0];
  EXPECT_EQ(parsed.kind, call.kind);
  EXPECT_EQ(parsed.argument, call.argument);
  EXPECT_EQ(parsed.fraction, call.fraction);

  // Executing the parsed plan and the hand-built plan must agree bit for
  // bit (the acceptance criterion for the SQL front-end).
  StatusOr<std::vector<Column>> from_sql = EvaluateWindowFunctions(
      lineitem, plan->groups[0].spec, plan->groups[0].calls);
  ASSERT_TRUE(from_sql.ok()) << from_sql.status().ToString();
  StatusOr<Column> by_hand = EvaluateWindowFunction(lineitem, spec, call);
  ASSERT_TRUE(by_hand.ok()) << by_hand.status().ToString();
  ExpectBitIdentical((*from_sql)[0], *by_hand, "fig9");
}

TEST(SqlParser, CoversEveryFrameAndExclusionForm) {
  Table table = test::MakeRandomTable(100, 3);
  struct Case {
    const char* sql_frame;
    FrameSpec expected;
  };
  const size_t off = table.MustColumnIndex("off");
  const std::vector<Case> cases = {
      {"rows between unbounded preceding and current row",
       {FrameMode::kRows, FrameBound::UnboundedPreceding(),
        FrameBound::CurrentRow(), FrameExclusion::kNoOthers}},
      {"rows between 2 preceding and 3 following",
       {FrameMode::kRows, FrameBound::Preceding(2), FrameBound::Following(3),
        FrameExclusion::kNoOthers}},
      {"rows between off preceding and off following",
       {FrameMode::kRows, FrameBound::PrecedingColumn(off),
        FrameBound::FollowingColumn(off), FrameExclusion::kNoOthers}},
      {"rows between current row and unbounded following",
       {FrameMode::kRows, FrameBound::CurrentRow(),
        FrameBound::UnboundedFollowing(), FrameExclusion::kNoOthers}},
      {"rows 2 preceding",  // single-bound shorthand
       {FrameMode::kRows, FrameBound::Preceding(2), FrameBound::CurrentRow(),
        FrameExclusion::kNoOthers}},
      {"groups between 1 preceding and 1 following",
       {FrameMode::kGroups, FrameBound::Preceding(1), FrameBound::Following(1),
        FrameExclusion::kNoOthers}},
      {"range between 5 preceding and 5 following",
       {FrameMode::kRange, FrameBound::Preceding(5), FrameBound::Following(5),
        FrameExclusion::kNoOthers}},
      {"rows between 4 preceding and 4 following exclude no others",
       {FrameMode::kRows, FrameBound::Preceding(4), FrameBound::Following(4),
        FrameExclusion::kNoOthers}},
      {"rows between 4 preceding and 4 following exclude current row",
       {FrameMode::kRows, FrameBound::Preceding(4), FrameBound::Following(4),
        FrameExclusion::kCurrentRow}},
      {"rows between 4 preceding and 4 following exclude group",
       {FrameMode::kRows, FrameBound::Preceding(4), FrameBound::Following(4),
        FrameExclusion::kGroup}},
      {"rows between 4 preceding and 4 following exclude ties",
       {FrameMode::kRows, FrameBound::Preceding(4), FrameBound::Following(4),
        FrameExclusion::kTies}},
  };
  for (const Case& c : cases) {
    const std::string sql = std::string("select sum(val) over (order by ord ") +
                            c.sql_frame + ") from t";
    StatusOr<PlannedQuery> plan = PlanQuery(sql, table);
    ASSERT_TRUE(plan.ok()) << c.sql_frame << ": " << plan.status().ToString();
    const FrameSpec& frame = plan->groups[0].spec.frame;
    EXPECT_EQ(frame.mode, c.expected.mode) << c.sql_frame;
    EXPECT_EQ(frame.begin.kind, c.expected.begin.kind) << c.sql_frame;
    EXPECT_EQ(frame.begin.offset, c.expected.begin.offset) << c.sql_frame;
    EXPECT_EQ(frame.begin.offset_column, c.expected.begin.offset_column)
        << c.sql_frame;
    EXPECT_EQ(frame.end.kind, c.expected.end.kind) << c.sql_frame;
    EXPECT_EQ(frame.end.offset, c.expected.end.offset) << c.sql_frame;
    EXPECT_EQ(frame.end.offset_column, c.expected.end.offset_column)
        << c.sql_frame;
    EXPECT_EQ(frame.exclusion, c.expected.exclusion) << c.sql_frame;
  }
}

TEST(SqlParser, DefaultFramesFollowTheStandard) {
  Table table = test::MakeRandomTable(50, 4);
  {
    // No ORDER BY: the whole partition.
    StatusOr<PlannedQuery> plan =
        PlanQuery("select sum(val) over (partition by grp) from t", table);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const FrameSpec& frame = plan->groups[0].spec.frame;
    EXPECT_EQ(frame.begin.kind, FrameBoundKind::kUnboundedPreceding);
    EXPECT_EQ(frame.end.kind, FrameBoundKind::kUnboundedFollowing);
  }
  {
    // ORDER BY: up to and including the current peer group.
    StatusOr<PlannedQuery> plan =
        PlanQuery("select sum(val) over (order by ord) from t", table);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const FrameSpec& frame = plan->groups[0].spec.frame;
    EXPECT_EQ(frame.mode, FrameMode::kGroups);
    EXPECT_EQ(frame.begin.kind, FrameBoundKind::kUnboundedPreceding);
    EXPECT_EQ(frame.end.kind, FrameBoundKind::kCurrentRow);
  }
}

TEST(SqlParser, ParsesModifiersAndGroupsByIdenticalSpec) {
  Table table = test::MakeRandomTable(50, 5);
  const std::string sql =
      "select sum(distinct val) over (order by ord rows between 5 preceding "
      "and current row) as s, "
      "count(*) over (order by ord rows between 5 preceding and current row) "
      "as c, "
      "rank(order by price desc) over (partition by grp order by ord desc "
      "nulls last rows between 3 preceding and 3 following) as r, "
      "first_value(name) filter (where flag) ignore nulls over (order by ord "
      "rows between 5 preceding and current row) as f "
      "from t";
  StatusOr<PlannedQuery> plan = PlanQuery(sql, table);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Items 1, 2 and 4 share an OVER clause; item 3 differs.
  ASSERT_EQ(plan->groups.size(), 2u);
  EXPECT_EQ(plan->groups[0].calls.size(), 3u);
  EXPECT_EQ(plan->groups[1].calls.size(), 1u);
  EXPECT_EQ(plan->output_names,
            (std::vector<std::string>{"s", "c", "r", "f"}));

  const WindowFunctionCall& sum = plan->groups[0].calls[0];
  EXPECT_EQ(sum.kind, WindowFunctionKind::kSumDistinct);
  const WindowFunctionCall& rank = plan->groups[1].calls[0];
  EXPECT_EQ(rank.kind, WindowFunctionKind::kRank);
  ASSERT_EQ(rank.order_by.size(), 1u);
  EXPECT_FALSE(rank.order_by[0].ascending);
  EXPECT_TRUE(rank.order_by[0].nulls_first);  // PostgreSQL DESC default
  const WindowSpec& rank_spec = plan->groups[1].spec;
  ASSERT_EQ(rank_spec.order_by.size(), 1u);
  EXPECT_FALSE(rank_spec.order_by[0].ascending);
  EXPECT_FALSE(rank_spec.order_by[0].nulls_first);  // explicit NULLS LAST
  const WindowFunctionCall& fv = plan->groups[0].calls[2];
  EXPECT_EQ(fv.kind, WindowFunctionKind::kFirstValue);
  EXPECT_TRUE(fv.ignore_nulls);
  ASSERT_TRUE(fv.filter.has_value());
  EXPECT_EQ(*fv.filter, table.MustColumnIndex("flag"));
}

TEST(SqlParser, RejectsMalformedStatements) {
  Table table = test::MakeRandomTable(10, 6);
  const char* cases[] = {
      "",
      "select",
      "select from t",
      "select sum(val) from t",  // missing OVER
      "select sum(val) over () from",
      "select bogus(val) over () from t",
      "select sum(nope) over () from t",
      "select sum(val) over (order by) from t",
      "select sum(val) over (rows between 1 preceding) from t",
      "select sum(val) over (rows between 1 and 2) from t",
      "select sum(val) over (rows between 1.5 preceding and current row) "
      "from t",
      "select sum(val) over (rows banana) from t",
      "select sum(val) over (order by ord exclude ties) from t",
      "select rank(distinct val) over (order by ord) from t",
      "select percentile_disc(0.5) over (order by ord) from t",
      "select ntile() over (order by ord) from t",
      "select sum(val) over (order by ord) from t extra",
      "select count(*) within group (order by ord) over () from t; select",
  };
  for (const char* sql : cases) {
    StatusOr<PlannedQuery> plan = PlanQuery(sql, table);
    EXPECT_FALSE(plan.ok()) << "accepted: " << sql;
  }
}

// ---------------------------------------------------------------------------
// Service: execution, admission, cancellation, cache
// ---------------------------------------------------------------------------

/// A query heavy enough to still be running when the test reacts to it:
/// a wide percentile frame over every row.
std::string SlowSql() {
  return "select percentile_disc(0.5 order by val) over (order by ord rows "
         "between 49999 preceding and current row), "
         "dense_rank() over (order by ord rows between 49999 preceding and "
         "current row) from big";
}

Table MakeBigTable() { return test::MakeRandomTable(150000, 11, 4, 0.1); }

TEST(QueryService, ExecutesSqlIdenticallyToDirectExecutor) {
  Table table = test::MakeRandomTable(20000, 7);
  QueryService svc;
  svc.RegisterTable("t", test::MakeRandomTable(20000, 7));

  const std::string sql =
      "select sum(val) over (partition by grp order by ord rows between 3 "
      "preceding and 2 following) as s, median(price) over (partition by grp "
      "order by ord rows between 3 preceding and 2 following) as m from t";
  StatusOr<QueryResult> result = svc.Query(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_columns(), 2u);
  EXPECT_EQ(result->table.column_name(0), "s");
  EXPECT_EQ(result->table.column_name(1), "m");

  StatusOr<PlannedQuery> plan = PlanQuery(sql, table);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ThreadPool serial(-1);
  StatusOr<std::vector<Column>> direct = EvaluateWindowFunctions(
      table, plan->groups[0].spec, plan->groups[0].calls, {}, serial);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ExpectBitIdentical(result->table.column(0), (*direct)[0], "sum");
  ExpectBitIdentical(result->table.column(1), (*direct)[1], "median");
}

TEST(QueryService, RejectsWhenAdmissionQueueIsFull) {
  ServiceOptions options;
  options.num_sessions = 1;
  options.max_queued = 1;
  QueryService svc(options);
  svc.RegisterTable("big", MakeBigTable());

  StatusOr<uint64_t> running = svc.Submit(SlowSql());
  ASSERT_TRUE(running.ok()) << running.status().ToString();
  // Give the lone session a moment to pop the running query off the queue.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (svc.stats().executing == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(svc.stats().executing, 1u);

  StatusOr<uint64_t> queued = svc.Submit(SlowSql());
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  StatusOr<uint64_t> rejected = svc.Submit(SlowSql());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(svc.stats().rejected, 1u);

  // Drain: cancel both admitted queries and wait them out.
  EXPECT_TRUE(svc.Cancel(*running).ok());
  EXPECT_TRUE(svc.Cancel(*queued).ok());
  (void)svc.Wait(*running);
  (void)svc.Wait(*queued);
}

TEST(QueryService, RejectsWhenAdmissionBudgetIsExhausted) {
  ServiceOptions options;
  options.num_sessions = 1;
  options.max_queued = 8;
  options.memory_limit_bytes = 1 << 20;
  options.per_query_reservation_bytes = 700 << 10;  // two do not fit
  QueryService svc(options);
  svc.RegisterTable("big", MakeBigTable());

  StatusOr<uint64_t> first = svc.Submit(SlowSql());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(svc.stats().reserved_bytes, 700u << 10);
  StatusOr<uint64_t> second = svc.Submit(SlowSql());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);

  EXPECT_TRUE(svc.Cancel(*first).ok());
  (void)svc.Wait(*first);
  // The admission reservation is released by completion.
  EXPECT_EQ(svc.stats().reserved_bytes, 0u);
}

TEST(QueryService, CancellationUnwindsPromptlyAndReleasesReservation) {
  ServiceOptions options;
  options.num_sessions = 1;
  options.memory_limit_bytes = 64 << 20;
  options.per_query_reservation_bytes = 1 << 20;
  QueryService svc(options);
  svc.RegisterTable("big", MakeBigTable());

  StatusOr<uint64_t> id = svc.Submit(SlowSql());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const auto spin_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (svc.stats().executing == 0 &&
         std::chrono::steady_clock::now() < spin_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(svc.stats().executing, 1u);
  EXPECT_EQ(svc.stats().reserved_bytes, 1u << 20);

  const auto cancel_time = std::chrono::steady_clock::now();
  ASSERT_TRUE(svc.Cancel(*id).ok());
  StatusOr<QueryResult> result = svc.Wait(*id);
  const auto waited = std::chrono::steady_clock::now() - cancel_time;

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Cooperative stop is polled at morsel granularity, so the unwind must
  // be fast — far faster than the query itself would have taken.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(waited).count(),
            15);
  EXPECT_EQ(svc.stats().reserved_bytes, 0u);
  EXPECT_GE(svc.stats().cancelled, 1u);
}

TEST(QueryService, ExpiredDeadlineReportsDeadlineExceeded) {
  QueryService svc;
  svc.RegisterTable("big", MakeBigTable());
  QueryOptions options;
  options.timeout_seconds = 1e-9;  // already expired at admission
  StatusOr<QueryResult> result = svc.Query(SlowSql(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryService, CacheHitSkipsSortAndTreeBuild) {
  QueryService svc;
  svc.RegisterTable("t", test::MakeRandomTable(50000, 13, 1, 0.1));
  const std::string sql =
      "select percentile_disc(0.5 order by val) over (order by ord rows "
      "between 500 preceding and current row) from t";

  StatusOr<QueryResult> cold = svc.Query(sql);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_NE(cold->profile, nullptr);
  EXPECT_GT(cold->profile->phase_seconds(obs::ProfilePhase::kSort), 0.0);
  EXPECT_GT(cold->profile->phase_seconds(obs::ProfilePhase::kTreeBuild), 0.0);

  StatusOr<QueryResult> warm = svc.Query(sql);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  // Probe-only repeat: the sort permutation and the merge sort tree come
  // from the cache, so those phases never execute.
  EXPECT_EQ(warm->profile->phase_seconds(obs::ProfilePhase::kSort), 0.0);
  EXPECT_EQ(warm->profile->phase_seconds(obs::ProfilePhase::kTreeBuild), 0.0);
  EXPECT_GT(warm->profile->phase_seconds(obs::ProfilePhase::kProbe), 0.0);
  EXPECT_GT(svc.stats().cache.hits, 0u);

  ExpectBitIdentical(warm->table.column(0), cold->table.column(0),
                     "cache hit result");
}

TEST(QueryService, ReRegisteringATableInvalidatesItsCacheKey) {
  QueryService svc;
  svc.RegisterTable("t", test::MakeRandomTable(5000, 17, 1));
  const std::string sql =
      "select sum(val) over (order by ord rows between 10 preceding and "
      "current row) from t";
  StatusOr<QueryResult> before = svc.Query(sql);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Same name, different rows: the epoch changes, so the cached artifacts
  // of the old version must not be reused.
  Table replacement = test::MakeRandomTable(5000, 18, 1);
  svc.RegisterTable("t", test::MakeRandomTable(5000, 18, 1));
  StatusOr<QueryResult> after = svc.Query(sql);
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  StatusOr<PlannedQuery> plan = PlanQuery(sql, replacement);
  ASSERT_TRUE(plan.ok());
  ThreadPool serial(-1);
  StatusOr<std::vector<Column>> direct = EvaluateWindowFunctions(
      replacement, plan->groups[0].spec, plan->groups[0].calls, {}, serial);
  ASSERT_TRUE(direct.ok());
  ExpectBitIdentical(after->table.column(0), (*direct)[0],
                     "post-replacement");
}

TEST(QueryService, EightConcurrentSessionsMatchSerialExecution) {
  const Table table = test::MakeRandomTable(30000, 21);
  const std::vector<std::string> queries = {
      "select sum(val) over (partition by grp order by ord rows between 3 "
      "preceding and 2 following) from t",
      "select count(distinct name) over (order by ord, val rows between 10 "
      "preceding and current row) from t",
      "select rank(order by price desc) over (partition by grp order by ord "
      "groups between 2 preceding and 2 following) from t",
      "select median(price) over (order by ord rows between 20 preceding and "
      "current row exclude group) from t",
      "select first_value(name) ignore nulls over (order by ord rows between "
      "5 preceding and 5 following exclude current row) from t",
      "select lead(val, 2) over (order by ord rows between unbounded "
      "preceding and unbounded following) from t",
      "select dense_rank() over (order by ord rows between 15 preceding and "
      "current row) from t",
      "select cume_dist() over (partition by grp order by val rows between 4 "
      "preceding and 4 following) from t",
  };

  // Serial reference results, computed outside the service.
  ThreadPool serial(-1);
  std::vector<Column> expected;
  for (const std::string& sql : queries) {
    StatusOr<PlannedQuery> plan = PlanQuery(sql, table);
    ASSERT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
    ASSERT_EQ(plan->groups.size(), 1u);
    StatusOr<std::vector<Column>> direct = EvaluateWindowFunctions(
        table, plan->groups[0].spec, plan->groups[0].calls, {}, serial);
    ASSERT_TRUE(direct.ok()) << sql << ": " << direct.status().ToString();
    expected.push_back(std::move((*direct)[0]));
  }

  ServiceOptions options;
  options.num_sessions = 8;
  options.max_queued = 64;
  QueryService svc(options);
  svc.RegisterTable("t", test::MakeRandomTable(30000, 21));

  // All eight queries submitted concurrently from eight client threads,
  // twice (the second wave hits the tree cache).
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<std::thread> clients;
    std::vector<StatusOr<QueryResult>> results(
        queries.size(), StatusOr<QueryResult>(Status::Internal("unset")));
    for (size_t q = 0; q < queries.size(); ++q) {
      clients.emplace_back([&, q] { results[q] = svc.Query(queries[q]); });
    }
    for (std::thread& t : clients) t.join();
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_TRUE(results[q].ok())
          << "wave " << wave << " query " << q << ": "
          << results[q].status().ToString();
      ExpectBitIdentical(results[q]->table.column(0), expected[q],
                         "wave " + std::to_string(wave) + " query " +
                             std::to_string(q));
    }
  }
}

// Satellite: two executors sharing one ThreadPool from different threads
// must produce bit-identical results to serial execution.
TEST(ConcurrentExecutors, TwoExecutorsOnSharedPoolMatchSerial) {
  const Table table = test::MakeRandomTable(20000, 31);

  WindowSpec spec_a;
  spec_a.partition_by = {table.MustColumnIndex("grp")};
  spec_a.order_by = {SortKey{table.MustColumnIndex("ord"), true, false}};
  spec_a.frame.begin = FrameBound::Preceding(7);
  spec_a.frame.end = FrameBound::CurrentRow();
  WindowFunctionCall call_a;
  call_a.kind = WindowFunctionKind::kPercentileDisc;
  call_a.argument = table.MustColumnIndex("price");
  call_a.fraction = 0.25;

  WindowSpec spec_b;
  spec_b.order_by = {SortKey{table.MustColumnIndex("val"), true, false}};
  spec_b.frame.begin = FrameBound::Preceding(50);
  spec_b.frame.end = FrameBound::Following(50);
  WindowFunctionCall call_b;
  call_b.kind = WindowFunctionKind::kCountDistinct;
  call_b.argument = table.MustColumnIndex("name");

  ThreadPool serial(-1);
  StatusOr<Column> serial_a =
      EvaluateWindowFunction(table, spec_a, call_a, {}, serial);
  StatusOr<Column> serial_b =
      EvaluateWindowFunction(table, spec_b, call_b, {}, serial);
  ASSERT_TRUE(serial_a.ok()) << serial_a.status().ToString();
  ASSERT_TRUE(serial_b.ok()) << serial_b.status().ToString();

  ThreadPool shared(4);
  for (int round = 0; round < 5; ++round) {
    StatusOr<Column> result_a = Status::Internal("unset");
    StatusOr<Column> result_b = Status::Internal("unset");
    std::thread ta([&] {
      result_a = EvaluateWindowFunction(table, spec_a, call_a, {}, shared);
    });
    std::thread tb([&] {
      result_b = EvaluateWindowFunction(table, spec_b, call_b, {}, shared);
    });
    ta.join();
    tb.join();
    ASSERT_TRUE(result_a.ok()) << result_a.status().ToString();
    ASSERT_TRUE(result_b.ok()) << result_b.status().ToString();
    ExpectBitIdentical(*result_a, *serial_a,
                       "executor A round " + std::to_string(round));
    ExpectBitIdentical(*result_b, *serial_b,
                       "executor B round " + std::to_string(round));
  }
}

// ---------------------------------------------------------------------------
// Result formatting
// ---------------------------------------------------------------------------

TEST(ResultFormat, JsonEscapesAndRendersNulls) {
  Column s(DataType::kString);
  s.AppendString("plain");
  s.AppendString("q\"uote\nline");
  s.AppendNull();
  Column d(DataType::kDouble);
  d.AppendDouble(1.5);
  d.AppendDouble(-0.25);
  d.AppendNull();
  Table table;
  table.AddColumn("s", std::move(s));
  table.AddColumn("d", std::move(d));
  const std::string json =
      service::FormatTable(table, service::ResultFormat::kJson);
  EXPECT_EQ(json,
            "{\"columns\":[\"s\",\"d\"],\"rows\":[[\"plain\",1.5],"
            "[\"q\\\"uote\\nline\",-0.25],[null,null]]}\n");
}

TEST(ResultFormat, ExitCodesAreDistinctPerStatusCode) {
  EXPECT_EQ(service::ExitCodeForStatus(Status::OK()), 0);
  EXPECT_EQ(service::ExitCodeForStatus(Status::InvalidArgument("x")), 3);
  EXPECT_EQ(service::ExitCodeForStatus(Status::OutOfRange("x")), 4);
  EXPECT_EQ(service::ExitCodeForStatus(Status::NotImplemented("x")), 5);
  EXPECT_EQ(service::ExitCodeForStatus(Status::TypeMismatch("x")), 6);
  EXPECT_EQ(service::ExitCodeForStatus(Status::Internal("x")), 7);
  EXPECT_EQ(service::ExitCodeForStatus(Status::ResourceExhausted("x")), 8);
  EXPECT_EQ(service::ExitCodeForStatus(Status::Cancelled("x")), 9);
  EXPECT_EQ(service::ExitCodeForStatus(Status::DeadlineExceeded("x")), 10);
}

}  // namespace
}  // namespace hwf
