#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hwf {
namespace {

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::TypeMismatch("x").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad column").ToString(),
            "InvalidArgument: bad column");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> result = Status::OutOfRange("too big");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(result.status().message(), "too big");
}

TEST(StatusOr, MoveOnlyValues) {
  StatusOr<std::vector<int>> result = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(result.ok());
  std::vector<int> moved = *std::move(result);
  EXPECT_EQ(moved.size(), 3u);
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result->size(), 5u);
}

TEST(StatusOr, WorksWithoutDefaultConstructibleType) {
  struct NoDefault {
    explicit NoDefault(int x) : value(x) {}
    int value;
  };
  StatusOr<NoDefault> ok_result = NoDefault(7);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result->value, 7);
  StatusOr<NoDefault> err_result = Status::Internal("nope");
  EXPECT_FALSE(err_result.ok());
}

}  // namespace
}  // namespace hwf
