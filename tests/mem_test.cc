// Unit tests for the memory governance subsystem: budget accounting (incl.
// concurrent TryReserve races), arena reuse, spill-file run round-trips,
// spillable-vector reads against their resident baseline, the budgeted
// external sort, and the executor's infeasible-budget fail-fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/random.h"
#include "mem/chunk_arena.h"
#include "mem/external_sort.h"
#include "mem/memory_budget.h"
#include "mem/spill_file.h"
#include "mem/spillable_vector.h"
#include "obs/counters.h"
#include "tests/window_test_util.h"
#include "window/executor.h"

namespace hwf {
namespace mem {
namespace {

TEST(MemoryBudget, ReserveReleaseAndPeak) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.limited());
  EXPECT_EQ(budget.limit_bytes(), 1000u);
  EXPECT_TRUE(budget.TryReserve(600).ok());
  EXPECT_EQ(budget.reserved_bytes(), 600u);
  EXPECT_EQ(budget.available_bytes(), 400u);
  // A request past the hard limit is denied and changes nothing.
  Status denied = budget.TryReserve(500);
  EXPECT_EQ(denied.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.reserved_bytes(), 600u);
  EXPECT_TRUE(budget.TryReserve(400).ok());
  EXPECT_EQ(budget.reserved_bytes(), 1000u);
  budget.Release(1000);
  EXPECT_EQ(budget.reserved_bytes(), 0u);
  EXPECT_EQ(budget.peak_reserved_bytes(), 1000u);
}

TEST(MemoryBudget, UnlimitedBudgetTracksWithoutDenying) {
  MemoryBudget budget;  // kUnlimited
  EXPECT_FALSE(budget.limited());
  EXPECT_TRUE(budget.TryReserve(size_t{1} << 40).ok());
  EXPECT_EQ(budget.reserved_bytes(), size_t{1} << 40);
  budget.Release(size_t{1} << 40);
}

TEST(MemoryBudget, SoftLimitSignalsBeforeHardLimit) {
  MemoryBudget budget(1000);  // Soft limit: 875.
  EXPECT_TRUE(budget.TryReserve(800).ok());
  EXPECT_FALSE(budget.over_soft_limit());
  EXPECT_TRUE(budget.TryReserve(100).ok());
  EXPECT_TRUE(budget.over_soft_limit());
  budget.Release(900);
}

TEST(MemoryBudget, ForceReserveOvershootsAndCounts) {
  const uint64_t before = obs::Value(obs::Counter::kMemForcedOverBudgetBytes);
  MemoryBudget budget(100);
  budget.ForceReserve(150);
  EXPECT_EQ(budget.reserved_bytes(), 150u);
  EXPECT_EQ(obs::Value(obs::Counter::kMemForcedOverBudgetBytes) - before,
            50u);
  budget.Release(150);
}

TEST(MemoryBudget, ConcurrentTryReserveNeverOvercommits) {
  constexpr size_t kLimit = 1 << 20;
  constexpr size_t kChunk = 4096;
  MemoryBudget budget(kLimit);
  std::atomic<bool> stop{false};
  std::atomic<bool> overcommitted{false};

  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (budget.reserved_bytes() > kLimit) {
        overcommitted.store(true, std::memory_order_relaxed);
      }
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      size_t held = 0;
      for (int i = 0; i < 20000; ++i) {
        if (budget.TryReserve(kChunk).ok()) {
          held += kChunk;
        } else if (held > 0) {
          budget.Release(held);
          held = 0;
        }
      }
      budget.Release(held);
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  observer.join();

  EXPECT_FALSE(overcommitted.load());
  EXPECT_EQ(budget.reserved_bytes(), 0u);
  EXPECT_LE(budget.peak_reserved_bytes(), kLimit);
}

TEST(ChunkArena, AllocatesAlignedAndAccountsAgainstBudget) {
  MemoryBudget budget(1 << 20);
  {
    ChunkArena arena(&budget, /*min_chunk_bytes=*/4096);
    void* a = arena.Allocate(100, 64);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
    double* d = arena.AllocateArray<double>(32);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
    EXPECT_GT(budget.reserved_bytes(), 0u);
    // Writes must not overlap.
    std::fill_n(static_cast<char*>(a), 100, 'x');
    std::fill_n(d, 32, 1.5);
    EXPECT_EQ(static_cast<char*>(a)[99], 'x');
    EXPECT_EQ(d[31], 1.5);
  }
  EXPECT_EQ(budget.reserved_bytes(), 0u);
}

TEST(ChunkArena, ResetReusesChunksWithoutGrowingReservation) {
  MemoryBudget budget(1 << 20);
  ChunkArena arena(&budget, 4096);
  for (int i = 0; i < 8; ++i) arena.Allocate(1000);
  const size_t reserved_after_first_round = budget.reserved_bytes();
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    for (int i = 0; i < 8; ++i) arena.Allocate(1000);
  }
  // Reset rewound the cursor: same chunks, same reservation.
  EXPECT_EQ(budget.reserved_bytes(), reserved_after_first_round);
}

TEST(SpillFile, RunRoundTripIncludingShortTailPage) {
  StatusOr<std::unique_ptr<SpillFile>> file = SpillFile::Create();
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  // Deliberately not a multiple of the page row count.
  const size_t n = RunWriter<int64_t>::kRowsPerPage * 3 + 17;
  std::vector<int64_t> rows(n);
  Pcg32 rng(42);
  for (size_t i = 0; i < n; ++i) rows[i] = static_cast<int64_t>(rng.Next());

  const uint64_t region =
      (*file)->AllocateRegion(RunWriter<int64_t>::RegionBytesFor(n));
  RunWriter<int64_t> writer(file->get(), region);
  ASSERT_TRUE(writer.AppendBatch(rows.data(), n).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.rows_written(), n);

  // Read back through a small buffer to exercise multiple refills.
  RunReader<int64_t> reader(file->get(), region, n, /*pages_per_refill=*/1);
  std::vector<int64_t> read_back;
  for (;;) {
    StatusOr<size_t> got = reader.Refill();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (*got == 0) break;
    read_back.insert(read_back.end(), reader.data(), reader.data() + *got);
  }
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(read_back, rows);
}

TEST(SpillableVector, SpilledReadsMatchResidentBaseline) {
  const size_t n = SpillableVector<int32_t>::kRowsPerPage * 2 + 333;
  std::vector<int32_t> baseline(n);
  for (size_t i = 0; i < n; ++i) baseline[i] = static_cast<int32_t>(i * 7);

  MemoryBudget budget(size_t{1} << 30);
  SpillableVector<int32_t> vec;
  vec.Attach(&budget);
  vec.AssignResident(std::vector<int32_t>(baseline));
  EXPECT_GT(vec.resident_bytes(), 0u);

  StatusOr<std::unique_ptr<SpillFile>> file = SpillFile::Create();
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(vec.Spill(file->get()).ok());
  EXPECT_TRUE(vec.spilled());
  EXPECT_EQ(vec.resident_bytes(), 0u);
  EXPECT_EQ(budget.reserved_bytes(), 0u);  // Reservation returned on spill.

  // Point reads through the page cache.
  for (size_t i = 0; i < n; i += 97) EXPECT_EQ(vec.Get(i), baseline[i]);
  EXPECT_EQ(vec.Get(n - 1), baseline[n - 1]);

  // Range reads (page-spanning).
  std::vector<int32_t> range(2000);
  vec.ReadRange(n / 2 - 1000, n / 2 + 1000, range.data());
  EXPECT_TRUE(std::equal(range.begin(), range.end(),
                         baseline.begin() + (n / 2 - 1000)));

  // Binary searches against the sorted content.
  for (int32_t probe : {0, 7, 8, 700, static_cast<int32_t>(n * 7), -5}) {
    EXPECT_EQ(vec.LowerBound(0, n, probe),
              static_cast<size_t>(std::lower_bound(baseline.begin(),
                                                   baseline.end(), probe) -
                                  baseline.begin()))
        << "probe " << probe;
  }
}

TEST(ExternalSort, TightBudgetSpillsAndMatchesStdSort) {
  const size_t n = 200000;
  std::vector<int64_t> data(n);
  Pcg32 rng(7);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<int64_t>(rng.Bounded(1000));  // Heavy duplicates.
  }
  std::vector<int64_t> expected = data;
  std::sort(expected.begin(), expected.end());

  // Budget far below the n-element merge buffer forces the external path.
  MemoryBudget budget(n * sizeof(int64_t) / 4);
  MemoryContext ctx{&budget, /*allow_spill=*/true, nullptr};
  const uint64_t runs_before = obs::Value(obs::Counter::kMemExternalSortRuns);
  Status status = SortWithBudget(
      data, [](int64_t a, int64_t b) { return a < b; },
      ThreadPool::Default(), ctx);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(data, expected);
  EXPECT_GT(obs::Value(obs::Counter::kMemExternalSortRuns), runs_before);
  EXPECT_EQ(budget.reserved_bytes(), 0u);
}

TEST(ExternalSort, UnlimitedBudgetSortsInMemory) {
  std::vector<int64_t> data = {5, 3, 8, 1, 9, 2, 7};
  MemoryContext ctx{};  // No budget at all.
  Status status = SortWithBudget(
      data, [](int64_t a, int64_t b) { return a < b; },
      ThreadPool::Default(), ctx);
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(ParseMemorySize, AcceptsSuffixesRejectsGarbage) {
  size_t bytes = 0;
  EXPECT_TRUE(ParseMemorySize("65536", &bytes));
  EXPECT_EQ(bytes, 65536u);
  EXPECT_TRUE(ParseMemorySize("512K", &bytes));
  EXPECT_EQ(bytes, size_t{512} << 10);
  EXPECT_TRUE(ParseMemorySize("256M", &bytes));
  EXPECT_EQ(bytes, size_t{256} << 20);
  EXPECT_TRUE(ParseMemorySize("2g", &bytes));
  EXPECT_EQ(bytes, size_t{2} << 30);
  EXPECT_TRUE(ParseMemorySize("128MB", &bytes));
  EXPECT_EQ(bytes, size_t{128} << 20);

  bytes = 77;
  EXPECT_FALSE(ParseMemorySize("", &bytes));
  EXPECT_FALSE(ParseMemorySize("M", &bytes));
  EXPECT_FALSE(ParseMemorySize("12X", &bytes));
  EXPECT_FALSE(ParseMemorySize("12MBs", &bytes));
  EXPECT_FALSE(ParseMemorySize("-5M", &bytes));
  EXPECT_FALSE(ParseMemorySize("99999999999999999999999", &bytes));
  EXPECT_EQ(bytes, 77u);  // Untouched on failure.
}

TEST(ExecutorBudget, InfeasibleBudgetFailsFastWithCleanStatus) {
  Table table = test::MakeRandomTable(5000, /*seed=*/1);
  WindowSpec spec;
  spec.order_by.push_back(SortKey{1, true, true});
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kSum;
  call.argument = 2;

  WindowExecutorOptions options;
  options.memory_limit_bytes = 1024;  // Cannot hold even the permutation.
  StatusOr<Column> result = EvaluateWindowFunction(table, spec, call, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace mem
}  // namespace hwf
