// Conformance tests: the merge sort tree engine must agree with the naive
// per-frame oracle for every window function under a broad grid of frame
// specifications, NULL patterns, FILTER clauses, and partitionings.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "tests/window_test_util.h"

namespace hwf {
namespace {

using test::ExpectMatchesNaive;
using test::MakeRandomTable;

// Column indexes in MakeRandomTable's schema.
constexpr size_t kGrp = 0;
constexpr size_t kOrd = 1;
constexpr size_t kVal = 2;
constexpr size_t kPrice = 3;
constexpr size_t kName = 4;
constexpr size_t kFlag = 5;
constexpr size_t kOff = 6;

std::vector<WindowFunctionCall> AllCalls() {
  std::vector<WindowFunctionCall> calls;
  auto add = [&](WindowFunctionKind kind, std::optional<size_t> argument) {
    WindowFunctionCall call;
    call.kind = kind;
    call.argument = argument;
    calls.push_back(call);
  };
  add(WindowFunctionKind::kCountStar, std::nullopt);
  add(WindowFunctionKind::kCount, kVal);
  add(WindowFunctionKind::kSum, kVal);
  add(WindowFunctionKind::kSum, kPrice);
  add(WindowFunctionKind::kMin, kPrice);
  add(WindowFunctionKind::kMax, kVal);
  add(WindowFunctionKind::kAvg, kPrice);
  add(WindowFunctionKind::kCountDistinct, kVal);
  add(WindowFunctionKind::kCountDistinct, kName);
  add(WindowFunctionKind::kSumDistinct, kVal);
  add(WindowFunctionKind::kSumDistinct, kPrice);
  add(WindowFunctionKind::kAvgDistinct, kVal);
  add(WindowFunctionKind::kMinDistinct, kVal);
  add(WindowFunctionKind::kMaxDistinct, kPrice);
  // Rank family with a function-level ORDER BY on a different column than
  // the frame order — the paper's core extension.
  for (auto kind :
       {WindowFunctionKind::kRank, WindowFunctionKind::kDenseRank,
        WindowFunctionKind::kRowNumber, WindowFunctionKind::kPercentRank,
        WindowFunctionKind::kCumeDist}) {
    WindowFunctionCall call;
    call.kind = kind;
    call.order_by = {SortKey{kVal, true, false}};
    calls.push_back(call);
    call.order_by = {SortKey{kPrice, false, true}};  // DESC NULLS FIRST.
    calls.push_back(call);
  }
  {
    WindowFunctionCall ntile;
    ntile.kind = WindowFunctionKind::kNtile;
    ntile.order_by = {SortKey{kPrice, true, false}};
    ntile.param = 4;
    calls.push_back(ntile);
  }
  for (double fraction : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    WindowFunctionCall pct;
    pct.kind = WindowFunctionKind::kPercentileDisc;
    pct.argument = kPrice;
    pct.fraction = fraction;
    calls.push_back(pct);
    pct.kind = WindowFunctionKind::kPercentileCont;
    calls.push_back(pct);
  }
  {
    WindowFunctionCall median;
    median.kind = WindowFunctionKind::kMedian;
    median.argument = kVal;
    calls.push_back(median);
  }
  for (auto kind : {WindowFunctionKind::kFirstValue,
                    WindowFunctionKind::kLastValue}) {
    WindowFunctionCall call;
    call.kind = kind;
    call.argument = kName;
    call.order_by = {SortKey{kPrice, true, false}};
    calls.push_back(call);
    call.argument = kVal;
    call.order_by = {};
    calls.push_back(call);  // Falls back to the frame order.
  }
  {
    WindowFunctionCall nth;
    nth.kind = WindowFunctionKind::kNthValue;
    nth.argument = kPrice;
    nth.order_by = {SortKey{kVal, true, false}};
    nth.param = 3;
    calls.push_back(nth);
  }
  for (auto kind : {WindowFunctionKind::kLead, WindowFunctionKind::kLag}) {
    WindowFunctionCall call;
    call.kind = kind;
    call.argument = kVal;
    call.order_by = {SortKey{kPrice, true, false}};
    call.param = 2;
    calls.push_back(call);
    call.param = 0;
    calls.push_back(call);
  }
  return calls;
}

void RunAllCallsAgainstNaive(const Table& table, const WindowSpec& spec,
                             const std::string& context) {
  for (const WindowFunctionCall& call : AllCalls()) {
    if (call.kind == WindowFunctionKind::kDenseRank &&
        spec.frame.exclusion != FrameExclusion::kNoOthers) {
      continue;  // Documented: unsupported combination.
    }
    ExpectMatchesNaive(
        table, spec, call,
        context + " / " + WindowFunctionKindName(call.kind));
  }
}

WindowSpec BaseSpec() {
  WindowSpec spec;
  spec.partition_by = {kGrp};
  spec.order_by = {SortKey{kOrd, true, false}};
  return spec;
}

TEST(WindowConformance, DefaultRunningFrame) {
  Table table = MakeRandomTable(180, 1);
  RunAllCallsAgainstNaive(table, BaseSpec(), "running");
}

TEST(WindowConformance, SlidingRowsFrame) {
  Table table = MakeRandomTable(170, 2);
  WindowSpec spec = BaseSpec();
  spec.frame.begin = FrameBound::Preceding(7);
  spec.frame.end = FrameBound::Following(3);
  RunAllCallsAgainstNaive(table, spec, "sliding");
}

TEST(WindowConformance, BothPrecedingFrame) {
  // The current row is OUTSIDE its own frame.
  Table table = MakeRandomTable(150, 3);
  WindowSpec spec = BaseSpec();
  spec.frame.begin = FrameBound::Preceding(10);
  spec.frame.end = FrameBound::Preceding(3);
  RunAllCallsAgainstNaive(table, spec, "both-preceding");
}

TEST(WindowConformance, UnboundedBothSides) {
  Table table = MakeRandomTable(160, 4);
  WindowSpec spec = BaseSpec();
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  RunAllCallsAgainstNaive(table, spec, "unbounded");
}

TEST(WindowConformance, RangeFrame) {
  Table table = MakeRandomTable(170, 5);
  WindowSpec spec = BaseSpec();
  spec.frame.mode = FrameMode::kRange;
  spec.frame.begin = FrameBound::Preceding(4);
  spec.frame.end = FrameBound::CurrentRow();
  RunAllCallsAgainstNaive(table, spec, "range");
}

TEST(WindowConformance, RangeFrameDescending) {
  Table table = MakeRandomTable(150, 6);
  WindowSpec spec = BaseSpec();
  spec.order_by = {SortKey{kOrd, false, false}};
  spec.frame.mode = FrameMode::kRange;
  spec.frame.begin = FrameBound::Preceding(3);
  spec.frame.end = FrameBound::Following(2);
  RunAllCallsAgainstNaive(table, spec, "range-desc");
}

TEST(WindowConformance, GroupsFrame) {
  Table table = MakeRandomTable(160, 7);
  WindowSpec spec = BaseSpec();
  spec.frame.mode = FrameMode::kGroups;
  spec.frame.begin = FrameBound::Preceding(2);
  spec.frame.end = FrameBound::Following(1);
  RunAllCallsAgainstNaive(table, spec, "groups");
}

TEST(WindowConformance, NonMonotonicPerRowOffsets) {
  // Per-row offsets (the paper's §6.5 non-monotonic frames): tuples enter
  // and leave the frame multiple times.
  Table table = MakeRandomTable(170, 8);
  WindowSpec spec = BaseSpec();
  spec.frame.begin = FrameBound::PrecedingColumn(kOff);
  spec.frame.end = FrameBound::FollowingColumn(kOff);
  RunAllCallsAgainstNaive(table, spec, "non-monotonic");
}

class ExclusionConformanceTest
    : public ::testing::TestWithParam<FrameExclusion> {};

TEST_P(ExclusionConformanceTest, AllFunctionsMatchNaive) {
  Table table = MakeRandomTable(150, 9);
  WindowSpec spec = BaseSpec();
  spec.frame.begin = FrameBound::Preceding(8);
  spec.frame.end = FrameBound::Following(8);
  spec.frame.exclusion = GetParam();
  RunAllCallsAgainstNaive(table, spec, "exclusion");
}

INSTANTIATE_TEST_SUITE_P(Exclusions, ExclusionConformanceTest,
                         ::testing::Values(FrameExclusion::kCurrentRow,
                                           FrameExclusion::kGroup,
                                           FrameExclusion::kTies));

TEST(WindowConformance, ExclusionWithRunningFrameDistincts) {
  // Exclusion + DISTINCT aggregates exercises the gap-walk correction the
  // paper only sketches (§4.7).
  Table table = MakeRandomTable(200, 10, /*partitions=*/1);
  WindowSpec spec;
  spec.order_by = {SortKey{kOrd, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  spec.frame.exclusion = FrameExclusion::kGroup;
  for (auto kind :
       {WindowFunctionKind::kCountDistinct, WindowFunctionKind::kSumDistinct,
        WindowFunctionKind::kMinDistinct, WindowFunctionKind::kMaxDistinct,
        WindowFunctionKind::kAvgDistinct}) {
    WindowFunctionCall call;
    call.kind = kind;
    call.argument = kVal;
    ExpectMatchesNaive(table, spec, call,
                       std::string("exclusion-distinct/") +
                           WindowFunctionKindName(kind));
  }
}

TEST(WindowConformance, FilterClause) {
  Table table = MakeRandomTable(160, 11);
  WindowSpec spec = BaseSpec();
  spec.frame.begin = FrameBound::Preceding(12);
  for (WindowFunctionCall call : AllCalls()) {
    call.filter = kFlag;
    ExpectMatchesNaive(table, spec, call,
                       std::string("filter/") +
                           WindowFunctionKindName(call.kind));
  }
}

TEST(WindowConformance, IgnoreNullsValueFunctions) {
  Table table = MakeRandomTable(150, 12, /*partitions=*/2,
                                /*null_fraction=*/0.4);
  WindowSpec spec = BaseSpec();
  spec.frame.begin = FrameBound::Preceding(9);
  for (auto kind :
       {WindowFunctionKind::kFirstValue, WindowFunctionKind::kLastValue,
        WindowFunctionKind::kNthValue, WindowFunctionKind::kLead,
        WindowFunctionKind::kLag}) {
    WindowFunctionCall call;
    call.kind = kind;
    call.argument = kVal;
    call.order_by = {SortKey{kPrice, true, false}};
    call.ignore_nulls = true;
    call.param = 2;
    ExpectMatchesNaive(table, spec, call,
                       std::string("ignore-nulls/") +
                           WindowFunctionKindName(kind));
  }
}

TEST(WindowConformance, NoPartitioning) {
  Table table = MakeRandomTable(140, 13);
  WindowSpec spec;
  spec.order_by = {SortKey{kOrd, true, false}};
  spec.frame.begin = FrameBound::Preceding(5);
  RunAllCallsAgainstNaive(table, spec, "no-partition");
}

TEST(WindowConformance, ManySmallPartitions) {
  Table table = MakeRandomTable(200, 14, /*partitions=*/40);
  RunAllCallsAgainstNaive(table, BaseSpec(), "small-partitions");
}

TEST(WindowConformance, NoOrderBy) {
  // Frame order degenerates to input order; rank functions need a
  // function-level order.
  Table table = MakeRandomTable(120, 15);
  WindowSpec spec;
  spec.partition_by = {kGrp};
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kCountDistinct;
  call.argument = kVal;
  ExpectMatchesNaive(table, spec, call, "no-order/count-distinct");
  call.kind = WindowFunctionKind::kRank;
  call.order_by = {SortKey{kVal, true, false}};
  ExpectMatchesNaive(table, spec, call, "no-order/rank");
}

TEST(WindowConformance, TinyEdgeCases) {
  for (size_t rows : {0u, 1u, 2u, 3u}) {
    Table table = MakeRandomTable(rows, 16 + rows);
    RunAllCallsAgainstNaive(table, BaseSpec(),
                            "tiny-" + std::to_string(rows));
  }
}

TEST(WindowConformance, ForcedIndexWidths) {
  Table table = MakeRandomTable(150, 17);
  WindowSpec spec = BaseSpec();
  for (int width : {32, 64}) {
    WindowExecutorOptions options;
    options.force_index_width = width;
    WindowFunctionCall call;
    call.kind = WindowFunctionKind::kCountDistinct;
    call.argument = kVal;
    ExpectMatchesNaive(table, spec, call,
                       "width-" + std::to_string(width), options);
    call.kind = WindowFunctionKind::kMedian;
    call.argument = kPrice;
    ExpectMatchesNaive(table, spec, call,
                       "width-median-" + std::to_string(width), options);
  }
}

TEST(WindowConformance, SmallTreeFanoutAndSampling) {
  Table table = MakeRandomTable(180, 18);
  WindowSpec spec = BaseSpec();
  for (size_t fanout : {2u, 4u, 64u}) {
    for (size_t sampling : {1u, 4u, 128u}) {
      WindowExecutorOptions options;
      options.tree.fanout = fanout;
      options.tree.sampling = sampling;
      WindowFunctionCall call;
      call.kind = WindowFunctionKind::kRank;
      call.order_by = {SortKey{kVal, true, false}};
      ExpectMatchesNaive(table, spec, call,
                         "fanout-" + std::to_string(fanout) + "-k-" +
                             std::to_string(sampling),
                         options);
    }
  }
}

TEST(WindowConformance, MultiWorkerPoolMatchesSerialOracle) {
  // The container may have a single core, so the default pool has no
  // workers; run the full call set on an explicit 4-worker pool to
  // exercise TaskGroup scheduling, chunked upper-level tree merges, and
  // the across-partition path, comparing against the serial naive oracle.
  Table table = MakeRandomTable(250, 20);
  WindowSpec spec = BaseSpec();
  spec.frame.begin = FrameBound::Preceding(11);
  spec.frame.end = FrameBound::Following(6);

  ThreadPool parallel(4);
  ThreadPool serial(0);
  WindowExecutorOptions options;
  options.morsel_size = 24;  // Many tasks.
  for (const WindowFunctionCall& call : AllCalls()) {
    options.engine = WindowEngine::kMergeSortTree;
    StatusOr<Column> mst =
        EvaluateWindowFunction(table, spec, call, options, parallel);
    ASSERT_TRUE(mst.ok()) << WindowFunctionKindName(call.kind);
    options.engine = WindowEngine::kNaive;
    StatusOr<Column> naive =
        EvaluateWindowFunction(table, spec, call, options, serial);
    ASSERT_TRUE(naive.ok());
    test::ExpectColumnsEqual(*mst, *naive,
                             std::string("parallel-pool/") +
                                 WindowFunctionKindName(call.kind));
  }
}

TEST(WindowConformance, SmallMorselsExerciseTaskParallelism) {
  Table table = MakeRandomTable(300, 19);
  WindowSpec spec = BaseSpec();
  WindowExecutorOptions options;
  options.morsel_size = 16;  // Many tasks even at this size.
  for (const WindowFunctionCall& call : AllCalls()) {
    ExpectMatchesNaive(table, spec, call,
                       std::string("morsel/") +
                           WindowFunctionKindName(call.kind),
                       options);
  }
}

}  // namespace
}  // namespace hwf
