// Tests of the observability layer: span recording and thread
// attribution, Chrome trace JSON structure, counter atomicity, and
// ExecutionProfile aggregation through the window executor.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "mst/merge_sort_tree.h"
#include "obs/counters.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "tests/window_test_util.h"
#include "window/executor.h"

namespace hwf {
namespace {

using test::MakeRandomTable;

/// Resets the global tracer around each test so the global singleton does
/// not leak spans across tests.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Get().Disable();
    obs::Tracer::Get().Clear();
  }
  void TearDown() override {
    obs::Tracer::Get().Disable();
    obs::Tracer::Get().Clear();
  }
};

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  { HWF_TRACE_SCOPE("test.should_not_appear"); }
  EXPECT_TRUE(obs::Tracer::Get().Snapshot().empty());
}

// The span-recording tests need the macros compiled in; with
// HWF_ENABLE_TRACING=OFF they would (correctly) observe nothing.
#if HWF_TRACING_ENABLED

TEST_F(ObsTest, SpansNestWithinTheirParent) {
  obs::Tracer::Get().Enable();
  {
    HWF_TRACE_SCOPE("test.outer");
    { HWF_TRACE_SCOPE_ARG("test.inner", "k", 42); }
  }
  obs::Tracer::Get().Disable();

  std::vector<obs::TraceEvent> events = obs::Tracer::Get().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  for (const obs::TraceEvent& e : events) {
    if (std::string(e.name) == "test.outer") outer = &e;
    if (std::string(e.name) == "test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Same thread, and the inner interval is contained in the outer one.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->start_ns, inner->start_ns);
  EXPECT_GE(outer->start_ns + outer->dur_ns, inner->start_ns + inner->dur_ns);
  EXPECT_STREQ(inner->arg_name, "k");
  EXPECT_EQ(inner->arg_value, 42);
}

TEST_F(ObsTest, SpansAreAttributedToTheRecordingThread) {
  obs::Tracer::Get().Enable();
  { HWF_TRACE_SCOPE("test.main_thread"); }
  std::thread other([] { HWF_TRACE_SCOPE("test.other_thread"); });
  other.join();
  obs::Tracer::Get().Disable();

  std::vector<obs::TraceEvent> events = obs::Tracer::Get().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent* main_event = nullptr;
  const obs::TraceEvent* other_event = nullptr;
  for (const obs::TraceEvent& e : events) {
    if (std::string(e.name) == "test.main_thread") main_event = &e;
    if (std::string(e.name) == "test.other_thread") other_event = &e;
  }
  ASSERT_NE(main_event, nullptr);
  ASSERT_NE(other_event, nullptr);
  EXPECT_NE(main_event->tid, other_event->tid);
}

TEST_F(ObsTest, ChromeTraceJsonHasRequiredStructure) {
  obs::Tracer::Get().Enable();
  {
    HWF_TRACE_SCOPE("test.alpha");
    { HWF_TRACE_SCOPE_ARG("test.beta", "n", 7); }
  }
  obs::Tracer::Get().Disable();

  const std::string json = obs::Tracer::Get().ToChromeTraceJson();
  // Top-level object with the trace_event container and time unit.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // Complete events carry name/cat/ph/ts/dur/pid/tid.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"hwf\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"n\": 7}"), std::string::npos);
  // Thread-name metadata events.
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Balanced braces/brackets (span names never contain either).
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

#endif  // HWF_TRACING_ENABLED

TEST_F(ObsTest, CountersAreAtomicUnderParallelFor) {
  ThreadPool pool(4);
  const obs::CounterSnapshot before = obs::SnapshotCounters();
  constexpr size_t kN = 100000;
  ParallelFor(
      0, kN,
      [](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          obs::Add(obs::Counter::kMstCascadeLookups);
        }
      },
      pool, /*min_morsel=*/128);
  const obs::CounterSnapshot delta =
      obs::SnapshotDelta(before, obs::SnapshotCounters());
  EXPECT_EQ(delta[obs::Counter::kMstCascadeLookups], kN);
  // The runner instrumentation itself is visible too.
  EXPECT_GT(delta[obs::Counter::kParallelForMorsels], 0u);
}

TEST_F(ObsTest, ExecutorProfilePhasesSumWithinWallTime) {
  // Serial pool: partitions evaluate one after another, so the disjoint
  // phase intervals must nest within the executor's wall time. (With
  // parallel partitions the per-partition phases sum CPU-style and may
  // legitimately exceed the wall total.)
  ThreadPool serial(0);
  Table table = MakeRandomTable(4000, 17);
  WindowSpec spec;
  spec.order_by = {SortKey{1}};
  spec.frame.begin = FrameBound::Preceding(200);
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kMedian;
  call.argument = 3;

  obs::ExecutionProfile profile;
  WindowExecutorOptions options;
  options.profile = &profile;
  ASSERT_TRUE(EvaluateWindowFunction(table, spec, call, options, serial).ok());

  EXPECT_EQ(profile.rows(), table.num_rows());
  EXPECT_GT(profile.partitions(), 0u);
  EXPECT_GT(profile.total_seconds(), 0.0);
  double phase_sum = 0;
  for (size_t p = 0; p < obs::kNumProfilePhases; ++p) {
    const double s =
        profile.phase_seconds(static_cast<obs::ProfilePhase>(p));
    EXPECT_GE(s, 0.0) << obs::ProfilePhaseName(
        static_cast<obs::ProfilePhase>(p));
    phase_sum += s;
  }
  // Allow a little slack for clock granularity on the phase boundaries.
  EXPECT_LE(phase_sum, profile.total_seconds() * 1.05 + 1e-4);
  // A median over a 201-row frame goes through the merge sort tree.
  EXPECT_GT(profile.phase_seconds(obs::ProfilePhase::kTreeBuild), 0.0);
  EXPECT_GT(profile.counters()[obs::Counter::kExecutorPartitions], 0u);
}

TEST_F(ObsTest, TreeBuildReportsPerLevelSeconds) {
  ThreadPool serial(0);
  std::vector<uint32_t> keys(20000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<uint32_t>((i * 2654435761u) >> 8);
  }
  obs::ExecutionProfile profile;
  MergeSortTreeOptions options;
  options.profile = &profile;
  auto tree = MergeSortTree<uint32_t>::Build(keys, options, serial);
  ASSERT_EQ(tree.size(), keys.size());

  const std::vector<double> levels = profile.tree_level_seconds();
  ASSERT_FALSE(levels.empty());
  double level_sum = 0;
  for (double s : levels) {
    EXPECT_GE(s, 0.0);
    level_sum += s;
  }
  // Per-level seconds and the kTreeBuild phase are the same accumulation.
  EXPECT_DOUBLE_EQ(level_sum,
                   profile.phase_seconds(obs::ProfilePhase::kTreeBuild));
}

TEST_F(ObsTest, ProfileJsonAndExplainAreWellFormed) {
  obs::ExecutionProfile profile;
  profile.AddPhaseSeconds(obs::ProfilePhase::kSort, 0.25);
  profile.AddTreeLevelSeconds(0, 0.5);
  profile.SetRows(1000);
  profile.SetPartitions(2);
  profile.SetEngine("merge_sort_tree");
  profile.SetTotalSeconds(1.0);

  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"rows\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"engine\": \"merge_sort_tree\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"tree_build_levels\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  int braces = 0;
  for (char c : json) braces += c == '{' ? 1 : c == '}' ? -1 : 0;
  EXPECT_EQ(braces, 0);

  const std::string text = profile.Explain();
  EXPECT_NE(text.find("sort"), std::string::npos);
  EXPECT_NE(text.find("tree_build"), std::string::npos);

  profile.Clear();
  EXPECT_EQ(profile.rows(), 0u);
  EXPECT_EQ(profile.total_seconds(), 0.0);
  EXPECT_TRUE(profile.tree_level_seconds().empty());
}

}  // namespace
}  // namespace hwf
