#include "window/frame.h"

#include <gtest/gtest.h>

#include <vector>

namespace hwf {
namespace {

FrameResolver::Inputs BaseInputs(size_t n, FrameSpec frame) {
  FrameResolver::Inputs inputs;
  inputs.n = n;
  inputs.frame = frame;
  return inputs;
}

/// Fills peer metadata assuming each position's "order value" is given.
void FillPeers(FrameResolver::Inputs* inputs,
               const std::vector<int>& order_values) {
  const size_t n = order_values.size();
  inputs->peer_start.resize(n);
  inputs->peer_end.resize(n);
  inputs->group_index.resize(n);
  size_t begin = 0;
  size_t group = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (i == n || order_values[i] != order_values[i - 1]) {
      inputs->group_starts.push_back(begin);
      for (size_t j = begin; j < i; ++j) {
        inputs->peer_start[j] = begin;
        inputs->peer_end[j] = i;
        inputs->group_index[j] = group;
      }
      begin = i;
      ++group;
    }
  }
  inputs->group_starts.push_back(n);
}

TEST(FrameResolver, RowsDefaultFrame) {
  FrameSpec frame;  // ROWS UNBOUNDED PRECEDING .. CURRENT ROW.
  FrameResolver resolver(BaseInputs(10, frame));
  for (size_t i = 0; i < 10; ++i) {
    const RowRange base = resolver.ResolveBase(i);
    EXPECT_EQ(base.begin, 0u);
    EXPECT_EQ(base.end, i + 1);
  }
}

TEST(FrameResolver, RowsSlidingAndClamping) {
  FrameSpec frame;
  frame.begin = FrameBound::Preceding(2);
  frame.end = FrameBound::Following(3);
  FrameResolver resolver(BaseInputs(10, frame));
  EXPECT_EQ(resolver.ResolveBase(0).begin, 0u);
  EXPECT_EQ(resolver.ResolveBase(0).end, 4u);
  EXPECT_EQ(resolver.ResolveBase(5).begin, 3u);
  EXPECT_EQ(resolver.ResolveBase(5).end, 9u);
  EXPECT_EQ(resolver.ResolveBase(9).begin, 7u);
  EXPECT_EQ(resolver.ResolveBase(9).end, 10u);
}

TEST(FrameResolver, RowsBothPrecedingCanBeEmpty) {
  FrameSpec frame;
  frame.begin = FrameBound::Preceding(5);
  frame.end = FrameBound::Preceding(2);
  FrameResolver resolver(BaseInputs(10, frame));
  // Row 0: [-5, -1] → empty.
  EXPECT_TRUE(resolver.ResolveBase(0).empty());
  EXPECT_TRUE(resolver.ResolveBase(1).empty());
  // Row 6: [1, 4] → begin 1, end 5.
  EXPECT_EQ(resolver.ResolveBase(6).begin, 1u);
  EXPECT_EQ(resolver.ResolveBase(6).end, 5u);
}

TEST(FrameResolver, RowsPerRowOffsets) {
  FrameSpec frame;
  frame.begin = FrameBound::PrecedingColumn(0);
  frame.end = FrameBound::CurrentRow();
  FrameResolver::Inputs inputs = BaseInputs(5, frame);
  inputs.begin_offsets = {0, 3, 1, 10, 2};  // Per-row PRECEDING amounts.
  FrameResolver resolver(std::move(inputs));
  EXPECT_EQ(resolver.ResolveBase(0).begin, 0u);
  EXPECT_EQ(resolver.ResolveBase(1).begin, 0u);  // 1 - 3 clamps to 0.
  EXPECT_EQ(resolver.ResolveBase(2).begin, 1u);
  EXPECT_EQ(resolver.ResolveBase(3).begin, 0u);
  EXPECT_EQ(resolver.ResolveBase(4).begin, 2u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(resolver.ResolveBase(i).end, i + 1);
  }
}

TEST(FrameResolver, RangeAscending) {
  // Keys: 1 3 3 7 10.
  FrameSpec frame;
  frame.mode = FrameMode::kRange;
  frame.begin = FrameBound::Preceding(2);
  frame.end = FrameBound::Following(3);
  FrameResolver::Inputs inputs = BaseInputs(5, frame);
  inputs.range_keys = {1, 3, 3, 7, 10};
  inputs.range_key_valid = {1, 1, 1, 1, 1};
  inputs.nonnull_begin = 0;
  inputs.nonnull_end = 5;
  FillPeers(&inputs, {1, 3, 3, 7, 10});
  FrameResolver resolver(std::move(inputs));
  // Row 0 (key 1): keys in [-1, 4] → positions 0..2.
  EXPECT_EQ(resolver.ResolveBase(0).begin, 0u);
  EXPECT_EQ(resolver.ResolveBase(0).end, 3u);
  // Row 3 (key 7): keys in [5, 10] → positions 3..4.
  EXPECT_EQ(resolver.ResolveBase(3).begin, 3u);
  EXPECT_EQ(resolver.ResolveBase(3).end, 5u);
}

TEST(FrameResolver, RangeCurrentRowMeansPeerGroup) {
  FrameSpec frame;
  frame.mode = FrameMode::kRange;
  frame.begin = FrameBound::UnboundedPreceding();
  frame.end = FrameBound::CurrentRow();
  FrameResolver::Inputs inputs = BaseInputs(5, frame);
  FillPeers(&inputs, {1, 3, 3, 7, 10});
  FrameResolver resolver(std::move(inputs));
  // Rows 1 and 2 are peers (key 3): frame end includes both.
  EXPECT_EQ(resolver.ResolveBase(1).end, 3u);
  EXPECT_EQ(resolver.ResolveBase(2).end, 3u);
  EXPECT_EQ(resolver.ResolveBase(0).end, 1u);
}

TEST(FrameResolver, RangeDescending) {
  // Keys descending: 10 7 3 3 1.
  FrameSpec frame;
  frame.mode = FrameMode::kRange;
  frame.begin = FrameBound::Preceding(3);
  frame.end = FrameBound::Following(2);
  FrameResolver::Inputs inputs = BaseInputs(5, frame);
  inputs.range_keys = {10, 7, 3, 3, 1};
  inputs.range_key_valid = {1, 1, 1, 1, 1};
  inputs.ascending = false;
  inputs.nonnull_begin = 0;
  inputs.nonnull_end = 5;
  FillPeers(&inputs, {10, 7, 3, 3, 1});
  FrameResolver resolver(std::move(inputs));
  // Row 1 (key 7): frame = keys in [5, 10] → positions 0..1.
  EXPECT_EQ(resolver.ResolveBase(1).begin, 0u);
  EXPECT_EQ(resolver.ResolveBase(1).end, 2u);
  // Row 2 (key 3): keys in [1, 6] → positions 2..4 (keys 3, 3, 1).
  EXPECT_EQ(resolver.ResolveBase(2).begin, 2u);
  EXPECT_EQ(resolver.ResolveBase(2).end, 5u);
}

TEST(FrameResolver, RangeNullRowsFrameIsPeerGroup) {
  // NULLS LAST: keys 1 2 NULL NULL.
  FrameSpec frame;
  frame.mode = FrameMode::kRange;
  frame.begin = FrameBound::Preceding(1);
  frame.end = FrameBound::Following(1);
  FrameResolver::Inputs inputs = BaseInputs(4, frame);
  inputs.range_keys = {1, 2, 0, 0};
  inputs.range_key_valid = {1, 1, 0, 0};
  inputs.nonnull_begin = 0;
  inputs.nonnull_end = 2;
  // NULLs are peers of each other.
  inputs.peer_start = {0, 1, 2, 2};
  inputs.peer_end = {1, 2, 4, 4};
  FrameResolver resolver(std::move(inputs));
  // NULL rows: the frame is exactly the NULL peer group.
  EXPECT_EQ(resolver.ResolveBase(2).begin, 2u);
  EXPECT_EQ(resolver.ResolveBase(2).end, 4u);
  EXPECT_EQ(resolver.ResolveBase(3).begin, 2u);
  EXPECT_EQ(resolver.ResolveBase(3).end, 4u);
  // Non-NULL rows never include NULLs.
  EXPECT_EQ(resolver.ResolveBase(0).begin, 0u);
  EXPECT_EQ(resolver.ResolveBase(0).end, 2u);
}

TEST(FrameResolver, GroupsMode) {
  // Order values: 1 1 2 3 3 3 (groups: [0,2) [2,3) [3,6)).
  FrameSpec frame;
  frame.mode = FrameMode::kGroups;
  frame.begin = FrameBound::Preceding(1);
  frame.end = FrameBound::CurrentRow();
  FrameResolver::Inputs inputs = BaseInputs(6, frame);
  FillPeers(&inputs, {1, 1, 2, 3, 3, 3});
  FrameResolver resolver(std::move(inputs));
  // Row 0 (group 0): groups -1..0 → clamped to group 0 + CURRENT ROW end =
  // peer end = 2.
  EXPECT_EQ(resolver.ResolveBase(0).begin, 0u);
  EXPECT_EQ(resolver.ResolveBase(0).end, 2u);
  // Row 2 (group 1): one group preceding → positions 0..3.
  EXPECT_EQ(resolver.ResolveBase(2).begin, 0u);
  EXPECT_EQ(resolver.ResolveBase(2).end, 3u);
  // Row 4 (group 2): groups 1..2 → positions 2..6.
  EXPECT_EQ(resolver.ResolveBase(4).begin, 2u);
  EXPECT_EQ(resolver.ResolveBase(4).end, 6u);
}

TEST(FrameResolver, ExclusionCurrentRow) {
  FrameSpec frame;
  frame.begin = FrameBound::Preceding(2);
  frame.end = FrameBound::Following(2);
  frame.exclusion = FrameExclusion::kCurrentRow;
  FrameResolver resolver(BaseInputs(10, frame));
  const FrameRanges ranges = resolver.Resolve(5);
  ASSERT_EQ(ranges.count(), 2u);
  EXPECT_EQ(ranges[0].begin, 3u);
  EXPECT_EQ(ranges[0].end, 5u);
  EXPECT_EQ(ranges[1].begin, 6u);
  EXPECT_EQ(ranges[1].end, 8u);
  EXPECT_EQ(ranges.TotalRows(), 4u);
  EXPECT_FALSE(ranges.Contains(5));
  EXPECT_TRUE(ranges.Contains(4));
}

TEST(FrameResolver, ExclusionGroupAndTies) {
  // Order values: 1 2 2 2 3; current row 2 is inside the peer group [1,4).
  std::vector<int> order = {1, 2, 2, 2, 3};

  FrameSpec group_frame;
  group_frame.begin = FrameBound::UnboundedPreceding();
  group_frame.end = FrameBound::UnboundedFollowing();
  group_frame.exclusion = FrameExclusion::kGroup;
  FrameResolver::Inputs inputs = BaseInputs(5, group_frame);
  FillPeers(&inputs, order);
  FrameResolver group_resolver(std::move(inputs));
  FrameRanges group_ranges = group_resolver.Resolve(2);
  ASSERT_EQ(group_ranges.count(), 2u);
  EXPECT_EQ(group_ranges[0].begin, 0u);
  EXPECT_EQ(group_ranges[0].end, 1u);
  EXPECT_EQ(group_ranges[1].begin, 4u);
  EXPECT_EQ(group_ranges[1].end, 5u);

  FrameSpec ties_frame = group_frame;
  ties_frame.exclusion = FrameExclusion::kTies;
  inputs = BaseInputs(5, ties_frame);
  FillPeers(&inputs, order);
  FrameResolver ties_resolver(std::move(inputs));
  FrameRanges ties_ranges = ties_resolver.Resolve(2);
  // Holes [1,2) and [3,4): ranges [0,1) [2,3) [4,5).
  ASSERT_EQ(ties_ranges.count(), 3u);
  EXPECT_EQ(ties_ranges[0].begin, 0u);
  EXPECT_EQ(ties_ranges[1].begin, 2u);
  EXPECT_EQ(ties_ranges[1].end, 3u);
  EXPECT_EQ(ties_ranges[2].begin, 4u);
  EXPECT_TRUE(ties_ranges.Contains(2));  // Current row stays.
}

TEST(FrameResolver, ExclusionHoleOutsideFrame) {
  FrameSpec frame;
  frame.begin = FrameBound::Preceding(2);
  frame.end = FrameBound::Preceding(1);
  frame.exclusion = FrameExclusion::kCurrentRow;
  FrameResolver resolver(BaseInputs(10, frame));
  // The current row is not inside [i-2, i-1]; exclusion changes nothing.
  const FrameRanges ranges = resolver.Resolve(5);
  ASSERT_EQ(ranges.count(), 1u);
  EXPECT_EQ(ranges[0].begin, 3u);
  EXPECT_EQ(ranges[0].end, 5u);
}

}  // namespace
}  // namespace hwf
