#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "parallel/introsort.h"
#include "parallel/parallel_for.h"
#include "parallel/parallel_sort.h"
#include "parallel/thread_pool.h"

namespace hwf {
namespace {

TEST(ThreadPool, ZeroWorkersStillRunsViaCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  EXPECT_EQ(pool.parallelism(), 1);
  std::atomic<int> counter{0};
  ParallelForEach(
      0, 100, [&](size_t) { counter.fetch_add(1); }, pool, 7);
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, TaskGroupJoinsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 50; ++i) {
      group.Run([&counter] { counter.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(counter.load(), 50);
  }
}

TEST(ParallelFor, CoversEveryElementExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 10u, 1000u, 100000u}) {
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(
        0, n,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
        },
        pool, 137);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " n=" << n;
    }
  }
}

TEST(ParallelFor, RespectsMorselBoundaries) {
  ThreadPool pool(2);
  std::atomic<size_t> max_chunk{0};
  ParallelFor(
      0, 1000,
      [&](size_t lo, size_t hi) {
        size_t chunk = hi - lo;
        size_t prev = max_chunk.load();
        while (chunk > prev && !max_chunk.compare_exchange_weak(prev, chunk)) {
        }
      },
      pool, 64);
  EXPECT_LE(max_chunk.load(), 64u);
}

TEST(Introsort, SortsWithBothPartitionSchemes) {
  Pcg32 rng(7);
  for (PartitionScheme scheme :
       {PartitionScheme::kTwoWay, PartitionScheme::kThreeWay}) {
    for (size_t n : {0u, 1u, 2u, 25u, 1000u, 20000u}) {
      std::vector<int> data(n);
      for (auto& v : data) v = static_cast<int>(rng.Bounded(100));
      std::vector<int> expected = data;
      std::sort(expected.begin(), expected.end());
      Introsort(data.begin(), data.end(), std::less<int>(), scheme);
      EXPECT_EQ(data, expected) << "n=" << n;
    }
  }
}

TEST(Introsort, HandlesAdversarialPatterns) {
  for (PartitionScheme scheme :
       {PartitionScheme::kTwoWay, PartitionScheme::kThreeWay}) {
    // All equal (the §5.3 quadratic trigger for 2-way — must still be
    // correct, just slower).
    std::vector<int> equal(5000, 42);
    Introsort(equal.begin(), equal.end(), std::less<int>(), scheme);
    EXPECT_TRUE(std::is_sorted(equal.begin(), equal.end()));
    // Already sorted / reversed.
    std::vector<int> asc(5000);
    std::iota(asc.begin(), asc.end(), 0);
    std::vector<int> desc(asc.rbegin(), asc.rend());
    Introsort(desc.begin(), desc.end(), std::less<int>(), scheme);
    EXPECT_TRUE(std::is_sorted(desc.begin(), desc.end()));
    // Organ pipe.
    std::vector<int> pipe;
    for (int i = 0; i < 2500; ++i) pipe.push_back(i);
    for (int i = 2500; i > 0; --i) pipe.push_back(i);
    Introsort(pipe.begin(), pipe.end(), std::less<int>(), scheme);
    EXPECT_TRUE(std::is_sorted(pipe.begin(), pipe.end()));
  }
}

TEST(CoRank, MatchesSequentialMergePrefix) {
  Pcg32 rng(11);
  for (int round = 0; round < 30; ++round) {
    const size_t na = rng.Bounded(200);
    const size_t nb = rng.Bounded(200);
    std::vector<int> a(na), b(nb);
    for (auto& v : a) v = static_cast<int>(rng.Bounded(50));
    for (auto& v : b) v = static_cast<int>(rng.Bounded(50));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<int> merged(na + nb);
    MergeSequential(a.data(), na, b.data(), nb, merged.data(),
                    std::less<int>());
    for (size_t k = 0; k <= na + nb; k += 13) {
      auto [i, j] = CoRank(k, a.data(), na, b.data(), nb, std::less<int>());
      ASSERT_EQ(i + j, k);
      // Merging the prefixes must give the merged prefix exactly.
      std::vector<int> prefix(k);
      MergeSequential(a.data(), i, b.data(), j, prefix.data(),
                      std::less<int>());
      for (size_t x = 0; x < k; ++x) ASSERT_EQ(prefix[x], merged[x]);
    }
  }
}

using SortParams = std::tuple<size_t, int, size_t>;  // (n, threads, run_size)

class ParallelSortParamTest : public ::testing::TestWithParam<SortParams> {};

TEST_P(ParallelSortParamTest, MatchesStdSort) {
  const auto [n, threads, run_size] = GetParam();
  ThreadPool pool(threads);
  Pcg32 rng(n * 31 + static_cast<size_t>(threads));
  std::vector<uint64_t> data(n);
  for (auto& v : data) v = rng.Bounded(1000);
  std::vector<uint64_t> expected = data;
  std::sort(expected.begin(), expected.end());
  ParallelSort(
      data, [](uint64_t a, uint64_t b) { return a < b; }, pool, run_size);
  EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelSortParamTest,
    ::testing::Combine(::testing::Values<size_t>(0, 1, 2, 100, 1000, 65536,
                                                 100001),
                       ::testing::Values(0, 2, 5),       // threads
                       ::testing::Values<size_t>(64, 1000, 20000)));

TEST(ParallelForStatus, OkWhenEveryMorselSucceeds) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  Status status = ParallelForStatus(
      0, hits.size(),
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
        return Status::OK();
      },
      pool, 97);
  EXPECT_TRUE(status.ok());
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelForStatus, ConcurrentFailuresReportLowestMorselDeterministically) {
  // Many morsels fail with distinct messages; the reported error must always
  // be the failing morsel with the smallest start index, for every thread
  // count and across repeated runs (first-error-wins must not be a race).
  for (int threads : {0, 1, 4, 7}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 20; ++round) {
      Status status = ParallelForStatus(
          0, 100000,
          [](size_t lo, size_t) {
            if (lo >= 30000 && lo % 3 == 0) {
              return Status::Internal("fail@" + std::to_string(lo));
            }
            return Status::OK();
          },
          pool, 1000);
      ASSERT_FALSE(status.ok());
      EXPECT_EQ(status.code(), StatusCode::kInternal);
      // Lowest failing morsel start: 30000 (30000 % 3 == 0).
      EXPECT_EQ(status.message(), "fail@30000")
          << "threads=" << threads << " round=" << round;
    }
  }
}

TEST(ParallelForStatus, ErrorShortCircuitsRemainingMorsels) {
  // After the first morsel fails, later morsels must stop being claimed:
  // with an error at the very first morsel, far fewer than all morsels run.
  ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  Status status = ParallelForStatus(
      0, 1000000,
      [&](size_t lo, size_t) {
        ran.fetch_add(1);
        if (lo == 0) return Status::InvalidArgument("boom");
        return Status::OK();
      },
      pool, 100);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "boom");
  // 10000 morsels total; in-flight runners may finish a handful each, but
  // the claim loop must break well before the full range.
  EXPECT_LT(ran.load(), 10000u / 2);
}

TEST(ParallelForStatus, MorselErrorBeatsCancellation) {
  // A recorded morsel error takes precedence over the stop token's status.
  ThreadPool pool(2);
  StopSource source;
  ScopedStopToken scope(source.token());
  Status status = ParallelForStatus(
      0, 100000,
      [&](size_t lo, size_t) {
        if (lo == 0) {
          Status err = Status::Internal("real error");
          source.RequestStop();
          return err;
        }
        return Status::OK();
      },
      pool, 100);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "real error");
}

TEST(ParallelForStatus, CancellationStopsClaimingAndReturnsCancelled) {
  ThreadPool pool(4);
  StopSource source;
  ScopedStopToken scope(source.token());
  std::atomic<size_t> ran{0};
  Status status = ParallelForStatus(
      0, 1000000,
      [&](size_t, size_t) {
        if (ran.fetch_add(1) == 0) source.RequestStop();
        return Status::OK();
      },
      pool, 100);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_LT(ran.load(), 10000u / 2);
}

TEST(ParallelFor, CancellationPropagatesToNestedRegions) {
  // The ambient token installed by the caller must be observed by morsels
  // running on pool workers (ParallelFor re-installs it per runner).
  ThreadPool pool(4);
  StopSource source;
  source.RequestStop();
  ScopedStopToken scope(source.token());
  std::atomic<size_t> ran{0};
  ParallelFor(
      0, 1000000, [&](size_t, size_t) { ran.fetch_add(1); }, pool, 100);
  // Stopped before entry: nothing should run.
  EXPECT_EQ(ran.load(), 0u);
  EXPECT_EQ(CheckStop().code(), StatusCode::kCancelled);
}

TEST(StopToken, DeadlineLatchesDeadlineExceeded) {
  StopSource source;
  source.SetDeadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  StopToken token = source.token();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
  // A later cancel must not overwrite the latched deadline reason.
  source.RequestStop();
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(StopToken, DefaultTokenNeverStops) {
  StopToken token;
  EXPECT_FALSE(token.can_stop());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_TRUE(token.status().ok());
}

TEST(ParallelSort, DeterministicAcrossThreadCounts) {
  // With a strict total order, results must be bit-identical regardless of
  // parallelism.
  Pcg32 rng(5);
  std::vector<std::pair<uint32_t, uint32_t>> base(50000);
  for (size_t i = 0; i < base.size(); ++i) {
    base[i] = {rng.Bounded(100), static_cast<uint32_t>(i)};
  }
  auto less = [](const auto& a, const auto& b) { return a < b; };
  std::vector<std::pair<uint32_t, uint32_t>> serial = base;
  {
    ThreadPool pool(0);
    ParallelSort(serial, less, pool, 1024);
  }
  std::vector<std::pair<uint32_t, uint32_t>> parallel = base;
  {
    ThreadPool pool(7);
    ParallelSort(parallel, less, pool, 1024);
  }
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace hwf
