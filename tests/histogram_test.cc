// Tests for the lock-free log-bucketed latency histogram: bucket geometry,
// quantile error against an exact sorted reference, merging, and
// concurrent recording.
#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"

namespace hwf {
namespace obs {
namespace {

namespace hb = histogram_buckets;

TEST(HistogramBuckets, SmallValuesAreExact) {
  // Values below kSubBuckets get a bucket of width 1: lower == value and
  // upper == value + 1.
  for (uint64_t v = 0; v < hb::kSubBuckets; ++v) {
    const size_t index = hb::BucketIndex(v);
    EXPECT_EQ(hb::BucketLowerBound(index), v);
    EXPECT_EQ(hb::BucketUpperBound(index), v + 1);
  }
}

TEST(HistogramBuckets, BucketsContainTheirValues) {
  Pcg32 rng(7);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform draw covering every octave.
    const int bits = static_cast<int>(rng.Bounded(64));
    uint64_t value = rng.Next64();
    if (bits < 63) value >>= (63 - bits);
    const size_t index = hb::BucketIndex(value);
    ASSERT_LT(index, hb::kNumBuckets);
    EXPECT_LE(hb::BucketLowerBound(index), value);
    EXPECT_GT(hb::BucketUpperBound(index), value);
  }
}

TEST(HistogramBuckets, IndicesAreMonotone) {
  // Bucket index must never decrease as values grow: check all the octave
  // boundaries and their neighborhoods, in value order.
  std::vector<uint64_t> probes;
  for (int shift = 0; shift < 63; ++shift) {
    for (int64_t delta = -2; delta <= 2; ++delta) {
      const int64_t base = static_cast<int64_t>(1ull << shift) + delta;
      if (base >= 0) probes.push_back(static_cast<uint64_t>(base));
    }
  }
  std::sort(probes.begin(), probes.end());
  size_t last = 0;
  for (const uint64_t value : probes) {
    const size_t index = hb::BucketIndex(value);
    EXPECT_GE(index, last) << "value " << value;
    last = std::max(last, index);
  }
  EXPECT_LT(hb::BucketIndex(std::numeric_limits<uint64_t>::max()),
            hb::kNumBuckets);
}

TEST(HistogramBuckets, RelativeWidthBounded) {
  // Above the exact range, bucket width / lower bound <= 1/64: quantile
  // midpoints are within ~0.8% of any value in the bucket.
  for (size_t index = hb::kSubBuckets; index < hb::kNumBuckets; ++index) {
    const uint64_t lower = hb::BucketLowerBound(index);
    const uint64_t upper = hb::BucketUpperBound(index);
    if (upper == std::numeric_limits<uint64_t>::max()) continue;  // last
    const double relative_width =
        static_cast<double>(upper - lower) / static_cast<double>(lower);
    EXPECT_LE(relative_width, 1.0 / 64 + 1e-12) << "bucket " << index;
  }
}

TEST(LatencyHistogram, EmptySnapshot) {
  LatencyHistogram histogram;
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.sum, 0u);
  EXPECT_EQ(snapshot.Quantile(0.5), 0.0);
  EXPECT_EQ(snapshot.Mean(), 0.0);
  EXPECT_EQ(histogram.Count(), 0u);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram histogram;
  histogram.Record(42);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_EQ(snapshot.sum, 42u);
  // 42 < 64 lands in a width-1 bucket: every quantile is exact.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 42.0);
}

TEST(LatencyHistogram, QuantilesTrackSortedReference) {
  // Compare every interesting quantile against the exact value from a
  // sorted copy; the histogram must be within the bucket's relative width.
  Pcg32 rng(99);
  LatencyHistogram histogram;
  std::vector<uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    // Mix of magnitudes: microsecond-ish latencies with a heavy tail.
    uint64_t v = 1 + rng.Bounded(1000);
    if (rng.Bounded(10) == 0) v *= 1000;
    if (rng.Bounded(100) == 0) v *= 50000;
    values.push_back(v);
    histogram.Record(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.count, values.size());
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(q * static_cast<double>(values.size()))));
    const double exact = static_cast<double>(values[rank - 1]);
    const double estimate = snapshot.Quantile(q);
    EXPECT_NEAR(estimate, exact, exact / 64.0 + 0.5)
        << "quantile " << q;
  }
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  Pcg32 rng(5);
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Bounded(1u << 20);
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const HistogramSnapshot expected = combined.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.buckets, expected.buckets);
}

TEST(LatencyHistogram, OverflowValuesLandInLastBuckets) {
  LatencyHistogram histogram;
  histogram.Record(std::numeric_limits<uint64_t>::max());
  histogram.Record(std::numeric_limits<uint64_t>::max() - 1);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 2u);
  EXPECT_GT(snapshot.Quantile(1.0), 1e18);
}

TEST(LatencyHistogram, ConcurrentRecordersLoseNothing) {
  // N threads hammer one histogram; relaxed atomics must still account
  // for every single record in both count and sum.
  LatencyHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  std::vector<uint64_t> thread_sums(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, &thread_sums, t] {
      Pcg32 rng(static_cast<uint64_t>(t) + 1);
      uint64_t sum = 0;
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t v = rng.Bounded(1u << 16);
        histogram.Record(v);
        sum += v;
      }
      thread_sums[static_cast<size_t>(t)] = sum;
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t expected_sum = 0;
  for (const uint64_t s : thread_sums) expected_sum += s;
  EXPECT_EQ(snapshot.sum, expected_sum);
}

TEST(LatencyHistogram, SnapshotDuringConcurrentRecordingIsSane) {
  // Snapshots race with recorders by design; they must still be internally
  // consistent (count == sum of buckets) and monotone over time.
  LatencyHistogram histogram;
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    Pcg32 rng(3);
    while (!stop.load(std::memory_order_relaxed)) {
      histogram.Record(rng.Bounded(1000));
    }
  });
  uint64_t last_count = 0;
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot snapshot = histogram.Snapshot();
    uint64_t bucket_total = 0;
    for (const uint64_t b : snapshot.buckets) bucket_total += b;
    EXPECT_EQ(snapshot.count, bucket_total);
    EXPECT_GE(snapshot.count, last_count);
    last_count = snapshot.count;
  }
  stop.store(true, std::memory_order_relaxed);
  recorder.join();
}

}  // namespace
}  // namespace obs
}  // namespace hwf
