// Tests for the preprocessing steps: Algorithm 1 (previous-occurrence
// indices), permutation arrays, dense/unique codes, and index remapping.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "mst/permutation.h"
#include "mst/prev_index.h"
#include "mst/remap.h"

namespace hwf {
namespace {

TEST(PrevIndex, PaperFigure1Example) {
  // Figure 1: values a b b c a b c a → prevIdcs - - 1 - 0 2 3 4 (0-based),
  // encoded +1 with 0 for "-".
  std::vector<uint64_t> codes = {'a', 'b', 'b', 'c', 'a', 'b', 'c', 'a'};
  std::vector<uint32_t> prev = ComputePrevIndices<uint32_t>(codes);
  std::vector<uint32_t> expected = {0, 0, 2, 0, 1, 3, 4, 5};
  EXPECT_EQ(prev, expected);
}

TEST(PrevIndex, DistinctCountViaBackreferences) {
  // The key insight of §4.2: distinct count in [a, b) equals the number of
  // encoded prevIdcs < a + 1 within that range.
  std::vector<uint64_t> codes = {'a', 'b', 'b', 'c', 'a', 'b', 'c', 'a'};
  std::vector<uint32_t> prev = ComputePrevIndices<uint32_t>(codes);
  // Frame = last 5 values [3, 8): distinct = {c, a, b} = 3.
  size_t count = 0;
  for (size_t i = 3; i < 8; ++i) {
    if (prev[i] < 3 + 1) ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(PrevIndex, AllDistinctAndAllEqual) {
  std::vector<uint64_t> distinct = {10, 20, 30, 40};
  EXPECT_EQ(ComputePrevIndices<uint32_t>(distinct),
            (std::vector<uint32_t>{0, 0, 0, 0}));
  std::vector<uint64_t> equal = {7, 7, 7, 7};
  EXPECT_EQ(ComputePrevIndices<uint32_t>(equal),
            (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(PrevIndex, RandomizedAgainstBruteForce) {
  Pcg32 rng(404);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 1 + rng.Bounded(500);
    std::vector<uint64_t> codes(n);
    for (auto& c : codes) c = rng.Bounded(20);
    std::vector<uint64_t> prev = ComputePrevIndices<uint64_t>(codes);
    std::vector<uint32_t> next = ComputeNextIndices<uint32_t>(codes);
    for (size_t i = 0; i < n; ++i) {
      uint64_t expected_prev = 0;
      for (size_t j = i; j > 0; --j) {
        if (codes[j - 1] == codes[i]) {
          expected_prev = j;  // Encoded: position j-1, plus one.
          break;
        }
      }
      EXPECT_EQ(prev[i], expected_prev) << i;
      uint32_t expected_next = static_cast<uint32_t>(n);
      for (size_t j = i + 1; j < n; ++j) {
        if (codes[j] == codes[i]) {
          expected_next = static_cast<uint32_t>(j);
          break;
        }
      }
      EXPECT_EQ(next[i], expected_next) << i;
    }
  }
}

TEST(Permutation, SortsByComparatorWithPositionTiebreak) {
  std::vector<int> values = {30, 10, 30, 20, 10};
  auto less = [&](size_t a, size_t b) { return values[a] < values[b]; };
  std::vector<uint32_t> perm = ComputePermutation<uint32_t>(5, less);
  EXPECT_EQ(perm, (std::vector<uint32_t>{1, 4, 3, 0, 2}));
}

TEST(Permutation, DenseCodesSharePeers) {
  std::vector<int> values = {30, 10, 30, 20, 10};
  auto less = [&](size_t a, size_t b) { return values[a] < values[b]; };
  size_t num_distinct = 0;
  std::vector<uint32_t> codes =
      ComputeDenseCodes<uint32_t>(5, less, &num_distinct);
  EXPECT_EQ(num_distinct, 3u);
  EXPECT_EQ(codes, (std::vector<uint32_t>{2, 0, 2, 1, 0}));
}

TEST(Permutation, UniqueCodesAreAPermutation) {
  std::vector<int> values = {30, 10, 30, 20, 10};
  auto less = [&](size_t a, size_t b) { return values[a] < values[b]; };
  std::vector<uint32_t> codes = ComputeUniqueCodes<uint32_t>(5, less);
  EXPECT_EQ(codes, (std::vector<uint32_t>{3, 0, 4, 2, 1}));
  std::vector<uint32_t> sorted = codes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Permutation, EmptyInput) {
  auto less = [](size_t, size_t) { return false; };
  EXPECT_TRUE(ComputePermutation<uint32_t>(0, less).empty());
  size_t num_distinct = 7;
  EXPECT_TRUE(ComputeDenseCodes<uint32_t>(0, less, &num_distinct).empty());
  EXPECT_EQ(num_distinct, 0u);
}

TEST(IndexRemap, BasicMapping) {
  std::vector<uint8_t> include = {1, 0, 0, 1, 1, 0, 1};
  IndexRemap remap = IndexRemap::Build(include);
  EXPECT_EQ(remap.num_surviving(), 4u);
  EXPECT_EQ(remap.num_original(), 7u);
  EXPECT_TRUE(remap.Included(0));
  EXPECT_FALSE(remap.Included(1));
  EXPECT_EQ(remap.ToFiltered(0), 0u);
  EXPECT_EQ(remap.ToFiltered(3), 1u);
  EXPECT_EQ(remap.ToFiltered(7), 4u);  // One past the end is valid.
  EXPECT_EQ(remap.ToOriginal(0), 0u);
  EXPECT_EQ(remap.ToOriginal(1), 3u);
  EXPECT_EQ(remap.ToOriginal(2), 4u);
  EXPECT_EQ(remap.ToOriginal(3), 6u);
}

TEST(IndexRemap, Identity) {
  IndexRemap remap = IndexRemap::Identity(10);
  EXPECT_TRUE(remap.is_identity());
  EXPECT_EQ(remap.num_surviving(), 10u);
  EXPECT_EQ(remap.ToFiltered(5), 5u);
  EXPECT_EQ(remap.ToOriginal(5), 5u);
  EXPECT_TRUE(remap.Included(9));
}

TEST(IndexRemap, RoundTrip) {
  Pcg32 rng(17);
  std::vector<uint8_t> include(200);
  for (auto& b : include) b = rng.Bounded(2);
  IndexRemap remap = IndexRemap::Build(include);
  for (size_t j = 0; j < remap.num_surviving(); ++j) {
    const size_t orig = remap.ToOriginal(j);
    EXPECT_TRUE(remap.Included(orig));
    EXPECT_EQ(remap.ToFiltered(orig), j);
  }
}

}  // namespace
}  // namespace hwf
