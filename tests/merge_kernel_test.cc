// Differential tests of the loser-tree merge kernel (loser_tree.h) against
// the reference binary-heap kernel (internal_mst::MergeRunHeap): output
// runs, payload permutations and cascading pointers must be byte-identical
// across fanouts, sampling intervals, chunked merging and duplicate-heavy
// key distributions — this is the stability/tie-break invariant the merge
// sort tree build relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "mst/loser_tree.h"
#include "mst/merge_sort_tree.h"
#include "parallel/parallel_sort.h"
#include "parallel/thread_pool.h"

namespace hwf {
namespace {

struct RunSet {
  std::vector<std::vector<uint32_t>> keys;
  std::vector<std::vector<uint64_t>> payloads;
  std::vector<const uint32_t*> key_ptrs;
  std::vector<const uint64_t*> payload_ptrs;
  std::vector<size_t> lens;
  size_t total = 0;
};

/// Builds `num_children` sorted runs with keys drawn from [0, key_range)
/// (small ranges ⇒ heavy duplicates). Payload encodes (child, offset) so a
/// wrong tie-break is always visible.
RunSet MakeRuns(Pcg32& rng, size_t num_children, uint32_t key_range,
                size_t max_len, bool allow_empty) {
  RunSet runs;
  runs.keys.resize(num_children);
  runs.payloads.resize(num_children);
  for (size_t c = 0; c < num_children; ++c) {
    const size_t len =
        allow_empty ? rng.Bounded(static_cast<uint32_t>(max_len + 1))
                    : 1 + rng.Bounded(static_cast<uint32_t>(max_len));
    runs.keys[c].resize(len);
    for (auto& k : runs.keys[c]) k = rng.Bounded(key_range);
    std::sort(runs.keys[c].begin(), runs.keys[c].end());
    runs.payloads[c].resize(len);
    for (size_t i = 0; i < len; ++i) {
      runs.payloads[c][i] = (static_cast<uint64_t>(c) << 32) | i;
    }
    runs.total += len;
  }
  for (size_t c = 0; c < num_children; ++c) {
    runs.key_ptrs.push_back(runs.keys[c].data());
    runs.payload_ptrs.push_back(runs.payloads[c].data());
    runs.lens.push_back(runs.keys[c].size());
  }
  return runs;
}

struct MergeResult {
  std::vector<uint32_t> out;
  std::vector<uint64_t> out_payload;
  std::vector<uint32_t> cascade;
};

template <bool kHasPayload>
MergeResult RunKernel(const RunSet& runs, MergeKernel kernel, size_t sampling,
                      size_t fanout, bool with_cascade, size_t out_offset,
                      const size_t* start_offsets, size_t out_len) {
  MergeResult result;
  result.out.assign(runs.total, 0xdeadbeef);
  result.out_payload.assign(kHasPayload ? runs.total : 0, ~uint64_t{0});
  const size_t num_samples =
      runs.total == 0 ? 1 : (runs.total - 1) / sampling + 1;
  result.cascade.assign(with_cascade ? num_samples * fanout : 0, 0xabababu);
  uint32_t* cascade_out = with_cascade ? result.cascade.data() : nullptr;
  if (kernel == MergeKernel::kHeap) {
    internal_mst::MergeRunHeap<uint32_t, uint64_t, kHasPayload>(
        runs.key_ptrs.data(), runs.lens.data(), runs.key_ptrs.size(),
        result.out.data(), out_len, cascade_out, sampling, fanout,
        runs.payload_ptrs.data(),
        kHasPayload ? result.out_payload.data() : nullptr, out_offset,
        start_offsets);
  } else {
    MergeScratch<uint32_t, uint64_t> scratch;
    internal_mst::MergeRunLoserTree<uint32_t, uint64_t, kHasPayload>(
        scratch, runs.key_ptrs.data(), runs.lens.data(), runs.key_ptrs.size(),
        result.out.data(), out_len, cascade_out, sampling, fanout,
        runs.payload_ptrs.data(),
        kHasPayload ? result.out_payload.data() : nullptr, out_offset,
        start_offsets);
  }
  return result;
}

template <bool kHasPayload>
void CheckWholeRunEquivalence(bool with_cascade) {
  Pcg32 rng(kHasPayload ? 101 : 202);
  for (size_t fanout : {2u, 3u, 5u, 32u}) {
    for (size_t sampling : {1u, 3u, 32u}) {
      for (int round = 0; round < 8; ++round) {
        const size_t num_children = 1 + rng.Bounded(static_cast<uint32_t>(fanout));
        // Key ranges from 3 (nearly all duplicates) to large.
        const uint32_t key_range = round % 2 == 0 ? 3 + rng.Bounded(10)
                                                  : 1 + rng.Bounded(1 << 20);
        RunSet runs =
            MakeRuns(rng, num_children, key_range, 200, /*allow_empty=*/true);
        if (runs.total == 0) continue;
        MergeResult heap = RunKernel<kHasPayload>(
            runs, MergeKernel::kHeap, sampling, fanout, with_cascade, 0,
            nullptr, runs.total);
        MergeResult loser = RunKernel<kHasPayload>(
            runs, MergeKernel::kLoserTree, sampling, fanout, with_cascade, 0,
            nullptr, runs.total);
        ASSERT_EQ(heap.out, loser.out)
            << "fanout=" << fanout << " sampling=" << sampling
            << " children=" << num_children;
        ASSERT_EQ(heap.out_payload, loser.out_payload)
            << "fanout=" << fanout << " sampling=" << sampling;
        ASSERT_EQ(heap.cascade, loser.cascade)
            << "fanout=" << fanout << " sampling=" << sampling;
      }
    }
  }
}

TEST(MergeKernel, LoserMatchesHeapKeysOnly) {
  CheckWholeRunEquivalence<false>(/*with_cascade=*/false);
}

TEST(MergeKernel, LoserMatchesHeapKeysOnlyWithCascade) {
  CheckWholeRunEquivalence<false>(/*with_cascade=*/true);
}

TEST(MergeKernel, LoserMatchesHeapWithPayload) {
  CheckWholeRunEquivalence<true>(/*with_cascade=*/false);
}

TEST(MergeKernel, LoserMatchesHeapWithPayloadAndCascade) {
  CheckWholeRunEquivalence<true>(/*with_cascade=*/true);
}

/// Chunked merging (§5.2 upper-level strategy): splitting the output at
/// arbitrary ranks via MultiwaySelect and merging each chunk with either
/// kernel must reassemble to exactly the whole-run merge, including the
/// cascade samples that land inside each chunk.
TEST(MergeKernel, ChunkedMergeMatchesWholeRun) {
  Pcg32 rng(303);
  for (size_t fanout : {3u, 5u, 32u}) {
    for (size_t sampling : {1u, 3u, 32u}) {
      for (int round = 0; round < 6; ++round) {
        const size_t num_children =
            1 + rng.Bounded(static_cast<uint32_t>(fanout));
        RunSet runs = MakeRuns(rng, num_children, 17, 150,
                               /*allow_empty=*/false);
        MergeResult whole = RunKernel<true>(runs, MergeKernel::kHeap, sampling,
                                            fanout, /*with_cascade=*/true, 0,
                                            nullptr, runs.total);
        // Split into 1..5 chunks at random ranks.
        const size_t num_chunks = 1 + rng.Bounded(5);
        std::vector<size_t> cuts{0, runs.total};
        for (size_t i = 1; i < num_chunks; ++i) {
          cuts.push_back(rng.Bounded(static_cast<uint32_t>(runs.total + 1)));
        }
        std::sort(cuts.begin(), cuts.end());
        MergeResult chunked;
        chunked.out.assign(runs.total, 0xdeadbeef);
        chunked.out_payload.assign(runs.total, ~uint64_t{0});
        const size_t num_samples = (runs.total - 1) / sampling + 1;
        chunked.cascade.assign(num_samples * fanout, 0xabababu);
        MergeScratch<uint32_t, uint64_t> scratch;
        for (size_t i = 0; i + 1 < cuts.size(); ++i) {
          const size_t k0 = cuts[i];
          const size_t k1 = cuts[i + 1];
          if (k0 >= k1) continue;
          std::vector<size_t> offsets(num_children);
          internal_mst::MultiwaySelect<uint32_t>(runs.key_ptrs.data(),
                                                 runs.lens.data(), num_children,
                                                 k0, offsets.data());
          internal_mst::MergeRunLoserTree<uint32_t, uint64_t, true>(
              scratch, runs.key_ptrs.data(), runs.lens.data(), num_children,
              chunked.out.data(), k1 - k0, chunked.cascade.data(), sampling,
              fanout, runs.payload_ptrs.data(), chunked.out_payload.data(), k0,
              offsets.data());
        }
        ASSERT_EQ(whole.out, chunked.out)
            << "fanout=" << fanout << " sampling=" << sampling;
        ASSERT_EQ(whole.out_payload, chunked.out_payload);
        ASSERT_EQ(whole.cascade, chunked.cascade);
      }
    }
  }
}

/// Full-tree differential check: a build with the loser-tree kernel must
/// produce level data bit-identical to the heap-kernel build (and answer
/// queries identically — this exercises the cascade pointers end to end).
TEST(MergeKernel, TreeBuildsIdenticalAcrossKernels) {
  ThreadPool pool(3);
  Pcg32 rng(404);
  for (size_t n : {1u, 2u, 37u, 1000u, 20000u}) {
    for (size_t fanout : {2u, 5u, 32u}) {
      for (size_t sampling : {1u, 32u}) {
        std::vector<uint32_t> keys(n);
        for (auto& k : keys) k = rng.Bounded(static_cast<uint32_t>(n / 2 + 1));
        MergeSortTreeOptions heap_opts;
        heap_opts.fanout = fanout;
        heap_opts.sampling = sampling;
        heap_opts.kernel = MergeKernel::kHeap;
        MergeSortTreeOptions loser_opts = heap_opts;
        loser_opts.kernel = MergeKernel::kLoserTree;
        auto heap_tree = MergeSortTree<uint32_t>::Build(keys, heap_opts, pool);
        auto loser_tree =
            MergeSortTree<uint32_t>::Build(keys, loser_opts, pool);
        ASSERT_EQ(heap_tree.num_levels(), loser_tree.num_levels());
        for (size_t level = 0; level < heap_tree.num_levels(); ++level) {
          ASSERT_EQ(heap_tree.level_data(level), loser_tree.level_data(level))
              << "n=" << n << " fanout=" << fanout << " sampling=" << sampling
              << " level=" << level;
        }
        for (int q = 0; q < 50; ++q) {
          size_t lo = rng.Bounded(static_cast<uint32_t>(n + 1));
          size_t hi = rng.Bounded(static_cast<uint32_t>(n + 1));
          if (lo > hi) std::swap(lo, hi);
          const uint32_t t = rng.Bounded(static_cast<uint32_t>(n / 2 + 2));
          ASSERT_EQ(heap_tree.CountLess(lo, hi, t),
                    loser_tree.CountLess(lo, hi, t));
        }
      }
    }
  }
}

/// MultiwaySelectGeneric (the parallel sort's chunk splitter) against a
/// reference stable merge, under heavy ties.
TEST(MergeKernel, MultiwaySelectGenericMatchesStableMerge) {
  Pcg32 rng(505);
  for (int round = 0; round < 30; ++round) {
    const size_t m = 1 + rng.Bounded(8);
    std::vector<std::vector<uint32_t>> runs(m);
    std::vector<const uint32_t*> data(m);
    std::vector<size_t> lens(m);
    size_t total = 0;
    for (size_t c = 0; c < m; ++c) {
      runs[c].resize(rng.Bounded(120));
      for (auto& v : runs[c]) v = rng.Bounded(25);
      std::sort(runs[c].begin(), runs[c].end());
      data[c] = runs[c].data();
      lens[c] = runs[c].size();
      total += lens[c];
    }
    std::vector<std::pair<uint32_t, size_t>> merged;
    for (size_t c = 0; c < m; ++c) {
      for (uint32_t v : runs[c]) merged.push_back({v, c});
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const auto& a, const auto& b) {
                       if (a.first != b.first) return a.first < b.first;
                       return a.second < b.second;
                     });
    for (size_t k = 0; k <= total; k += 1 + rng.Bounded(13)) {
      std::vector<size_t> offsets(m);
      MultiwaySelectGeneric(data.data(), lens.data(), m, k,
                            std::less<uint32_t>(), offsets.data());
      std::vector<size_t> expected(m, 0);
      for (size_t i = 0; i < k; ++i) ++expected[merged[i].second];
      ASSERT_EQ(offsets, expected) << "k=" << k << " m=" << m;
    }
  }
}

/// The ported multiway merge phase of ParallelSort must still agree with
/// std::stable_sort semantics at every run size, including weak orders.
TEST(MergeKernel, ParallelSortMultiwayPhaseMatchesStableSort) {
  ThreadPool pool(4);
  Pcg32 rng(606);
  for (size_t n : {100u, 5000u, 200000u}) {
    for (size_t run_size : {64u, 1024u}) {
      std::vector<uint32_t> values(n);
      for (auto& v : values) v = rng.Next();
      // Strict total order on (value) since values are unique enough; use
      // index pairs to make it total regardless.
      std::vector<std::pair<uint32_t, uint32_t>> data(n);
      for (size_t i = 0; i < n; ++i) {
        data[i] = {values[i] % 97, static_cast<uint32_t>(i)};  // Heavy ties.
      }
      auto expected = data;
      std::sort(expected.begin(), expected.end());
      ParallelSort(
          data, [](const auto& a, const auto& b) { return a < b; }, pool,
          run_size);
      ASSERT_EQ(data, expected) << "n=" << n << " run_size=" << run_size;
    }
  }
}

}  // namespace
}  // namespace hwf
