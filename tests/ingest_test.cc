// Tests for the streaming-ingest subsystem: delta-table buffering, catalog
// version-counter semantics, the merged main+delta probe path, background
// compaction, dead-epoch cache GC and concurrent mutation safety. The
// load-bearing property throughout is bit-identity: a query over a table
// grown by APPEND/UPSERT must return exactly the bytes a cold re-register
// of the combined rows would.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "ingest/delta_table.h"
#include "obs/counters.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "service/catalog.h"
#include "service/service.h"
#include "service/sql_parser.h"
#include "tests/window_test_util.h"
#include "window/executor.h"

namespace hwf {
namespace {

using ingest::DeltaTable;
using ingest::UpsertStats;
using service::Catalog;
using service::PlannedQuery;
using service::PlanQuery;
using service::QueryResult;
using service::QueryService;
using service::ServiceOptions;

// This suite asserts on cache behavior (probe-only warm queries, merged
// cursors); the forced-spill CI job's HWF_TEST_MEMORY_LIMIT would act as a
// per-query budget, which by design disables cross-query caching. The
// forced-spill differential below opts back into a budget explicitly.
const bool g_env_cleared = [] {
  unsetenv("HWF_TEST_MEMORY_LIMIT");
  return true;
}();

/// Exact equality, doubles bit-for-bit: the ingest path claims determinism
/// against a cold rebuild, not approximation.
void ExpectBitIdentical(const Column& actual, const Column& expected,
                        const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  ASSERT_EQ(actual.type(), expected.type()) << context;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_EQ(actual.IsNull(i), expected.IsNull(i)) << context << " row " << i;
    if (actual.IsNull(i)) continue;
    switch (actual.type()) {
      case DataType::kInt64:
        ASSERT_EQ(actual.GetInt64(i), expected.GetInt64(i))
            << context << " row " << i;
        break;
      case DataType::kDouble:
        ASSERT_EQ(actual.GetDouble(i), expected.GetDouble(i))
            << context << " row " << i;
        break;
      case DataType::kString:
        ASSERT_EQ(actual.GetString(i), expected.GetString(i))
            << context << " row " << i;
        break;
    }
  }
}

void AppendValue(Column* dst, const Column& src, size_t row) {
  if (src.IsNull(row)) {
    dst->AppendNull();
    return;
  }
  switch (src.type()) {
    case DataType::kInt64:
      dst->AppendInt64(src.GetInt64(row));
      break;
    case DataType::kDouble:
      dst->AppendDouble(src.GetDouble(row));
      break;
    case DataType::kString:
      dst->AppendString(src.GetString(row));
      break;
  }
}

/// The rows of `a` followed by the rows of `b` — the cold-rebuild reference
/// for an append.
Table Concat(const Table& a, const Table& b) {
  Table out;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    Column column(a.column(c).type());
    for (size_t r = 0; r < a.num_rows(); ++r) {
      AppendValue(&column, a.column(c), r);
    }
    for (size_t r = 0; r < b.num_rows(); ++r) {
      AppendValue(&column, b.column(c), r);
    }
    out.AddColumn(a.column_name(c), std::move(column));
  }
  return out;
}

Table CopyTable(const Table& a) {
  Table empty;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    empty.AddColumn(a.column_name(c), Column(a.column(c).type()));
  }
  return Concat(a, empty);
}

/// Serial reference evaluation of single-group SQL against `table`.
Column SerialReference(const std::string& sql, const Table& table) {
  StatusOr<PlannedQuery> plan = PlanQuery(sql, table);
  EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
  ThreadPool serial(-1);
  StatusOr<std::vector<Column>> direct = EvaluateWindowFunctions(
      table, plan->groups[0].spec, plan->groups[0].calls, {}, serial);
  EXPECT_TRUE(direct.ok()) << sql << ": " << direct.status().ToString();
  return std::move((*direct)[0]);
}

/// A small keyed table: unique int64 key `k`, payload `v`.
Table MakeKeyed(const std::vector<int64_t>& keys,
                const std::vector<int64_t>& values) {
  Column k(DataType::kInt64);
  Column v(DataType::kInt64);
  for (size_t i = 0; i < keys.size(); ++i) {
    k.AppendInt64(keys[i]);
    v.AppendInt64(values[i]);
  }
  Table t;
  t.AddColumn("k", std::move(k));
  t.AddColumn("v", std::move(v));
  return t;
}

// ---------------------------------------------------------------------------
// DeltaTable: buffering, coercion, keyed upsert
// ---------------------------------------------------------------------------

TEST(DeltaTable, AppendBuffersAndMaterializeCombines) {
  auto base = std::make_shared<const Table>(MakeKeyed({1, 2, 3}, {10, 20, 30}));
  DeltaTable delta(base, DeltaTable::kNoKeyColumn);
  EXPECT_TRUE(delta.empty());
  ASSERT_TRUE(delta.Append(MakeKeyed({4, 5}, {40, 50})).ok());
  EXPECT_EQ(delta.base_rows(), 3u);
  EXPECT_EQ(delta.delta_rows(), 2u);
  EXPECT_FALSE(delta.empty());

  StatusOr<std::shared_ptr<const Table>> combined = delta.Materialize();
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  ASSERT_EQ((*combined)->num_rows(), 5u);
  const Column& k = (*combined)->column(0);
  const Column& v = (*combined)->column(1);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(k.GetInt64(i), static_cast<int64_t>(i + 1));
    EXPECT_EQ(v.GetInt64(i), static_cast<int64_t>(10 * (i + 1)));
  }
}

TEST(DeltaTable, AppendEnforcesSchemaAndCoercesIntIntoDouble) {
  Table base_t;
  {
    Column a(DataType::kInt64);
    a.AppendInt64(1);
    Column b(DataType::kDouble);
    b.AppendDouble(0.5);
    base_t.AddColumn("a", std::move(a));
    base_t.AddColumn("b", std::move(b));
  }
  DeltaTable delta(std::make_shared<const Table>(std::move(base_t)),
                   DeltaTable::kNoKeyColumn);

  // CSV inference reads "2" as int64; it must coerce into the double
  // column rather than be rejected.
  Table coercible;
  {
    Column a(DataType::kInt64);
    a.AppendInt64(2);
    Column b(DataType::kInt64);
    b.AppendInt64(3);
    coercible.AddColumn("a", std::move(a));
    coercible.AddColumn("b", std::move(b));
  }
  ASSERT_TRUE(delta.Append(coercible).ok());
  StatusOr<std::shared_ptr<const Table>> combined = delta.Materialize();
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ((*combined)->column(1).type(), DataType::kDouble);
  EXPECT_EQ((*combined)->column(1).GetDouble(1), 3.0);

  // Missing column and type mismatch the other way are both rejected.
  Table missing;
  {
    Column a(DataType::kInt64);
    a.AppendInt64(9);
    missing.AddColumn("a", std::move(a));
  }
  EXPECT_FALSE(delta.Append(missing).ok());
  Table wrong_type;
  {
    Column a(DataType::kString);
    a.AppendString("x");
    Column b(DataType::kDouble);
    b.AppendDouble(1.0);
    wrong_type.AddColumn("a", std::move(a));
    wrong_type.AddColumn("b", std::move(b));
  }
  EXPECT_FALSE(delta.Append(wrong_type).ok());
}

TEST(DeltaTable, UpsertRewritesBaseAndDeltaRowsInPlace) {
  auto base = std::make_shared<const Table>(MakeKeyed({1, 2, 3}, {10, 20, 30}));
  DeltaTable delta(base, /*key_column=*/0);

  // Key 2 exists in the base (in-place rewrite), key 4 is new (append).
  StatusOr<UpsertStats> first = delta.Upsert(MakeKeyed({2, 4}, {99, 40}));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->appended, 1u);
  EXPECT_EQ(first->updated_base, 1u);
  EXPECT_EQ(first->updated_delta, 0u);
  EXPECT_TRUE(first->rewrote_existing());

  // Key 4 now lives in the delta; rewriting it must not grow the table.
  StatusOr<UpsertStats> second = delta.Upsert(MakeKeyed({4}, {44}));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->appended, 0u);
  EXPECT_EQ(second->updated_delta, 1u);
  EXPECT_FALSE(second->rewrote_existing() &&
               second->updated_base > 0);  // delta rewrite only

  StatusOr<std::shared_ptr<const Table>> combined = delta.Materialize();
  ASSERT_TRUE(combined.ok());
  ASSERT_EQ((*combined)->num_rows(), 4u);
  const Column& v = (*combined)->column(1);
  EXPECT_EQ(v.GetInt64(0), 10);
  EXPECT_EQ(v.GetInt64(1), 99);  // base override applied at materialization
  EXPECT_EQ(v.GetInt64(2), 30);
  EXPECT_EQ(v.GetInt64(3), 44);  // delta row rewritten directly
}

TEST(DeltaTable, UpsertRequiresKeyAndRejectsNullKeys) {
  auto base = std::make_shared<const Table>(MakeKeyed({1}, {10}));
  DeltaTable unkeyed(base, DeltaTable::kNoKeyColumn);
  EXPECT_FALSE(unkeyed.Upsert(MakeKeyed({1}, {11})).ok());

  DeltaTable keyed(base, /*key_column=*/0);
  Table null_key;
  {
    Column k(DataType::kInt64);
    k.AppendNull();
    Column v(DataType::kInt64);
    v.AppendInt64(5);
    null_key.AddColumn("k", std::move(k));
    null_key.AddColumn("v", std::move(v));
  }
  EXPECT_FALSE(keyed.Upsert(null_key).ok());
}

// ---------------------------------------------------------------------------
// Catalog: version-counter semantics across append / upsert / compact
// ---------------------------------------------------------------------------

TEST(CatalogVersioning, AppendBumpsMinorOnlyUpsertBumpsGenCompactNeither) {
  Catalog catalog;
  StatusOr<uint64_t> epoch =
      catalog.RegisterTable("t", MakeKeyed({1, 2, 3}, {10, 20, 30}), "k");
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

  StatusOr<Catalog::TableMeta> m0 = catalog.PeekMeta("t");
  ASSERT_TRUE(m0.ok());
  EXPECT_EQ(m0->epoch, *epoch);
  EXPECT_EQ(m0->minor, 0u);
  EXPECT_EQ(m0->gen, 0u);
  EXPECT_EQ(m0->key_column, "k");

  // Append: minor bumps; epoch and gen (cache identity) do not.
  StatusOr<Catalog::TableMeta> a = catalog.AppendRows("t", MakeKeyed({4}, {40}));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->epoch, *epoch);
  EXPECT_EQ(a->minor, 1u);
  EXPECT_EQ(a->gen, 0u);
  EXPECT_EQ(a->base_rows, 3u);
  EXPECT_EQ(a->delta_rows, 1u);

  // Upsert of only-new keys is an append in disguise: gen still 0.
  StatusOr<Catalog::TableMeta> u1 = catalog.UpsertRows("t", MakeKeyed({5}, {50}));
  ASSERT_TRUE(u1.ok());
  EXPECT_EQ(u1->gen, 0u);
  EXPECT_EQ(u1->minor, 2u);

  // Upsert hitting a live row rewrites id 1's value: gen must bump.
  StatusOr<Catalog::TableMeta> u2 = catalog.UpsertRows("t", MakeKeyed({2}, {99}));
  ASSERT_TRUE(u2.ok());
  EXPECT_EQ(u2->gen, 1u);
  EXPECT_EQ(u2->minor, 3u);

  // Compaction folds the delta: row ids, epoch, gen all unchanged — it is
  // observationally a no-op, so cached artifacts stay servable.
  StatusOr<Catalog::Snapshot> before = catalog.Lookup("t");
  ASSERT_TRUE(before.ok());
  StatusOr<Catalog::TableMeta> c = catalog.Compact("t");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->epoch, *epoch);
  EXPECT_EQ(c->gen, 1u);
  EXPECT_EQ(c->minor, 4u);
  EXPECT_EQ(c->base_rows, 5u);
  EXPECT_EQ(c->delta_rows, 0u);
  StatusOr<Catalog::Snapshot> after = catalog.Lookup("t");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->table->num_rows(), before->table->num_rows());
  for (size_t col = 0; col < before->table->num_columns(); ++col) {
    ExpectBitIdentical(after->table->column(col), before->table->column(col),
                       "compaction col " + std::to_string(col));
  }

  // Re-registration mints a fresh epoch and resets the other counters.
  uint64_t epoch2 = catalog.RegisterTable("t", MakeKeyed({7}, {70}));
  EXPECT_GT(epoch2, *epoch);
  StatusOr<Catalog::TableMeta> m2 = catalog.PeekMeta("t");
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->minor, 0u);
  EXPECT_EQ(m2->gen, 0u);
}

TEST(CatalogVersioning, LiveEpochsTracksRegistrations) {
  Catalog catalog;
  catalog.RegisterTable("a", MakeKeyed({1}, {1}));
  uint64_t old_b = catalog.RegisterTable("b", MakeKeyed({2}, {2}));
  uint64_t new_b = catalog.RegisterTable("b", MakeKeyed({3}, {3}));
  std::vector<uint64_t> live = catalog.LiveEpochs();
  EXPECT_EQ(live.size(), 2u);
  EXPECT_TRUE(std::find(live.begin(), live.end(), new_b) != live.end());
  EXPECT_TRUE(std::find(live.begin(), live.end(), old_b) == live.end());
  EXPECT_FALSE(catalog.AppendRows("missing", MakeKeyed({1}, {1})).ok());
  EXPECT_FALSE(catalog.UpsertRows("a", MakeKeyed({1}, {9})).ok())
      << "upsert without a declared key column must be rejected";
}

// ---------------------------------------------------------------------------
// Service differential: append + query vs cold re-register, bit-identical
// ---------------------------------------------------------------------------

/// Frames and functions chosen to cover the probe paths that consult the
/// delta: holistic selection (percentile/median — the merged two-tree
/// cursor), distinct aggregation, ranking and plain sums, across ROWS /
/// GROUPS / RANGE frames, partitioned and global, with exclusions.
const std::vector<std::string> kDifferentialSql = {
    "select percentile_disc(0.5 order by val) over (order by ord rows "
    "between 200 preceding and current row) from t",
    "select percentile_cont(0.25 order by price) over (order by ord rows "
    "between 100 preceding and 50 following) from t",
    "select median(price) over (partition by grp order by ord rows between "
    "30 preceding and current row) from t",
    "select sum(val) over (partition by grp order by ord rows between 3 "
    "preceding and 2 following) from t",
    "select count(distinct name) over (order by ord, val rows between 20 "
    "preceding and current row) from t",
    "select rank(order by price desc) over (partition by grp order by ord "
    "groups between 2 preceding and 2 following) from t",
    "select percentile_disc(0.9 order by val) over (order by ord range "
    "between 5 preceding and 5 following) from t",
    "select median(price) over (order by ord rows between 40 preceding and "
    "current row exclude group) from t",
};

/// Queries `svc` (whose table "t" has been grown by appends) and a cold
/// service registered with the combined table, and requires bit-identity.
void ExpectMatchesColdRebuild(QueryService& svc, const Table& combined,
                              const std::string& context) {
  QueryService cold;
  cold.RegisterTable("t", CopyTable(combined));
  for (const std::string& sql : kDifferentialSql) {
    StatusOr<QueryResult> warm = svc.Query(sql);
    ASSERT_TRUE(warm.ok()) << context << ": " << warm.status().ToString();
    StatusOr<QueryResult> rebuilt = cold.Query(sql);
    ASSERT_TRUE(rebuilt.ok()) << context << ": " << rebuilt.status().ToString();
    ExpectBitIdentical(warm->table.column(0), rebuilt->table.column(0),
                       context + " | " + sql);
  }
}

TEST(IngestDifferential, AppendedStateMatchesColdRebuildAcrossFunctions) {
  const Table base = test::MakeRandomTable(20000, 41);
  const Table batch1 = test::MakeRandomTable(700, 42);
  const Table batch2 = test::MakeRandomTable(900, 43);

  ServiceOptions options;
  options.auto_compact = false;  // keep the delta resident for the test
  QueryService svc(options);
  svc.RegisterTable("t", CopyTable(base));

  // Warm the base-state cache first: the post-append queries must be able
  // to reuse these artifacts through the merge paths.
  for (const std::string& sql : kDifferentialSql) {
    ASSERT_TRUE(svc.Query(sql).ok());
  }

  StatusOr<Catalog::TableMeta> meta = svc.AppendRows("t", batch1);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta->delta_rows, 700u);
  ExpectMatchesColdRebuild(svc, Concat(base, batch1), "after first append");

  // A second append on top of the already-merged state.
  ASSERT_TRUE(svc.AppendRows("t", batch2).ok());
  ExpectMatchesColdRebuild(svc, Concat(Concat(base, batch1), batch2),
                           "after second append");
}

TEST(IngestDifferential, UpsertedStateMatchesColdRebuild) {
  // Keyed table: upserts rewrite half the base rows and append the rest.
  std::vector<int64_t> keys, values;
  for (int64_t i = 0; i < 8000; ++i) {
    keys.push_back(i);
    values.push_back(i * 7 % 1001);
  }
  QueryService svc;
  StatusOr<uint64_t> epoch =
      svc.RegisterTable("u", MakeKeyed(keys, values), "k");
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

  const std::string sql =
      "select median(v) over (order by k rows between 99 preceding and "
      "current row) from u";
  ASSERT_TRUE(svc.Query(sql).ok());

  std::vector<int64_t> up_keys, up_values;
  for (int64_t i = 4000; i < 9000; ++i) {  // 4000 rewrites + 1000 appends
    up_keys.push_back(i);
    up_values.push_back(i * 13 % 997);
  }
  StatusOr<Catalog::TableMeta> meta =
      svc.UpsertRows("u", MakeKeyed(up_keys, up_values));
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta->gen, 1u) << "rewriting live rows must bump gen";
  EXPECT_EQ(meta->base_rows + meta->delta_rows, 9000u);

  // Reference: the combined state computed by hand.
  std::vector<int64_t> ref_keys = keys, ref_values = values;
  for (size_t i = 0; i < up_keys.size(); ++i) {
    if (up_keys[i] < 8000) {
      ref_values[static_cast<size_t>(up_keys[i])] = up_values[i];
    } else {
      ref_keys.push_back(up_keys[i]);
      ref_values.push_back(up_values[i]);
    }
  }
  const Table reference = MakeKeyed(ref_keys, ref_values);
  StatusOr<QueryResult> warm = svc.Query(sql);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ExpectBitIdentical(warm->table.column(0), SerialReference(sql, reference),
                     "post-upsert");
}

TEST(IngestDifferential, ForcedSpillStillMatchesColdRebuild) {
  // A per-query budget routes execution through the spill paths and (by
  // design) disables the tree cache, so the merged-cursor fast path falls
  // back to a full rebuild — the answer must not change. This is the same
  // code path the forced-spill CI job drives via HWF_TEST_MEMORY_LIMIT.
  const Table base = test::MakeRandomTable(15000, 47);
  const Table batch = test::MakeRandomTable(600, 48);

  ServiceOptions options;
  options.auto_compact = false;
  options.query_memory_limit_bytes = 4u << 20;
  QueryService svc(options);
  svc.RegisterTable("t", CopyTable(base));
  ASSERT_TRUE(svc.AppendRows("t", batch).ok());

  QueryService cold(options);
  cold.RegisterTable("t", Concat(base, batch));
  for (const std::string& sql : kDifferentialSql) {
    StatusOr<QueryResult> warm = svc.Query(sql);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    StatusOr<QueryResult> rebuilt = cold.Query(sql);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    ExpectBitIdentical(warm->table.column(0), rebuilt->table.column(0),
                       "spill | " + sql);
  }
}

// ---------------------------------------------------------------------------
// Warm-path guarantees: probe-only repeats, merged cursors, delta merges
// ---------------------------------------------------------------------------

TEST(IngestWarmPath, AppendKeepsWarmQueriesProbeOnly) {
  ServiceOptions options;
  options.auto_compact = false;
  QueryService svc(options);
  svc.RegisterTable("t", test::MakeRandomTable(50000, 51, 1, 0.1));
  const std::string sql =
      "select percentile_disc(0.5 order by val) over (order by ord rows "
      "between 500 preceding and current row) from t";

  StatusOr<QueryResult> cold = svc.Query(sql);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(cold->profile->phase_seconds(obs::ProfilePhase::kSort), 0.0);
  EXPECT_GT(cold->profile->phase_seconds(obs::ProfilePhase::kTreeBuild), 0.0);

  ASSERT_TRUE(svc.AppendRows("t", test::MakeRandomTable(800, 52, 1, 0.1)).ok());

  // First post-append query: the base sort permutation and the base trees
  // come from the cache; only the 800 delta rows are sorted (kDeltaMerge)
  // and probed through the merged two-tree cursor. The full-table sort
  // phase must not run.
  obs::CounterDeltaTracker tracker;
  StatusOr<QueryResult> first = svc.Query(sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->profile->phase_seconds(obs::ProfilePhase::kSort), 0.0);
  EXPECT_GT(first->profile->phase_seconds(obs::ProfilePhase::kDeltaMerge), 0.0);
  EXPECT_GE(tracker.DeltaOf(obs::Counter::kIngestDeltaMerges), 1u)
      << "sort artifact should be delta-merged, not rebuilt";
  EXPECT_GE(tracker.DeltaOf(obs::Counter::kIngestMergedCursorBuilds), 1u)
      << "percentile should probe main+delta through the merged cursor";

  // Repeat query at the same delta state: everything (including the merged
  // cursor) is cached — fully probe-only, exactly like a warm query on an
  // unmutated table.
  StatusOr<QueryResult> repeat = svc.Query(sql);
  ASSERT_TRUE(repeat.ok()) << repeat.status().ToString();
  EXPECT_EQ(repeat->profile->phase_seconds(obs::ProfilePhase::kSort), 0.0);
  EXPECT_EQ(repeat->profile->phase_seconds(obs::ProfilePhase::kTreeBuild), 0.0);
  EXPECT_GT(repeat->profile->phase_seconds(obs::ProfilePhase::kProbe), 0.0);
  ExpectBitIdentical(repeat->table.column(0), first->table.column(0),
                     "repeat at same delta state");
}

TEST(IngestWarmPath, CompactionPreservesEveryCachedArtifact) {
  ServiceOptions options;
  options.auto_compact = false;
  QueryService svc(options);
  svc.RegisterTable("t", test::MakeRandomTable(30000, 53, 1, 0.1));
  const std::string sql =
      "select median(val) over (order by ord rows between 300 preceding and "
      "current row) from t";
  ASSERT_TRUE(svc.Query(sql).ok());
  ASSERT_TRUE(svc.AppendRows("t", test::MakeRandomTable(5000, 54, 1, 0.1)).ok());
  StatusOr<QueryResult> merged = svc.Query(sql);
  ASSERT_TRUE(merged.ok());

  // Compaction preserves row ids, epoch and gen, so every combined-state
  // artifact keeps its key. The sort permutation was cached as a side
  // effect of the delta merge, so the first post-compaction query never
  // re-sorts (it does build the full-partition selection tree the merged
  // cursor made unnecessary before); the repeat is fully probe-only.
  StatusOr<Catalog::TableMeta> meta = svc.CompactTable("t");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta->delta_rows, 0u);
  EXPECT_EQ(meta->base_rows, 35000u);

  StatusOr<QueryResult> after = svc.Query(sql);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->profile->phase_seconds(obs::ProfilePhase::kSort), 0.0);
  ExpectBitIdentical(after->table.column(0), merged->table.column(0),
                     "across compaction");

  StatusOr<QueryResult> repeat = svc.Query(sql);
  ASSERT_TRUE(repeat.ok()) << repeat.status().ToString();
  EXPECT_EQ(repeat->profile->phase_seconds(obs::ProfilePhase::kSort), 0.0);
  EXPECT_EQ(repeat->profile->phase_seconds(obs::ProfilePhase::kTreeBuild), 0.0);
  ExpectBitIdentical(repeat->table.column(0), merged->table.column(0),
                     "post-compaction repeat");
  EXPECT_GE(svc.stats().compaction.completed, 1u);
}

// ---------------------------------------------------------------------------
// Compaction: thresholds, background scheduling, mid-compaction queries
// ---------------------------------------------------------------------------

TEST(Compactor, BackgroundCompactionTriggersPastTheRatio) {
  ServiceOptions options;
  options.compactor.delta_ratio = 0.05;
  options.compactor.min_delta_rows = 256;
  QueryService svc(options);
  svc.RegisterTable("t", test::MakeRandomTable(10000, 57));

  // Below both thresholds: no compaction scheduled.
  ASSERT_TRUE(svc.AppendRows("t", test::MakeRandomTable(100, 58)).ok());
  EXPECT_EQ(svc.stats().compaction.scheduled, 0u);

  // Past the ratio: the ingest path schedules a background fold. Wait for
  // the delta to drain.
  ASSERT_TRUE(svc.AppendRows("t", test::MakeRandomTable(2000, 59)).ok());
  EXPECT_GE(svc.stats().compaction.scheduled, 1u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    StatusOr<Catalog::TableMeta> meta = svc.catalog().PeekMeta("t");
    ASSERT_TRUE(meta.ok());
    if (meta->delta_rows == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  StatusOr<Catalog::TableMeta> meta = svc.catalog().PeekMeta("t");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->delta_rows, 0u);
  EXPECT_EQ(meta->base_rows, 12100u);
  EXPECT_GE(svc.stats().compaction.completed, 1u);
}

TEST(Compactor, QueriesOverlappingCompactionStayBitIdentical) {
  const Table base = test::MakeRandomTable(40000, 61);
  const Table batch = test::MakeRandomTable(12000, 62);
  const Table combined = Concat(base, batch);

  ServiceOptions options;
  options.auto_compact = false;
  options.num_sessions = 4;
  options.max_queued = 64;
  QueryService svc(options);
  svc.RegisterTable("t", CopyTable(base));
  ASSERT_TRUE(svc.AppendRows("t", batch).ok());

  const std::string sql =
      "select percentile_disc(0.5 order by val) over (order by ord rows "
      "between 400 preceding and current row) from t";
  const Column expected = SerialReference(sql, combined);

  // Queries race the synchronous fold: whichever side of the atomic swap a
  // query lands on, it must see either (base + delta) or the compacted
  // combined table — the same rows either way.
  std::vector<std::thread> clients;
  std::vector<StatusOr<QueryResult>> results(
      6, StatusOr<QueryResult>(Status::Internal("unset")));
  for (size_t q = 0; q < results.size(); ++q) {
    clients.emplace_back([&, q] { results[q] = svc.Query(sql); });
  }
  StatusOr<Catalog::TableMeta> meta = svc.CompactTable("t");
  for (std::thread& t : clients) t.join();
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta->delta_rows, 0u);
  for (size_t q = 0; q < results.size(); ++q) {
    ASSERT_TRUE(results[q].ok())
        << "query " << q << ": " << results[q].status().ToString();
    ExpectBitIdentical(results[q]->table.column(0), expected,
                       "overlapping query " + std::to_string(q));
  }
}

// ---------------------------------------------------------------------------
// Satellite: TreeCache dead-epoch GC
// ---------------------------------------------------------------------------

TEST(CacheGc, ReRegistrationDropsTheOldEpochsEntries) {
  QueryService svc;
  svc.RegisterTable("t", test::MakeRandomTable(20000, 67, 1, 0.1));
  const std::string sql =
      "select percentile_disc(0.5 order by val) over (order by ord rows "
      "between 100 preceding and current row) from t";
  ASSERT_TRUE(svc.Query(sql).ok());
  const size_t entries_before = svc.cache().stats().entries;
  ASSERT_GT(entries_before, 0u);
  EXPECT_EQ(svc.stats().cache_gc_dropped, 0u);

  // Re-registering retires the old epoch; without eager GC its trees would
  // linger in the cache until byte pressure happened to evict them.
  svc.RegisterTable("t", test::MakeRandomTable(20000, 68, 1, 0.1));
  EXPECT_GE(svc.stats().cache_gc_dropped, entries_before);
  EXPECT_EQ(svc.cache().stats().entries, 0u)
      << "every cached artifact belonged to the dead epoch";

  // The new epoch caches and serves normally.
  StatusOr<QueryResult> fresh = svc.Query(sql);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(svc.cache().stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Satellite: per-table version gauges on the metrics registry
// ---------------------------------------------------------------------------

TEST(IngestMetrics, RegistryExportsEpochMinorAndDeltaGauges) {
  QueryService svc;
  svc.RegisterTable("pre", MakeKeyed({1, 2}, {10, 20}));
  obs::MetricsRegistry registry;
  // Compose the registry the way hwf_serve does: the process-wide obs
  // counters (which carry the ingest mutation counts) plus the service's
  // own gauges. RegisterMetrics must not re-export the obs counters, or
  // the exposition would carry duplicate series.
  obs::RegisterProcessCounters(&registry);
  svc.RegisterMetrics(&registry);
  // Tables registered after attachment get gauges too.
  svc.RegisterTable("post", MakeKeyed({3}, {30}));
  ASSERT_TRUE(svc.AppendRows("post", MakeKeyed({4}, {40})).ok());

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("hwf_catalog_epoch{table=\"pre\"}"), std::string::npos)
      << text;
  EXPECT_NE(text.find("hwf_catalog_epoch{table=\"post\"}"), std::string::npos);
  EXPECT_NE(text.find("hwf_table_minor_version{table=\"post\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hwf_table_delta_rows{table=\"post\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hwf_ingest_rows_appended_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Satellite: concurrent catalog mutation under load
// ---------------------------------------------------------------------------

TEST(ConcurrentMutation, AppendsRacingQueriesNeverTearSnapshots) {
  const size_t kBaseRows = 8000;
  const size_t kBatchRows = 500;
  const int kBatches = 12;

  ServiceOptions options;
  options.num_sessions = 4;
  options.max_queued = 64;
  options.auto_compact = false;
  QueryService svc(options);
  svc.RegisterTable("s", test::MakeRandomTable(kBaseRows, 71));
  // An unrelated table re-registered concurrently exercises dead-epoch GC
  // under load without perturbing "s".
  svc.RegisterTable("r", test::MakeRandomTable(2000, 72));

  const std::string sql =
      "select sum(val) over (order by ord rows between 50 preceding and "
      "current row) from s";

  std::atomic<bool> done{false};
  std::atomic<size_t> queries_ok{0};
  Status failure = Status::OK();
  std::mutex failure_mutex;

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        StatusOr<QueryResult> result = svc.Query(sql);
        if (!result.ok()) {
          std::lock_guard<std::mutex> lock(failure_mutex);
          failure = result.status();
          return;
        }
        // A snapshot must hold whole batches only: the catalog serializes
        // mutations, so any row count other than base + k*batch is a torn
        // read.
        const size_t n = result->table.column(0).size();
        if (n < kBaseRows || (n - kBaseRows) % kBatchRows != 0) {
          std::lock_guard<std::mutex> lock(failure_mutex);
          failure = Status::Internal("torn snapshot: " + std::to_string(n) +
                                     " rows");
          return;
        }
        queries_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread registrar([&] {
    uint64_t seed = 73;
    while (!done.load(std::memory_order_relaxed)) {
      svc.RegisterTable("r", test::MakeRandomTable(2000, seed++));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  for (int b = 0; b < kBatches; ++b) {
    StatusOr<Catalog::TableMeta> meta =
        svc.AppendRows("s", test::MakeRandomTable(kBatchRows, 100 + b));
    ASSERT_TRUE(meta.ok()) << meta.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  registrar.join();
  ASSERT_TRUE(failure.ok()) << failure.ToString();
  EXPECT_GT(queries_ok.load(), 0u);

  // Differential vs serial on the final state: the service's answer after
  // all mutations must match a from-scratch evaluation of the materialized
  // table.
  StatusOr<Catalog::Snapshot> snapshot = svc.catalog().Lookup("s");
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->table->num_rows(),
            kBaseRows + kBatches * kBatchRows);
  StatusOr<QueryResult> final_result = svc.Query(sql);
  ASSERT_TRUE(final_result.ok()) << final_result.status().ToString();
  ExpectBitIdentical(final_result->table.column(0),
                     SerialReference(sql, *snapshot->table), "final state");
}

TEST(ConcurrentMutation, StressLoopAppendsUpsertsCompactionsAndQueries) {
  ServiceOptions options;
  options.num_sessions = 2;
  options.compactor.delta_ratio = 0.02;
  options.compactor.min_delta_rows = 64;
  QueryService svc(options);

  std::vector<int64_t> keys, values;
  for (int64_t i = 0; i < 4000; ++i) {
    keys.push_back(i);
    values.push_back(i % 211);
  }
  ASSERT_TRUE(svc.RegisterTable("k", MakeKeyed(keys, values), "k").ok());
  const std::string sql =
      "select median(v) over (order by k rows between 30 preceding and "
      "current row) from k";

  std::atomic<bool> done{false};
  Status failure = Status::OK();
  std::mutex failure_mutex;
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        StatusOr<QueryResult> result = svc.Query(sql);
        if (!result.ok()) {
          std::lock_guard<std::mutex> lock(failure_mutex);
          failure = result.status();
          return;
        }
      }
    });
  }

  // Writer: interleaved appends and upserts, letting the low-threshold
  // background compactor race everything.
  Pcg32 rng(79);
  int64_t next_key = 4000;
  for (int round = 0; round < 20; ++round) {
    std::vector<int64_t> bk, bv;
    for (int i = 0; i < 100; ++i) {
      if (rng.Bounded(2) == 0) {
        bk.push_back(next_key++);  // fresh key: append
      } else {
        bk.push_back(static_cast<int64_t>(rng.Bounded(
            static_cast<uint32_t>(next_key))));  // live key: rewrite
      }
      bv.push_back(static_cast<int64_t>(rng.Bounded(1000)));
    }
    // Duplicate keys within one batch are legal (last write wins inside
    // the delta); keep them to stress the key index.
    StatusOr<Catalog::TableMeta> meta =
        rng.Bounded(2) == 0 ? svc.AppendRows("k", MakeKeyed(bk, bv))
                            : svc.UpsertRows("k", MakeKeyed(bk, bv));
    ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  ASSERT_TRUE(failure.ok()) << failure.ToString();

  // Quiesce compactions, then verify the final state differentially.
  svc.compactor().Stop();
  StatusOr<Catalog::Snapshot> snapshot = svc.catalog().Lookup("k");
  ASSERT_TRUE(snapshot.ok());
  StatusOr<QueryResult> final_result = svc.Query(sql);
  ASSERT_TRUE(final_result.ok()) << final_result.status().ToString();
  ExpectBitIdentical(final_result->table.column(0),
                     SerialReference(sql, *snapshot->table), "stress final");
}

}  // namespace
}  // namespace hwf
