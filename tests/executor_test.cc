#include "window/executor.h"

#include <gtest/gtest.h>

#include "tests/window_test_util.h"

namespace hwf {
namespace {

using test::ExpectColumnsEqual;
using test::MakeRandomTable;

TEST(Executor, ValidationRejectsBadSpecs) {
  Table table = MakeRandomTable(10, 1);
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kSum;
  call.argument = 2;

  {
    WindowSpec spec;
    spec.partition_by = {99};
    EXPECT_FALSE(EvaluateWindowFunction(table, spec, call).ok());
  }
  {
    WindowSpec spec;
    spec.frame.begin = FrameBound::Preceding(-1);
    EXPECT_FALSE(EvaluateWindowFunction(table, spec, call).ok());
  }
  {
    WindowSpec spec;
    spec.frame.begin = FrameBound::UnboundedFollowing();
    EXPECT_FALSE(EvaluateWindowFunction(table, spec, call).ok());
  }
  {
    // RANGE offsets need exactly one numeric ORDER BY key.
    WindowSpec spec;
    spec.frame.mode = FrameMode::kRange;
    spec.frame.begin = FrameBound::Preceding(5);
    EXPECT_FALSE(EvaluateWindowFunction(table, spec, call).ok());
    spec.order_by = {SortKey{4, true, false}};  // String column.
    EXPECT_FALSE(EvaluateWindowFunction(table, spec, call).ok());
  }
  {
    // Missing argument.
    WindowSpec spec;
    WindowFunctionCall bad;
    bad.kind = WindowFunctionKind::kMedian;
    EXPECT_FALSE(EvaluateWindowFunction(table, spec, bad).ok());
  }
  {
    // Rank without any ordering.
    WindowSpec spec;
    WindowFunctionCall rank;
    rank.kind = WindowFunctionKind::kRank;
    EXPECT_FALSE(EvaluateWindowFunction(table, spec, rank).ok());
  }
  {
    // Percentile fraction out of range.
    WindowSpec spec;
    WindowFunctionCall pct;
    pct.kind = WindowFunctionKind::kPercentileDisc;
    pct.argument = 2;
    pct.fraction = 1.5;
    EXPECT_FALSE(EvaluateWindowFunction(table, spec, pct).ok());
  }
  {
    // dense_rank + exclusion is rejected up front.
    WindowSpec spec;
    spec.order_by = {SortKey{1, true, false}};
    spec.frame.exclusion = FrameExclusion::kCurrentRow;
    WindowFunctionCall dr;
    dr.kind = WindowFunctionKind::kDenseRank;
    StatusOr<Column> result = EvaluateWindowFunction(table, spec, dr);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kNotImplemented);
  }
}

TEST(Executor, EmptyTable) {
  Table table = MakeRandomTable(0, 1);
  WindowSpec spec;
  spec.order_by = {SortKey{1, true, false}};
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kCountDistinct;
  call.argument = 2;
  StatusOr<Column> result = EvaluateWindowFunction(table, spec, call);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST(Executor, MultiCallSharesPartitioningAndAgreesWithSingleCalls) {
  Table table = MakeRandomTable(150, 2);
  WindowSpec spec;
  spec.partition_by = {0};
  spec.order_by = {SortKey{1, true, false}};

  std::vector<WindowFunctionCall> calls(3);
  calls[0].kind = WindowFunctionKind::kCountDistinct;
  calls[0].argument = 2;
  calls[1].kind = WindowFunctionKind::kRank;
  calls[1].order_by = {SortKey{3, false, false}};
  calls[2].kind = WindowFunctionKind::kMedian;
  calls[2].argument = 3;

  StatusOr<std::vector<Column>> multi =
      EvaluateWindowFunctions(table, spec, calls);
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(multi->size(), 3u);
  for (size_t c = 0; c < calls.size(); ++c) {
    StatusOr<Column> single = EvaluateWindowFunction(table, spec, calls[c]);
    ASSERT_TRUE(single.ok());
    ExpectColumnsEqual((*multi)[c], *single, "call " + std::to_string(c));
  }
}

TEST(Executor, ResultsAlignedWithInputRows) {
  // row_number over (order by id) on an unsorted id column must equal the
  // id's rank regardless of the input row order.
  Table table;
  table.AddColumn("id", Column::FromInt64({30, 10, 50, 20, 40}));
  WindowSpec spec;
  spec.order_by = {SortKey{0, true, false}};
  spec.frame.begin = FrameBound::UnboundedPreceding();
  spec.frame.end = FrameBound::UnboundedFollowing();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kRowNumber;
  StatusOr<Column> result = EvaluateWindowFunction(table, spec, call);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->GetInt64(0), 3);
  EXPECT_EQ(result->GetInt64(1), 1);
  EXPECT_EQ(result->GetInt64(2), 5);
  EXPECT_EQ(result->GetInt64(3), 2);
  EXPECT_EQ(result->GetInt64(4), 4);
}

TEST(Executor, PartitionsAreIndependent) {
  // Each partition's running count(*) restarts at 1.
  Table table;
  table.AddColumn("p", Column::FromInt64({1, 2, 1, 2, 1}));
  table.AddColumn("id", Column::FromInt64({1, 2, 3, 4, 5}));
  WindowSpec spec;
  spec.partition_by = {0};
  spec.order_by = {SortKey{1, true, false}};
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kCountStar;
  StatusOr<Column> result = EvaluateWindowFunction(table, spec, call);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->GetInt64(0), 1);  // p=1, first
  EXPECT_EQ(result->GetInt64(1), 1);  // p=2, first
  EXPECT_EQ(result->GetInt64(2), 2);
  EXPECT_EQ(result->GetInt64(3), 2);
  EXPECT_EQ(result->GetInt64(4), 3);
}

TEST(Executor, NullPartitionKeysFormOnePartition) {
  Table table;
  Column p(DataType::kInt64);
  p.AppendNull();
  p.AppendInt64(1);
  p.AppendNull();
  table.AddColumn("p", std::move(p));
  table.AddColumn("id", Column::FromInt64({1, 2, 3}));
  WindowSpec spec;
  spec.partition_by = {0};
  spec.order_by = {SortKey{1, true, false}};
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kCountStar;
  StatusOr<Column> result = EvaluateWindowFunction(table, spec, call);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->GetInt64(0), 1);
  EXPECT_EQ(result->GetInt64(1), 1);
  EXPECT_EQ(result->GetInt64(2), 2);  // Second NULL row: same partition.
}

TEST(Executor, ManySmallPartitionsParallelPathMatchesSerial) {
  // >1 small partitions with a multi-worker pool exercises the
  // across-partition parallel path; results must match the serial path.
  Table table = MakeRandomTable(400, 5, /*partitions=*/60);
  WindowSpec spec;
  spec.partition_by = {0};
  spec.order_by = {SortKey{1, true, false}};
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kCountDistinct;
  call.argument = 2;

  ThreadPool serial(0);
  ThreadPool parallel(4);
  WindowExecutorOptions options;
  StatusOr<Column> a =
      EvaluateWindowFunction(table, spec, call, options, serial);
  StatusOr<Column> b =
      EvaluateWindowFunction(table, spec, call, options, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectColumnsEqual(*a, *b, "partition parallelism");
}

TEST(Executor, ParallelPartitionPathPropagatesErrors) {
  // dense_rank riding on the parallel-partition path must still surface
  // NotImplemented from inside the tasks... exclusion is caught by
  // validation, so use the mode/MST combination instead.
  Table table = MakeRandomTable(300, 6, /*partitions=*/50);
  WindowSpec spec;
  spec.partition_by = {0};
  spec.order_by = {SortKey{1, true, false}};
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kMode;
  call.argument = 2;
  ThreadPool parallel(4);
  StatusOr<Column> result =
      EvaluateWindowFunction(table, spec, call, {}, parallel);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotImplemented);
}

TEST(Executor, DeterministicAcrossThreadCounts) {
  Table table = MakeRandomTable(500, 3);
  WindowSpec spec;
  spec.partition_by = {0};
  spec.order_by = {SortKey{1, true, false}};
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kMedian;
  call.argument = 3;
  WindowExecutorOptions options;
  options.morsel_size = 32;

  ThreadPool serial(0);
  ThreadPool parallel(5);
  StatusOr<Column> a =
      EvaluateWindowFunction(table, spec, call, options, serial);
  StatusOr<Column> b =
      EvaluateWindowFunction(table, spec, call, options, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectColumnsEqual(*a, *b, "thread determinism");
}

}  // namespace
}  // namespace hwf
