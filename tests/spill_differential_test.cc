// Differential testing of the spill path: the same query must produce
// bit-identical results with an unlimited budget and with a budget tight
// enough to force external sorts and tree-level eviction. The engine's
// algorithms are deterministic (total-order sorts with a row-id tiebreak,
// fixed merge structure), so even floating-point results must match bit
// for bit — any divergence means the spilled representation was re-read
// incorrectly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "obs/counters.h"
#include "obs/profile.h"
#include "tests/window_test_util.h"
#include "window/executor.h"
#include "window/frame.h"

namespace hwf {
namespace {

using test::MakeRandomTable;

// This suite manages its own budgets; the forced-spill CI job's
// HWF_TEST_MEMORY_LIMIT would silently cap the "unlimited" baselines.
const bool g_env_cleared = [] {
  unsetenv("HWF_TEST_MEMORY_LIMIT");
  return true;
}();

// MakeRandomTable schema.
constexpr size_t kGrp = 0;
constexpr size_t kOrd = 1;
constexpr size_t kVal = 2;
constexpr size_t kPrice = 3;
constexpr size_t kFlag = 5;

/// Bit-exact column comparison (ExpectColumnsEqual in the shared util uses
/// a tolerance for doubles; the spill path must not need one).
void ExpectColumnsIdentical(const Column& limited, const Column& unlimited,
                            const std::string& context) {
  ASSERT_EQ(limited.size(), unlimited.size()) << context;
  ASSERT_EQ(limited.type(), unlimited.type()) << context;
  for (size_t i = 0; i < limited.size(); ++i) {
    ASSERT_EQ(limited.IsNull(i), unlimited.IsNull(i))
        << context << " row " << i;
    if (limited.IsNull(i)) continue;
    switch (limited.type()) {
      case DataType::kInt64:
        ASSERT_EQ(limited.GetInt64(i), unlimited.GetInt64(i))
            << context << " row " << i;
        break;
      case DataType::kDouble: {
        const double a = limited.GetDouble(i);
        const double b = unlimited.GetDouble(i);
        ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
            << context << " row " << i << ": " << a << " vs " << b;
        break;
      }
      case DataType::kString:
        ASSERT_EQ(limited.GetString(i), unlimited.GetString(i))
            << context << " row " << i;
        break;
    }
  }
}

/// A budget sized to the executor's unsheddable per-row state (permutation
/// + frame descriptors) plus `slack`: enough to run without forced
/// overshoot dominating, tight enough that tree levels must spill.
size_t TightLimit(size_t rows, size_t slack) {
  return rows * (sizeof(size_t) + sizeof(FrameRanges)) + (size_t{64} << 10) +
         slack;
}

struct RunOutcome {
  Column column;
  uint64_t spill_bytes_written = 0;
  uint64_t levels_evicted = 0;
  uint64_t external_runs = 0;
  size_t peak_reserved = 0;
};

RunOutcome RunQuery(const Table& table, const WindowSpec& spec,
               const WindowFunctionCall& call, size_t memory_limit) {
  WindowExecutorOptions options;
  options.memory_limit_bytes = memory_limit;
  obs::ExecutionProfile profile;
  options.profile = &profile;
  const obs::CounterSnapshot before = obs::SnapshotCounters();
  StatusOr<Column> result = EvaluateWindowFunction(table, spec, call, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  const obs::CounterSnapshot after = obs::SnapshotCounters();
  RunOutcome outcome{std::move(*result),
                     after[obs::Counter::kMemSpillBytesWritten] -
                         before[obs::Counter::kMemSpillBytesWritten],
                     after[obs::Counter::kMemMstLevelsEvicted] -
                         before[obs::Counter::kMemMstLevelsEvicted],
                     after[obs::Counter::kMemExternalSortRuns] -
                         before[obs::Counter::kMemExternalSortRuns],
                     profile.peak_reserved_bytes()};
  return outcome;
}

TEST(SpillDifferential, MedianUnderTightBudgetIsBitIdentical) {
  Table table = MakeRandomTable(30000, /*seed=*/11, /*partitions=*/1,
                                /*null_fraction=*/0.1);
  WindowSpec spec;
  spec.order_by.push_back(SortKey{kOrd, true, true});
  spec.frame.begin = FrameBound::Preceding(400);
  spec.frame.end = FrameBound::CurrentRow();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kMedian;
  call.argument = kPrice;

  RunOutcome unlimited = RunQuery(table, spec, call, /*memory_limit=*/0);
  const size_t limit = TightLimit(table.num_rows(), /*slack=*/64 << 10);
  RunOutcome limited = RunQuery(table, spec, call, limit);

  ExpectColumnsIdentical(limited.column, unlimited.column, "median");
  EXPECT_EQ(unlimited.spill_bytes_written, 0u);
  EXPECT_GT(limited.spill_bytes_written, 0u);
  EXPECT_GT(limited.levels_evicted, 0u);
}

TEST(SpillDifferential, ExternalSortPathIsBitIdentical) {
  // No partitioning + one numeric key selects the encoded-record sort; a
  // budget below the record array forces it through the external merge.
  Table table = MakeRandomTable(50000, /*seed=*/12, /*partitions=*/1,
                                /*null_fraction=*/0.05);
  WindowSpec spec;
  spec.order_by.push_back(SortKey{kPrice, true, true});
  spec.frame.begin = FrameBound::Preceding(100);
  spec.frame.end = FrameBound::Following(100);
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kSum;
  call.argument = kVal;

  RunOutcome unlimited = RunQuery(table, spec, call, /*memory_limit=*/0);
  // The sort phase holds the permutation (8 B/row) and the encoded records
  // (24 B/row); 40 B/row leaves too little for the 24 B/row merge buffer,
  // denying the in-memory regime, while staying above the feasibility
  // floor.
  const size_t limit = table.num_rows() * 40;
  RunOutcome limited = RunQuery(table, spec, call, limit);

  ExpectColumnsIdentical(limited.column, unlimited.column, "sum");
  EXPECT_GT(limited.external_runs, 0u);
}

TEST(SpillDifferential, PeakReservedStaysNearBudget) {
  // With generous slack the shed loop keeps the steady state under the
  // budget; forced irreducibles may overshoot transiently, so the peak is
  // checked against the hard limit, which this configuration respects.
  Table table = MakeRandomTable(50000, /*seed=*/13, /*partitions=*/1,
                                /*null_fraction=*/0.0);
  WindowSpec spec;
  spec.order_by.push_back(SortKey{kOrd, true, true});
  spec.frame.begin = FrameBound::Preceding(500);
  spec.frame.end = FrameBound::CurrentRow();
  WindowFunctionCall call;
  call.kind = WindowFunctionKind::kMedian;
  call.argument = kPrice;

  const size_t limit = size_t{4} << 20;
  RunOutcome limited = RunQuery(table, spec, call, limit);
  RunOutcome unlimited = RunQuery(table, spec, call, 0);
  ExpectColumnsIdentical(limited.column, unlimited.column, "median");
  EXPECT_GT(limited.spill_bytes_written, 0u);
  EXPECT_LE(limited.peak_reserved, limit);
  EXPECT_GT(limited.peak_reserved, 0u);
}

TEST(SpillDifferential, FuzzedFramesAndFunctionsMatchUnlimited) {
  // Sweep the function families whose probe paths read spilled levels:
  // Select (percentile / value functions / lead-lag), CountLess (rank),
  // and AggregateLess (distinct aggregates via the annotated tree).
  struct Case {
    WindowFunctionKind kind;
    size_t argument;
  };
  const Case kCases[] = {
      {WindowFunctionKind::kMedian, kPrice},
      {WindowFunctionKind::kPercentileDisc, kVal},
      {WindowFunctionKind::kRank, kVal},
      {WindowFunctionKind::kCountDistinct, kVal},
      {WindowFunctionKind::kSumDistinct, kPrice},
      {WindowFunctionKind::kFirstValue, kPrice},
      {WindowFunctionKind::kNthValue, kVal},
      {WindowFunctionKind::kLead, kPrice},
  };

  Pcg32 rng(20260806);
  uint64_t total_spill_bytes = 0;
  for (int round = 0; round < 24; ++round) {
    const Case& c = kCases[round % (sizeof(kCases) / sizeof(kCases[0]))];
    const size_t rows = 6000 + rng.Bounded(6000);
    Table table = MakeRandomTable(rows, /*seed=*/900 + round,
                                  /*partitions=*/1 + rng.Bounded(2),
                                  /*null_fraction=*/0.1);
    WindowSpec spec;
    if (rng.Bounded(3) == 0) spec.partition_by.push_back(kGrp);
    spec.order_by.push_back(SortKey{kOrd, rng.Bounded(2) == 0, true});
    // Random finite frames keep the naive-free comparison fast while still
    // exercising multi-range exclusion paths.
    spec.frame.begin = FrameBound::Preceding(
        static_cast<int64_t>(1 + rng.Bounded(rows / 4)));
    spec.frame.end = rng.Bounded(2) == 0
                         ? FrameBound::CurrentRow()
                         : FrameBound::Following(static_cast<int64_t>(
                               rng.Bounded(rows / 8)));
    if (rng.Bounded(4) == 0) {
      spec.frame.exclusion = FrameExclusion::kCurrentRow;
    }
    WindowFunctionCall call;
    call.kind = c.kind;
    call.argument = c.argument;
    call.fraction = 0.25 + 0.5 * rng.NextDouble();
    call.param = 1 + rng.Bounded(4);
    if (rng.Bounded(3) == 0) call.filter = kFlag;
    if (!ValidateWindowSpec(table, spec).ok() ||
        !ValidateWindowCall(table, spec, call).ok()) {
      continue;
    }

    std::ostringstream context;
    context << "round " << round << " kind "
            << WindowFunctionKindName(call.kind) << " rows " << rows;
    RunOutcome unlimited = RunQuery(table, spec, call, 0);
    RunOutcome limited =
        RunQuery(table, spec, call, TightLimit(rows, /*slack=*/32 << 10));
    ExpectColumnsIdentical(limited.column, unlimited.column, context.str());
    if (HasFatalFailure()) return;
    total_spill_bytes += limited.spill_bytes_written;
  }
  // The tight budgets must actually have engaged the spill machinery over
  // the sweep (individual rounds may stay resident).
  EXPECT_GT(total_spill_bytes, 0u);
}

}  // namespace
}  // namespace hwf
