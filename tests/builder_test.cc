#include "window/builder.h"

#include <gtest/gtest.h>

#include "tests/window_test_util.h"

namespace hwf {
namespace {

using test::ExpectColumnsEqual;
using test::MakeRandomTable;

Table TradesTable() {
  Table table;
  table.AddColumn("day", Column::FromInt64({1, 2, 3, 4, 5}));
  table.AddColumn("region",
                  Column::FromString({"e", "e", "w", "e", "w"}));
  table.AddColumn("price", Column::FromDouble({10, 20, 20, 30, 10}));
  return table;
}

TEST(Builder, RunsMultipleCallsAndAppendsColumns) {
  StatusOr<Table> result = WindowQueryBuilder(TradesTable())
                               .OrderBy("day")
                               .RowsBetween(FrameBound::Preceding(1),
                                            FrameBound::CurrentRow())
                               .Median("price", "med")
                               .CountDistinct("price", "dp")
                               .Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_columns(), 5u);
  EXPECT_EQ(result->column_name(3), "med");
  EXPECT_EQ(result->column_name(4), "dp");
  // Frames {10} {10,20} {20,20} {20,30} {30,10}.
  EXPECT_EQ(result->column(3).GetDouble(2), 20.0);
  EXPECT_EQ(result->column(4).GetInt64(1), 2);
}

TEST(Builder, MatchesManualSpecConstruction) {
  Table table = MakeRandomTable(120, 31);
  StatusOr<Table> built = WindowQueryBuilder(table)
                              .PartitionBy("grp")
                              .OrderBy("ord")
                              .RowsBetween(FrameBound::Preceding(7),
                                           FrameBound::Following(2))
                              .Exclude(FrameExclusion::kCurrentRow)
                              .Rank("r")
                              .FunctionOrderByDesc("price")
                              .Run();
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  WindowSpec spec;
  spec.partition_by = {table.MustColumnIndex("grp")};
  spec.order_by = {SortKey{table.MustColumnIndex("ord")}};
  spec.frame.begin = FrameBound::Preceding(7);
  spec.frame.end = FrameBound::Following(2);
  spec.frame.exclusion = FrameExclusion::kCurrentRow;
  WindowFunctionCall rank;
  rank.kind = WindowFunctionKind::kRank;
  rank.order_by = {SortKey{table.MustColumnIndex("price"), false, false}};
  StatusOr<Column> manual = EvaluateWindowFunction(table, spec, rank);
  ASSERT_TRUE(manual.ok());
  ExpectColumnsEqual(built->column(built->num_columns() - 1), *manual,
                     "builder vs manual");
}

TEST(Builder, ModifiersApplyToLastCall) {
  Table table = MakeRandomTable(80, 32);
  StatusOr<std::vector<WindowFunctionCall>> calls =
      WindowQueryBuilder(table)
          .OrderBy("ord")
          .Lead("val", 3, "l")
          .IgnoreNulls()
          .Filter("flag")
          .PercentileDisc(0.9, "price", "p90")
          .calls();
  ASSERT_TRUE(calls.ok());
  ASSERT_EQ(calls->size(), 2u);
  EXPECT_EQ((*calls)[0].param, 3);
  EXPECT_TRUE((*calls)[0].ignore_nulls);
  EXPECT_TRUE((*calls)[0].filter.has_value());
  EXPECT_FALSE((*calls)[1].ignore_nulls);
  EXPECT_DOUBLE_EQ((*calls)[1].fraction, 0.9);
}

TEST(Builder, ReportsNameResolutionErrorsAtRun) {
  StatusOr<Table> result = WindowQueryBuilder(TradesTable())
                               .OrderBy("no_such_column")
                               .Median("price", "m")
                               .Run();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Builder, ReportsModifierWithoutCall) {
  StatusOr<Table> result =
      WindowQueryBuilder(TradesTable()).OrderBy("day").IgnoreNulls().Run();
  ASSERT_FALSE(result.ok());
}

TEST(Builder, DefaultResultNames) {
  StatusOr<Table> result = WindowQueryBuilder(TradesTable())
                               .OrderBy("day")
                               .CountStar("")
                               .Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column_name(3), "count(*)");
}

}  // namespace
}  // namespace hwf
