// Differential testing of the offset-value-coded sort path: for every
// input shape, the OVC kernel (parallel_sort.h / loser_tree.h /
// external_sort.h with use_ovc) must produce output bit-identical to the
// uncoded reference merges — including stability, which the library
// guarantees through row-id tiebreaks baked into the records.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/random.h"
#include "mem/external_sort.h"
#include "mst/loser_tree.h"
#include "mst/preprocess.h"
#include "obs/counters.h"
#include "parallel/parallel_sort.h"
#include "parallel/thread_pool.h"

namespace hwf {
namespace {

#if !defined(HWF_HAS_OVC)
TEST(OvcSort, SkippedWithout128BitSupport) {
  GTEST_SKIP() << "no __int128 support; OVC path is compiled out";
}
#else

// The CI forced-spill job sets HWF_TEST_MEMORY_LIMIT for every test; this
// suite builds its own budgets, so clear it for deterministic regimes.
const bool g_env_cleared = [] {
  unsetenv("HWF_TEST_MEMORY_LIMIT");
  return true;
}();

using PairRec = std::pair<uint64_t, uint32_t>;

// Input shapes the merge rounds behave differently on: fuzzed keys with
// heavy duplicates (code compares resolve little, word compares a lot),
// pre-sorted and reverse (degenerate merge patterns), and all-equal
// (every comparison is a full-tie tiebreak).
enum class Shape { kFuzzedHeavyDups, kPreSorted, kReverse, kAllEqual };

std::vector<PairRec> MakeInput(Shape shape, size_t n, uint64_t seed) {
  std::vector<PairRec> data(n);
  Pcg32 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    switch (shape) {
      case Shape::kFuzzedHeavyDups:
        key = rng.Bounded(64);  // ~n/64 rows per distinct key.
        break;
      case Shape::kPreSorted:
        key = i / 3;
        break;
      case Shape::kReverse:
        key = n - i;
        break;
      case Shape::kAllEqual:
        key = 42;
        break;
    }
    // Row ids as the second word: a strict total order, so the sorted
    // output is unique and stability shows up as bit-identity.
    data[i] = {key, static_cast<uint32_t>(i)};
  }
  return data;
}

class OvcSortShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(OvcSortShapeTest, ParallelSortMatchesUncoded) {
  const Shape shape = static_cast<Shape>(GetParam());
  ThreadPool pool(3);
  auto less = [](const PairRec& a, const PairRec& b) { return a < b; };
  for (const size_t n : {size_t{0}, size_t{1}, size_t{1000}, size_t{40000}}) {
    std::vector<PairRec> coded = MakeInput(shape, n, n * 31 + 7);
    std::vector<PairRec> uncoded = coded;
    // Small run_size so several 32-way merge rounds actually execute.
    ParallelSort(coded, less, pool, /*run_size=*/256,
                 PartitionScheme::kThreeWay, nullptr, /*use_ovc=*/true);
    ParallelSort(uncoded, less, pool, /*run_size=*/256,
                 PartitionScheme::kThreeWay, nullptr, /*use_ovc=*/false);
    ASSERT_EQ(coded, uncoded) << "shape " << GetParam() << " n=" << n;
    ASSERT_TRUE(std::is_sorted(coded.begin(), coded.end()));
  }
}

// std::pair is not trivially copyable, so SortWithBudget cannot spill it;
// the external test uses a plain record that can be serialized to runs.
struct ExtRec {
  uint64_t key;
  uint32_t row;
  static constexpr size_t kOvcWords = 2;
  uint64_t OvcWord(size_t w) const { return w == 0 ? key : row; }
  bool operator<(const ExtRec& o) const {
    return key != o.key ? key < o.key : row < o.row;
  }
  bool operator==(const ExtRec& o) const {
    return key == o.key && row == o.row;
  }
};
static_assert(std::is_trivially_copyable_v<ExtRec>);

TEST_P(OvcSortShapeTest, ExternalSortMatchesUncoded) {
  const Shape shape = static_cast<Shape>(GetParam());
  ThreadPool pool(3);
  auto less = [](const ExtRec& a, const ExtRec& b) { return a < b; };
  const size_t n = 30000;
  const std::vector<PairRec> input = MakeInput(shape, n, 99);
  std::vector<ExtRec> reference(n);
  for (size_t i = 0; i < n; ++i) {
    reference[i] = ExtRec{input[i].first, input[i].second};
  }
  std::vector<ExtRec> coded = reference;
  std::sort(reference.begin(), reference.end());

  // A budget far below n*sizeof(PairRec) forces regime 3 (spilled runs +
  // streaming coded merge with per-refill code recomputation).
  mem::MemoryBudget budget(64 << 10);
  mem::MemoryContext ctx;
  ctx.budget = &budget;
  ctx.allow_spill = true;
  ASSERT_TRUE(mem::SortWithBudget(coded, less, pool, ctx, /*run_size=*/256,
                                  PartitionScheme::kThreeWay,
                                  /*use_ovc=*/true)
                  .ok());
  ASSERT_GT(obs::Value(obs::Counter::kMemExternalSortRuns), 0u);
  ASSERT_EQ(coded, reference) << "shape " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Shapes, OvcSortShapeTest,
                         ::testing::Values(0, 1, 2, 3));

// Direct kernel differential: OvcLoserTreeMerge vs LoserTreeMerge over the
// same hand-built runs, across source counts that hit the m==1 copy, the
// m==2 branchless loop, and the tournament tree.
TEST(OvcSort, LoserTreeMergeMatchesUncoded) {
  Pcg32 rng(7);
  for (const size_t m : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                         size_t{32}}) {
    std::vector<std::vector<PairRec>> runs(m);
    std::vector<std::vector<OvcCode>> codes(m);
    size_t total = 0;
    uint32_t row = 0;
    for (size_t c = 0; c < m; ++c) {
      const size_t len = 1 + rng.Bounded(200);
      runs[c].resize(len);
      for (auto& rec : runs[c]) rec = {rng.Bounded(16), row++};
      std::sort(runs[c].begin(), runs[c].end());
      codes[c].resize(len);
      ComputeOvcRunCodes(runs[c].data(), len, codes[c].data());
      total += len;
    }
    std::vector<const PairRec*> data(m);
    std::vector<const OvcCode*> in_codes(m);
    std::vector<size_t> lens(m);
    for (size_t c = 0; c < m; ++c) {
      data[c] = runs[c].data();
      in_codes[c] = codes[c].data();
      lens[c] = runs[c].size();
    }
    auto less = [](const PairRec& a, const PairRec& b) { return a < b; };

    std::vector<size_t> pos(m, 0);
    std::vector<PairRec> expected(total);
    LoserTree<PairRec, decltype(less)> tree;
    LoserTreeMerge(tree, data.data(), lens.data(), m, pos.data(),
                   expected.data(), total, less);

    std::fill(pos.begin(), pos.end(), 0);
    std::vector<PairRec> actual(total);
    std::vector<OvcCode> out_codes(total);
    OvcLoserTree<PairRec> ovc_tree;
    OvcLoserTreeMerge(ovc_tree, data.data(), lens.data(), m, pos.data(),
                      in_codes.data(), actual.data(), out_codes.data(),
                      total);
    ASSERT_EQ(actual, expected) << "m=" << m;
    // The emitted codes must be the output's in-run codes — the invariant
    // the next merge round depends on.
    std::vector<OvcCode> recomputed(total);
    ComputeOvcRunCodes(actual.data(), total, recomputed.data());
    ASSERT_EQ(out_codes, recomputed) << "m=" << m;
  }
}

// Three-word records (the executor's SortRec / preprocess.h OrderKeyRec
// layout) exercise offsets past word 1 and the member-adapter OvcTraits.
TEST(OvcSort, OrderKeyRecMatchesUncoded) {
  using Rec = OrderKeyRec<uint32_t>;
  ThreadPool pool(3);
  auto less = [](const Rec& a, const Rec& b) { return a < b; };
  Pcg32 rng(11);
  const size_t n = 20000;
  std::vector<Rec> coded(n);
  for (size_t i = 0; i < n; ++i) {
    coded[i] = Rec{static_cast<uint8_t>(rng.Bounded(3)), rng.Bounded(50),
                   static_cast<uint32_t>(i)};
  }
  std::vector<Rec> uncoded = coded;
  ParallelSort(coded, less, pool, /*run_size=*/128,
               PartitionScheme::kThreeWay, nullptr, /*use_ovc=*/true);
  ParallelSort(uncoded, less, pool, /*run_size=*/128,
               PartitionScheme::kThreeWay, nullptr, /*use_ovc=*/false);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_FALSE(less(coded[i], uncoded[i]) || less(uncoded[i], coded[i]))
        << "i=" << i;
  }
}

// The whole point of the encoding: most comparisons must resolve on the
// code compare alone, and the counters must reflect both totals.
TEST(OvcSort, CountersShowCodeResolution) {
  ThreadPool pool(3);
  auto less = [](const PairRec& a, const PairRec& b) { return a < b; };
  std::vector<PairRec> data = MakeInput(Shape::kFuzzedHeavyDups, 50000, 5);
  const obs::CounterSnapshot before = obs::SnapshotCounters();
  ParallelSort(data, less, pool, /*run_size=*/256,
               PartitionScheme::kThreeWay, nullptr, /*use_ovc=*/true);
  const obs::CounterSnapshot delta =
      obs::SnapshotDelta(before, obs::SnapshotCounters());
  const uint64_t comparisons = delta[obs::Counter::kSortComparisons];
  const uint64_t resolved = delta[obs::Counter::kSortOvcResolved];
  EXPECT_GT(comparisons, 0u);
  EXPECT_LE(resolved, comparisons);
  // 64 distinct keys over 50k rows: ties dominate, but distinct-key
  // matches (the majority of tournament rounds) resolve on the code.
  EXPECT_GT(resolved, comparisons / 2);
}

#endif  // HWF_HAS_OVC

}  // namespace
}  // namespace hwf
