// The paper's §2.4 showcase query: judging historical TPC-C results
// against what was known *at submission time*.
//
//   SELECT dbsystem, tps,
//          count(distinct dbsystem)              OVER w,
//          rank(ORDER BY tps DESC)               OVER w,
//          first_value(tps ORDER BY tps DESC)    OVER w,
//          first_value(dbsystem ORDER BY tps DESC) OVER w,
//          lead(tps ORDER BY tps DESC)           OVER w
//   FROM tpcc_results
//   WINDOW w AS (ORDER BY submission_date
//                RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW);
//
// Every one of these is illegal in SQL:2011 (framed distinct count,
// framed rank, value functions with their own ORDER BY) — and all of them
// run in O(n log n) here.
#include <cstdio>

#include "storage/tpch_gen.h"
#include "window/executor.h"

int main() {
  using namespace hwf;

  Table results = GenerateTpccResults(40, /*seed=*/7);
  const size_t dbsystem = results.MustColumnIndex("dbsystem");
  const size_t tps = results.MustColumnIndex("tps");
  const size_t date = results.MustColumnIndex("submission_date");

  WindowSpec w;
  w.order_by = {SortKey{date}};
  w.frame.mode = FrameMode::kRange;
  w.frame.begin = FrameBound::UnboundedPreceding();
  w.frame.end = FrameBound::CurrentRow();

  const std::vector<SortKey> by_tps_desc = {SortKey{tps, /*ascending=*/false}};

  std::vector<WindowFunctionCall> calls(5);
  calls[0].kind = WindowFunctionKind::kCountDistinct;  // competitors so far
  calls[0].argument = dbsystem;
  calls[1].kind = WindowFunctionKind::kRank;           // rank at submission
  calls[1].order_by = by_tps_desc;
  calls[2].kind = WindowFunctionKind::kFirstValue;     // best tps so far
  calls[2].argument = tps;
  calls[2].order_by = by_tps_desc;
  calls[3].kind = WindowFunctionKind::kFirstValue;     // ... and its system
  calls[3].argument = dbsystem;
  calls[3].order_by = by_tps_desc;
  calls[4].kind = WindowFunctionKind::kLead;           // next-best tps
  calls[4].argument = tps;
  calls[4].order_by = by_tps_desc;
  calls[4].param = 1;

  StatusOr<std::vector<Column>> out =
      EvaluateWindowFunctions(results, w, calls);
  if (!out.ok()) {
    std::fprintf(stderr, "error: %s\n", out.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "%-10s  %-12s %12s  %5s %5s  %12s  %-10s  %12s\n", "date", "system",
      "tps", "#sys", "rank", "best tps", "by", "next-best");
  for (size_t i = 0; i < results.num_rows(); ++i) {
    std::printf("%-10s  %-12s %12.1f  %5ld %5ld  %12.1f  %-10s  ",
                DayToString(results.column(date).GetInt64(i)).c_str(),
                results.column(dbsystem).GetString(i).c_str(),
                results.column(tps).GetDouble(i),
                (*out)[0].GetInt64(i), (*out)[1].GetInt64(i),
                (*out)[2].GetDouble(i), (*out)[3].GetString(i).c_str());
    if ((*out)[4].IsNull(i)) {
      std::printf("%12s\n", "-");
    } else {
      std::printf("%12.1f\n", (*out)[4].GetDouble(i));
    }
  }
  std::printf(
      "\nEach row is judged only against results submitted before it:\n"
      "rank 1 rows were the world record at their submission date.\n");
  return 0;
}
