// The paper's introduction example: how did the 99th-percentile worst-case
// delivery time develop over time?
//
//   SELECT l_shipdate,
//          percentile_disc(0.99 ORDER BY l_receiptdate - l_shipdate)
//            OVER (ORDER BY l_shipdate
//                  RANGE BETWEEN 7 PRECEDING AND CURRENT ROW)
//   FROM lineitem;
//
// SQL:2011 rejects this query; with merge sort trees it runs in
// O(n log n) and parallelizes.
#include <cstdio>
#include <map>

#include "storage/tpch_gen.h"
#include "window/executor.h"

int main() {
  using namespace hwf;

  Table lineitem = GenerateLineitem(200000, /*seed=*/3);
  const size_t shipdate = lineitem.MustColumnIndex("l_shipdate");
  const size_t receiptdate = lineitem.MustColumnIndex("l_receiptdate");

  // Materialize the delivery-time expression l_receiptdate - l_shipdate as
  // a column (the library evaluates functions over columns).
  {
    Column delay(DataType::kInt64);
    delay.Reserve(lineitem.num_rows());
    for (size_t i = 0; i < lineitem.num_rows(); ++i) {
      delay.AppendInt64(lineitem.column(receiptdate).GetInt64(i) -
                        lineitem.column(shipdate).GetInt64(i));
    }
    lineitem.AddColumn("delay", std::move(delay));
  }

  WindowSpec w;
  w.order_by = {SortKey{shipdate}};
  w.frame.mode = FrameMode::kRange;  // A value range over ship dates:
  w.frame.begin = FrameBound::Preceding(7);  // '1 week' PRECEDING.
  w.frame.end = FrameBound::CurrentRow();

  WindowFunctionCall p99;
  p99.kind = WindowFunctionKind::kPercentileDisc;
  p99.argument = lineitem.MustColumnIndex("delay");
  p99.fraction = 0.99;

  StatusOr<Column> result = EvaluateWindowFunction(lineitem, w, p99);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Summarize per quarter for readable output: the worst p99 seen in any
  // one-week window ending in that quarter.
  std::map<int64_t, int64_t> worst_by_quarter;
  for (size_t i = 0; i < lineitem.num_rows(); ++i) {
    const int64_t day = lineitem.column(shipdate).GetInt64(i);
    const int64_t quarter = day / 91;
    int64_t& worst = worst_by_quarter[quarter];
    worst = std::max(worst, result->GetInt64(i));
  }
  std::printf("quarter starting  worst weekly p99 delivery delay (days)\n");
  std::printf("----------------  ---------------------------------------\n");
  for (const auto& [quarter, worst] : worst_by_quarter) {
    std::printf("%-16s  %3ld\n", DayToString(quarter * 91).c_str(), worst);
  }
  std::printf("\n(%zu lineitem rows, one framed p99 per row)\n",
              lineitem.num_rows());
  return 0;
}
