// Quickstart: a moving median — the query SQL:2011 forbids and this
// library makes fast.
//
//   SELECT day, price,
//          median(price) OVER (ORDER BY day
//                              ROWS BETWEEN 6 PRECEDING AND CURRENT ROW)
//   FROM prices;
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "storage/table.h"
#include "window/executor.h"

int main() {
  using namespace hwf;

  // A month of noisy prices.
  Table prices;
  {
    Column day(DataType::kInt64);
    Column price(DataType::kDouble);
    const double raw[] = {100, 103, 99,  140, 101, 98,  102, 104, 97,  180,
                          100, 99,  101, 103, 96,  102, 250, 98,  100, 101,
                          99,  97,  102, 104, 100, 98,  103, 99,  101, 100};
    for (int d = 0; d < 30; ++d) {
      day.AppendInt64(d + 1);
      price.AppendDouble(raw[d]);
    }
    prices.AddColumn("day", std::move(day));
    prices.AddColumn("price", std::move(price));
  }

  // OVER (ORDER BY day ROWS BETWEEN 6 PRECEDING AND CURRENT ROW)
  WindowSpec spec;
  spec.order_by = {SortKey{prices.MustColumnIndex("day")}};
  spec.frame.begin = FrameBound::Preceding(6);
  spec.frame.end = FrameBound::CurrentRow();

  // median(price) — a framed holistic aggregate, evaluated with a merge
  // sort tree in O(n log n).
  WindowFunctionCall median;
  median.kind = WindowFunctionKind::kMedian;
  median.argument = prices.MustColumnIndex("price");

  StatusOr<Column> result = EvaluateWindowFunction(prices, spec, median);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("day  price   7-day moving median\n");
  std::printf("---  ------  -------------------\n");
  const Column& price = prices.column(1);
  for (size_t i = 0; i < prices.num_rows(); ++i) {
    std::printf("%3zu  %6.1f  %19.1f\n", i + 1, price.GetDouble(i),
                result->GetDouble(i));
  }
  std::printf(
      "\nNote how the median shrugs off the outliers (140, 180, 250)\n"
      "that would drag a moving average around.\n");
  return 0;
}
