// The paper's §2.2 non-monotonic frame example: stock limit orders that
// are each valid for a trader-chosen interval.
//
//   SELECT price > median(price) OVER (
//            ORDER BY placement_time
//            RANGE BETWEEN CURRENT ROW AND good_for FOLLOWING)
//   FROM stock_orders;
//
// Because good_for differs per row, consecutive frames are non-monotonic:
// a tuple can enter and leave the frame many times. Incremental
// algorithms degrade to O(n²) here; the merge sort tree stays O(n log n)
// (§6.5).
#include <cstdio>

#include "common/random.h"
#include "storage/table.h"
#include "window/executor.h"

int main() {
  using namespace hwf;

  const size_t kOrders = 50000;
  Pcg32 rng(99);
  Table orders;
  {
    Column placement(DataType::kInt64);
    Column price(DataType::kDouble);
    Column good_for(DataType::kInt64);
    int64_t t = 0;
    for (size_t i = 0; i < kOrders; ++i) {
      t += 1 + rng.Bounded(5);               // Seconds between orders.
      placement.AppendInt64(t);
      price.AppendDouble(100.0 + 0.01 * static_cast<double>(rng.Bounded(2000)) -
                         10.0);
      good_for.AppendInt64(10 + rng.Bounded(600));  // 10s .. 10min validity.
    }
    orders.AddColumn("placement_time", std::move(placement));
    orders.AddColumn("price", std::move(price));
    orders.AddColumn("good_for", std::move(good_for));
  }

  WindowSpec w;
  w.order_by = {SortKey{orders.MustColumnIndex("placement_time")}};
  w.frame.mode = FrameMode::kRange;
  w.frame.begin = FrameBound::CurrentRow();
  // good_for FOLLOWING: a per-row frame bound — non-monotonic frames.
  w.frame.end = FrameBound::FollowingColumn(orders.MustColumnIndex("good_for"));

  WindowFunctionCall median;
  median.kind = WindowFunctionKind::kMedian;
  median.argument = orders.MustColumnIndex("price");

  StatusOr<Column> result = EvaluateWindowFunction(orders, w, median);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  size_t above = 0;
  for (size_t i = 0; i < kOrders; ++i) {
    const double price = orders.column(1).GetDouble(i);
    if (price > result->GetDouble(i)) ++above;
  }
  std::printf("orders: %zu\n", kOrders);
  std::printf(
      "orders priced above the median of all orders live during their own "
      "validity window: %zu (%.1f%%)\n",
      above, 100.0 * static_cast<double>(above) / kOrders);
  std::printf("\nfirst 10 orders:\n  time  price   validity-window median  above?\n");
  for (size_t i = 0; i < 10; ++i) {
    const double price = orders.column(1).GetDouble(i);
    std::printf("%6ld  %6.2f  %22.2f  %s\n",
                orders.column(0).GetInt64(i), price, result->GetDouble(i),
                price > result->GetDouble(i) ? "yes" : "no");
  }
  return 0;
}
