// The paper's opening example: monthly-active customers as a sliding
// framed DISTINCT count.
//
//   SELECT o_orderdate, count(distinct o_custkey) OVER w
//   FROM orders
//   WINDOW w AS (ORDER BY o_orderdate
//                RANGE BETWEEN 30 PRECEDING AND CURRENT ROW);
//
// SQL:2011 explicitly disallows DISTINCT aggregates as window functions;
// with the backreference trick + merge sort tree this runs in O(n log n).
#include <cstdio>
#include <map>

#include "storage/tpch_gen.h"
#include "window/builder.h"

int main() {
  using namespace hwf;

  Table orders = GenerateOrders(300000, /*seed=*/5);
  const size_t orderdate = orders.MustColumnIndex("o_orderdate");

  // The fluent builder is the most convenient way to phrase the query.
  StatusOr<std::vector<Column>> columns =
      WindowQueryBuilder(orders)
          .OrderBy("o_orderdate")
          .RangeBetween(FrameBound::Preceding(30),  // '1 month' PRECEDING
                        FrameBound::CurrentRow())
          .CountDistinct("o_custkey", "mau")
          .RunColumns();
  if (!columns.ok()) {
    std::fprintf(stderr, "error: %s\n", columns.status().ToString().c_str());
    return 1;
  }
  const Column* result = &(*columns)[0];

  // Report the month-end MAU for a readable summary: the framed count of
  // the last order in each calendar month.
  std::map<int64_t, std::pair<int64_t, int64_t>> latest_per_month;
  for (size_t i = 0; i < orders.num_rows(); ++i) {
    const int64_t day = orders.column(orderdate).GetInt64(i);
    const int64_t month = day / 30;
    auto& entry = latest_per_month[month];
    if (day >= entry.first) {
      entry = {day, result->GetInt64(i)};
    }
  }
  std::printf("month ending   monthly active customers\n");
  std::printf("------------   ------------------------\n");
  int printed = 0;
  for (const auto& [month, entry] : latest_per_month) {
    if (++printed % 6 != 0) continue;  // Every 6th month keeps output short.
    std::printf("%-12s   %8ld\n", DayToString(entry.first).c_str(),
                entry.second);
  }
  std::printf("\n(%zu orders; one sliding 30-day distinct count per order)\n",
              orders.num_rows());
  return 0;
}
