# Empty dependencies file for hwf_cli.
# This may be replaced when dependencies are built.
