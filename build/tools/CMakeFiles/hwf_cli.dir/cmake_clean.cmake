file(REMOVE_RECURSE
  "CMakeFiles/hwf_cli.dir/hwf_cli.cc.o"
  "CMakeFiles/hwf_cli.dir/hwf_cli.cc.o.d"
  "hwf_cli"
  "hwf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
