# Empty compiler generated dependencies file for hwf.
# This may be replaced when dependencies are built.
