file(REMOVE_RECURSE
  "libhwf.a"
)
