
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/incremental.cc" "src/CMakeFiles/hwf.dir/baselines/incremental.cc.o" "gcc" "src/CMakeFiles/hwf.dir/baselines/incremental.cc.o.d"
  "/root/repo/src/baselines/order_statistic.cc" "src/CMakeFiles/hwf.dir/baselines/order_statistic.cc.o" "gcc" "src/CMakeFiles/hwf.dir/baselines/order_statistic.cc.o.d"
  "/root/repo/src/baselines/segment_tree.cc" "src/CMakeFiles/hwf.dir/baselines/segment_tree.cc.o" "gcc" "src/CMakeFiles/hwf.dir/baselines/segment_tree.cc.o.d"
  "/root/repo/src/baselines/sql_rewrite.cc" "src/CMakeFiles/hwf.dir/baselines/sql_rewrite.cc.o" "gcc" "src/CMakeFiles/hwf.dir/baselines/sql_rewrite.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/hwf.dir/common/status.cc.o" "gcc" "src/CMakeFiles/hwf.dir/common/status.cc.o.d"
  "/root/repo/src/parallel/parallel_for.cc" "src/CMakeFiles/hwf.dir/parallel/parallel_for.cc.o" "gcc" "src/CMakeFiles/hwf.dir/parallel/parallel_for.cc.o.d"
  "/root/repo/src/parallel/thread_pool.cc" "src/CMakeFiles/hwf.dir/parallel/thread_pool.cc.o" "gcc" "src/CMakeFiles/hwf.dir/parallel/thread_pool.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/hwf.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/hwf.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/hwf.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/hwf.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/hwf.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/hwf.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/tpch_gen.cc" "src/CMakeFiles/hwf.dir/storage/tpch_gen.cc.o" "gcc" "src/CMakeFiles/hwf.dir/storage/tpch_gen.cc.o.d"
  "/root/repo/src/window/builder.cc" "src/CMakeFiles/hwf.dir/window/builder.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/builder.cc.o.d"
  "/root/repo/src/window/executor.cc" "src/CMakeFiles/hwf.dir/window/executor.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/executor.cc.o.d"
  "/root/repo/src/window/frame.cc" "src/CMakeFiles/hwf.dir/window/frame.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/frame.cc.o.d"
  "/root/repo/src/window/functions/common.cc" "src/CMakeFiles/hwf.dir/window/functions/common.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/functions/common.cc.o.d"
  "/root/repo/src/window/functions/dense_rank.cc" "src/CMakeFiles/hwf.dir/window/functions/dense_rank.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/functions/dense_rank.cc.o.d"
  "/root/repo/src/window/functions/distinct_aggregates.cc" "src/CMakeFiles/hwf.dir/window/functions/distinct_aggregates.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/functions/distinct_aggregates.cc.o.d"
  "/root/repo/src/window/functions/distributive.cc" "src/CMakeFiles/hwf.dir/window/functions/distributive.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/functions/distributive.cc.o.d"
  "/root/repo/src/window/functions/lead_lag.cc" "src/CMakeFiles/hwf.dir/window/functions/lead_lag.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/functions/lead_lag.cc.o.d"
  "/root/repo/src/window/functions/percentile.cc" "src/CMakeFiles/hwf.dir/window/functions/percentile.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/functions/percentile.cc.o.d"
  "/root/repo/src/window/functions/rank_functions.cc" "src/CMakeFiles/hwf.dir/window/functions/rank_functions.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/functions/rank_functions.cc.o.d"
  "/root/repo/src/window/functions/value_functions.cc" "src/CMakeFiles/hwf.dir/window/functions/value_functions.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/functions/value_functions.cc.o.d"
  "/root/repo/src/window/reference.cc" "src/CMakeFiles/hwf.dir/window/reference.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/reference.cc.o.d"
  "/root/repo/src/window/spec.cc" "src/CMakeFiles/hwf.dir/window/spec.cc.o" "gcc" "src/CMakeFiles/hwf.dir/window/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
