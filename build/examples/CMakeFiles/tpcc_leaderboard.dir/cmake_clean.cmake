file(REMOVE_RECURSE
  "CMakeFiles/tpcc_leaderboard.dir/tpcc_leaderboard.cpp.o"
  "CMakeFiles/tpcc_leaderboard.dir/tpcc_leaderboard.cpp.o.d"
  "tpcc_leaderboard"
  "tpcc_leaderboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_leaderboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
