# Empty dependencies file for tpcc_leaderboard.
# This may be replaced when dependencies are built.
