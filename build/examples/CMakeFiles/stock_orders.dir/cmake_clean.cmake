file(REMOVE_RECURSE
  "CMakeFiles/stock_orders.dir/stock_orders.cpp.o"
  "CMakeFiles/stock_orders.dir/stock_orders.cpp.o.d"
  "stock_orders"
  "stock_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
