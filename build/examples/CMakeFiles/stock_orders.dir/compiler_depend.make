# Empty compiler generated dependencies file for stock_orders.
# This may be replaced when dependencies are built.
