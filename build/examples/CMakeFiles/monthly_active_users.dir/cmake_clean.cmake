file(REMOVE_RECURSE
  "CMakeFiles/monthly_active_users.dir/monthly_active_users.cpp.o"
  "CMakeFiles/monthly_active_users.dir/monthly_active_users.cpp.o.d"
  "monthly_active_users"
  "monthly_active_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monthly_active_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
