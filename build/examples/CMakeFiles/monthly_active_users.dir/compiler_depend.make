# Empty compiler generated dependencies file for monthly_active_users.
# This may be replaced when dependencies are built.
