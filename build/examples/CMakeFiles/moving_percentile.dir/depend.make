# Empty dependencies file for moving_percentile.
# This may be replaced when dependencies are built.
