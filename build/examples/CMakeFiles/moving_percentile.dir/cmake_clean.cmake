file(REMOVE_RECURSE
  "CMakeFiles/moving_percentile.dir/moving_percentile.cpp.o"
  "CMakeFiles/moving_percentile.dir/moving_percentile.cpp.o.d"
  "moving_percentile"
  "moving_percentile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moving_percentile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
