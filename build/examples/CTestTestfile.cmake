# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tpcc_leaderboard "/root/repo/build/examples/tpcc_leaderboard")
set_tests_properties(example_tpcc_leaderboard PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_moving_percentile "/root/repo/build/examples/moving_percentile")
set_tests_properties(example_moving_percentile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stock_orders "/root/repo/build/examples/stock_orders")
set_tests_properties(example_stock_orders PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_monthly_active_users "/root/repo/build/examples/monthly_active_users")
set_tests_properties(example_monthly_active_users PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
