file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sql_formulations.dir/bench_fig9_sql_formulations.cc.o"
  "CMakeFiles/bench_fig9_sql_formulations.dir/bench_fig9_sql_formulations.cc.o.d"
  "bench_fig9_sql_formulations"
  "bench_fig9_sql_formulations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sql_formulations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
