# Empty compiler generated dependencies file for bench_fig9_sql_formulations.
# This may be replaced when dependencies are built.
