# Empty dependencies file for bench_ablation_task_size.
# This may be replaced when dependencies are built.
