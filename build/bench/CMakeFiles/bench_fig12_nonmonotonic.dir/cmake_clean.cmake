file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_nonmonotonic.dir/bench_fig12_nonmonotonic.cc.o"
  "CMakeFiles/bench_fig12_nonmonotonic.dir/bench_fig12_nonmonotonic.cc.o.d"
  "bench_fig12_nonmonotonic"
  "bench_fig12_nonmonotonic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_nonmonotonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
