# Empty dependencies file for bench_fig12_nonmonotonic.
# This may be replaced when dependencies are built.
