# Empty dependencies file for bench_ablation_cascading.
# This may be replaced when dependencies are built.
