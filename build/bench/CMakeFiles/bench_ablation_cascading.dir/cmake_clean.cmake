file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cascading.dir/bench_ablation_cascading.cc.o"
  "CMakeFiles/bench_ablation_cascading.dir/bench_ablation_cascading.cc.o.d"
  "bench_ablation_cascading"
  "bench_ablation_cascading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cascading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
