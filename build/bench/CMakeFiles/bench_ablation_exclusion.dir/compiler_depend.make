# Empty compiler generated dependencies file for bench_ablation_exclusion.
# This may be replaced when dependencies are built.
