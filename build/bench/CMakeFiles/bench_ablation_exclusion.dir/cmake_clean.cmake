file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_exclusion.dir/bench_ablation_exclusion.cc.o"
  "CMakeFiles/bench_ablation_exclusion.dir/bench_ablation_exclusion.cc.o.d"
  "bench_ablation_exclusion"
  "bench_ablation_exclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_exclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
