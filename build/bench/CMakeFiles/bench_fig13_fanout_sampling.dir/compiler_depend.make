# Empty compiler generated dependencies file for bench_fig13_fanout_sampling.
# This may be replaced when dependencies are built.
