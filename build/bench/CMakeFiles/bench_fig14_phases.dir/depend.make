# Empty dependencies file for bench_fig14_phases.
# This may be replaced when dependencies are built.
