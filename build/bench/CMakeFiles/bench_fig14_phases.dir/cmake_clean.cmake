file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_phases.dir/bench_fig14_phases.cc.o"
  "CMakeFiles/bench_fig14_phases.dir/bench_fig14_phases.cc.o.d"
  "bench_fig14_phases"
  "bench_fig14_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
