file(REMOVE_RECURSE
  "CMakeFiles/bench_mst_micro.dir/bench_mst_micro.cc.o"
  "CMakeFiles/bench_mst_micro.dir/bench_mst_micro.cc.o.d"
  "bench_mst_micro"
  "bench_mst_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mst_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
