# Empty dependencies file for bench_mst_micro.
# This may be replaced when dependencies are built.
