# Empty dependencies file for bench_ablation_quicksort.
# This may be replaced when dependencies are built.
