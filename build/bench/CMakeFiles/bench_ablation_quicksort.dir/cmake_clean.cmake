file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quicksort.dir/bench_ablation_quicksort.cc.o"
  "CMakeFiles/bench_ablation_quicksort.dir/bench_ablation_quicksort.cc.o.d"
  "bench_ablation_quicksort"
  "bench_ablation_quicksort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quicksort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
