file(REMOVE_RECURSE
  "CMakeFiles/counted_btree_test.dir/counted_btree_test.cc.o"
  "CMakeFiles/counted_btree_test.dir/counted_btree_test.cc.o.d"
  "counted_btree_test"
  "counted_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counted_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
