# Empty compiler generated dependencies file for counted_btree_test.
# This may be replaced when dependencies are built.
