# Empty compiler generated dependencies file for annotated_mst_test.
# This may be replaced when dependencies are built.
