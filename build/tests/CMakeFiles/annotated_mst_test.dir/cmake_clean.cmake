file(REMOVE_RECURSE
  "CMakeFiles/annotated_mst_test.dir/annotated_mst_test.cc.o"
  "CMakeFiles/annotated_mst_test.dir/annotated_mst_test.cc.o.d"
  "annotated_mst_test"
  "annotated_mst_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotated_mst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
