file(REMOVE_RECURSE
  "CMakeFiles/baseline_engines_test.dir/baseline_engines_test.cc.o"
  "CMakeFiles/baseline_engines_test.dir/baseline_engines_test.cc.o.d"
  "baseline_engines_test"
  "baseline_engines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_engines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
