file(REMOVE_RECURSE
  "CMakeFiles/segment_tree_test.dir/segment_tree_test.cc.o"
  "CMakeFiles/segment_tree_test.dir/segment_tree_test.cc.o.d"
  "segment_tree_test"
  "segment_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
