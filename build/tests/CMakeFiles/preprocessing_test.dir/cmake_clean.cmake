file(REMOVE_RECURSE
  "CMakeFiles/preprocessing_test.dir/preprocessing_test.cc.o"
  "CMakeFiles/preprocessing_test.dir/preprocessing_test.cc.o.d"
  "preprocessing_test"
  "preprocessing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preprocessing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
