# Empty dependencies file for preprocessing_test.
# This may be replaced when dependencies are built.
