file(REMOVE_RECURSE
  "CMakeFiles/window_functions_test.dir/window_functions_test.cc.o"
  "CMakeFiles/window_functions_test.dir/window_functions_test.cc.o.d"
  "window_functions_test"
  "window_functions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
