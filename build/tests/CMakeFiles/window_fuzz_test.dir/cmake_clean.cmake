file(REMOVE_RECURSE
  "CMakeFiles/window_fuzz_test.dir/window_fuzz_test.cc.o"
  "CMakeFiles/window_fuzz_test.dir/window_fuzz_test.cc.o.d"
  "window_fuzz_test"
  "window_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
