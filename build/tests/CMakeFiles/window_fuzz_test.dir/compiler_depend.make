# Empty compiler generated dependencies file for window_fuzz_test.
# This may be replaced when dependencies are built.
