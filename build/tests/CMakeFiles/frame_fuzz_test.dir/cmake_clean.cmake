file(REMOVE_RECURSE
  "CMakeFiles/frame_fuzz_test.dir/frame_fuzz_test.cc.o"
  "CMakeFiles/frame_fuzz_test.dir/frame_fuzz_test.cc.o.d"
  "frame_fuzz_test"
  "frame_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
