# Empty compiler generated dependencies file for frame_fuzz_test.
# This may be replaced when dependencies are built.
