file(REMOVE_RECURSE
  "CMakeFiles/merge_sort_tree_test.dir/merge_sort_tree_test.cc.o"
  "CMakeFiles/merge_sort_tree_test.dir/merge_sort_tree_test.cc.o.d"
  "merge_sort_tree_test"
  "merge_sort_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_sort_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
