# Empty dependencies file for merge_sort_tree_test.
# This may be replaced when dependencies are built.
