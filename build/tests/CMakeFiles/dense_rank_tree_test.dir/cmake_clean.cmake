file(REMOVE_RECURSE
  "CMakeFiles/dense_rank_tree_test.dir/dense_rank_tree_test.cc.o"
  "CMakeFiles/dense_rank_tree_test.dir/dense_rank_tree_test.cc.o.d"
  "dense_rank_tree_test"
  "dense_rank_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_rank_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
