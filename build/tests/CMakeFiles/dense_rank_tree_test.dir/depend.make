# Empty dependencies file for dense_rank_tree_test.
# This may be replaced when dependencies are built.
