#ifndef HWF_OBS_METRICS_H_
#define HWF_OBS_METRICS_H_

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace hwf {
namespace obs {

/// Label set of one time series, rendered as {k="v",...} in registration
/// order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// A Prometheus text-exposition (version 0.0.4) metric registry.
///
/// Sources are registered once (typically at server startup) and sampled
/// lazily on every RenderText() call, so a scrape always reflects the
/// current state without any push-side bookkeeping:
///   - counters and gauges are std::function<double()> callbacks;
///   - summaries wrap a LatencyHistogram and render p50/p90/p99/p999 plus
///     _sum and _count from one snapshot per scrape.
///
/// Series with the same metric name form one family: a single # HELP /
/// # TYPE header followed by every series, which is exactly the grouping
/// the exposition format requires. Registering the same name with a
/// different type is a programming error and is surfaced by RenderText()
/// rendering only the first-registered type.
class MetricsRegistry {
 public:
  using ValueFn = std::function<double()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// A monotonically non-decreasing value. `name` must end in "_total"
  /// (Prometheus counter convention; the bundled linter enforces it).
  void AddCounter(const std::string& name, const std::string& help,
                  MetricLabels labels, ValueFn value);

  /// A point-in-time value that can go up and down.
  void AddGauge(const std::string& name, const std::string& help,
                MetricLabels labels, ValueFn value);

  /// A latency distribution rendered as a summary. Recorded values are
  /// multiplied by `value_scale` on export (e.g. 1e-6 for histograms that
  /// record microseconds but export seconds). The histogram must outlive
  /// the registry.
  void AddSummary(const std::string& name, const std::string& help,
                  MetricLabels labels, const LatencyHistogram* histogram,
                  double value_scale);

  /// Renders every registered family in Prometheus text exposition format.
  /// Thread-safe against concurrent renders and registrations.
  std::string RenderText() const;

 private:
  struct Series {
    MetricLabels labels;
    ValueFn value;                              // counter / gauge
    const LatencyHistogram* histogram = nullptr;  // summary
    double value_scale = 1.0;
  };
  struct Family {
    std::string name;
    std::string help;
    const char* type;  // "counter" | "gauge" | "summary"
    std::vector<Series> series;
  };

  Family& FamilyFor(const std::string& name, const std::string& help,
                    const char* type);

  mutable std::mutex mutex_;
  std::vector<Family> families_;  // render order = registration order
  std::unordered_map<std::string, size_t> index_;
};

/// Replaces every character outside [a-zA-Z0-9_] with '_' (Prometheus
/// metric-name alphabet; dotted obs counter names become snake paths).
std::string SanitizeMetricName(const std::string& name);

/// Registers every process-wide obs::Counter as a counter named
/// "hwf_<sanitized dotted name>_total" (e.g. "pool.tasks_submitted" ->
/// "hwf_pool_tasks_submitted_total").
void RegisterProcessCounters(MetricsRegistry* registry);

}  // namespace obs
}  // namespace hwf

#endif  // HWF_OBS_METRICS_H_
