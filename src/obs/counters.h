#ifndef HWF_OBS_COUNTERS_H_
#define HWF_OBS_COUNTERS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hwf {
namespace obs {

/// Process-wide event counters, one relaxed atomic per slot.
///
/// Counters are always compiled in (unlike trace spans): each increment is a
/// single relaxed fetch_add on a dedicated cache line, cheap enough for the
/// library's per-task / per-run granularity. Hot loops batch their deltas
/// (e.g. one add per merged run, not per element). Counters only ever grow;
/// consumers that want per-execution numbers capture a snapshot before and
/// after and subtract (ExecutionProfile does exactly that).
enum class Counter : size_t {
  // Parallel runtime.
  kPoolTasksSubmitted,    // tasks enqueued on a ThreadPool
  kPoolTasksRunByCaller,  // queued tasks executed by a waiting/helping thread
  kPoolIdleWakeups,       // waits that woke up and found nothing to do
  kParallelForMorsels,    // morsels claimed by ParallelFor runners

  // Parallel sort (offset-value-coded merge kernel).
  kSortComparisons,   // element comparisons performed by OVC-coded merges
  kSortOvcResolved,   // comparisons resolved by the code compare alone

  // Merge sort tree build.
  kMstLevelsBuilt,          // tree levels constructed (above level 0)
  kMstMergeElementsMoved,   // elements written by level merges
  kMstLevelBytesAllocated,  // bytes allocated for level data + cascades
  kMstPreprocessFusedRows,  // rows preprocessed by the fused pipeline

  // Merge sort tree probe.
  kMstCascadeLookups,           // child searches narrowed by cascade samples
  kMstBinarySearchFallbacks,    // child searches over the full child run
  kMstProbeBatches,             // batched probe kernel invocations
  kMstProbeBatchQueries,        // queries answered by the batch kernel
  kMstProbeBatchRounds,         // lockstep rounds executed by the kernel
  kMstProbePrefetches,          // software prefetches issued by the kernel

  // Window executor.
  kExecutorPartitions,        // partitions processed
  kExecutorIndex32Dispatches, // per-partition 32-bit index-width decisions
  kExecutorIndex64Dispatches, // per-partition 64-bit index-width decisions
  kExecutorSortsShared,       // specs served by another spec's sort (any reuse)
  kExecutorSortsElided,       // subset reused verbatim (identical ORDER BY)
  kExecutorHashPartitionedRows, // rows routed through the hash partitioner

  // Memory governance / spilling.
  kMemSpillFilesCreated,          // temp files opened for spilled runs/levels
  kMemSpillBytesWritten,          // bytes written to spill files
  kMemSpillBytesRead,             // bytes read back from spill files
  kMemBudgetDeniedReservations,   // TryReserve calls rejected by the budget
  kMemForcedOverBudgetBytes,      // bytes reserved past the limit (degrade)
  kMemMstLevelsEvicted,           // MST levels evicted to spill files
  kMemExternalSortRuns,           // sorted runs written by the external sort

  // Cross-query tree cache (src/mst/tree_cache.h).
  kCacheHits,         // lookups answered from the cache
  kCacheMisses,       // lookups that had to build
  kCacheEvictions,    // entries evicted by the byte cap
  kCacheInsertBytes,  // bytes admitted into the cache

  // Query service (src/service/).
  kServiceQueriesAdmitted,   // queries accepted into the run queue
  kServiceQueriesRejected,   // queries refused by admission control
  kServiceQueriesCancelled,  // queries stopped by cancel or deadline
  kServiceQueriesCompleted,  // queries finished successfully
  kServiceRejectedQueueFull, // rejections caused by a full admission queue
  kServiceRejectedMemory,    // rejections caused by the memory reservation

  // Streaming ingest (src/ingest/).
  kIngestRowsAppended,        // rows accepted by APPEND batches
  kIngestRowsUpserted,        // rows accepted by UPSERT batches
  kIngestBatches,             // APPEND/UPSERT batches applied
  kIngestCompactions,         // delta-into-base compactions completed
  kIngestCompactionsFailed,   // compactions cancelled or errored
  kIngestDeltaMerges,         // sort artifacts built by delta merge (not cold)
  kIngestMergedCursorBuilds,  // merged two-tree cursors built (no rebuild)

  kNumCounters,
};

inline constexpr size_t kNumCounters =
    static_cast<size_t>(Counter::kNumCounters);

/// Stable snake_case name of a counter ("pool.tasks_submitted", ...), used
/// as the JSON key in profile emission.
const char* CounterName(Counter counter);

namespace internal_counters {

/// One counter per cache line so concurrent increments of different
/// counters never false-share.
struct alignas(64) Slot {
  std::atomic<uint64_t> value{0};
};

extern Slot g_counters[kNumCounters];

}  // namespace internal_counters

/// Adds `delta` to `counter`. Relaxed; safe from any thread.
inline void Add(Counter counter, uint64_t delta = 1) noexcept {
  internal_counters::g_counters[static_cast<size_t>(counter)].value.fetch_add(
      delta, std::memory_order_relaxed);
}

/// Current value of `counter`.
inline uint64_t Value(Counter counter) noexcept {
  return internal_counters::g_counters[static_cast<size_t>(counter)]
      .value.load(std::memory_order_relaxed);
}

/// A plain copy of every counter at one point in time.
struct CounterSnapshot {
  std::array<uint64_t, kNumCounters> values{};

  uint64_t operator[](Counter counter) const {
    return values[static_cast<size_t>(counter)];
  }
};

/// Captures all counters.
CounterSnapshot SnapshotCounters() noexcept;

/// Per-counter difference `after - before` (counters are monotonic, so this
/// is the activity between the two snapshots).
CounterSnapshot SnapshotDelta(const CounterSnapshot& before,
                              const CounterSnapshot& after) noexcept;

/// Resets every counter to zero. Test-only: concurrent increments during a
/// reset are not atomically accounted; production readers should use
/// snapshots + deltas instead.
void ResetCountersForTest() noexcept;

/// Tracks counter activity since a baseline snapshot.
///
/// The shared snapshot-diff helper behind per-query attribution (what did
/// THIS query add to the process counters?) and the STATS / slow-query-log
/// reporting paths. Construction captures the baseline; Delta() reads the
/// live counters and subtracts; Rebase() moves the baseline to "now".
class CounterDeltaTracker {
 public:
  CounterDeltaTracker() : baseline_(SnapshotCounters()) {}

  /// Activity on every counter since the baseline.
  CounterSnapshot Delta() const {
    return SnapshotDelta(baseline_, SnapshotCounters());
  }

  /// Activity on one counter since the baseline.
  uint64_t DeltaOf(Counter counter) const {
    return Value(counter) - baseline_[counter];
  }

  /// Moves the baseline to the current counter values.
  void Rebase() { baseline_ = SnapshotCounters(); }

  const CounterSnapshot& baseline() const { return baseline_; }

 private:
  CounterSnapshot baseline_;
};

}  // namespace obs
}  // namespace hwf

#endif  // HWF_OBS_COUNTERS_H_
