#ifndef HWF_OBS_PROFILE_H_
#define HWF_OBS_PROFILE_H_

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/trace.h"

namespace hwf {
namespace obs {

/// The phase taxonomy of the paper's evaluation (Fig. 14), shared by the
/// window executor, the MST build, and the figure benchmarks so every
/// emitted profile decomposes the same way:
///   - kPartition: partition-boundary detection over the sorted input.
///   - kSort: the global (partition keys, order keys) sort.
///   - kPreprocess: Algorithm 1 — permutation / dense-code construction,
///     hash-array population, prevIdcs. The evaluators record this
///     themselves, and the executor subtracts it from kProbe, so kProbe
///     measures query answering only.
///   - kFrameResolve: per-row frame-bound resolution.
///   - kTreeBuild: merge sort tree level construction (per-level detail in
///     tree_level_seconds()).
///   - kProbe: computing results from the built structures.
///   - kSpill: writing sorted runs / evicted tree levels to spill files and
///     reading them back (only non-zero when a memory budget forces the
///     out-of-core path).
enum class ProfilePhase : size_t {
  kPartition,
  kSort,
  kPreprocess,
  kFrameResolve,
  kTreeBuild,
  kProbe,
  kSpill,
  kNumPhases,
};

inline constexpr size_t kNumProfilePhases =
    static_cast<size_t>(ProfilePhase::kNumPhases);

/// Stable snake_case name ("partition", "sort", ...), used as JSON key.
const char* ProfilePhaseName(ProfilePhase phase);

/// Aggregated cost profile of one window-function execution (or one
/// benchmark pipeline): per-phase wall seconds, per-tree-level build
/// seconds, and the counter activity between start and finish.
///
/// Producers accumulate concurrently (phase adds are mutex-protected and
/// cheap relative to the phases they describe). When partitions are
/// evaluated in parallel, per-partition phases sum CPU-style and can exceed
/// the wall total; with a serial pool they nest within it.
class ExecutionProfile {
 public:
  ExecutionProfile() = default;
  ExecutionProfile(const ExecutionProfile&) = delete;
  ExecutionProfile& operator=(const ExecutionProfile&) = delete;

  /// Forgets all recorded data (the executor clears the attached profile
  /// on entry, so one profile object can be reused across runs).
  void Clear();

  /// Adds wall seconds to a phase.
  void AddPhaseSeconds(ProfilePhase phase, double seconds);

  /// Adds wall seconds to tree level `level_index` (0 = level 1, the first
  /// merged level) and to the kTreeBuild phase.
  void AddTreeLevelSeconds(size_t level_index, double seconds);

  void SetRows(size_t rows);
  void SetPartitions(size_t partitions);
  void SetEngine(const std::string& engine);
  void SetTotalSeconds(double seconds);

  /// Memory-governance summary: the budget the run was given (0 =
  /// unlimited) and the high-water mark of reserved bytes. Peaks are a
  /// maximum, not a monotonic counter, so they live here instead of in the
  /// counter table (snapshot deltas would corrupt them).
  void SetMemoryLimitBytes(size_t bytes);
  void SetPeakReservedBytes(size_t bytes);

  /// Stores the counter activity since `before` (captured via
  /// SnapshotCounters() when the execution started).
  void CaptureCountersSince(const CounterSnapshot& before);

  double phase_seconds(ProfilePhase phase) const;
  std::vector<double> tree_level_seconds() const;
  double total_seconds() const;
  size_t rows() const;
  size_t partitions() const;
  size_t memory_limit_bytes() const;
  size_t peak_reserved_bytes() const;
  CounterSnapshot counters() const;

  /// Serializes the profile as one JSON object:
  /// {"rows":..., "partitions":..., "engine":..., "total_seconds":...,
  ///  "phases": {"partition":..., ...}, "tree_build_levels": [...],
  ///  "counters": {"pool.tasks_submitted":..., ...}}
  std::string ToJson() const;

  /// Human-readable table: phases with shares of the total, per-level tree
  /// build times, and non-zero counters.
  std::string Explain() const;

 private:
  mutable std::mutex mutex_;
  double phases_[kNumProfilePhases] = {};
  std::vector<double> tree_levels_;
  double total_seconds_ = 0;
  size_t rows_ = 0;
  size_t partitions_ = 0;
  size_t memory_limit_bytes_ = 0;
  size_t peak_reserved_bytes_ = 0;
  std::string engine_;
  CounterSnapshot counters_{};
};

/// RAII phase timer: adds the scope's wall time to `profile` (when
/// non-null) and emits a trace span named after the phase. Reads the clock
/// only when it has somewhere to report to.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(ExecutionProfile* profile, ProfilePhase phase)
      : profile_(profile),
        phase_(phase),
        trace_(ProfilePhaseTraceName(phase)) {
    if (profile_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

  ~ScopedPhaseTimer() {
    if (profile_ != nullptr) {
      profile_->AddPhaseSeconds(
          phase_, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
    }
  }

  /// "window.partition", "window.sort", ... — the span names the phases
  /// trace under (distinct from the JSON keys, which drop the prefix).
  static const char* ProfilePhaseTraceName(ProfilePhase phase);

 private:
  ExecutionProfile* profile_;
  ProfilePhase phase_;
  TraceScope trace_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace hwf

#endif  // HWF_OBS_PROFILE_H_
