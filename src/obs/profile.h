#ifndef HWF_OBS_PROFILE_H_
#define HWF_OBS_PROFILE_H_

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/trace.h"

namespace hwf {
namespace obs {

/// The phase taxonomy of the paper's evaluation (Fig. 14), shared by the
/// window executor, the MST build, and the figure benchmarks so every
/// emitted profile decomposes the same way:
///   - kPartition: partition-boundary detection over the sorted input.
///   - kSort: the global (partition keys, order keys) sort.
///   - kPreprocess: Algorithm 1 — permutation / dense-code construction,
///     hash-array population, prevIdcs. The evaluators record this
///     themselves, and the executor subtracts it from kProbe, so kProbe
///     measures query answering only.
///   - kFrameResolve: per-row frame-bound resolution.
///   - kTreeBuild: merge sort tree level construction (per-level detail in
///     tree_level_seconds()).
///   - kProbe: computing results from the built structures.
///   - kSpill: writing sorted runs / evicted tree levels to spill files and
///     reading them back (only non-zero when a memory budget forces the
///     out-of-core path).
///   - kDeltaMerge: the streaming-ingest increment — sorting freshly
///     appended delta rows and stably merging them into a cached base sort
///     artifact (only non-zero on the first query after an append; replaces
///     kSort, which stays 0 on that path).
enum class ProfilePhase : size_t {
  kPartition,
  kSort,
  kPreprocess,
  kFrameResolve,
  kTreeBuild,
  kProbe,
  kSpill,
  kDeltaMerge,
  kNumPhases,
};

inline constexpr size_t kNumProfilePhases =
    static_cast<size_t>(ProfilePhase::kNumPhases);

/// Stable snake_case name ("partition", "sort", ...), used as JSON key.
const char* ProfilePhaseName(ProfilePhase phase);

/// Sub-steps of kPreprocess, so the fused pipeline's internals are
/// individually visible (kPreprocess itself is unchanged — sub-step
/// seconds are an orthogonal breakdown recorded alongside it):
///   - kGatherCodes: hashing/encoding argument or order-key columns into
///     the sortable records.
///   - kRecordSort: the one shared (key, position) record sort.
///   - kEmitArtifacts: the morsel-parallel pass emitting permutation,
///     dense/unique codes, prevIdcs and nextIdcs from the sorted records.
///   - kLegacy: evaluators that fell back to the unfused reference path
///     (generic comparators the fused pipeline cannot encode).
enum class PreprocessStep : size_t {
  kGatherCodes,
  kRecordSort,
  kEmitArtifacts,
  kLegacy,
  kNumSteps,
};

inline constexpr size_t kNumPreprocessSteps =
    static_cast<size_t>(PreprocessStep::kNumSteps);

/// Stable snake_case name ("gather_codes", ...), used as JSON key.
const char* PreprocessStepName(PreprocessStep step);

/// Aggregated cost profile of one window-function execution (or one
/// benchmark pipeline): per-phase wall seconds, per-tree-level build
/// seconds, and the counter activity between start and finish.
///
/// Producers accumulate concurrently (phase adds are mutex-protected and
/// cheap relative to the phases they describe). When partitions are
/// evaluated in parallel, per-partition phases sum CPU-style and can exceed
/// the wall total; with a serial pool they nest within it.
class ExecutionProfile {
 public:
  ExecutionProfile() = default;
  ExecutionProfile(const ExecutionProfile&) = delete;
  ExecutionProfile& operator=(const ExecutionProfile&) = delete;

  /// Forgets all recorded data (the executor clears the attached profile
  /// on entry, so one profile object can be reused across runs).
  void Clear();

  /// Adds wall seconds to a phase.
  void AddPhaseSeconds(ProfilePhase phase, double seconds);

  /// Adds wall seconds to tree level `level_index` (0 = level 1, the first
  /// merged level) and to the kTreeBuild phase.
  void AddTreeLevelSeconds(size_t level_index, double seconds);

  /// Adds wall seconds to a kPreprocess sub-step (does NOT touch the
  /// kPreprocess phase total — evaluators time that separately around the
  /// whole preprocessing block).
  void AddPreprocessStepSeconds(PreprocessStep step, double seconds);

  void SetRows(size_t rows);
  void SetPartitions(size_t partitions);
  void SetEngine(const std::string& engine);
  void SetTotalSeconds(double seconds);

  /// Human-readable execution plan (the executor's shared-sort / hash-
  /// partition decisions, one line per sort chain). Rendered verbatim in
  /// Explain() and as an escaped "plan" string in ToJson().
  void SetPlanText(const std::string& plan);
  std::string plan_text() const;

  /// Memory-governance summary: the budget the run was given (0 =
  /// unlimited) and the high-water mark of reserved bytes. Peaks are a
  /// maximum, not a monotonic counter, so they live here instead of in the
  /// counter table (snapshot deltas would corrupt them).
  void SetMemoryLimitBytes(size_t bytes);
  void SetPeakReservedBytes(size_t bytes);

  /// Stores the counter activity since `before` (captured via
  /// SnapshotCounters() when the execution started).
  void CaptureCountersSince(const CounterSnapshot& before);

  double phase_seconds(ProfilePhase phase) const;
  double preprocess_step_seconds(PreprocessStep step) const;
  std::vector<double> tree_level_seconds() const;
  double total_seconds() const;
  size_t rows() const;
  size_t partitions() const;
  size_t memory_limit_bytes() const;
  size_t peak_reserved_bytes() const;
  CounterSnapshot counters() const;

  /// Serializes the profile as one JSON object:
  /// {"rows":..., "partitions":..., "engine":..., "total_seconds":...,
  ///  "phases": {"partition":..., ...}, "tree_build_levels": [...],
  ///  "counters": {"pool.tasks_submitted":..., ...}}
  std::string ToJson() const;

  /// Human-readable table: phases with shares of the total, per-level tree
  /// build times, and non-zero counters.
  std::string Explain() const;

 private:
  mutable std::mutex mutex_;
  double phases_[kNumProfilePhases] = {};
  double preprocess_steps_[kNumPreprocessSteps] = {};
  std::vector<double> tree_levels_;
  double total_seconds_ = 0;
  size_t rows_ = 0;
  size_t partitions_ = 0;
  size_t memory_limit_bytes_ = 0;
  size_t peak_reserved_bytes_ = 0;
  std::string engine_;
  std::string plan_text_;
  CounterSnapshot counters_{};
};

/// RAII phase timer: adds the scope's wall time to `profile` (when
/// non-null) and emits a trace span named after the phase. Reads the clock
/// only when it has somewhere to report to.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(ExecutionProfile* profile, ProfilePhase phase)
      : profile_(profile),
        phase_(phase),
        trace_(ProfilePhaseTraceName(phase)) {
    if (profile_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

  ~ScopedPhaseTimer() {
    if (profile_ != nullptr) {
      profile_->AddPhaseSeconds(
          phase_, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
    }
  }

  /// "window.partition", "window.sort", ... — the span names the phases
  /// trace under (distinct from the JSON keys, which drop the prefix).
  static const char* ProfilePhaseTraceName(ProfilePhase phase);

 private:
  ExecutionProfile* profile_;
  ProfilePhase phase_;
  TraceScope trace_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII timer for a kPreprocess sub-step: adds the scope's wall time to the
/// sub-step breakdown and emits a "window.preprocess.<step>" trace span.
/// Nested inside the evaluators' kPreprocess ScopedPhaseTimer.
class ScopedPreprocessStepTimer {
 public:
  ScopedPreprocessStepTimer(ExecutionProfile* profile, PreprocessStep step)
      : profile_(profile), step_(step), trace_(StepTraceName(step)) {
    if (profile_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedPreprocessStepTimer(const ScopedPreprocessStepTimer&) = delete;
  ScopedPreprocessStepTimer& operator=(const ScopedPreprocessStepTimer&) =
      delete;

  ~ScopedPreprocessStepTimer() {
    if (profile_ != nullptr) {
      profile_->AddPreprocessStepSeconds(
          step_, std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
    }
  }

  static const char* StepTraceName(PreprocessStep step);

 private:
  ExecutionProfile* profile_;
  PreprocessStep step_;
  TraceScope trace_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace hwf

#endif  // HWF_OBS_PROFILE_H_
