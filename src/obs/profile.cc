#include "obs/profile.h"

#include <cstdio>

namespace hwf {
namespace obs {

const char* ProfilePhaseName(ProfilePhase phase) {
  switch (phase) {
    case ProfilePhase::kPartition:
      return "partition";
    case ProfilePhase::kSort:
      return "sort";
    case ProfilePhase::kPreprocess:
      return "preprocess";
    case ProfilePhase::kFrameResolve:
      return "frame_resolve";
    case ProfilePhase::kTreeBuild:
      return "tree_build";
    case ProfilePhase::kProbe:
      return "probe";
    case ProfilePhase::kSpill:
      return "spill";
    case ProfilePhase::kDeltaMerge:
      return "delta_merge";
    case ProfilePhase::kNumPhases:
      break;
  }
  return "unknown";
}

const char* PreprocessStepName(PreprocessStep step) {
  switch (step) {
    case PreprocessStep::kGatherCodes:
      return "gather_codes";
    case PreprocessStep::kRecordSort:
      return "record_sort";
    case PreprocessStep::kEmitArtifacts:
      return "emit_artifacts";
    case PreprocessStep::kLegacy:
      return "legacy";
    case PreprocessStep::kNumSteps:
      break;
  }
  return "unknown";
}

const char* ScopedPreprocessStepTimer::StepTraceName(PreprocessStep step) {
  switch (step) {
    case PreprocessStep::kGatherCodes:
      return "window.preprocess.gather_codes";
    case PreprocessStep::kRecordSort:
      return "window.preprocess.record_sort";
    case PreprocessStep::kEmitArtifacts:
      return "window.preprocess.emit_artifacts";
    case PreprocessStep::kLegacy:
      return "window.preprocess.legacy";
    case PreprocessStep::kNumSteps:
      break;
  }
  return "window.preprocess.unknown";
}

const char* ScopedPhaseTimer::ProfilePhaseTraceName(ProfilePhase phase) {
  switch (phase) {
    case ProfilePhase::kPartition:
      return "window.partition";
    case ProfilePhase::kSort:
      return "window.sort";
    case ProfilePhase::kPreprocess:
      return "window.preprocess";
    case ProfilePhase::kFrameResolve:
      return "window.frame_resolve";
    case ProfilePhase::kTreeBuild:
      return "window.tree_build";
    case ProfilePhase::kProbe:
      return "window.probe";
    case ProfilePhase::kSpill:
      return "window.spill";
    case ProfilePhase::kDeltaMerge:
      return "window.delta_merge";
    case ProfilePhase::kNumPhases:
      break;
  }
  return "window.unknown";
}

void ExecutionProfile::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (double& seconds : phases_) seconds = 0;
  for (double& seconds : preprocess_steps_) seconds = 0;
  tree_levels_.clear();
  total_seconds_ = 0;
  rows_ = 0;
  partitions_ = 0;
  memory_limit_bytes_ = 0;
  peak_reserved_bytes_ = 0;
  engine_.clear();
  plan_text_.clear();
  counters_ = CounterSnapshot{};
}

void ExecutionProfile::AddPhaseSeconds(ProfilePhase phase, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  phases_[static_cast<size_t>(phase)] += seconds;
}

void ExecutionProfile::AddTreeLevelSeconds(size_t level_index,
                                           double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tree_levels_.size() <= level_index) {
    tree_levels_.resize(level_index + 1, 0.0);
  }
  tree_levels_[level_index] += seconds;
  phases_[static_cast<size_t>(ProfilePhase::kTreeBuild)] += seconds;
}

void ExecutionProfile::AddPreprocessStepSeconds(PreprocessStep step,
                                                double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  preprocess_steps_[static_cast<size_t>(step)] += seconds;
}

void ExecutionProfile::SetRows(size_t rows) {
  std::lock_guard<std::mutex> lock(mutex_);
  rows_ = rows;
}

void ExecutionProfile::SetPartitions(size_t partitions) {
  std::lock_guard<std::mutex> lock(mutex_);
  partitions_ = partitions;
}

void ExecutionProfile::SetEngine(const std::string& engine) {
  std::lock_guard<std::mutex> lock(mutex_);
  engine_ = engine;
}

void ExecutionProfile::SetTotalSeconds(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  total_seconds_ = seconds;
}

void ExecutionProfile::SetPlanText(const std::string& plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_text_ = plan;
}

std::string ExecutionProfile::plan_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_text_;
}

void ExecutionProfile::SetMemoryLimitBytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  memory_limit_bytes_ = bytes;
}

void ExecutionProfile::SetPeakReservedBytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  peak_reserved_bytes_ = bytes;
}

void ExecutionProfile::CaptureCountersSince(const CounterSnapshot& before) {
  const CounterSnapshot after = SnapshotCounters();
  std::lock_guard<std::mutex> lock(mutex_);
  counters_ = SnapshotDelta(before, after);
}

double ExecutionProfile::phase_seconds(ProfilePhase phase) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phases_[static_cast<size_t>(phase)];
}

double ExecutionProfile::preprocess_step_seconds(PreprocessStep step) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return preprocess_steps_[static_cast<size_t>(step)];
}

std::vector<double> ExecutionProfile::tree_level_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tree_levels_;
}

double ExecutionProfile::total_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_seconds_;
}

size_t ExecutionProfile::rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_;
}

size_t ExecutionProfile::partitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return partitions_;
}

size_t ExecutionProfile::memory_limit_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memory_limit_bytes_;
}

size_t ExecutionProfile::peak_reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_reserved_bytes_;
}

CounterSnapshot ExecutionProfile::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

namespace {

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  out->append(buf);
}

void AppendJsonEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string ExecutionProfile::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string json = "{";
  json += "\"rows\": " + std::to_string(rows_);
  json += ", \"partitions\": " + std::to_string(partitions_);
  json += ", \"engine\": \"" + engine_ + "\"";
  if (!plan_text_.empty()) {
    json += ", \"plan\": \"";
    AppendJsonEscaped(&json, plan_text_);
    json += "\"";
  }
  json += ", \"total_seconds\": ";
  AppendDouble(&json, total_seconds_);
  json += ", \"memory_limit_bytes\": " + std::to_string(memory_limit_bytes_);
  json += ", \"peak_reserved_bytes\": " + std::to_string(peak_reserved_bytes_);
  json += ", \"phases\": {";
  for (size_t i = 0; i < kNumProfilePhases; ++i) {
    if (i > 0) json += ", ";
    json += "\"";
    json += ProfilePhaseName(static_cast<ProfilePhase>(i));
    json += "\": ";
    AppendDouble(&json, phases_[i]);
  }
  json += "}, \"preprocess_steps\": {";
  for (size_t i = 0; i < kNumPreprocessSteps; ++i) {
    if (i > 0) json += ", ";
    json += "\"";
    json += PreprocessStepName(static_cast<PreprocessStep>(i));
    json += "\": ";
    AppendDouble(&json, preprocess_steps_[i]);
  }
  json += "}, \"tree_build_levels\": [";
  for (size_t i = 0; i < tree_levels_.size(); ++i) {
    if (i > 0) json += ", ";
    AppendDouble(&json, tree_levels_[i]);
  }
  json += "], \"counters\": {";
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (i > 0) json += ", ";
    json += "\"";
    json += CounterName(static_cast<Counter>(i));
    json += "\": " + std::to_string(counters_.values[i]);
  }
  json += "}}";
  return json;
}

std::string ExecutionProfile::Explain() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char line[160];

  std::snprintf(line, sizeof line, "Execution profile (%zu rows, %zu %s",
                rows_, partitions_,
                partitions_ == 1 ? "partition" : "partitions");
  out += line;
  if (!engine_.empty()) out += ", engine=" + engine_;
  out += ")\n";

  if (!plan_text_.empty()) {
    out += "  plan:\n";
    size_t begin = 0;
    while (begin < plan_text_.size()) {
      size_t end = plan_text_.find('\n', begin);
      if (end == std::string::npos) end = plan_text_.size();
      out += "    " + plan_text_.substr(begin, end - begin) + "\n";
      begin = end + 1;
    }
  }

  double accounted = 0;
  for (size_t i = 0; i < kNumProfilePhases; ++i) accounted += phases_[i];
  const double denom = total_seconds_ > 0 ? total_seconds_ : accounted;

  out += "  phase            seconds      share\n";
  for (size_t i = 0; i < kNumProfilePhases; ++i) {
    if (phases_[i] == 0) continue;
    std::snprintf(line, sizeof line, "  %-15s %10.6f   %6.1f%%\n",
                  ProfilePhaseName(static_cast<ProfilePhase>(i)), phases_[i],
                  denom > 0 ? 100.0 * phases_[i] / denom : 0.0);
    out += line;
  }
  if (total_seconds_ > 0) {
    std::snprintf(line, sizeof line, "  %-15s %10.6f\n", "total",
                  total_seconds_);
    out += line;
  }

  {
    bool steps_header = false;
    for (size_t i = 0; i < kNumPreprocessSteps; ++i) {
      if (preprocess_steps_[i] == 0) continue;
      if (!steps_header) {
        out += "  preprocess sub-steps:\n";
        steps_header = true;
      }
      std::snprintf(line, sizeof line, "    %-15s %10.6f s\n",
                    PreprocessStepName(static_cast<PreprocessStep>(i)),
                    preprocess_steps_[i]);
      out += line;
    }
  }

  if (memory_limit_bytes_ > 0 || peak_reserved_bytes_ > 0) {
    std::snprintf(line, sizeof line,
                  "  memory: limit %zu bytes, peak reserved %zu bytes\n",
                  memory_limit_bytes_, peak_reserved_bytes_);
    out += line;
  }

  if (!tree_levels_.empty()) {
    out += "  tree build by level:\n";
    for (size_t i = 0; i < tree_levels_.size(); ++i) {
      std::snprintf(line, sizeof line, "    level %-3zu %12.6f s\n", i + 1,
                    tree_levels_[i]);
      out += line;
    }
  }

  bool header_written = false;
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (counters_.values[i] == 0) continue;
    if (!header_written) {
      out += "  counters:\n";
      header_written = true;
    }
    std::snprintf(line, sizeof line, "    %-28s %llu\n",
                  CounterName(static_cast<Counter>(i)),
                  static_cast<unsigned long long>(counters_.values[i]));
    out += line;
  }
  return out;
}

}  // namespace obs
}  // namespace hwf
