#include "obs/histogram.h"

#include <cmath>

namespace hwf {
namespace obs {

using histogram_buckets::BucketLowerBound;
using histogram_buckets::BucketUpperBound;
using histogram_buckets::kNumBuckets;

HistogramSnapshot::HistogramSnapshot() : buckets(kNumBuckets, 0) {}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the q-quantile among the recorded values, 1-based: the same
  // ceil(q * n) rule an exact sorted reference uses, so histogram and
  // reference always land in the same bucket.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      const uint64_t lower = BucketLowerBound(i);
      const uint64_t upper = BucketUpperBound(i);
      // Midpoint of [lower, upper): exact for width-1 buckets, at most the
      // half-width off otherwise.
      return static_cast<double>(lower) +
             (static_cast<double>(upper - lower) - 1.0) / 2.0;
    }
  }
  return static_cast<double>(BucketLowerBound(kNumBuckets - 1));
}

double HistogramSnapshot::Mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    snapshot.buckets[i] = n;
    total += n;
  }
  snapshot.count = total;
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

uint64_t LatencyHistogram::Count() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace obs
}  // namespace hwf
