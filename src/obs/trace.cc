#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

namespace hwf {
namespace obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {
thread_local uint64_t t_query_id = 0;
}  // namespace

uint64_t CurrentQueryId() { return t_query_id; }

ScopedQueryId::ScopedQueryId(uint64_t query_id) : previous_(t_query_id) {
  t_query_id = query_id;
}

ScopedQueryId::~ScopedQueryId() { t_query_id = previous_; }

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // Leaked: outlives exiting threads.
  return *tracer;
}

void Tracer::Enable() { enabled_.store(true, std::memory_order_relaxed); }

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = static_cast<uint32_t>(buffers_.size());
    buffer = owned.get();
    buffers_.push_back(std::move(owned));
  }
  return buffer;
}

void Tracer::Record(const TraceEvent& event) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mutex);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent copy = event;
  copy.tid = buffer->tid;
  buffer->events.push_back(copy);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> merged;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return merged;
}

namespace {

/// Escapes a name for inclusion in a JSON string literal. Span names are
/// static identifiers, so this only guards against the unexpected.
void AppendJsonEscaped(std::string* out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendMicros(std::string* out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out->append(buf);
}

}  // namespace

std::string Tracer::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  uint64_t epoch = std::numeric_limits<uint64_t>::max();
  uint32_t max_tid = 0;
  for (const TraceEvent& event : events) {
    epoch = std::min(epoch, event.start_ns);
    max_tid = std::max(max_tid, event.tid);
  }
  if (events.empty()) epoch = 0;

  std::string json = "{\"traceEvents\": [";
  bool first = true;
  // Thread-name metadata so Perfetto labels the tracks.
  for (uint32_t tid = 0; events.size() > 0 && tid <= max_tid; ++tid) {
    if (!first) json += ",";
    first = false;
    json += "\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
            "\"tid\": " +
            std::to_string(tid) +
            ", \"args\": {\"name\": \"hwf-thread-" + std::to_string(tid) +
            "\"}}";
  }
  for (const TraceEvent& event : events) {
    if (!first) json += ",";
    first = false;
    json += "\n  {\"name\": \"";
    AppendJsonEscaped(&json, event.name);
    json += "\", \"cat\": \"hwf\", \"ph\": \"X\", \"ts\": ";
    AppendMicros(&json, event.start_ns - epoch);
    json += ", \"dur\": ";
    AppendMicros(&json, event.dur_ns);
    json += ", \"pid\": 1, \"tid\": " + std::to_string(event.tid);
    if (event.arg_name != nullptr || event.query_id != 0) {
      json += ", \"args\": {";
      if (event.arg_name != nullptr) {
        json += "\"";
        AppendJsonEscaped(&json, event.arg_name);
        json += "\": " + std::to_string(event.arg_value);
        if (event.query_id != 0) json += ", ";
      }
      if (event.query_id != 0) {
        json += "\"query\": " + std::to_string(event.query_id);
      }
      json += "}";
    }
    json += "}";
  }
  json += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return json;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ToChromeTraceJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != json.size() || !close_ok) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::OK();
}

void TraceScope::Start(const char* name, const char* arg_name,
                       int64_t arg_value) {
  name_ = name;
  arg_name_ = arg_name;
  arg_value_ = arg_value;
  query_id_ = t_query_id;
  start_ns_ = NowNs();
}

void TraceScope::Finish() {
  if (!Tracer::IsEnabled()) return;  // Disabled mid-span: drop it.
  TraceEvent event;
  event.name = name_;
  event.arg_name = arg_name_;
  event.arg_value = arg_value_;
  event.start_ns = start_ns_;
  event.dur_ns = NowNs() - start_ns_;
  event.query_id = query_id_;
  Tracer::Get().Record(event);
}

}  // namespace obs
}  // namespace hwf
