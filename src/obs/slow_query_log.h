#ifndef HWF_OBS_SLOW_QUERY_LOG_H_
#define HWF_OBS_SLOW_QUERY_LOG_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace hwf {
namespace obs {

/// Append-only JSON-lines sink for slow-query records.
///
/// Each Append writes exactly one newline-terminated line under a mutex and
/// flushes it, so concurrent sessions never interleave bytes and a crashed
/// (or killed) process leaves no truncated record behind the last flush.
/// Close() is idempotent and also run by the destructor, giving the server's
/// graceful-shutdown path a clean final flush.
class SlowQueryLog {
 public:
  SlowQueryLog() = default;
  ~SlowQueryLog();

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Opens `path` for appending (creating it if needed). Reopening an open
  /// log closes the previous file first.
  Status Open(const std::string& path);

  bool enabled() const;

  /// Writes one record (a complete JSON object, no trailing newline) as a
  /// single line. No-op when the log is not open.
  void Append(std::string_view json_object);

  /// Flushes and closes the file. Idempotent.
  void Close();

 private:
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

/// Escapes `text` for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared by the slow-query log record
/// builder and the retained-profile serializer.
std::string JsonEscaped(std::string_view text);

}  // namespace obs
}  // namespace hwf

#endif  // HWF_OBS_SLOW_QUERY_LOG_H_
