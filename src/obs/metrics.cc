#include "obs/metrics.h"

#include <cctype>
#include <cstdio>

#include "obs/counters.h"

namespace hwf {
namespace obs {

namespace {

/// Quantiles every summary exports, matching the service-grade defaults
/// (median, tail, deep tail).
constexpr double kSummaryQuantiles[] = {0.5, 0.9, 0.99, 0.999};
constexpr const char* kSummaryQuantileLabels[] = {"0.5", "0.9", "0.99",
                                                  "0.999"};

void AppendMetricValue(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  out->append(buf);
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
void AppendEscapedLabelValue(std::string* out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

/// Renders `name{labels...}` with an optional extra label appended (the
/// summary quantile). An empty label set renders as a bare name.
void AppendSeriesName(std::string* out, const std::string& name,
                      const MetricLabels& labels, const char* extra_key,
                      const char* extra_value) {
  out->append(name);
  const bool any = !labels.empty() || extra_key != nullptr;
  if (!any) return;
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out->push_back(',');
    first = false;
    out->append(key);
    out->append("=\"");
    AppendEscapedLabelValue(out, value);
    out->push_back('"');
  }
  if (extra_key != nullptr) {
    if (!first) out->push_back(',');
    out->append(extra_key);
    out->append("=\"");
    out->append(extra_value);
    out->push_back('"');
  }
  out->push_back('}');
}

/// Escapes a HELP string: backslash and newline (quotes are fine there).
void AppendEscapedHelp(std::string* out, const std::string& help) {
  for (const char c : help) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

MetricsRegistry::Family& MetricsRegistry::FamilyFor(const std::string& name,
                                                    const std::string& help,
                                                    const char* type) {
  auto it = index_.find(name);
  if (it != index_.end()) return families_[it->second];
  index_.emplace(name, families_.size());
  families_.push_back(Family{name, help, type, {}});
  return families_.back();
}

void MetricsRegistry::AddCounter(const std::string& name,
                                 const std::string& help, MetricLabels labels,
                                 ValueFn value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, "counter");
  family.series.push_back(Series{std::move(labels), std::move(value),
                                 nullptr, 1.0});
}

void MetricsRegistry::AddGauge(const std::string& name,
                               const std::string& help, MetricLabels labels,
                               ValueFn value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, "gauge");
  family.series.push_back(Series{std::move(labels), std::move(value),
                                 nullptr, 1.0});
}

void MetricsRegistry::AddSummary(const std::string& name,
                                 const std::string& help, MetricLabels labels,
                                 const LatencyHistogram* histogram,
                                 double value_scale) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = FamilyFor(name, help, "summary");
  family.series.push_back(
      Series{std::move(labels), ValueFn(), histogram, value_scale});
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(4096);
  for (const Family& family : families_) {
    out.append("# HELP ");
    out.append(family.name);
    out.push_back(' ');
    AppendEscapedHelp(&out, family.help);
    out.push_back('\n');
    out.append("# TYPE ");
    out.append(family.name);
    out.push_back(' ');
    out.append(family.type);
    out.push_back('\n');
    for (const Series& series : family.series) {
      if (series.histogram == nullptr) {
        AppendSeriesName(&out, family.name, series.labels, nullptr, nullptr);
        out.push_back(' ');
        AppendMetricValue(&out, series.value ? series.value() : 0.0);
        out.push_back('\n');
        continue;
      }
      // Summary: one snapshot per scrape keeps the quantiles, sum and
      // count mutually consistent.
      const HistogramSnapshot snapshot = series.histogram->Snapshot();
      for (size_t q = 0; q < std::size(kSummaryQuantiles); ++q) {
        AppendSeriesName(&out, family.name, series.labels, "quantile",
                         kSummaryQuantileLabels[q]);
        out.push_back(' ');
        AppendMetricValue(
            &out, snapshot.Quantile(kSummaryQuantiles[q]) * series.value_scale);
        out.push_back('\n');
      }
      AppendSeriesName(&out, family.name + "_sum", series.labels, nullptr,
                       nullptr);
      out.push_back(' ');
      AppendMetricValue(&out,
                        static_cast<double>(snapshot.sum) * series.value_scale);
      out.push_back('\n');
      AppendSeriesName(&out, family.name + "_count", series.labels, nullptr,
                       nullptr);
      out.push_back(' ');
      AppendMetricValue(&out, static_cast<double>(snapshot.count));
      out.push_back('\n');
    }
  }
  return out;
}

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void RegisterProcessCounters(MetricsRegistry* registry) {
  for (size_t i = 0; i < kNumCounters; ++i) {
    const Counter counter = static_cast<Counter>(i);
    const std::string dotted = CounterName(counter);
    registry->AddCounter("hwf_" + SanitizeMetricName(dotted) + "_total",
                         "process-wide counter " + dotted, {},
                         [counter] { return static_cast<double>(Value(counter)); });
  }
}

}  // namespace obs
}  // namespace hwf
