#include "obs/counters.h"

namespace hwf {
namespace obs {

namespace internal_counters {

Slot g_counters[kNumCounters];

}  // namespace internal_counters

const char* CounterName(Counter counter) {
  switch (counter) {
    case Counter::kPoolTasksSubmitted:
      return "pool.tasks_submitted";
    case Counter::kPoolTasksRunByCaller:
      return "pool.tasks_run_by_caller";
    case Counter::kPoolIdleWakeups:
      return "pool.idle_wakeups";
    case Counter::kParallelForMorsels:
      return "parallel_for.morsels";
    case Counter::kSortComparisons:
      return "sort.comparisons";
    case Counter::kSortOvcResolved:
      return "sort.ovc_resolved";
    case Counter::kMstLevelsBuilt:
      return "mst.levels_built";
    case Counter::kMstMergeElementsMoved:
      return "mst.merge_elements_moved";
    case Counter::kMstLevelBytesAllocated:
      return "mst.level_bytes_allocated";
    case Counter::kMstPreprocessFusedRows:
      return "mst.preprocess_fused_rows";
    case Counter::kMstCascadeLookups:
      return "mst.cascade_lookups";
    case Counter::kMstBinarySearchFallbacks:
      return "mst.binary_search_fallbacks";
    case Counter::kMstProbeBatches:
      return "mst.probe.batches";
    case Counter::kMstProbeBatchQueries:
      return "mst.probe.batch_queries";
    case Counter::kMstProbeBatchRounds:
      return "mst.probe.batch_rounds";
    case Counter::kMstProbePrefetches:
      return "mst.probe.prefetches";
    case Counter::kExecutorPartitions:
      return "executor.partitions";
    case Counter::kExecutorIndex32Dispatches:
      return "executor.index32_dispatches";
    case Counter::kExecutorIndex64Dispatches:
      return "executor.index64_dispatches";
    case Counter::kExecutorSortsShared:
      return "executor.sorts_shared";
    case Counter::kExecutorSortsElided:
      return "executor.sorts_elided";
    case Counter::kExecutorHashPartitionedRows:
      return "executor.hash_partitioned_rows";
    case Counter::kMemSpillFilesCreated:
      return "mem.spill_files_created";
    case Counter::kMemSpillBytesWritten:
      return "mem.spill_bytes_written";
    case Counter::kMemSpillBytesRead:
      return "mem.spill_bytes_read";
    case Counter::kMemBudgetDeniedReservations:
      return "mem.budget_denied_reservations";
    case Counter::kMemForcedOverBudgetBytes:
      return "mem.forced_over_budget_bytes";
    case Counter::kMemMstLevelsEvicted:
      return "mem.mst_levels_evicted";
    case Counter::kMemExternalSortRuns:
      return "mem.external_sort_runs";
    case Counter::kCacheHits:
      return "cache.hits";
    case Counter::kCacheMisses:
      return "cache.misses";
    case Counter::kCacheEvictions:
      return "cache.evictions";
    case Counter::kCacheInsertBytes:
      return "cache.insert_bytes";
    case Counter::kServiceQueriesAdmitted:
      return "service.queries_admitted";
    case Counter::kServiceQueriesRejected:
      return "service.queries_rejected";
    case Counter::kServiceQueriesCancelled:
      return "service.queries_cancelled";
    case Counter::kServiceQueriesCompleted:
      return "service.queries_completed";
    case Counter::kServiceRejectedQueueFull:
      return "service.rejected_queue_full";
    case Counter::kServiceRejectedMemory:
      return "service.rejected_memory";
    case Counter::kIngestRowsAppended:
      return "ingest.rows_appended";
    case Counter::kIngestRowsUpserted:
      return "ingest.rows_upserted";
    case Counter::kIngestBatches:
      return "ingest.batches";
    case Counter::kIngestCompactions:
      return "ingest.compactions";
    case Counter::kIngestCompactionsFailed:
      return "ingest.compactions_failed";
    case Counter::kIngestDeltaMerges:
      return "ingest.delta_merges";
    case Counter::kIngestMergedCursorBuilds:
      return "ingest.merged_cursor_builds";
    case Counter::kNumCounters:
      break;
  }
  return "unknown";
}

CounterSnapshot SnapshotCounters() noexcept {
  CounterSnapshot snapshot;
  for (size_t i = 0; i < kNumCounters; ++i) {
    snapshot.values[i] = internal_counters::g_counters[i].value.load(
        std::memory_order_relaxed);
  }
  return snapshot;
}

CounterSnapshot SnapshotDelta(const CounterSnapshot& before,
                              const CounterSnapshot& after) noexcept {
  CounterSnapshot delta;
  for (size_t i = 0; i < kNumCounters; ++i) {
    delta.values[i] = after.values[i] - before.values[i];
  }
  return delta;
}

void ResetCountersForTest() noexcept {
  for (size_t i = 0; i < kNumCounters; ++i) {
    internal_counters::g_counters[i].value.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace hwf
