#ifndef HWF_OBS_HISTOGRAM_H_
#define HWF_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hwf {
namespace obs {

/// Log-bucketed latency histogram bucket geometry, shared by the recording
/// side (LatencyHistogram) and the read side (HistogramSnapshot).
///
/// Values 0..63 get one exact bucket each; larger values are bucketed by
/// their binary exponent with 64 linear sub-buckets per octave (the
/// HdrHistogram scheme). A bucket for values around 2^e is 2^(e-6) wide, so
/// reporting its midpoint bounds the relative quantile error by
/// (width/2)/lower = 2^-7 < 0.8% — comfortably inside the ~1% target —
/// while the whole table stays a fixed 3776 buckets covering all of
/// uint64_t (30 KiB of counts per histogram).
namespace histogram_buckets {

inline constexpr int kSubBucketBits = 6;
inline constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBucketBits;
inline constexpr size_t kNumBuckets =
    kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

/// Bucket index of `value`; total order, no branches beyond the small-value
/// split.
inline size_t BucketIndex(uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  const int exponent = 63 - __builtin_clzll(value);
  const int shift = exponent - kSubBucketBits;
  const uint64_t sub = (value >> shift) & (kSubBuckets - 1);
  return kSubBuckets +
         static_cast<size_t>(exponent - kSubBucketBits) * kSubBuckets + sub;
}

/// Smallest value that lands in bucket `index` (inclusive).
inline uint64_t BucketLowerBound(size_t index) noexcept {
  if (index < kSubBuckets) return index;
  const size_t octave = (index - kSubBuckets) / kSubBuckets;
  const uint64_t sub = (index - kSubBuckets) % kSubBuckets;
  return (kSubBuckets + sub) << octave;
}

/// One past the largest value that lands in bucket `index` (exclusive;
/// saturates at UINT64_MAX for the final bucket).
inline uint64_t BucketUpperBound(size_t index) noexcept {
  if (index < kSubBuckets) return index + 1;
  const size_t octave = (index - kSubBuckets) / kSubBuckets;
  const uint64_t width = uint64_t{1} << octave;
  const uint64_t lower = BucketLowerBound(index);
  const uint64_t upper = lower + width;
  return upper > lower ? upper : UINT64_MAX;  // overflow on the last bucket
}

}  // namespace histogram_buckets

/// A plain, mergeable copy of a histogram at one point in time. Obtained
/// from LatencyHistogram::Snapshot(); all queries are answered here so the
/// recording side stays nothing but relaxed atomic adds.
struct HistogramSnapshot {
  std::vector<uint64_t> buckets;  // kNumBuckets counts
  uint64_t count = 0;             // sum of buckets (consistent by construction)
  uint64_t sum = 0;               // sum of recorded values (mean support)

  HistogramSnapshot();

  /// Per-bucket addition; merging snapshots from N histograms (e.g. one per
  /// shard) yields the distribution of their union.
  void Merge(const HistogramSnapshot& other);

  /// Value at quantile `q` in [0, 1]: the midpoint of the bucket holding
  /// the ceil(q * count)-th smallest recorded value (exact for values < 64,
  /// within the bucket's half-width — <0.8% relative — above). 0 when empty.
  double Quantile(double q) const;

  /// sum / count; 0 when empty.
  double Mean() const;
};

/// Lock-free log-bucketed histogram: Record is two relaxed fetch_adds (one
/// bucket, one value-sum), safe from any thread, no locks anywhere on the
/// write path. Readers take a Snapshot and query that.
///
/// The value unit is the caller's choice; the service records microseconds
/// and scales to seconds at the metrics-exposition boundary.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t value) noexcept {
    buckets_[histogram_buckets::BucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Copies all buckets. The count is derived from the copied buckets, so
  /// a snapshot racing concurrent Records is internally consistent (it just
  /// may miss the newest events); `sum` is read separately and can be off
  /// by in-flight records, which only perturbs the mean.
  HistogramSnapshot Snapshot() const;

  /// Total records so far (relaxed sum over buckets).
  uint64_t Count() const;

 private:
  std::atomic<uint64_t> buckets_[histogram_buckets::kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace obs
}  // namespace hwf

#endif  // HWF_OBS_HISTOGRAM_H_
