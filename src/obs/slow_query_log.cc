#include "obs/slow_query_log.h"

namespace hwf {
namespace obs {

SlowQueryLog::~SlowQueryLog() { Close(); }

Status SlowQueryLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    return Status::InvalidArgument("cannot open slow-query log: " + path);
  }
  return Status::OK();
}

bool SlowQueryLog::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return file_ != nullptr;
}

void SlowQueryLog::Append(std::string_view json_object) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  std::fwrite(json_object.data(), 1, json_object.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void SlowQueryLog::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
}

std::string JsonEscaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace hwf
