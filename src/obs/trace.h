#ifndef HWF_OBS_TRACE_H_
#define HWF_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

/// \file trace.h
/// Low-overhead span tracing.
///
/// Spans are recorded into per-thread buffers (no locks on the hot path
/// beyond one uncontended mutex per event) and flushed on demand as Chrome
/// `trace_event` JSON, loadable in chrome://tracing and https://ui.perfetto.dev.
///
/// Two independent switches:
///   - Compile time: the CMake option HWF_ENABLE_TRACING (default ON)
///     defines HWF_TRACING_ENABLED. When OFF, HWF_TRACE_SCOPE expands to
///     nothing — zero code, zero data.
///   - Run time: Tracer::Get().Enable()/Disable(). While disabled (the
///     default), an instrumented scope costs one relaxed atomic load.
///
/// Span names (and argument names) must be string literals: events store
/// the pointers, not copies.

#ifndef HWF_TRACING_ENABLED
#define HWF_TRACING_ENABLED 1
#endif

namespace hwf {
namespace obs {

/// One completed span, times in nanoseconds on the steady clock.
struct TraceEvent {
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr: no argument
  int64_t arg_value = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  // sequential registration id, 0 = first tracing thread
  uint64_t query_id = 0;  // ambient query attribution; 0 = outside any query
};

/// The query id ambiently attached to spans recorded by this thread
/// (0 when the thread is not executing on behalf of any query). Set with
/// ScopedQueryId; propagated across ThreadPool::Submit so worker-side
/// spans carry the submitting query's id.
uint64_t CurrentQueryId();

/// Sets the calling thread's ambient query id for the current scope and
/// restores the previous value on destruction (scopes nest).
class ScopedQueryId {
 public:
  explicit ScopedQueryId(uint64_t query_id);
  ~ScopedQueryId();

  ScopedQueryId(const ScopedQueryId&) = delete;
  ScopedQueryId& operator=(const ScopedQueryId&) = delete;

 private:
  uint64_t previous_;
};

/// Nanoseconds on the steady clock (an arbitrary epoch; only differences
/// and ordering are meaningful).
uint64_t NowNs();

/// The process-wide span collector.
class Tracer {
 public:
  /// Maximum buffered events per thread; beyond it events are dropped and
  /// counted (bounds tracing memory on long runs).
  static constexpr size_t kMaxEventsPerThread = 1 << 20;

  static Tracer& Get();

  /// Starts recording spans. Cheap to leave enabled between flushes.
  void Enable();

  /// Stops recording. Already-buffered events are kept until Clear().
  void Disable();

  static bool IsEnabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's buffer (registering the
  /// thread on first use). Called by TraceScope; safe from any thread.
  void Record(const TraceEvent& event);

  /// Drops all buffered events (all threads) and the dropped-event count.
  void Clear();

  /// Merged copy of every thread's buffered events.
  std::vector<TraceEvent> Snapshot() const;

  /// Number of events dropped because a thread buffer was full.
  uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Serializes all buffered events as a Chrome trace_event JSON object:
  /// {"traceEvents": [...], "displayTimeUnit": "ms"}. Timestamps are
  /// rebased to the earliest event and expressed in microseconds.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    uint32_t tid = 0;
    mutable std::mutex mutex;  // owner appends; snapshots read concurrently
    std::vector<TraceEvent> events;
  };

  Tracer() = default;

  ThreadBuffer* BufferForThisThread();

  static std::atomic<bool> enabled_;

  mutable std::mutex registry_mutex_;
  // Buffers are never deallocated (threads may outlive their events'
  // consumers and vice versa); a handful of pointers per thread ever seen.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<uint64_t> dropped_{0};
};

/// RAII span: measures construction-to-destruction and records it under
/// `name` when tracing is runtime-enabled at BOTH ends (enabling mid-span
/// records nothing; disabling mid-span drops the span).
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (HWF_TRACING_ENABLED && Tracer::IsEnabled()) Start(name, nullptr, 0);
  }

  TraceScope(const char* name, const char* arg_name, int64_t arg_value) {
    if (HWF_TRACING_ENABLED && Tracer::IsEnabled()) {
      Start(name, arg_name, arg_value);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (name_ != nullptr) Finish();
  }

 private:
  void Start(const char* name, const char* arg_name, int64_t arg_value);
  void Finish();

  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  int64_t arg_value_ = 0;
  uint64_t start_ns_ = 0;
  uint64_t query_id_ = 0;
};

}  // namespace obs
}  // namespace hwf

#define HWF_OBS_CONCAT_IMPL(a, b) a##b
#define HWF_OBS_CONCAT(a, b) HWF_OBS_CONCAT_IMPL(a, b)

#if HWF_TRACING_ENABLED
/// Traces the enclosing scope as a span named `name` (a string literal).
#define HWF_TRACE_SCOPE(name) \
  ::hwf::obs::TraceScope HWF_OBS_CONCAT(hwf_trace_scope_, __LINE__)(name)
/// Like HWF_TRACE_SCOPE with one integer argument attached to the span.
#define HWF_TRACE_SCOPE_ARG(name, arg_name, arg_value)               \
  ::hwf::obs::TraceScope HWF_OBS_CONCAT(hwf_trace_scope_, __LINE__)( \
      name, arg_name, static_cast<int64_t>(arg_value))
#else
#define HWF_TRACE_SCOPE(name) \
  do {                        \
  } while (false)
#define HWF_TRACE_SCOPE_ARG(name, arg_name, arg_value) \
  do {                                                 \
  } while (false)
#endif

#endif  // HWF_OBS_TRACE_H_
