#ifndef HWF_COMMON_SEARCH_H_
#define HWF_COMMON_SEARCH_H_

#include <cstddef>

/// \file search.h
/// Branchless binary searches shared by the MST probe paths.
///
/// The MST descent performs a short bounded bisection per child run — over a
/// cascade window of at most ~2k elements, or over a whole (cache-resident)
/// child run when cascading is off. std::lower_bound compiles to a
/// hard-to-predict branch per step, which costs a pipeline flush roughly
/// every other step on random probe keys. The loop below keeps the interval
/// as (base, len) and advances base with a conditional move, so the only
/// branch left is the loop counter — perfectly predicted, and the loads can
/// overlap across iterations of the surrounding batch kernel.
///
/// Both functions return exactly what std::lower_bound / std::upper_bound
/// would (the batch kernel relies on bit-identical positions vs the scalar
/// reference path).

namespace hwf {

template <typename T>
inline size_t BranchlessLowerBound(const T* data, size_t n, const T& value) {
  if (n == 0) return 0;
  const T* base = data;
  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    // Invariant: the lower bound lies in [base, base + len]. Probing the
    // last element of the first half keeps both halves valid candidates.
    base += (base[half - 1] < value) ? half : 0;
    len -= half;
  }
  return static_cast<size_t>(base - data) + ((*base < value) ? 1 : 0);
}

template <typename T>
inline size_t BranchlessUpperBound(const T* data, size_t n, const T& value) {
  if (n == 0) return 0;
  const T* base = data;
  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    base += (!(value < base[half - 1])) ? half : 0;
    len -= half;
  }
  return static_cast<size_t>(base - data) + ((!(value < *base)) ? 1 : 0);
}

}  // namespace hwf

#endif  // HWF_COMMON_SEARCH_H_
