#ifndef HWF_COMMON_STATUS_H_
#define HWF_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace hwf {

/// Error categories for recoverable failures surfaced at API boundaries.
///
/// Library-internal invariant violations use HWF_CHECK instead; Status is
/// reserved for errors caused by user input (malformed window specifications,
/// type mismatches, out-of-range parameters).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotImplemented,
  kTypeMismatch,
  kInternal,
  kResourceExhausted,
  kCancelled,
  kDeadlineExceeded,
};

/// A lightweight success-or-error result, modeled after absl::Status.
///
/// Functions that can fail due to user input return Status (or StatusOr<T>)
/// rather than throwing: the library is exception-free.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<category>: <message>" for logs and test output.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
///
/// Access to the value is checked: calling value() on an errored StatusOr
/// aborts, mirroring absl::StatusOr semantics.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return result;` / `return Status::InvalidArgument(...)`).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    HWF_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    HWF_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() & {
    HWF_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    HWF_CHECK_MSG(ok(), status_.message().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace hwf

#endif  // HWF_COMMON_STATUS_H_
