#include "common/status.h"

namespace hwf {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace hwf
