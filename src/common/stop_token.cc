#include "common/stop_token.h"

namespace hwf {

namespace {

StopToken& ThreadToken() {
  thread_local StopToken token;
  return token;
}

}  // namespace

const StopToken& CurrentStopToken() { return ThreadToken(); }

ScopedStopToken::ScopedStopToken(StopToken token)
    : saved_(ThreadToken()) {
  ThreadToken() = std::move(token);
}

ScopedStopToken::~ScopedStopToken() { ThreadToken() = saved_; }

}  // namespace hwf
