#ifndef HWF_COMMON_MACROS_H_
#define HWF_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file macros.h
/// Checked assertion macros used throughout the library.
///
/// `HWF_CHECK` is always active and terminates the process with a diagnostic
/// on violation; it guards programming errors (invalid arguments, broken
/// invariants). `HWF_DCHECK` compiles away in NDEBUG builds and is used on
/// hot paths where the check would be measurable.

#define HWF_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "HWF_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define HWF_CHECK_MSG(condition, msg)                                     \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "HWF_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #condition, msg);                  \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define HWF_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define HWF_DCHECK(condition) HWF_CHECK(condition)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define HWF_LIKELY(x) __builtin_expect(!!(x), 1)
#define HWF_UNLIKELY(x) __builtin_expect(!!(x), 0)
// Keeps rarely-taken slow paths (spilled reads, error handling) out of hot
// functions so the fast path stays small enough to inline.
#define HWF_NOINLINE_COLD __attribute__((noinline, cold))
// Read prefetch into all cache levels; the batched probe kernel issues these
// for the next tree level's touch points while the current level computes.
#define HWF_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define HWF_LIKELY(x) (x)
#define HWF_UNLIKELY(x) (x)
#define HWF_NOINLINE_COLD
#define HWF_PREFETCH(addr) \
  do {                     \
  } while (false)
#endif

#endif  // HWF_COMMON_MACROS_H_
