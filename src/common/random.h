#ifndef HWF_COMMON_RANDOM_H_
#define HWF_COMMON_RANDOM_H_

#include <cstdint>

namespace hwf {

/// Deterministic PCG32 pseudo-random generator.
///
/// All data generators and randomized tests in this repository use this
/// generator so that workloads are bit-reproducible across runs and
/// platforms (std::mt19937 distributions are not portable across standard
/// library implementations).
class Pcg32 {
 public:
  /// Seeds the generator. The same (seed, stream) pair always produces the
  /// same sequence.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    Next();
    state_ += seed;
    Next();
  }

  /// Returns the next 32 random bits.
  uint32_t Next() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Returns the next 64 random bits.
  uint64_t Next64() {
    return (static_cast<uint64_t>(Next()) << 32) | Next();
  }

  /// Returns a uniform integer in [0, bound). bound must be > 0.
  uint32_t Bounded(uint32_t bound) {
    // Lemire's nearly-divisionless bounded generation.
    uint64_t product = static_cast<uint64_t>(Next()) * bound;
    uint32_t low = static_cast<uint32_t>(product);
    if (low < bound) {
      uint32_t threshold = -bound % bound;
      while (low < threshold) {
        product = static_cast<uint64_t>(Next()) * bound;
        low = static_cast<uint32_t>(product);
      }
    }
    return static_cast<uint32_t>(product >> 32);
  }

  /// Returns a uniform int64 in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    uint64_t range = static_cast<uint64_t>(hi - lo);
    if (range == 0) return lo;
    if (range < UINT32_MAX) {
      return lo + static_cast<int64_t>(Bounded(static_cast<uint32_t>(range + 1)));
    }
    // Rejection sampling for 64-bit ranges.
    uint64_t bound = range + 1;
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next64();
      if (r >= threshold) return lo + static_cast<int64_t>(r % bound);
    }
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace hwf

#endif  // HWF_COMMON_RANDOM_H_
