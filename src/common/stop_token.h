#ifndef HWF_COMMON_STOP_TOKEN_H_
#define HWF_COMMON_STOP_TOKEN_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.h"

namespace hwf {

namespace internal_stop {

/// Shared cancellation state: a sticky stop reason plus an optional
/// deadline. The reason latches on first observation so a query that ran
/// past its deadline keeps reporting kDeadlineExceeded even if a Cancel
/// arrives later.
struct StopState {
  /// 0 = running, 1 = cancelled, 2 = deadline exceeded.
  std::atomic<int> reason{0};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
};

}  // namespace internal_stop

/// A cheap, copyable view onto a cancellation request (modeled after
/// std::stop_token, which the library avoids only because it needs the
/// deadline latch and Status integration).
///
/// A default-constructed token can never be stopped; checking it is a null
/// test, so hot loops may poll unconditionally. Tokens are polled at morsel
/// granularity by ParallelFor and at phase boundaries by the window
/// executor, which bounds the reaction latency of a cancellation to one
/// morsel of work.
class StopToken {
 public:
  StopToken() = default;

  /// True when a stop was requested or the deadline has passed. Latches
  /// the deadline reason on first observation.
  bool stop_requested() const {
    if (state_ == nullptr) return false;
    if (state_->reason.load(std::memory_order_relaxed) != 0) return true;
    if (state_->has_deadline &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      int expected = 0;
      state_->reason.compare_exchange_strong(expected, 2,
                                             std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// OK while running; Cancelled / DeadlineExceeded once stopped.
  Status status() const {
    if (!stop_requested()) return Status::OK();
    return state_->reason.load(std::memory_order_relaxed) == 2
               ? Status::DeadlineExceeded("query deadline exceeded")
               : Status::Cancelled("query cancelled");
  }

  bool can_stop() const { return state_ != nullptr; }

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<internal_stop::StopState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal_stop::StopState> state_;
};

/// The owning side of a cancellation channel. The service creates one per
/// query; RequestStop() (operator cancel) and the deadline (admission
/// timeout) both funnel into the same token.
class StopSource {
 public:
  StopSource() : state_(std::make_shared<internal_stop::StopState>()) {}

  /// Marks the token cancelled. Idempotent; a deadline that already fired
  /// wins (the first reason sticks).
  void RequestStop() {
    int expected = 0;
    state_->reason.compare_exchange_strong(expected, 1,
                                           std::memory_order_relaxed);
  }

  /// Sets the deadline. Must be called before the token is handed to
  /// workers (the field is unsynchronized by design: it is written once
  /// during setup).
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    state_->deadline = deadline;
    state_->has_deadline = true;
  }

  StopToken token() const { return StopToken(state_); }

 private:
  std::shared_ptr<internal_stop::StopState> state_;
};

/// The calling thread's ambient stop token (empty by default). ParallelFor
/// captures it on entry and re-installs it on every pool worker that runs
/// its morsels, so cancellation propagates through nested parallel regions
/// without threading a token parameter through every call site.
const StopToken& CurrentStopToken();

/// Installs `token` as the current thread's ambient token for the scope.
class ScopedStopToken {
 public:
  explicit ScopedStopToken(StopToken token);
  ~ScopedStopToken();

  ScopedStopToken(const ScopedStopToken&) = delete;
  ScopedStopToken& operator=(const ScopedStopToken&) = delete;

 private:
  StopToken saved_;
};

/// Shorthand for CurrentStopToken().status() at cooperative check points.
inline Status CheckStop() { return CurrentStopToken().status(); }

}  // namespace hwf

#endif  // HWF_COMMON_STOP_TOKEN_H_
