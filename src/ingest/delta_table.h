#ifndef HWF_INGEST_DELTA_TABLE_H_
#define HWF_INGEST_DELTA_TABLE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace hwf {
namespace ingest {

/// Outcome of a batch Upsert: how many incoming rows were plain appends vs
/// in-place rewrites of rows that already existed. Any rewrite changes the
/// value of an existing row id, which the catalog must surface as a content
/// generation bump (cached artifacts keyed on the old generation become
/// unreachable).
struct UpsertStats {
  size_t appended = 0;
  size_t updated_base = 0;
  size_t updated_delta = 0;

  bool rewrote_existing() const { return updated_base + updated_delta > 0; }
};

/// Message buffer for table mutations, in the fractal-tree style: appends
/// and keyed upserts accumulate here in O(batch) time and are folded into
/// the immutable base table only on materialization/compaction.
///
/// Row-id discipline (the invariant everything else leans on): the base
/// table owns ids [0, base_rows); appended rows take ids
/// [base_rows, base_rows + delta_rows) in arrival order; ids are never
/// renumbered. An upsert whose key matches an existing row rewrites that
/// row's values in place (base rows via an override map applied at
/// materialization; delta rows directly), so the id→row mapping is stable
/// across every mutation, and compaction — promoting the materialized
/// combined table to the new base — is observationally a no-op.
///
/// Not thread-safe; the catalog serializes access per table.
class DeltaTable {
 public:
  static constexpr size_t kNoKeyColumn = static_cast<size_t>(-1);

  /// `key_column` is the declared upsert key in the base schema (or
  /// kNoKeyColumn when the table only supports appends).
  DeltaTable(std::shared_ptr<const Table> base, size_t key_column);

  /// Appends `rows` to the delta buffer. Schema must match the base by
  /// name and type, except that kInt64 inputs coerce into kDouble columns
  /// (CSV type inference reads "1" as an integer).
  Status Append(const Table& rows);

  /// Keyed upsert: rows whose key matches an existing (base or delta) row
  /// rewrite it in place, others append. Requires a declared key column;
  /// NULL keys are rejected. When the base holds duplicate keys the first
  /// occurrence in id order is the upsert target.
  StatusOr<UpsertStats> Upsert(const Table& rows);

  size_t base_rows() const { return base_->num_rows(); }
  size_t delta_rows() const { return appended_.num_rows(); }
  size_t override_count() const { return overrides_.size(); }
  bool empty() const { return delta_rows() == 0 && overrides_.empty(); }

  /// Folds overrides and appended rows into a fresh combined table:
  /// ids [0, base_rows) carry base values (overrides applied), ids
  /// [base_rows, base_rows + delta_rows) the appended rows. Honors the
  /// caller's thread-local StopToken; returns kCancelled when stopped.
  StatusOr<std::shared_ptr<const Table>> Materialize() const;

 private:
  Status CheckSchema(const Table& rows, std::vector<size_t>* column_map) const;
  void EnsureKeyIndex();
  /// Canonical string form of the key at `row` of `column`; "" for NULL.
  static std::string KeyAt(const Column& column, size_t row);
  void AppendRowCoerced(const Table& rows, const std::vector<size_t>& map,
                        size_t row);

  std::shared_ptr<const Table> base_;
  size_t key_column_;
  Table appended_;  // Base schema; ids offset by base_rows().
  // Base row id -> full replacement row (coerced to base column types).
  std::unordered_map<size_t, std::vector<Value>> overrides_;
  // Key value -> row id (base or delta). Built lazily on first upsert;
  // maintained incrementally afterwards. Keys never change once a row
  // exists (a matching upsert keeps its key by definition).
  std::unordered_map<std::string, size_t> key_index_;
  bool key_index_built_ = false;
};

}  // namespace ingest
}  // namespace hwf

#endif  // HWF_INGEST_DELTA_TABLE_H_
