#include "ingest/delta_table.h"

#include <utility>

#include "common/stop_token.h"

namespace hwf {
namespace ingest {

namespace {

constexpr size_t kStopCheckStride = 1 << 14;

/// Coerces `value` into `target` (identity, NULL retyping, or the single
/// widening conversion kInt64 -> kDouble). Returns false on any other
/// type mismatch.
bool Coerce(const Value& value, DataType target, Value* out) {
  if (value.is_null()) {
    *out = Value::Null(target);
    return true;
  }
  if (value.type() == target) {
    *out = value;
    return true;
  }
  if (value.type() == DataType::kInt64 && target == DataType::kDouble) {
    *out = Value::Double(static_cast<double>(value.int64()));
    return true;
  }
  return false;
}

}  // namespace

DeltaTable::DeltaTable(std::shared_ptr<const Table> base, size_t key_column)
    : base_(std::move(base)), key_column_(key_column) {
  for (size_t c = 0; c < base_->num_columns(); ++c) {
    appended_.AddColumn(base_->column_name(c), Column(base_->column(c).type()));
  }
}

Status DeltaTable::CheckSchema(const Table& rows,
                               std::vector<size_t>* column_map) const {
  if (rows.num_columns() != base_->num_columns()) {
    return Status::InvalidArgument(
        "ingest batch has " + std::to_string(rows.num_columns()) +
        " columns, table has " + std::to_string(base_->num_columns()));
  }
  column_map->resize(base_->num_columns());
  for (size_t c = 0; c < base_->num_columns(); ++c) {
    StatusOr<size_t> index = rows.ColumnIndex(base_->column_name(c));
    if (!index.ok()) {
      return Status::InvalidArgument("ingest batch is missing column '" +
                                     base_->column_name(c) + "'");
    }
    const DataType have = rows.column(*index).type();
    const DataType want = base_->column(c).type();
    const bool widens = have == DataType::kInt64 && want == DataType::kDouble;
    // All-NULL CSV columns infer as kInt64; NULLs retype freely, so only
    // reject when the batch actually holds incompatible non-NULL values.
    bool all_null = true;
    for (size_t r = 0; all_null && r < rows.num_rows(); ++r) {
      all_null = rows.column(*index).IsNull(r);
    }
    if (have != want && !widens && !all_null) {
      return Status::TypeMismatch("column '" + base_->column_name(c) +
                                  "' is " + DataTypeName(want) +
                                  ", ingest batch has " + DataTypeName(have));
    }
    (*column_map)[c] = *index;
  }
  return Status::OK();
}

void DeltaTable::AppendRowCoerced(const Table& rows,
                                  const std::vector<size_t>& map, size_t row) {
  for (size_t c = 0; c < base_->num_columns(); ++c) {
    Value coerced;
    const bool ok =
        Coerce(rows.column(map[c]).GetValue(row), base_->column(c).type(),
               &coerced);
    HWF_CHECK(ok);  // CheckSchema already vetted the batch.
    const_cast<Column&>(appended_.column(c)).AppendValue(coerced);
  }
}

std::string DeltaTable::KeyAt(const Column& column, size_t row) {
  if (column.IsNull(row)) return std::string();
  return column.GetValue(row).ToString();
}

void DeltaTable::EnsureKeyIndex() {
  if (key_index_built_) return;
  key_index_built_ = true;
  const Column& base_keys = base_->column(key_column_);
  for (size_t r = 0; r < base_keys.size(); ++r) {
    std::string key = KeyAt(base_keys, r);
    if (key.empty()) continue;
    key_index_.emplace(std::move(key), r);  // First occurrence wins.
  }
  const Column& delta_keys = appended_.column(key_column_);
  for (size_t r = 0; r < delta_keys.size(); ++r) {
    std::string key = KeyAt(delta_keys, r);
    if (key.empty()) continue;
    key_index_.emplace(std::move(key), base_rows() + r);
  }
}

Status DeltaTable::Append(const Table& rows) {
  std::vector<size_t> map;
  if (Status s = CheckSchema(rows, &map); !s.ok()) return s;
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    const size_t id = base_rows() + delta_rows();
    AppendRowCoerced(rows, map, r);
    if (key_index_built_ && key_column_ != kNoKeyColumn) {
      std::string key = KeyAt(appended_.column(key_column_), id - base_rows());
      if (!key.empty()) key_index_.emplace(std::move(key), id);
    }
  }
  return Status::OK();
}

StatusOr<UpsertStats> DeltaTable::Upsert(const Table& rows) {
  if (key_column_ == kNoKeyColumn) {
    return Status::InvalidArgument(
        "table has no declared key column; UPSERT unavailable");
  }
  std::vector<size_t> map;
  if (Status s = CheckSchema(rows, &map); !s.ok()) return s;
  EnsureKeyIndex();

  UpsertStats stats;
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    std::string key = KeyAt(rows.column(map[key_column_]), r);
    if (key.empty()) {
      return Status::InvalidArgument("UPSERT row " + std::to_string(r) +
                                     " has a NULL key");
    }
    auto hit = key_index_.find(key);
    if (hit == key_index_.end()) {
      const size_t id = base_rows() + delta_rows();
      AppendRowCoerced(rows, map, r);
      key_index_.emplace(std::move(key), id);
      ++stats.appended;
      continue;
    }
    std::vector<Value> row_values(base_->num_columns());
    for (size_t c = 0; c < base_->num_columns(); ++c) {
      const bool ok = Coerce(rows.column(map[c]).GetValue(r),
                             base_->column(c).type(), &row_values[c]);
      HWF_CHECK(ok);
    }
    if (hit->second < base_rows()) {
      overrides_[hit->second] = std::move(row_values);
      ++stats.updated_base;
    } else {
      const size_t local = hit->second - base_rows();
      for (size_t c = 0; c < base_->num_columns(); ++c) {
        Column& col = const_cast<Column&>(appended_.column(c));
        const Value& v = row_values[c];
        if (v.is_null()) {
          col.SetNull(local);
        } else {
          switch (v.type()) {
            case DataType::kInt64:
              col.SetInt64(local, v.int64());
              break;
            case DataType::kDouble:
              col.SetDouble(local, v.dbl());
              break;
            case DataType::kString:
              col.SetString(local, v.str());
              break;
          }
        }
      }
      ++stats.updated_delta;
    }
  }
  return stats;
}

StatusOr<std::shared_ptr<const Table>> DeltaTable::Materialize() const {
  auto combined = std::make_shared<Table>();
  for (size_t c = 0; c < base_->num_columns(); ++c) {
    if (Status stop = CheckStop(); !stop.ok()) return stop;
    // Whole-column copy, then point rewrites: overrides are rare relative
    // to base size, so this beats a per-row value loop by a wide margin.
    Column column = base_->column(c);
    for (const auto& [row, values] : overrides_) {
      const Value& v = values[c];
      if (v.is_null()) {
        column.SetNull(row);
      } else {
        switch (v.type()) {
          case DataType::kInt64:
            column.SetInt64(row, v.int64());
            break;
          case DataType::kDouble:
            column.SetDouble(row, v.dbl());
            break;
          case DataType::kString:
            column.SetString(row, v.str());
            break;
        }
      }
    }
    const Column& delta = appended_.column(c);
    for (size_t r = 0; r < delta.size(); ++r) {
      if ((r & (kStopCheckStride - 1)) == 0) {
        if (Status stop = CheckStop(); !stop.ok()) return stop;
      }
      column.AppendValue(delta.GetValue(r));
    }
    combined->AddColumn(base_->column_name(c), std::move(column));
  }
  return std::shared_ptr<const Table>(std::move(combined));
}

}  // namespace ingest
}  // namespace hwf
