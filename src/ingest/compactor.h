#ifndef HWF_INGEST_COMPACTOR_H_
#define HWF_INGEST_COMPACTOR_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>

#include "common/status.h"
#include "common/stop_token.h"
#include "mem/memory_budget.h"
#include "parallel/thread_pool.h"
#include "service/catalog.h"

namespace hwf {
namespace ingest {

struct CompactorOptions {
  /// Compact when delta_rows > delta_ratio * base_rows (fractal-tree
  /// message-buffer discipline: the delta may grow to a constant fraction
  /// of the base, so each row is rewritten O(log_{1/ratio}) ≈ O(1)
  /// amortized times, while probes only ever see a bounded delta).
  double delta_ratio = 0.10;
  /// Below this many delta rows, compaction is never worth the copy.
  size_t min_delta_rows = 4096;
  /// When set, the combined table's approximate footprint is reserved here
  /// for the duration of the fold (ForceReserve — compaction degrades the
  /// budget rather than failing, like the library's other scratch paths).
  mem::MemoryBudget* budget = nullptr;
};

/// Amortized background compaction of catalog delta buffers.
///
/// Scheduling is edge-triggered from the ingest path: after each batch the
/// service asks MaybeScheduleCompaction, which enqueues at most one task
/// per table on the shared pool. The task runs Catalog::Compact under a
/// stop token (cooperative cancellation via the thread-local CheckStop
/// inside materialization) and the catalog swaps the new base in
/// atomically under its per-table lock — queries never observe a partial
/// fold, and because compaction preserves row ids, epoch and gen, every
/// cached tree remains servable across the swap.
class Compactor {
 public:
  Compactor(service::Catalog* catalog, ThreadPool* pool,
            const CompactorOptions& options);
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Schedules a background compaction of `name` when the delta exceeds
  /// the ratio and none is already queued or running for it. Returns true
  /// when a task was enqueued.
  bool MaybeScheduleCompaction(const std::string& name);

  /// Synchronous compaction regardless of threshold (COMPACT command,
  /// tests, shutdown flushes). Records the same stats as the background
  /// path.
  StatusOr<service::Catalog::TableMeta> CompactNow(const std::string& name);

  /// Requests cancellation of in-flight compactions and waits for every
  /// scheduled task to drain. Idempotent; called by the destructor.
  void Stop();

  struct Stats {
    uint64_t scheduled = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;  // Cancelled or errored.
    double total_seconds = 0;
    double last_seconds = 0;
  };
  Stats stats() const;

 private:
  StatusOr<service::Catalog::TableMeta> RunCompaction(const std::string& name);
  void FinishTask(const std::string& name);

  service::Catalog* catalog_;
  ThreadPool* pool_;
  CompactorOptions options_;
  StopSource stop_;

  mutable std::mutex mutex_;
  std::condition_variable drained_;
  std::unordered_set<std::string> in_flight_;
  bool stopping_ = false;
  Stats stats_;
};

}  // namespace ingest
}  // namespace hwf

#endif  // HWF_INGEST_COMPACTOR_H_
