#ifndef HWF_INGEST_MERGED_PROBE_H_
#define HWF_INGEST_MERGED_PROBE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stop_token.h"
#include "mst/merge_sort_tree.h"
#include "mst/remap.h"
#include "mst/tree_cache.h"
#include "obs/counters.h"
#include "obs/profile.h"
#include "window/evaluator.h"
#include "window/frame.h"
#include "window/functions/common.h"
#include "window/functions/selection.h"

namespace hwf {
namespace ingest {

/// Merged two-tree selection cursor for partitions that mix base and
/// freshly-appended (delta) rows.
///
/// A plain append would otherwise force an O(m log m) rebuild of the
/// partition's merge sort tree even though all but a few of its rows are
/// unchanged. Instead, when the pre-append base subset's SelectionTree is
/// still cached (under PartitionDelta::main_prefix — exact across appends
/// because the key pins the row-id set), we build only a small tree over
/// the delta rows plus three interleave arrays, and answer count/select
/// probes against both trees jointly:
///
///  - `dp[x]`     = how many of the first x combined filtered entries are
///                  delta rows. Splits any combined filtered range [lo,hi)
///                  into a main range [lo-dp[lo], hi-dp[hi]) and a delta
///                  range [dp[lo], dp[hi]) — counting needs no tree probes
///                  at all, just the range widths.
///  - `mrank[r]`  = how many delta entries precede the main entry of main
///                  function rank r in the combined function order, so the
///                  combined rank of main entry r is r + mrank[r] (strictly
///                  increasing in r — the pivot of the rank search below).
///  - `mf_to_cf` / `df_to_cf` map each side's local filtered positions to
///                  combined filtered positions.
///
/// Selecting the idx-th frame row in function order binary-searches the
/// smallest combined rank prefix holding idx+1 qualifying entries; each
/// probe splits the prefix across the trees via mrank (an inner binary
/// search) and sums two CountInKeyRange calls per frame range. That is
/// O(log^2) per select instead of the single tree's O(log), but it replaces
/// the O(m log m) rebuild with O(d log d + m) setup — the win the paper's
/// cost split predicts whenever the delta is small, which the compactor's
/// ratio bound guarantees.
///
/// Crossover policy: the scalar merged select never matches the batched
/// cascaded kernel's per-probe constants, so a workload that keeps
/// re-querying the SAME delta state would eventually be better served by
/// rebuilding the combined tree once and probing it warm. TryObtain
/// enforces that crossover — each cached cursor serves at most
/// kMaxServedQueries queries; past that it reports "no merged path" so the
/// caller's fallback performs the one-time combined rebuild (cheap by then:
/// the executor's delta-merge already cached the combined sort artifact),
/// and later queries find the combined tree first and never reach the
/// cursor again. Appends thus stay rebuild-free on the ingest path while
/// sustained re-querying re-amortizes to full batched-kernel speed.
///
/// Bit-identity with the cold rebuild: the gate below admits only the
/// fused encoded ordering, where function order is (null rank, encoded
/// key, filtered position). Base and delta filtered positions are monotone
/// subsequences of the combined filtered positions, so merging the two
/// sides by (encoded key, combined filtered position) reproduces the cold
/// fused order entry-for-entry — every select returns the exact row the
/// rebuilt tree would have returned, ties included.
template <typename Index>
struct MergedSelection {
  using SelTree = internal_window::SelectionTree<Index>;

  std::shared_ptr<const SelTree> main;   // Cached base-subset tree.
  std::shared_ptr<const SelTree> delta;  // Fresh tree over the delta rows.
  IndexRemap remap;                      // Combined FILTER / null-drop remap.
  std::vector<Index> dp;                 // Size m+1 (m = combined filtered).
  std::vector<Index> mrank;              // Size main_m+1.
  std::vector<Index> mf_to_cf;           // Main-local filtered -> combined.
  std::vector<Index> df_to_cf;           // Delta-local filtered -> combined.

  /// Queries served by this cursor (see the crossover policy above). Held
  /// behind a shared_ptr so the struct stays movable; relaxed ordering is
  /// enough — the count only steers a heuristic.
  std::shared_ptr<std::atomic<uint32_t>> served =
      std::make_shared<std::atomic<uint32_t>>(0);

  /// Queries a cached cursor serves before TryObtain redirects callers to
  /// the combined rebuild. Covers the first post-append query plus a couple
  /// of immediate repeats — enough that an append/query/append/query stream
  /// never rebuilds, while a repeat-heavy stream converges after three.
  static constexpr uint32_t kMaxServedQueries = 3;

  size_t combined_filtered() const {
    return mf_to_cf.size() + df_to_cf.size();
  }

  /// A frame's filtered ranges, pre-split into per-tree coordinates.
  struct Ranges {
    KeyRange<Index> main[FrameRanges::kMaxRanges];
    KeyRange<Index> delta[FrameRanges::kMaxRanges];
    size_t count = 0;
  };

  /// Maps the frame of one position to split key ranges. `*total` receives
  /// the number of qualifying rows (range widths — no probes).
  size_t MapKeyRanges(const FrameRanges& frames, Ranges* out,
                      size_t* total) const {
    RowRange mapped[FrameRanges::kMaxRanges];
    const size_t count = hwf::MapRangesToFiltered(
        frames, remap, mapped);
    size_t rows = 0;
    for (size_t r = 0; r < count; ++r) {
      const size_t lo = mapped[r].begin;
      const size_t hi = mapped[r].end;
      out->main[r] = KeyRange<Index>{static_cast<Index>(lo - dp[lo]),
                                     static_cast<Index>(hi - dp[hi])};
      out->delta[r] = KeyRange<Index>{dp[lo], dp[hi]};
      rows += hi - lo;
    }
    out->count = count;
    *total = rows;
    return count;
  }

  /// Number of main entries whose combined function rank is < g.
  size_t MainBelow(size_t g) const {
    size_t lo = 0;
    size_t hi = mf_to_cf.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (mid + static_cast<size_t>(mrank[mid]) < g) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Number of qualifying entries with combined function rank < g.
  size_t CountBelow(const Ranges& ranges, size_t g) const {
    const size_t r = MainBelow(g);
    const size_t t = g - r;
    size_t count = 0;
    for (size_t i = 0; i < ranges.count; ++i) {
      count += main->tree.CountInKeyRange(0, r, ranges.main[i].lo,
                                          ranges.main[i].hi);
      count += delta->tree.CountInKeyRange(0, t, ranges.delta[i].lo,
                                           ranges.delta[i].hi);
    }
    return count;
  }

  /// The original partition position of the idx-th (0-based, combined
  /// function order) frame row. Requires idx < total.
  size_t SelectPosition(const Ranges& ranges, size_t idx) const {
    // Smallest combined rank prefix containing idx+1 qualifying entries;
    // the entry at combined rank g-1 is then the idx-th qualifier.
    size_t glo = 1;
    size_t ghi = combined_filtered();
    while (glo < ghi) {
      const size_t mid = glo + (ghi - glo) / 2;
      if (CountBelow(ranges, mid) >= idx + 1) {
        ghi = mid;
      } else {
        glo = mid + 1;
      }
    }
    const size_t answer_rank = glo - 1;
    const size_t r = MainBelow(answer_rank);
    if (r < mf_to_cf.size() &&
        r + static_cast<size_t>(mrank[r]) == answer_rank) {
      // The entry at the answer rank is main entry r.
      const size_t local = static_cast<size_t>(main->tree.KeyAt(r));
      return remap.ToOriginal(static_cast<size_t>(mf_to_cf[local]));
    }
    const size_t t = answer_rank - r;
    const size_t local = static_cast<size_t>(delta->tree.KeyAt(t));
    return remap.ToOriginal(static_cast<size_t>(df_to_cf[local]));
  }

  /// Obtains the merged cursor for this (partition, call), or nullptr when
  /// the merged path does not apply — no delta census, cache disabled, the
  /// base tree is not cached (cold start), a non-encoded ordering, or an
  /// index-width mismatch. Callers fall back to SelectionTree::Obtain,
  /// which rebuilds over the full partition and caches under the combined
  /// content key.
  static StatusOr<std::shared_ptr<const MergedSelection>> TryObtain(
      const PartitionView& view, const WindowFunctionCall& call,
      bool drop_null_args) {
    using internal_window::PositionLess;
    std::shared_ptr<const MergedSelection> none;
    if (view.delta == nullptr || view.cache == nullptr) return none;
    if (!view.options->tree.fuse_preprocess) return none;

    const std::string call_key =
        hwf::CallCacheKey(view, call, drop_null_args) + "|w" +
        std::to_string(sizeof(Index));
    // Once some query has crossed the rebuild threshold the combined-state
    // tree is cached; probing it through the batched kernel beats any
    // merged select, so the cursor steps aside for good at this state.
    if (view.cache->template Get<SelTree>(view.cache_prefix + "|sel" +
                                          call_key) != nullptr) {
      return none;
    }
    const std::string merged_key = view.cache_prefix + "|mergedsel" + call_key;
    if (std::shared_ptr<const MergedSelection> hit =
            view.cache->template Get<MergedSelection>(merged_key)) {
      if (hit->served->fetch_add(1, std::memory_order_relaxed) + 1 >=
          kMaxServedQueries) {
        return none;  // Crossover: let the caller rebuild the combined tree.
      }
      return hit;
    }
    std::shared_ptr<const SelTree> main_tree =
        view.cache->template Get<SelTree>(view.delta->main_prefix + "|sel" +
                                          call_key);
    if (main_tree == nullptr) return none;

    const std::vector<SortKey> order =
        hwf::EffectiveOrder(*view.spec, call);
    MergedSelection ms;
    ms.main = std::move(main_tree);
    std::vector<size_t> delta_rows;
    std::optional<PositionLess> less;
    {
      obs::ScopedPhaseTimer timer(view.options->profile,
                                  obs::ProfilePhase::kPreprocess);
      less.emplace(&view, order);
      if (!less->encoded()) return none;

      // One partition-order pass: classify rows, build dp and the
      // local-to-combined filtered position maps.
      ms.remap = hwf::BuildCallRemap(view, call, drop_null_args);
      const size_t n = view.size();
      const size_t m = ms.remap.num_surviving();
      const size_t base_limit = view.delta->base_rows;
      ms.dp.resize(m + 1);
      delta_rows.reserve(view.delta->delta_in_partition);
      size_t cf = 0;
      Index delta_seen = 0;
      for (size_t p = 0; p < n; ++p) {
        const bool is_delta = view.rows[p] >= base_limit;
        if (is_delta) delta_rows.push_back(view.rows[p]);
        if (!ms.remap.Included(p)) continue;
        ms.dp[cf] = delta_seen;
        if (is_delta) {
          ms.df_to_cf.push_back(static_cast<Index>(cf));
          ++delta_seen;
        } else {
          ms.mf_to_cf.push_back(static_cast<Index>(cf));
        }
        ++cf;
      }
      HWF_DCHECK(cf == m);
      ms.dp[m] = delta_seen;
      // The base state filtered the exact same base rows, so its tree must
      // hold exactly our main-side survivors; anything else means the
      // cached artifact is not the base subset we think it is.
      if (ms.main->tree.size() != ms.mf_to_cf.size()) return none;
    }
    if (Status stop = CheckStop(); !stop.ok()) return stop;

    // Build the delta side-tree through the regular machinery over a
    // delta-only sub-view (charges its own kPreprocess / kTreeBuild; its
    // remap re-applies the FILTER to just the delta rows, and its function
    // order restricted to the delta matches the combined order's).
    PartitionView dview = view;
    dview.rows = std::span<const size_t>(delta_rows);
    dview.frames = {};
    dview.cache = nullptr;
    dview.cache_prefix.clear();
    dview.delta = nullptr;
    SelTree delta_built = SelTree::Build(dview, call, drop_null_args);
    if (Status stop = CheckStop(); !stop.ok()) return stop;
    ms.delta = std::make_shared<const SelTree>(std::move(delta_built));
    if (ms.delta->tree.size() != ms.df_to_cf.size()) return none;

    {
      obs::ScopedPhaseTimer timer(view.options->profile,
                                  obs::ProfilePhase::kPreprocess);
      // Interleave the two sides' function orders into mrank. Both sides
      // visit strictly increasing (null rank, encoded key, combined
      // filtered position) triples, so a single merge pass suffices; the
      // filtered-position tiebreak reproduces the fused cold order exactly.
      const size_t mm = ms.mf_to_cf.size();
      const size_t dd = ms.df_to_cf.size();
      auto key_of = [&](Index cf_pos) {
        const size_t p = ms.remap.ToOriginal(static_cast<size_t>(cf_pos));
        const std::pair<uint8_t, uint64_t> ek = less->EncodedKey(p);
        return std::make_tuple(ek.first, ek.second, cf_pos);
      };
      ms.mrank.resize(mm + 1);
      size_t t = 0;
      for (size_t r = 0; r < mm; ++r) {
        const auto main_key =
            key_of(ms.mf_to_cf[static_cast<size_t>(ms.main->tree.KeyAt(r))]);
        while (t < dd &&
               key_of(ms.df_to_cf[static_cast<size_t>(
                   ms.delta->tree.KeyAt(t))]) < main_key) {
          ++t;
        }
        ms.mrank[r] = static_cast<Index>(t);
        if ((r & 0x3FFF) == 0) {
          if (Status stop = CheckStop(); !stop.ok()) return stop;
        }
      }
      ms.mrank[mm] = static_cast<Index>(dd);
    }

    // The shared main tree is accounted for by its own cache entry; charge
    // only the delta side and the interleave arrays here.
    const size_t bytes =
        (ms.dp.capacity() + ms.mrank.capacity() + ms.mf_to_cf.capacity() +
         ms.df_to_cf.capacity()) *
            sizeof(Index) +
        ms.remap.ApproxBytes() + ms.delta->tree.MemoryUsageBytes() +
        ms.delta->remap.ApproxBytes();
    std::shared_ptr<const MergedSelection> built =
        std::make_shared<const MergedSelection>(std::move(ms));
    view.cache->template Put<MergedSelection>(merged_key, {built, bytes});
    built->served->store(1, std::memory_order_relaxed);  // This query.
    obs::Add(obs::Counter::kIngestMergedCursorBuilds);
    return built;
  }
};

}  // namespace ingest
}  // namespace hwf

#endif  // HWF_INGEST_MERGED_PROBE_H_
