#include "ingest/compactor.h"

#include <chrono>

#include "obs/counters.h"
#include "obs/trace.h"

namespace hwf {
namespace ingest {

Compactor::Compactor(service::Catalog* catalog, ThreadPool* pool,
                     const CompactorOptions& options)
    : catalog_(catalog), pool_(pool), options_(options) {}

Compactor::~Compactor() { Stop(); }

bool Compactor::MaybeScheduleCompaction(const std::string& name) {
  StatusOr<service::Catalog::TableMeta> meta = catalog_->PeekMeta(name);
  if (!meta.ok()) return false;
  if (meta->delta_rows < options_.min_delta_rows) return false;
  const double threshold =
      options_.delta_ratio * static_cast<double>(meta->base_rows);
  if (static_cast<double>(meta->delta_rows) <= threshold) return false;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    if (!in_flight_.insert(name).second) return false;  // Already queued.
    ++stats_.scheduled;
  }
  auto task = [this, name] {
    {
      // Install the compactor's stop token so a Stop() during shutdown
      // cancels the fold at the next cooperative check.
      ScopedStopToken scoped(stop_.token());
      RunCompaction(name);
    }
    FinishTask(name);
  };
  if (pool_->num_workers() == 0) {
    // Worker-less pool (single-core host or serial configuration): a
    // submitted task would sit queued until some ParallelFor happened to
    // help-drain it. Fold inline on the ingest thread instead — still
    // amortized, since the ratio threshold gates how often we get here.
    task();
    return true;
  }
  pool_->Submit(std::move(task));
  return true;
}

StatusOr<service::Catalog::TableMeta> Compactor::CompactNow(
    const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.scheduled;
    // Synchronous callers do not enter in_flight_: a concurrent background
    // task for the same table just makes one of the two folds a no-op
    // (Catalog::Compact serializes on the per-table lock).
  }
  return RunCompaction(name);
}

StatusOr<service::Catalog::TableMeta> Compactor::RunCompaction(
    const std::string& name) {
  obs::TraceScope trace("ingest.compact");
  const auto start = std::chrono::steady_clock::now();

  // Reserve roughly the combined footprint while the fold runs: the new
  // base coexists with the old until queries release their snapshots.
  mem::MemoryReservation reservation;
  if (options_.budget != nullptr) {
    StatusOr<service::Catalog::TableMeta> meta = catalog_->PeekMeta(name);
    if (meta.ok()) {
      const size_t approx_rows = meta->base_rows + meta->delta_rows;
      reservation.ForceReserve(options_.budget, approx_rows * sizeof(int64_t));
    }
  }

  StatusOr<service::Catalog::TableMeta> result = catalog_->Compact(name);
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (result.ok()) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
    }
    stats_.total_seconds += seconds;
    stats_.last_seconds = seconds;
  }
  obs::Add(result.ok() ? obs::Counter::kIngestCompactions
                       : obs::Counter::kIngestCompactionsFailed);
  return result;
}

void Compactor::FinishTask(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  in_flight_.erase(name);
  if (in_flight_.empty()) drained_.notify_all();
}

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && in_flight_.empty()) return;
    stopping_ = true;
  }
  stop_.RequestStop();
  std::unique_lock<std::mutex> lock(mutex_);
  // Help the pool drain so Stop() cannot deadlock when every worker is
  // busy with (or waiting behind) our own queued compactions.
  while (!in_flight_.empty()) {
    lock.unlock();
    const bool ran = pool_->RunOnePending();
    lock.lock();
    if (!ran && !in_flight_.empty()) {
      drained_.wait_for(lock, std::chrono::milliseconds(10));
    }
  }
}

Compactor::Stats Compactor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ingest
}  // namespace hwf
