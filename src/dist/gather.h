#ifndef HWF_DIST_GATHER_H_
#define HWF_DIST_GATHER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace hwf {
namespace dist {

/// Merges per-shard result tables back into the original row order.
///
/// `rows[s]` is the original-row-id permutation produced by the shard
/// split: shard s's result row i belongs at output row rows[s][i]. The
/// merge is stable by construction — every output position is written by
/// exactly one shard — so the gathered table is byte-identical to what
/// single-process execution over the unsplit table produces.
///
/// Schema resolution across shards: column count and names must agree
/// (validated over non-empty shards); a column typed int64 on one shard
/// and double on another widens to double, absorbing the CSV round-trip
/// type flip for shards whose values happen to all be integral. Any other
/// type disagreement is a TypeMismatch, and a shard whose row count does
/// not match its permutation is an Internal error (a worker answered for
/// the wrong table version).
StatusOr<Table> GatherShardResults(
    const std::vector<Table>& shard_results,
    const std::vector<std::vector<uint32_t>>& rows, size_t total_rows);

}  // namespace dist
}  // namespace hwf

#endif  // HWF_DIST_GATHER_H_
