#ifndef HWF_DIST_WIRE_CLIENT_H_
#define HWF_DIST_WIRE_CLIENT_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace hwf {
namespace dist {

/// Connection and retry policy of one WireClient.
struct WireClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;

  /// Seconds before an unanswered TCP connect fails (0 = OS default).
  double connect_timeout_seconds = 5.0;

  /// Per-request socket deadline in seconds: an exchange whose response
  /// has not fully arrived within this window fails with DeadlineExceeded
  /// (0 = block indefinitely). Adjustable per request via
  /// set_request_timeout, which is how the coordinator propagates the
  /// remaining query deadline to each shard sub-query.
  double request_timeout_seconds = 0;

  /// Retries after the first attempt for ExchangeRetrying (transient
  /// failures only: transport errors and server backpressure, see
  /// IsRetriable). 0 = single attempt.
  size_t max_retries = 0;

  /// Exponential backoff between retries, capped at the max.
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 1.0;

  /// Performs the HELLO protocol-version handshake on connect so version
  /// skew fails at connection setup with an explicit error.
  bool check_protocol_version = true;
};

/// A client for the hwf_serve line protocol.
///
/// One instance owns one TCP connection and is not thread-safe; pool
/// instances (WireClientPool) to issue concurrent requests. Framing:
/// commands are single "\n"-terminated lines (APPEND/UPSERT/REGISTER
/// followed by a byte-counted body), responses are
///
///   OK <nbytes>[ <extra>]\n<nbytes of payload>
///   OK\n
///   ERR <code> <message>\n
///
/// Transport failures (connect/read/write errors, mid-payload EOF, socket
/// deadline) are distinguished from server-reported errors so callers can
/// retry the former against a reconnected socket.
class WireClient {
 public:
  explicit WireClient(WireClientOptions options);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects (with the configured timeout) and, unless disabled, runs the
  /// HELLO version handshake. Fails fast with InvalidArgument on version
  /// skew — including against pre-handshake servers.
  Status Connect();

  bool connected() const { return fd_ >= 0; }
  void Close();

  const WireClientOptions& options() const { return options_; }

  /// The server's protocol version as reported by HELLO (-1 before the
  /// handshake has run).
  int server_protocol_version() const { return server_version_; }

  /// Replaces the per-request socket deadline (seconds; 0 = none) for
  /// subsequent exchanges on this connection.
  Status set_request_timeout(double seconds);

  /// One exchange on the live connection (single attempt, no reconnect).
  /// On OK, `payload` holds the framed body (empty for bare "OK" acks) and
  /// `header_extra` (when non-null) whatever followed the byte count in
  /// the header, e.g. "id=7 regime=scatter(4)".
  Status Exchange(const std::string& command, std::string* payload,
                  std::string* header_extra = nullptr);

  /// As Exchange, for commands carrying a byte-counted body (APPEND,
  /// UPSERT, REGISTER): sends "<command> <nbytes>[ <args>]\n<body>".
  /// `args` go after the byte count (e.g. "key=id types=int64,double").
  Status ExchangeWithBody(const std::string& command, const std::string& body,
                          std::string* payload,
                          std::string* header_extra = nullptr,
                          const std::string& args = std::string());

  /// Exchange with connect-if-needed and bounded exponential-backoff retry
  /// on transient failures (the connection is torn down and re-established
  /// between attempts). Only safe for idempotent commands — QUERY, STATS,
  /// METRICS, PING — never APPEND/UPSERT, which could double-apply.
  /// `retries_out` (when non-null) accumulates the number of retries
  /// performed (attempts beyond the first).
  Status ExchangeRetrying(const std::string& command, std::string* payload,
                          std::string* header_extra = nullptr,
                          size_t* retries_out = nullptr);

  /// True for transport-level failures (connection refused/closed/reset,
  /// socket deadline during an exchange): the request may never have
  /// reached the server, so idempotent commands can retry.
  static bool IsTransportError(const Status& status);

  /// Transient failures worth retrying: transport errors plus server
  /// backpressure (ERR 8 / ResourceExhausted admission rejections).
  static bool IsRetriable(const Status& status);

 private:
  Status ConnectSocket();
  Status Handshake();
  Status ReadResponse(std::string* payload, std::string* header_extra);
  bool ReadLine(std::string* line);
  bool ReadExact(size_t size, std::string* out);
  bool WriteAll(const std::string& data);

  WireClientOptions options_;
  int fd_ = -1;
  int server_version_ = -1;
  /// Set when the last failure happened at the transport layer (used to
  /// tag the returned Status; see IsTransportError).
  bool timed_out_ = false;
};

/// A per-endpoint pool of reusable connections. Acquire pops an idle
/// (possibly still-connected) client or constructs a fresh one; Release
/// returns healthy connections for reuse and drops closed ones. All
/// methods are thread-safe; the pooled clients themselves are used by one
/// thread at a time between Acquire and Release.
class WireClientPool {
 public:
  explicit WireClientPool(WireClientOptions options, size_t max_idle = 16);

  std::unique_ptr<WireClient> Acquire();

  /// Returns a client to the pool. Disconnected clients and overflow
  /// beyond `max_idle` are destroyed.
  void Release(std::unique_ptr<WireClient> client);

  size_t idle_size() const;
  const WireClientOptions& options() const { return options_; }

 private:
  WireClientOptions options_;
  size_t max_idle_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<WireClient>> idle_;
};

}  // namespace dist
}  // namespace hwf

#endif  // HWF_DIST_WIRE_CLIENT_H_
