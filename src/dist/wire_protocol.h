#ifndef HWF_DIST_WIRE_PROTOCOL_H_
#define HWF_DIST_WIRE_PROTOCOL_H_

#include <cstddef>

#include "common/status.h"

namespace hwf {
namespace dist {

/// Version of the line protocol spoken by hwf_serve and the wire client.
///
/// Bumped whenever a command's grammar or framing changes incompatibly.
/// The HELLO handshake pins it at connection setup:
///
///   client: "HELLO <version>\n"
///   server: "OK <n>\nHWF <version>\n"          versions match
///           "ERR 3 protocol version mismatch ..." otherwise
///
/// A bare "HELLO\n" (no version) is a discovery probe: the server answers
/// with its own version and the connection proceeds. Servers predating the
/// handshake answer "ERR 3 unknown command 'HELLO'", which the client
/// rewrites into an explicit version-skew error — skew fails fast at
/// connect time instead of as a parse error mid-query.
inline constexpr int kWireProtocolVersion = 1;

/// Maps a wire error code (the "ERR <code>" byte, which is the server's
/// process exit code per service::ExitCodeForStatus) back to the matching
/// StatusCode, so errors round-trip through the protocol with their
/// category intact. Unknown codes map to kInternal.
inline StatusCode StatusCodeFromWire(int code) {
  switch (code) {
    case 3:
      return StatusCode::kInvalidArgument;
    case 4:
      return StatusCode::kOutOfRange;
    case 5:
      return StatusCode::kNotImplemented;
    case 6:
      return StatusCode::kTypeMismatch;
    case 7:
      return StatusCode::kInternal;
    case 8:
      return StatusCode::kResourceExhausted;
    case 9:
      return StatusCode::kCancelled;
    case 10:
      return StatusCode::kDeadlineExceeded;
    default:
      return StatusCode::kInternal;
  }
}

}  // namespace dist
}  // namespace hwf

#endif  // HWF_DIST_WIRE_PROTOCOL_H_
