#include "dist/gather.h"

#include <string>
#include <utility>

namespace hwf {
namespace dist {

StatusOr<Table> GatherShardResults(
    const std::vector<Table>& shard_results,
    const std::vector<std::vector<uint32_t>>& rows, size_t total_rows) {
  if (shard_results.size() != rows.size()) {
    return Status::Internal(
        "gather: " + std::to_string(shard_results.size()) +
        " shard results for " + std::to_string(rows.size()) +
        " row permutations");
  }
  size_t covered = 0;
  for (size_t s = 0; s < shard_results.size(); ++s) {
    if (shard_results[s].num_rows() != rows[s].size()) {
      return Status::Internal(
          "gather: shard " + std::to_string(s) + " returned " +
          std::to_string(shard_results[s].num_rows()) + " rows, expected " +
          std::to_string(rows[s].size()));
    }
    covered += rows[s].size();
  }
  if (covered != total_rows) {
    return Status::Internal("gather: shard permutations cover " +
                            std::to_string(covered) + " of " +
                            std::to_string(total_rows) + " rows");
  }

  // Resolve the output schema over the non-empty shards: names must agree
  // positionally; int64/double disagreements widen to double (the CSV
  // round-trip flips a double column whose shard happened to hold only
  // integral values back to int64).
  const Table* reference = nullptr;
  for (const Table& shard : shard_results) {
    if (shard.num_rows() > 0 || shard.num_columns() > 0) {
      reference = &shard;
      break;
    }
  }
  if (reference == nullptr) {
    // Every shard empty (a zero-row table): nothing to merge.
    return Table();
  }
  const size_t num_columns = reference->num_columns();
  std::vector<DataType> types(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    types[c] = reference->column(c).type();
  }
  for (size_t s = 0; s < shard_results.size(); ++s) {
    const Table& shard = shard_results[s];
    if (shard.num_rows() == 0 && shard.num_columns() == 0) continue;
    if (shard.num_columns() != num_columns) {
      return Status::TypeMismatch(
          "gather: shard " + std::to_string(s) + " has " +
          std::to_string(shard.num_columns()) + " columns, expected " +
          std::to_string(num_columns));
    }
    for (size_t c = 0; c < num_columns; ++c) {
      if (shard.column_name(c) != reference->column_name(c)) {
        return Status::TypeMismatch(
            "gather: shard " + std::to_string(s) + " column " +
            std::to_string(c) + " is '" + shard.column_name(c) +
            "', expected '" + reference->column_name(c) + "'");
      }
      const DataType type = shard.column(c).type();
      if (type == types[c]) continue;
      const bool numeric_pair =
          (type == DataType::kInt64 && types[c] == DataType::kDouble) ||
          (type == DataType::kDouble && types[c] == DataType::kInt64);
      if (!numeric_pair) {
        return Status::TypeMismatch(
            "gather: shard " + std::to_string(s) + " column '" +
            shard.column_name(c) + "' is " + DataTypeName(type) +
            ", expected " + DataTypeName(types[c]));
      }
      types[c] = DataType::kDouble;
    }
  }

  Table result;
  for (size_t c = 0; c < num_columns; ++c) {
    Column merged(types[c], total_rows);
    for (size_t s = 0; s < shard_results.size(); ++s) {
      const Table& shard = shard_results[s];
      if (shard.num_rows() == 0) continue;
      const Column& src = shard.column(c);
      const std::vector<uint32_t>& permutation = rows[s];
      for (size_t i = 0; i < permutation.size(); ++i) {
        const size_t out = permutation[i];
        if (src.IsNull(i)) continue;  // columns start all-NULL
        switch (types[c]) {
          case DataType::kInt64:
            merged.SetInt64(out, src.GetInt64(i));
            break;
          case DataType::kDouble:
            merged.SetDouble(out, src.type() == DataType::kInt64
                                      ? static_cast<double>(src.GetInt64(i))
                                      : src.GetDouble(i));
            break;
          case DataType::kString:
            merged.SetString(out, src.GetString(i));
            break;
        }
      }
    }
    result.AddColumn(reference->column_name(c), std::move(merged));
  }
  return result;
}

}  // namespace dist
}  // namespace hwf
