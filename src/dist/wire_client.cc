#include "dist/wire_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "dist/wire_protocol.h"

namespace hwf {
namespace dist {

namespace {

/// Transport failures carry this marker so IsTransportError can separate
/// "the connection broke" (retriable against a fresh socket) from "the
/// server said no" without a side channel on Status.
constexpr char kTransportPrefix[] = "transport: ";

Status TransportError(std::string message) {
  return Status::Internal(kTransportPrefix + std::move(message));
}

Status TransportDeadline(std::string message) {
  return Status::DeadlineExceeded(kTransportPrefix + std::move(message));
}

struct timeval ToTimeval(double seconds) {
  struct timeval tv {};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                         tv.tv_sec)) *
                                          1e6);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  return tv;
}

}  // namespace

WireClient::WireClient(WireClientOptions options)
    : options_(std::move(options)) {}

WireClient::~WireClient() { Close(); }

void WireClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WireClient::ConnectSocket() {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return TransportError("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address '" + options_.host +
                                   "' (numeric IPv4 expected)");
  }

  // Non-blocking connect + poll bounds the handshake by
  // connect_timeout_seconds; a plain connect() can hang for minutes on an
  // unresponsive peer.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINPROGRESS) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int timeout_ms =
        options_.connect_timeout_seconds > 0
            ? static_cast<int>(options_.connect_timeout_seconds * 1000)
            : -1;
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) {
      ::close(fd);
      return TransportDeadline("connect to " + options_.host + ":" +
                               std::to_string(options_.port) +
                               " timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (rc < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      return TransportError("connect to " + options_.host + ":" +
                            std::to_string(options_.port) + ": " +
                            std::strerror(err != 0 ? err : errno));
    }
  } else if (rc < 0) {
    const int err = errno;
    ::close(fd);
    return TransportError("connect to " + options_.host + ":" +
                          std::to_string(options_.port) + ": " +
                          std::strerror(err));
  }
  ::fcntl(fd, F_SETFL, flags);

  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  if (Status status = set_request_timeout(options_.request_timeout_seconds);
      !status.ok()) {
    Close();
    return status;
  }
  return Status::OK();
}

Status WireClient::set_request_timeout(double seconds) {
  options_.request_timeout_seconds = seconds;
  if (fd_ < 0) return Status::OK();
  const struct timeval tv = ToTimeval(seconds);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0) {
    return TransportError("setsockopt timeout: " +
                          std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status WireClient::Handshake() {
  std::string payload;
  Status status = Exchange(
      "HELLO " + std::to_string(kWireProtocolVersion), &payload, nullptr);
  if (!status.ok()) {
    // A server without the handshake replies "unknown command 'HELLO'" —
    // that IS version skew (a pre-versioning server), surfaced explicitly.
    if (status.code() == StatusCode::kInvalidArgument &&
        status.message().find("unknown command") != std::string::npos) {
      return Status::InvalidArgument(
          "protocol version mismatch: server at " + options_.host + ":" +
          std::to_string(options_.port) +
          " predates the HELLO handshake (client speaks version " +
          std::to_string(kWireProtocolVersion) + ")");
    }
    return status;
  }
  // "HWF <version>\n"
  if (payload.rfind("HWF ", 0) != 0) {
    return Status::InvalidArgument("malformed HELLO response: " + payload);
  }
  server_version_ = std::atoi(payload.c_str() + 4);
  if (server_version_ != kWireProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: server speaks " +
        std::to_string(server_version_) + ", client speaks " +
        std::to_string(kWireProtocolVersion));
  }
  return Status::OK();
}

Status WireClient::Connect() {
  if (Status status = ConnectSocket(); !status.ok()) return status;
  if (options_.check_protocol_version) {
    if (Status status = Handshake(); !status.ok()) {
      Close();
      return status;
    }
  }
  return Status::OK();
}

bool WireClient::ReadLine(std::string* line) {
  line->clear();
  timed_out_ = false;
  char c;
  for (;;) {
    const ssize_t n = ::read(fd_, &c, 1);
    if (n <= 0) {
      timed_out_ = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
      return false;
    }
    if (c == '\n') return true;
    if (c != '\r') line->push_back(c);
  }
}

bool WireClient::ReadExact(size_t size, std::string* out) {
  out->assign(size, '\0');
  timed_out_ = false;
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd_, out->data() + got, size - got);
    if (n <= 0) {
      timed_out_ = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
      return false;
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

bool WireClient::WriteAll(const std::string& data) {
  timed_out_ = false;
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + sent, data.size() - sent);
    if (n <= 0) {
      timed_out_ = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

Status WireClient::ReadResponse(std::string* payload,
                                std::string* header_extra) {
  payload->clear();
  if (header_extra != nullptr) header_extra->clear();
  std::string header;
  if (!ReadLine(&header)) {
    return timed_out_
               ? TransportDeadline("request timed out awaiting response")
               : TransportError("connection closed while awaiting response");
  }
  if (header.rfind("ERR ", 0) == 0) {
    // "ERR <code> <message>"
    const size_t space = header.find(' ', 4);
    const int code = std::atoi(header.substr(4).c_str());
    std::string message = space == std::string::npos
                              ? std::string("server error")
                              : header.substr(space + 1);
    return Status(StatusCodeFromWire(code), std::move(message));
  }
  if (header == "OK") return Status::OK();
  if (header.rfind("OK ", 0) == 0) {
    char* end = nullptr;
    const size_t bytes =
        static_cast<size_t>(std::strtoull(header.c_str() + 3, &end, 10));
    if (header_extra != nullptr && end != nullptr && *end == ' ') {
      *header_extra = end + 1;
    }
    if (!ReadExact(bytes, payload)) {
      return timed_out_
                 ? TransportDeadline("request timed out mid-payload")
                 : TransportError("connection closed mid-payload");
    }
    return Status::OK();
  }
  return TransportError("malformed response header: " + header);
}

Status WireClient::Exchange(const std::string& command, std::string* payload,
                            std::string* header_extra) {
  if (fd_ < 0) return TransportError("not connected");
  if (!WriteAll(command + "\n")) {
    payload->clear();
    return timed_out_ ? TransportDeadline("request timed out while sending")
                      : TransportError("connection closed while sending");
  }
  return ReadResponse(payload, header_extra);
}

Status WireClient::ExchangeWithBody(const std::string& command,
                                    const std::string& body,
                                    std::string* payload,
                                    std::string* header_extra,
                                    const std::string& args) {
  if (fd_ < 0) return TransportError("not connected");
  std::string header = command + " " + std::to_string(body.size());
  if (!args.empty()) header += " " + args;
  if (!WriteAll(header + "\n" + body)) {
    payload->clear();
    return timed_out_ ? TransportDeadline("request timed out while sending")
                      : TransportError("connection closed while sending");
  }
  return ReadResponse(payload, header_extra);
}

bool WireClient::IsTransportError(const Status& status) {
  return !status.ok() &&
         status.message().rfind(kTransportPrefix, 0) == 0;
}

bool WireClient::IsRetriable(const Status& status) {
  return IsTransportError(status) ||
         status.code() == StatusCode::kResourceExhausted;
}

Status WireClient::ExchangeRetrying(const std::string& command,
                                    std::string* payload,
                                    std::string* header_extra,
                                    size_t* retries_out) {
  double backoff = options_.backoff_initial_seconds;
  Status status;
  for (size_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      if (retries_out != nullptr) ++*retries_out;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2, options_.backoff_max_seconds);
    }
    if (!connected()) {
      status = Connect();
      if (!status.ok()) {
        if (!IsRetriable(status)) return status;
        continue;
      }
    }
    status = Exchange(command, payload, header_extra);
    if (status.ok() || !IsRetriable(status)) return status;
    // A broken connection cannot carry another exchange; a server-side
    // rejection (ERR 8) left the stream in sync, so keep it.
    if (IsTransportError(status)) Close();
  }
  return status;
}

WireClientPool::WireClientPool(WireClientOptions options, size_t max_idle)
    : options_(std::move(options)), max_idle_(max_idle) {}

std::unique_ptr<WireClient> WireClientPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!idle_.empty()) {
      std::unique_ptr<WireClient> client = std::move(idle_.back());
      idle_.pop_back();
      return client;
    }
  }
  return std::make_unique<WireClient>(options_);
}

void WireClientPool::Release(std::unique_ptr<WireClient> client) {
  if (client == nullptr || !client->connected()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (idle_.size() < max_idle_) idle_.push_back(std::move(client));
}

size_t WireClientPool::idle_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return idle_.size();
}

}  // namespace dist
}  // namespace hwf
