#ifndef HWF_DIST_COORDINATOR_H_
#define HWF_DIST_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dist/wire_client.h"
#include "obs/histogram.h"
#include "storage/table.h"

namespace hwf {
namespace obs {
class MetricsRegistry;
}  // namespace obs
namespace service {
struct ParsedStatement;
}  // namespace service

namespace dist {

/// Configuration of one coordinator: the worker fleet, retry/backoff and
/// deadline policy, and coordinator-level admission control (composed with
/// each worker's own backpressure — a worker's ERR 8 is retried with
/// backoff like a transport failure).
struct CoordinatorOptions {
  /// Worker endpoints as "host:port". The list order defines shard
  /// numbering; changing it re-routes shards, so a fleet is identified by
  /// its ordered endpoint list.
  std::vector<std::string> workers;

  /// Retries per shard sub-query after the first attempt, on transient
  /// failures (connection refused/closed, socket deadline, worker ERR 8).
  /// Exhausting them fails the query with ResourceExhausted.
  size_t shard_retries = 2;
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 1.0;

  /// Connection establishment timeout per worker.
  double connect_timeout_seconds = 5.0;

  /// Socket deadline for sub-queries when the query itself has no
  /// deadline (0 = wait indefinitely; a killed worker is still detected
  /// promptly via EOF/RST). Queries with a deadline use the remaining
  /// time plus a small grace instead.
  double worker_io_timeout_seconds = 0;

  /// Default per-query deadline in seconds (0 = none), propagated to the
  /// workers as the remaining time at each scatter.
  double default_timeout_seconds = 0;

  /// Admission control: queries executing concurrently, and how many more
  /// may wait for a slot before new arrivals are rejected with
  /// ResourceExhausted.
  size_t max_concurrent_queries = 8;
  size_t max_queued_queries = 16;

  /// Consecutive sub-query failures before a worker is reported unhealthy
  /// (queries still attempt it — health is observability, not routing).
  size_t unhealthy_after = 3;

  /// Idle pooled connections kept per worker.
  size_t max_idle_connections = 16;
};

struct CoordinatorQueryResult {
  /// Result rows in the client's original row order (byte-identical to
  /// single-process execution).
  Table table;
  /// Coordinator-assigned query id (also the trace attribution id carried
  /// by every per-shard span of this query).
  uint64_t query_id = 0;
  /// Execution regime: "scatter(N)" or "fallback".
  std::string regime;
};

/// Splits "host:port"; the host may be empty ("":4140 = loopback).
StatusOr<std::pair<std::string, int>> ParseEndpoint(
    const std::string& endpoint);

/// Rewrites the statement's FROM target from `table_name` to
/// `replacement` (the last case-insensitive FROM token whose following
/// token — modulo a trailing ';' — names the table). Used to point
/// fallback queries at the "<name>__unsharded" full copy.
StatusOr<std::string> RewriteFromTable(const std::string& sql,
                                       const std::string& table_name,
                                       const std::string& replacement);

/// The scatter/gather coordinator: the front half of a two-role
/// deployment (hwf_serve --coordinator against a fleet of plain hwf_serve
/// workers).
///
/// Tables register through the coordinator, which hash-shards their rows
/// by a declared PARTITION BY key across the fleet (dist/sharding.h) and
/// ships each shard over the wire protocol (REGISTER). A query whose
/// every window spec partitions by a superset of the shard key scatters
/// as-is to all shards — window functions never cross partitions, so
/// per-shard evaluation is exact — and the per-shard results merge back
/// into the original row order (dist/gather.h). Queries that do not cover
/// the shard key (or tables registered without one) run on a designated
/// fallback worker holding a full copy.
///
/// All methods are thread-safe. Sub-queries retry transient failures with
/// bounded exponential backoff and then fail the query cleanly; nothing
/// hangs on a killed worker.
class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Registers (or replaces) a table, sharding by `shard_key` columns
  /// when non-empty. With an empty key (or when the fleet has a single
  /// worker and no key), the table lives unsharded on its fallback worker
  /// and every query takes the fallback regime.
  Status RegisterTable(const std::string& name, const Table& table,
                       const std::vector<std::string>& shard_key);

  /// Appends a batch: rows are routed to the shards their key hashes to
  /// (the same pure value hash used at registration, so they join their
  /// partitions), plus the fallback full copy. Returns rows appended.
  /// Not retried — APPEND is not idempotent.
  StatusOr<size_t> AppendRows(const std::string& name, const Table& rows);

  /// Folds every shard's delta into its base (all workers holding the
  /// table, plus the fallback copy).
  Status CompactTable(const std::string& name);

  /// Executes one query end-to-end: admission, regime decision, scatter
  /// (or fallback), gather. `timeout_seconds` < 0 uses the configured
  /// default; 0 disables the deadline.
  StatusOr<CoordinatorQueryResult> Query(const std::string& sql,
                                         double timeout_seconds = -1);

  /// The plan text for a query without executing it, e.g.
  ///   regime: scatter(4)
  ///   table: trades  shard_key: grp
  ///   shard_rows: [2501, 2436, 2533, 2530]
  StatusOr<std::string> Explain(const std::string& sql) const;

  struct WorkerStats {
    std::string endpoint;
    bool healthy = true;
    uint64_t consecutive_failures = 0;
    uint64_t failures = 0;
    uint64_t subqueries = 0;
  };
  struct Stats {
    uint64_t scatter_queries = 0;
    uint64_t fallback_queries = 0;
    uint64_t subqueries = 0;
    uint64_t retries = 0;
    uint64_t failed_shards = 0;   // sub-queries that exhausted retries
    uint64_t failed_queries = 0;  // queries that returned an error
    uint64_t rejected = 0;        // refused at coordinator admission
    std::vector<WorkerStats> workers;
  };
  Stats stats() const;

  /// stats() plus per-worker latency quantiles as one JSON object — the
  /// payload behind the coordinator front door's STATS command.
  std::string StatsJson() const;

  /// Registers hwf_shard_* gauges, counters and latency summaries.
  /// The registry must not outlive the coordinator.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  const CoordinatorOptions& options() const { return options_; }

 private:
  struct Worker {
    std::string endpoint;
    std::unique_ptr<WireClientPool> pool;
    std::atomic<uint64_t> consecutive_failures{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> subqueries{0};
    /// Per-shard sub-query latency, microseconds.
    obs::LatencyHistogram latency_us;
  };

  /// Immutable snapshot of one registered table's placement; replaced
  /// wholesale on mutation so queries read it lock-free after lookup.
  struct ShardedTable {
    Table schema;  // zero-row copy, for planning/binding only
    std::vector<std::string> shard_key_names;
    std::vector<size_t> shard_key;  // column indices into schema
    bool sharded = false;
    /// Original row ids per worker (strictly increasing; empty for
    /// workers holding no rows of this table).
    std::vector<std::vector<uint32_t>> shard_rows;
    size_t total_rows = 0;
    /// Worker holding the full copy for fallback queries. When the table
    /// is sharded across more than one worker the copy is registered as
    /// "<name>__unsharded"; otherwise the original name is the full copy.
    size_t fallback_worker = 0;
    bool has_unsharded_copy = false;  // separate __unsharded table exists
  };

  struct RegimeDecision {
    bool scatter = false;
    std::string reason;  // why fallback, for Explain
  };

  std::shared_ptr<const ShardedTable> FindTable(
      const std::string& name) const;
  RegimeDecision DecideRegime(const ShardedTable& table,
                              const service::ParsedStatement& statement,
                              Status* error) const;

  Status Admit();
  void ReleaseAdmission();

  /// One sub-query against worker `w` with retry/backoff/health
  /// bookkeeping; parses the CSV payload into `out`.
  Status QueryWorker(size_t w, const std::string& sql, double deadline,
                     Table* out);
  /// Single attempt: connect if needed, propagate the deadline, QUERY,
  /// parse.
  Status TryQueryWorker(Worker& worker, const std::string& sql,
                        double deadline, Table* out);

  /// Ships `table` as CSV via `command` ("REGISTER <name>" or
  /// "APPEND <name>") to worker `w`. Single attempt (mutations are not
  /// idempotent).
  Status ShipTable(size_t w, const std::string& command, const Table& table);

  void RecordWorkerResult(Worker& worker, bool ok);

  static double Now();

  CoordinatorOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;

  mutable std::mutex tables_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const ShardedTable>>
      tables_;

  std::mutex admission_mutex_;
  std::condition_variable admission_cv_;
  size_t executing_ = 0;
  size_t waiting_ = 0;

  std::atomic<uint64_t> next_query_id_{1};
  std::atomic<uint64_t> scatter_queries_{0};
  std::atomic<uint64_t> fallback_queries_{0};
  std::atomic<uint64_t> subqueries_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> failed_shards_{0};
  std::atomic<uint64_t> failed_queries_{0};
  std::atomic<uint64_t> rejected_{0};

  /// Slowest shard per scatter (microseconds): its p99 is the straggler
  /// p99 the ROADMAP's tail-latency story cares about.
  obs::LatencyHistogram straggler_us_;
  /// End-to-end coordinator query latency (microseconds).
  obs::LatencyHistogram query_us_;
};

}  // namespace dist
}  // namespace hwf

#endif  // HWF_DIST_COORDINATOR_H_
