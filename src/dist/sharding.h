#ifndef HWF_DIST_SHARDING_H_
#define HWF_DIST_SHARDING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace hwf {
namespace dist {

/// Deterministic hash of one row's shard-key tuple.
///
/// Built from Column::Hash (a pure function of the stored value — equal
/// values hash equally across rows, columns, tables and processes) with
/// FNV-1a combining over the key columns in declaration order, mirroring
/// WindowSpecHash's canonical field-sequence folding. Because nothing
/// machine- or run-specific enters the mix, the same key tuple lands on
/// the same shard across runs and across processes — the property the
/// coordinator relies on to route APPEND batches to the shards that
/// already hold their partitions.
uint64_t ShardHashRow(const Table& table,
                      const std::vector<size_t>& key_columns, size_t row);

/// Shard index of one row: ShardHashRow mod num_shards.
size_t ShardOfRow(const Table& table, const std::vector<size_t>& key_columns,
                  size_t row, size_t num_shards);

/// Per-row shard assignment for a whole table.
StatusOr<std::vector<uint32_t>> AssignShards(
    const Table& table, const std::vector<size_t>& key_columns,
    size_t num_shards);

/// A table split into shards, with the bookkeeping needed to merge
/// per-shard results back into the original row order.
struct ShardSplit {
  /// One table per shard, same schema as the source. Within a shard, rows
  /// keep their original relative order — window evaluation over a shard
  /// therefore performs the exact same per-partition operation sequence
  /// (including non-associative double folds) as over the whole table.
  std::vector<Table> shards;
  /// rows[s][i] is the original row id of shard s's row i; each list is
  /// strictly increasing, and together they partition [0, num_rows).
  std::vector<std::vector<uint32_t>> rows;
};

/// Splits `table` into `num_shards` shards by hashing the named key
/// columns. All rows with an equal key tuple land in one shard, so every
/// PARTITION BY group over a superset of the key stays intact — the
/// full-partitioning property that makes scattered window evaluation
/// exact.
StatusOr<ShardSplit> SplitByShardKey(
    const Table& table, const std::vector<std::string>& key_columns,
    size_t num_shards);

/// Materializes the given rows of `table` (in the given order) as a new
/// table with identical schema.
Table TakeRows(const Table& table, const std::vector<uint32_t>& rows);

/// Coerces `rows` to the column names/types of `schema` (by position;
/// names must match). The only permitted conversion is int64 -> double,
/// which CSV round-trips need: a double column whose shipped values are
/// all integral re-parses as int64 on the other side. Anything else is a
/// TypeMismatch.
StatusOr<Table> CoerceToSchema(const Table& schema, const Table& rows);

/// The table's column types as a comma-separated list ("int64,double,...")
/// for the wire protocol's "types=" ingest annotation: CSV carries no type
/// information, so a receiver re-infers — and a double column whose
/// shipped values are all integral would silently come back int64 without
/// the annotation.
std::string TypeList(const Table& table);

/// Parses a TypeList() string back into column types.
StatusOr<std::vector<DataType>> ParseTypeList(const std::string& text);

/// Coerces each column of `rows` to the declared type (positionally).
/// Permitted conversions are the ones a CSV round-trip can require:
/// int64 -> double (integral-valued doubles) and int64/double -> string
/// (numeric-looking text that lost its quoting). Anything else is a
/// TypeMismatch.
StatusOr<Table> CoerceToTypes(const std::vector<DataType>& types,
                              const Table& rows);

}  // namespace dist
}  // namespace hwf

#endif  // HWF_DIST_SHARDING_H_
