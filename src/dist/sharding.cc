#include "dist/sharding.h"

#include <cstdio>
#include <utility>

namespace hwf {
namespace dist {

namespace {

/// FNV-1a folding constants, as used by WindowSpecHash for canonical
/// field-sequence hashing.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xff;
    hash *= kFnvPrime;
  }
  return hash;
}

void AppendRowValue(const Column& src, size_t row, Column* dst) {
  if (src.IsNull(row)) {
    dst->AppendNull();
    return;
  }
  switch (src.type()) {
    case DataType::kInt64:
      dst->AppendInt64(src.GetInt64(row));
      break;
    case DataType::kDouble:
      dst->AppendDouble(src.GetDouble(row));
      break;
    case DataType::kString:
      dst->AppendString(src.GetString(row));
      break;
  }
}

}  // namespace

uint64_t ShardHashRow(const Table& table,
                      const std::vector<size_t>& key_columns, size_t row) {
  uint64_t hash = kFnvOffset;
  for (const size_t column : key_columns) {
    hash = FnvMix(hash, table.column(column).Hash(row));
  }
  return hash;
}

size_t ShardOfRow(const Table& table, const std::vector<size_t>& key_columns,
                  size_t row, size_t num_shards) {
  return static_cast<size_t>(ShardHashRow(table, key_columns, row) %
                             num_shards);
}

StatusOr<std::vector<uint32_t>> AssignShards(
    const Table& table, const std::vector<size_t>& key_columns,
    size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("cannot shard into 0 shards");
  }
  if (key_columns.empty()) {
    return Status::InvalidArgument("shard key needs at least one column");
  }
  for (const size_t column : key_columns) {
    if (column >= table.num_columns()) {
      return Status::InvalidArgument("shard key column index " +
                                     std::to_string(column) +
                                     " out of range");
    }
  }
  std::vector<uint32_t> assignment(table.num_rows());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    assignment[row] = static_cast<uint32_t>(
        ShardOfRow(table, key_columns, row, num_shards));
  }
  return assignment;
}

Table TakeRows(const Table& table, const std::vector<uint32_t>& rows) {
  Table result;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& src = table.column(c);
    Column dst(src.type());
    dst.Reserve(rows.size());
    for (const uint32_t row : rows) {
      AppendRowValue(src, row, &dst);
    }
    result.AddColumn(table.column_name(c), std::move(dst));
  }
  return result;
}

StatusOr<ShardSplit> SplitByShardKey(
    const Table& table, const std::vector<std::string>& key_columns,
    size_t num_shards) {
  std::vector<size_t> key_indices;
  key_indices.reserve(key_columns.size());
  for (const std::string& name : key_columns) {
    StatusOr<size_t> index = table.ColumnIndex(name);
    if (!index.ok()) return index.status();
    key_indices.push_back(*index);
  }
  StatusOr<std::vector<uint32_t>> assignment =
      AssignShards(table, key_indices, num_shards);
  if (!assignment.ok()) return assignment.status();

  ShardSplit split;
  split.rows.resize(num_shards);
  // A row scan in index order makes every per-shard row-id list strictly
  // increasing for free — the invariant the gather merge relies on.
  for (size_t row = 0; row < table.num_rows(); ++row) {
    split.rows[(*assignment)[row]].push_back(static_cast<uint32_t>(row));
  }
  split.shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    split.shards.push_back(TakeRows(table, split.rows[s]));
  }
  return split;
}

StatusOr<Table> CoerceToSchema(const Table& schema, const Table& rows) {
  if (rows.num_columns() != schema.num_columns()) {
    return Status::TypeMismatch(
        "batch has " + std::to_string(rows.num_columns()) +
        " columns, table has " + std::to_string(schema.num_columns()));
  }
  Table result;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (rows.column_name(c) != schema.column_name(c)) {
      return Status::TypeMismatch("batch column " + std::to_string(c) +
                                  " is '" + rows.column_name(c) +
                                  "', table has '" + schema.column_name(c) +
                                  "'");
    }
    const Column& src = rows.column(c);
    const DataType want = schema.column(c).type();
    if (src.type() == want) {
      Column copy(src.type());
      copy.Reserve(src.size());
      for (size_t row = 0; row < src.size(); ++row) {
        AppendRowValue(src, row, &copy);
      }
      result.AddColumn(schema.column_name(c), std::move(copy));
      continue;
    }
    if (src.type() == DataType::kInt64 && want == DataType::kDouble) {
      Column widened(DataType::kDouble);
      widened.Reserve(src.size());
      for (size_t row = 0; row < src.size(); ++row) {
        if (src.IsNull(row)) {
          widened.AppendNull();
        } else {
          widened.AppendDouble(static_cast<double>(src.GetInt64(row)));
        }
      }
      result.AddColumn(schema.column_name(c), std::move(widened));
      continue;
    }
    return Status::TypeMismatch(
        std::string("batch column '") + rows.column_name(c) + "' is " +
        DataTypeName(src.type()) + ", table wants " + DataTypeName(want));
  }
  return result;
}

std::string TypeList(const Table& table) {
  std::string list;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) list.push_back(',');
    list += DataTypeName(table.column(c).type());
  }
  return list;
}

StatusOr<std::vector<DataType>> ParseTypeList(const std::string& text) {
  std::vector<DataType> types;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t comma = text.find(',', begin);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    const std::string name = text.substr(begin, end - begin);
    if (name == "int64") {
      types.push_back(DataType::kInt64);
    } else if (name == "double") {
      types.push_back(DataType::kDouble);
    } else if (name == "string") {
      types.push_back(DataType::kString);
    } else {
      return Status::InvalidArgument("unknown column type '" + name + "'");
    }
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return types;
}

StatusOr<Table> CoerceToTypes(const std::vector<DataType>& types,
                              const Table& rows) {
  if (rows.num_columns() != types.size()) {
    return Status::TypeMismatch(
        "batch has " + std::to_string(rows.num_columns()) +
        " columns, type list declares " + std::to_string(types.size()));
  }
  Table result;
  char buffer[64];
  for (size_t c = 0; c < types.size(); ++c) {
    const Column& src = rows.column(c);
    const DataType want = types[c];
    if (src.type() == want) {
      Column copy(src.type());
      copy.Reserve(src.size());
      for (size_t row = 0; row < src.size(); ++row) {
        AppendRowValue(src, row, &copy);
      }
      result.AddColumn(rows.column_name(c), std::move(copy));
      continue;
    }
    const bool to_double =
        src.type() == DataType::kInt64 && want == DataType::kDouble;
    const bool to_string = want == DataType::kString;
    if (!to_double && !to_string) {
      return Status::TypeMismatch(
          std::string("batch column '") + rows.column_name(c) + "' is " +
          DataTypeName(src.type()) + ", declared " + DataTypeName(want));
    }
    Column converted(want);
    converted.Reserve(src.size());
    for (size_t row = 0; row < src.size(); ++row) {
      if (src.IsNull(row)) {
        converted.AppendNull();
        continue;
      }
      if (to_double) {
        converted.AppendDouble(static_cast<double>(src.GetInt64(row)));
        continue;
      }
      // Numeric text that lost its quoting: re-render with the formats
      // ToCsv uses so a shipped value round-trips unchanged.
      if (src.type() == DataType::kInt64) {
        std::snprintf(buffer, sizeof buffer, "%lld",
                      static_cast<long long>(src.GetInt64(row)));
      } else {
        std::snprintf(buffer, sizeof buffer, "%.17g", src.GetDouble(row));
      }
      converted.AppendString(buffer);
    }
    result.AddColumn(rows.column_name(c), std::move(converted));
  }
  return result;
}

}  // namespace dist
}  // namespace hwf
