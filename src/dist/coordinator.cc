#include "dist/coordinator.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "dist/gather.h"
#include "dist/sharding.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/sql_parser.h"
#include "storage/csv.h"

namespace hwf {
namespace dist {

namespace {

constexpr char kUnshardedSuffix[] = "__unsharded";

/// FNV-1a over the table name: a deterministic fallback-worker choice that
/// spreads full copies across the fleet.
size_t NameHash(const std::string& name) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<size_t>(hash);
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", seconds);
  return buf;
}

uint64_t ElapsedUs(double begin, double end) {
  return end > begin ? static_cast<uint64_t>((end - begin) * 1e6) : 0;
}

}  // namespace

StatusOr<std::pair<std::string, int>> ParseEndpoint(
    const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("worker endpoint '" + endpoint +
                                   "' wants host:port");
  }
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("worker endpoint '" + endpoint +
                                   "' has a bad port");
  }
  std::string host = endpoint.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  return std::make_pair(std::move(host), port);
}

StatusOr<std::string> RewriteFromTable(const std::string& sql,
                                       const std::string& table_name,
                                       const std::string& replacement) {
  // Tokenize on whitespace, tracking byte offsets, and find the last
  // case-insensitive FROM whose next token names the table (modulo a
  // trailing ';'). Scanning from the end sidesteps column names that
  // happen to spell "from" earlier in the statement.
  struct Token {
    size_t begin = 0;
    size_t size = 0;
  };
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    while (i < sql.size() &&
           std::isspace(static_cast<unsigned char>(sql[i]))) {
      ++i;
    }
    const size_t begin = i;
    while (i < sql.size() &&
           !std::isspace(static_cast<unsigned char>(sql[i]))) {
      ++i;
    }
    if (i > begin) tokens.push_back({begin, i - begin});
  }
  auto lower_is = [&](const Token& token, const char* word) {
    const size_t len = std::strlen(word);
    if (token.size != len) return false;
    for (size_t k = 0; k < len; ++k) {
      if (std::tolower(static_cast<unsigned char>(sql[token.begin + k])) !=
          word[k]) {
        return false;
      }
    }
    return true;
  };
  for (size_t t = tokens.size(); t-- > 1;) {
    if (!lower_is(tokens[t - 1], "from")) continue;
    std::string target = sql.substr(tokens[t].begin, tokens[t].size);
    std::string suffix;
    if (!target.empty() && target.back() == ';') {
      target.pop_back();
      suffix = ";";
    }
    if (target != table_name) continue;
    return sql.substr(0, tokens[t].begin) + replacement + suffix +
           sql.substr(tokens[t].begin + tokens[t].size);
  }
  return Status::InvalidArgument("cannot rewrite FROM target '" +
                                 table_name + "' in: " + sql);
}

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  WireClientOptions wire;
  wire.connect_timeout_seconds = options_.connect_timeout_seconds;
  wire.request_timeout_seconds = options_.worker_io_timeout_seconds;
  for (const std::string& endpoint : options_.workers) {
    auto worker = std::make_unique<Worker>();
    worker->endpoint = endpoint;
    StatusOr<std::pair<std::string, int>> parsed = ParseEndpoint(endpoint);
    if (parsed.ok()) {
      wire.host = parsed->first;
      wire.port = parsed->second;
    } else {
      wire.host = endpoint;  // Connect() will fail with a clear error.
      wire.port = 0;
    }
    worker->pool = std::make_unique<WireClientPool>(
        wire, options_.max_idle_connections);
    workers_.push_back(std::move(worker));
  }
}

Coordinator::~Coordinator() = default;

double Coordinator::Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::shared_ptr<const Coordinator::ShardedTable> Coordinator::FindTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(tables_mutex_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

Status Coordinator::ShipTable(size_t w, const std::string& command,
                              const Table& table) {
  Worker& worker = *workers_[w];
  std::unique_ptr<WireClient> client = worker.pool->Acquire();
  Status status = [&]() -> Status {
    if (!client->connected()) {
      if (Status s = client->Connect(); !s.ok()) return s;
    }
    std::string payload;
    // The "types=" annotation pins the receiver's column types: CSV alone
    // would re-infer, and a double column shipped with only integral
    // values would come back int64.
    return client->ExchangeWithBody(command, ToCsv(table), &payload,
                                    nullptr, "types=" + TypeList(table));
  }();
  if (WireClient::IsTransportError(status)) client->Close();
  worker.pool->Release(std::move(client));
  RecordWorkerResult(worker, status.ok());
  if (!status.ok()) {
    return Status(status.code(), "worker " + worker.endpoint + ": " +
                                     status.message());
  }
  return Status::OK();
}

Status Coordinator::RegisterTable(const std::string& name,
                                  const Table& table,
                                  const std::vector<std::string>& shard_key) {
  if (workers_.empty()) {
    return Status::InvalidArgument("coordinator has no workers");
  }
  const size_t num_workers = workers_.size();
  auto meta = std::make_shared<ShardedTable>();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    meta->schema.AddColumn(table.column_name(c),
                           Column(table.column(c).type()));
  }
  meta->total_rows = table.num_rows();
  meta->fallback_worker = NameHash(name) % num_workers;
  meta->shard_rows.assign(num_workers, {});

  if (shard_key.empty()) {
    // Unsharded: the fallback worker holds the one full copy; every query
    // takes the fallback regime.
    if (Status s = ShipTable(meta->fallback_worker, "REGISTER " + name,
                             table);
        !s.ok()) {
      return s;
    }
  } else {
    meta->shard_key_names = shard_key;
    for (const std::string& column : shard_key) {
      StatusOr<size_t> index = table.ColumnIndex(column);
      if (!index.ok()) return index.status();
      meta->shard_key.push_back(*index);
    }
    meta->sharded = true;
    if (num_workers == 1) {
      // One worker: the single shard is the full copy under the original
      // name; fallback queries reuse it.
      meta->fallback_worker = 0;
      meta->shard_rows[0].resize(table.num_rows());
      for (size_t row = 0; row < table.num_rows(); ++row) {
        meta->shard_rows[0][row] = static_cast<uint32_t>(row);
      }
      if (Status s = ShipTable(0, "REGISTER " + name, table); !s.ok()) {
        return s;
      }
    } else {
      StatusOr<ShardSplit> split =
          SplitByShardKey(table, shard_key, num_workers);
      if (!split.ok()) return split.status();
      for (size_t w = 0; w < num_workers; ++w) {
        if (split->rows[w].empty()) continue;
        if (Status s = ShipTable(w, "REGISTER " + name, split->shards[w]);
            !s.ok()) {
          return s;
        }
      }
      meta->shard_rows = std::move(split->rows);
      // The designated fallback worker additionally holds a full copy for
      // queries that do not partition by the shard key.
      meta->has_unsharded_copy = true;
      if (Status s = ShipTable(meta->fallback_worker,
                               "REGISTER " + name + kUnshardedSuffix, table);
          !s.ok()) {
        return s;
      }
    }
  }

  std::lock_guard<std::mutex> lock(tables_mutex_);
  tables_[name] = std::move(meta);
  return Status::OK();
}

StatusOr<size_t> Coordinator::AppendRows(const std::string& name,
                                         const Table& rows) {
  std::shared_ptr<const ShardedTable> current = FindTable(name);
  if (current == nullptr) {
    return Status::InvalidArgument("unknown table '" + name + "'");
  }
  // Coerce before hashing: a CSV-shipped batch may carry int64 columns
  // where the schema says double, and the shard hash must be computed on
  // the value the table will actually store.
  StatusOr<Table> coerced = CoerceToSchema(current->schema, rows);
  if (!coerced.ok()) return coerced.status();

  auto next = std::make_shared<ShardedTable>(*current);

  if (!current->sharded) {
    if (Status s = ShipTable(current->fallback_worker, "APPEND " + name,
                             *coerced);
        !s.ok()) {
      return s;
    }
  } else {
    const size_t num_workers = workers_.size();
    StatusOr<std::vector<uint32_t>> assignment =
        AssignShards(*coerced, current->shard_key, num_workers);
    if (!assignment.ok()) return assignment.status();
    std::vector<std::vector<uint32_t>> batch_rows(num_workers);
    for (size_t row = 0; row < coerced->num_rows(); ++row) {
      batch_rows[(*assignment)[row]].push_back(static_cast<uint32_t>(row));
    }
    for (size_t w = 0; w < num_workers; ++w) {
      if (batch_rows[w].empty()) continue;
      const Table shard_batch = TakeRows(*coerced, batch_rows[w]);
      // A worker that held no rows of this table gets its first rows via
      // REGISTER (its copy would otherwise not exist, or be stale from a
      // previous registration).
      const bool fresh = current->shard_rows[w].empty() &&
                         !(num_workers == 1 && w == 0);
      if (Status s = ShipTable(w,
                               (fresh ? "REGISTER " : "APPEND ") + name,
                               shard_batch);
          !s.ok()) {
        return Status(s.code(),
                      s.message() + " (append partially applied)");
      }
      for (const uint32_t row : batch_rows[w]) {
        next->shard_rows[w].push_back(
            static_cast<uint32_t>(current->total_rows + row));
      }
    }
    if (current->has_unsharded_copy) {
      if (Status s = ShipTable(current->fallback_worker,
                               "APPEND " + name + kUnshardedSuffix,
                               *coerced);
          !s.ok()) {
        return Status(s.code(),
                      s.message() + " (append partially applied)");
      }
    }
  }
  next->total_rows = current->total_rows + coerced->num_rows();

  std::lock_guard<std::mutex> lock(tables_mutex_);
  tables_[name] = std::move(next);
  return coerced->num_rows();
}

Status Coordinator::CompactTable(const std::string& name) {
  std::shared_ptr<const ShardedTable> meta = FindTable(name);
  if (meta == nullptr) {
    return Status::InvalidArgument("unknown table '" + name + "'");
  }
  Status first_error;
  auto compact_on = [&](size_t w, const std::string& table_name) {
    Worker& worker = *workers_[w];
    std::unique_ptr<WireClient> client = worker.pool->Acquire();
    Status status = [&]() -> Status {
      if (!client->connected()) {
        if (Status s = client->Connect(); !s.ok()) return s;
      }
      std::string payload;
      return client->Exchange("COMPACT " + table_name, &payload);
    }();
    if (WireClient::IsTransportError(status)) client->Close();
    worker.pool->Release(std::move(client));
    RecordWorkerResult(worker, status.ok());
    if (!status.ok() && first_error.ok()) {
      first_error = Status(status.code(), "worker " + worker.endpoint +
                                              ": " + status.message());
    }
  };
  if (!meta->sharded) {
    compact_on(meta->fallback_worker, name);
  } else {
    for (size_t w = 0; w < workers_.size(); ++w) {
      if (!meta->shard_rows[w].empty()) compact_on(w, name);
    }
    if (meta->has_unsharded_copy) {
      compact_on(meta->fallback_worker, name + kUnshardedSuffix);
    }
  }
  return first_error;
}

Coordinator::RegimeDecision Coordinator::DecideRegime(
    const ShardedTable& table, const service::ParsedStatement& statement,
    Status* error) const {
  RegimeDecision decision;
  StatusOr<service::PlannedQuery> plan =
      service::BindStatement(statement, table.schema);
  if (!plan.ok()) {
    *error = plan.status();
    return decision;
  }
  if (!table.sharded) {
    decision.reason = "table registered without a shard key";
    return decision;
  }
  if (table.total_rows == 0) {
    decision.reason = "table is empty";
    return decision;
  }
  for (const service::PlannedGroup& group : plan->groups) {
    for (size_t k = 0; k < table.shard_key.size(); ++k) {
      const size_t key_column = table.shard_key[k];
      const bool covered =
          std::find(group.spec.partition_by.begin(),
                    group.spec.partition_by.end(),
                    key_column) != group.spec.partition_by.end();
      if (!covered) {
        decision.reason = "a window spec does not partition by shard key "
                          "column '" +
                          table.shard_key_names[k] + "'";
        return decision;
      }
    }
  }
  decision.scatter = true;
  return decision;
}

Status Coordinator::Admit() {
  std::unique_lock<std::mutex> lock(admission_mutex_);
  if (executing_ >= options_.max_concurrent_queries &&
      waiting_ >= options_.max_queued_queries) {
    ++rejected_;
    return Status::ResourceExhausted(
        "coordinator admission queue full (" +
        std::to_string(executing_) + " executing, " +
        std::to_string(waiting_) + " queued)");
  }
  ++waiting_;
  admission_cv_.wait(lock, [this] {
    return executing_ < options_.max_concurrent_queries;
  });
  --waiting_;
  ++executing_;
  return Status::OK();
}

void Coordinator::ReleaseAdmission() {
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    --executing_;
  }
  admission_cv_.notify_one();
}

void Coordinator::RecordWorkerResult(Worker& worker, bool ok) {
  if (ok) {
    worker.consecutive_failures.store(0, std::memory_order_relaxed);
  } else {
    worker.consecutive_failures.fetch_add(1, std::memory_order_relaxed);
    worker.failures.fetch_add(1, std::memory_order_relaxed);
  }
}

Status Coordinator::TryQueryWorker(Worker& worker, const std::string& sql,
                                   double deadline, Table* out) {
  std::unique_ptr<WireClient> client = worker.pool->Acquire();
  Status status = [&]() -> Status {
    if (!client->connected()) {
      if (Status s = client->Connect(); !s.ok()) return s;
    }
    // Deadline propagation: the worker gets the remaining time as its
    // per-query deadline, and the socket deadline adds a grace window so
    // a live worker reports DeadlineExceeded itself. "TIMEOUT 0" resets a
    // deadline left on a pooled connection by an earlier query.
    double remaining = 0;
    double io_timeout = options_.worker_io_timeout_seconds;
    if (deadline > 0) {
      remaining = deadline - Now();
      if (remaining <= 0) {
        return Status::DeadlineExceeded("query deadline exceeded");
      }
      io_timeout = remaining + 5.0;
    }
    if (Status s = client->set_request_timeout(io_timeout); !s.ok()) {
      return s;
    }
    std::string payload;
    if (Status s = client->Exchange("TIMEOUT " + FormatSeconds(remaining),
                                    &payload);
        !s.ok()) {
      return s;
    }
    std::string extra;
    if (Status s = client->Exchange("QUERY " + sql, &payload, &extra);
        !s.ok()) {
      return s;
    }
    StatusOr<Table> parsed = ParseCsv(payload);
    if (!parsed.ok()) {
      return Status::Internal("unparsable shard result: " +
                              parsed.status().message());
    }
    *out = std::move(*parsed);
    return Status::OK();
  }();
  if (WireClient::IsTransportError(status)) client->Close();
  worker.pool->Release(std::move(client));
  RecordWorkerResult(worker, status.ok());
  return status;
}

Status Coordinator::QueryWorker(size_t w, const std::string& sql,
                                double deadline, Table* out) {
  Worker& worker = *workers_[w];
  worker.subqueries.fetch_add(1, std::memory_order_relaxed);
  subqueries_.fetch_add(1, std::memory_order_relaxed);
  const double begin = Now();
  double backoff = options_.backoff_initial_seconds;
  Status status;
  for (size_t attempt = 0; attempt <= options_.shard_retries; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      double sleep = backoff;
      if (deadline > 0) {
        sleep = std::min(sleep, std::max(0.0, deadline - Now()));
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep));
      backoff = std::min(backoff * 2, options_.backoff_max_seconds);
    }
    if (deadline > 0 && Now() >= deadline) {
      status = Status::DeadlineExceeded("query deadline exceeded");
      break;
    }
    status = TryQueryWorker(worker, sql, deadline, out);
    if (status.ok() || !WireClient::IsRetriable(status)) break;
  }
  worker.latency_us.Record(ElapsedUs(begin, Now()));
  if (status.ok()) return status;
  if (WireClient::IsRetriable(status)) {
    failed_shards_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "shard on worker " + worker.endpoint + " unavailable after " +
        std::to_string(options_.shard_retries + 1) +
        " attempt(s): " + status.message());
  }
  return Status(status.code(),
                "worker " + worker.endpoint + ": " + status.message());
}

StatusOr<CoordinatorQueryResult> Coordinator::Query(const std::string& sql,
                                                    double timeout_seconds) {
  const double timeout = timeout_seconds < 0
                             ? options_.default_timeout_seconds
                             : timeout_seconds;
  const double deadline = timeout > 0 ? Now() + timeout : 0;
  if (Status s = Admit(); !s.ok()) return s;
  struct AdmissionGuard {
    Coordinator* coordinator;
    ~AdmissionGuard() { coordinator->ReleaseAdmission(); }
  } guard{this};

  const uint64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedQueryId scoped_query(query_id);
  HWF_TRACE_SCOPE("dist.query");
  const double begin = Now();
  auto fail = [&](Status status) -> StatusOr<CoordinatorQueryResult> {
    failed_queries_.fetch_add(1, std::memory_order_relaxed);
    query_us_.Record(ElapsedUs(begin, Now()));
    return status;
  };

  StatusOr<service::ParsedStatement> statement =
      service::ParseStatement(sql);
  if (!statement.ok()) return fail(statement.status());
  std::shared_ptr<const ShardedTable> meta =
      FindTable(statement->table_name);
  if (meta == nullptr) {
    return fail(Status::InvalidArgument("unknown table '" +
                                        statement->table_name + "'"));
  }
  Status bind_error;
  const RegimeDecision regime = DecideRegime(*meta, *statement, &bind_error);
  if (!bind_error.ok()) return fail(bind_error);

  CoordinatorQueryResult result;
  result.query_id = query_id;

  if (regime.scatter) {
    std::vector<size_t> active;
    for (size_t w = 0; w < workers_.size(); ++w) {
      if (!meta->shard_rows[w].empty()) active.push_back(w);
    }
    std::vector<Table> shard_results(active.size());
    std::vector<Status> statuses(active.size());
    std::vector<uint64_t> elapsed_us(active.size(), 0);
    std::vector<std::thread> threads;
    threads.reserve(active.size());
    for (size_t i = 0; i < active.size(); ++i) {
      threads.emplace_back([&, i] {
        obs::ScopedQueryId scoped(query_id);
        HWF_TRACE_SCOPE_ARG("dist.shard_query", "worker", active[i]);
        const double shard_begin = Now();
        statuses[i] =
            QueryWorker(active[i], sql, deadline, &shard_results[i]);
        elapsed_us[i] = ElapsedUs(shard_begin, Now());
      });
    }
    for (std::thread& thread : threads) thread.join();
    uint64_t straggler = 0;
    for (const uint64_t us : elapsed_us) straggler = std::max(straggler, us);
    straggler_us_.Record(straggler);
    // Prefer a terminal error over retry exhaustion: "your SQL divides by
    // zero" beats "shard unavailable" when both happened.
    Status scatter_error;
    for (const Status& status : statuses) {
      if (status.ok()) continue;
      if (scatter_error.ok() ||
          (scatter_error.code() == StatusCode::kResourceExhausted &&
           status.code() != StatusCode::kResourceExhausted)) {
        scatter_error = status;
      }
    }
    if (!scatter_error.ok()) return fail(scatter_error);

    std::vector<std::vector<uint32_t>> active_rows;
    active_rows.reserve(active.size());
    for (const size_t w : active) active_rows.push_back(meta->shard_rows[w]);
    StatusOr<Table> gathered =
        GatherShardResults(shard_results, active_rows, meta->total_rows);
    if (!gathered.ok()) return fail(gathered.status());
    result.table = std::move(*gathered);
    result.regime = "scatter(" + std::to_string(active.size()) + ")";
    scatter_queries_.fetch_add(1, std::memory_order_relaxed);
  } else {
    std::string worker_sql = sql;
    if (meta->has_unsharded_copy) {
      StatusOr<std::string> rewritten = RewriteFromTable(
          sql, statement->table_name,
          statement->table_name + kUnshardedSuffix);
      if (!rewritten.ok()) return fail(rewritten.status());
      worker_sql = std::move(*rewritten);
    }
    HWF_TRACE_SCOPE_ARG("dist.fallback_query", "worker",
                        meta->fallback_worker);
    Table out;
    Status status =
        QueryWorker(meta->fallback_worker, worker_sql, deadline, &out);
    if (!status.ok()) return fail(status);
    if (out.num_rows() != meta->total_rows) {
      return fail(Status::Internal(
          "fallback worker returned " + std::to_string(out.num_rows()) +
          " rows, expected " + std::to_string(meta->total_rows)));
    }
    result.table = std::move(out);
    result.regime = "fallback";
    fallback_queries_.fetch_add(1, std::memory_order_relaxed);
  }
  query_us_.Record(ElapsedUs(begin, Now()));
  return result;
}

StatusOr<std::string> Coordinator::Explain(const std::string& sql) const {
  StatusOr<service::ParsedStatement> statement =
      service::ParseStatement(sql);
  if (!statement.ok()) return statement.status();
  std::shared_ptr<const ShardedTable> meta =
      FindTable(statement->table_name);
  if (meta == nullptr) {
    return Status::InvalidArgument("unknown table '" +
                                   statement->table_name + "'");
  }
  Status bind_error;
  const RegimeDecision regime = DecideRegime(*meta, *statement, &bind_error);
  if (!bind_error.ok()) return bind_error;

  std::string text;
  if (regime.scatter) {
    size_t active = 0;
    for (const auto& rows : meta->shard_rows) {
      if (!rows.empty()) ++active;
    }
    text = "regime: scatter(" + std::to_string(active) + ")\n";
  } else {
    text = "regime: fallback\nreason: " + regime.reason + "\nworker: " +
           workers_[meta->fallback_worker]->endpoint + "\n";
  }
  text += "table: " + statement->table_name;
  if (meta->sharded) {
    text += "  shard_key:";
    for (const std::string& name : meta->shard_key_names) {
      text += " " + name;
    }
    text += "\nshard_rows: [";
    for (size_t w = 0; w < meta->shard_rows.size(); ++w) {
      text += (w == 0 ? "" : ", ") +
              std::to_string(meta->shard_rows[w].size());
    }
    text += "]";
  }
  text += "\n";
  return text;
}

Coordinator::Stats Coordinator::stats() const {
  Stats stats;
  stats.scatter_queries = scatter_queries_.load(std::memory_order_relaxed);
  stats.fallback_queries =
      fallback_queries_.load(std::memory_order_relaxed);
  stats.subqueries = subqueries_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.failed_shards = failed_shards_.load(std::memory_order_relaxed);
  stats.failed_queries = failed_queries_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  for (const auto& worker : workers_) {
    WorkerStats ws;
    ws.endpoint = worker->endpoint;
    ws.consecutive_failures =
        worker->consecutive_failures.load(std::memory_order_relaxed);
    ws.healthy = ws.consecutive_failures < options_.unhealthy_after;
    ws.failures = worker->failures.load(std::memory_order_relaxed);
    ws.subqueries = worker->subqueries.load(std::memory_order_relaxed);
    stats.workers.push_back(std::move(ws));
  }
  return stats;
}

std::string Coordinator::StatsJson() const {
  const Stats stats = this->stats();
  auto u64 = [](uint64_t v) { return std::to_string(v); };
  std::string json = "{";
  json += "\"scatter_queries\": " + u64(stats.scatter_queries);
  json += ", \"fallback_queries\": " + u64(stats.fallback_queries);
  json += ", \"subqueries\": " + u64(stats.subqueries);
  json += ", \"retries\": " + u64(stats.retries);
  json += ", \"failed_shards\": " + u64(stats.failed_shards);
  json += ", \"failed_queries\": " + u64(stats.failed_queries);
  json += ", \"rejected\": " + u64(stats.rejected);
  const obs::HistogramSnapshot straggler = straggler_us_.Snapshot();
  char buf[128];
  std::snprintf(buf, sizeof buf,
                ", \"straggler_seconds\": {\"count\": %llu, \"p50\": %.6f, "
                "\"p99\": %.6f}",
                static_cast<unsigned long long>(straggler.count),
                straggler.Quantile(0.5) * 1e-6,
                straggler.Quantile(0.99) * 1e-6);
  json += buf;
  json += ", \"workers\": [";
  for (size_t w = 0; w < stats.workers.size(); ++w) {
    const WorkerStats& ws = stats.workers[w];
    const obs::HistogramSnapshot latency =
        workers_[w]->latency_us.Snapshot();
    std::snprintf(buf, sizeof buf,
                  ", \"p50\": %.6f, \"p99\": %.6f}",
                  latency.Quantile(0.5) * 1e-6,
                  latency.Quantile(0.99) * 1e-6);
    json += (w == 0 ? "" : ", ");
    json += "{\"endpoint\": \"" + ws.endpoint + "\"";
    json += ", \"healthy\": " + std::string(ws.healthy ? "true" : "false");
    json += ", \"consecutive_failures\": " + u64(ws.consecutive_failures);
    json += ", \"failures\": " + u64(ws.failures);
    json += ", \"subqueries\": " + u64(ws.subqueries);
    json += buf;
  }
  json += "]}";
  return json;
}

void Coordinator::RegisterMetrics(obs::MetricsRegistry* registry) {
  auto counter = [&](const char* name, const char* help,
                     const std::atomic<uint64_t>* value) {
    registry->AddCounter(name, help, {}, [value] {
      return static_cast<double>(value->load(std::memory_order_relaxed));
    });
  };
  counter("hwf_shard_scatter_total", "Queries executed by scatter/gather",
          &scatter_queries_);
  counter("hwf_shard_fallback_total",
          "Queries routed to the fallback worker", &fallback_queries_);
  counter("hwf_shard_subqueries_total", "Per-shard sub-queries issued",
          &subqueries_);
  counter("hwf_shard_retries_total", "Sub-query retries", &retries_);
  counter("hwf_shard_failed_total",
          "Sub-queries that exhausted their retries", &failed_shards_);
  counter("hwf_shard_rejected_total",
          "Queries rejected at coordinator admission", &rejected_);
  registry->AddGauge("hwf_shard_workers", "Configured scatter fan-out", {},
                     [this] { return static_cast<double>(workers_.size()); });
  registry->AddGauge(
      "hwf_shard_unhealthy_workers",
      "Workers at or past the consecutive-failure threshold", {}, [this] {
        size_t unhealthy = 0;
        for (const auto& worker : workers_) {
          if (worker->consecutive_failures.load(std::memory_order_relaxed) >=
              options_.unhealthy_after) {
            ++unhealthy;
          }
        }
        return static_cast<double>(unhealthy);
      });
  for (const auto& worker : workers_) {
    registry->AddSummary("hwf_shard_latency_seconds",
                         "Per-shard sub-query latency",
                         {{"worker", worker->endpoint}}, &worker->latency_us,
                         1e-6);
  }
  registry->AddSummary("hwf_shard_straggler_seconds",
                       "Slowest shard per scatter", {}, &straggler_us_,
                       1e-6);
  registry->AddSummary("hwf_coordinator_query_seconds",
                       "End-to-end coordinator query latency", {},
                       &query_us_, 1e-6);
}

}  // namespace dist
}  // namespace hwf
