#ifndef HWF_BASELINES_SEGMENT_TREE_H_
#define HWF_BASELINES_SEGMENT_TREE_H_

#include <algorithm>
#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace hwf {

/// A static segment tree over aggregation states (Leis et al. [27]).
///
/// Build is O(n); any range aggregate is O(log n) by merging the canonical
/// cover's node states. This is the production path for *distributive and
/// algebraic* framed aggregates (SUM, MIN, MAX, AVG, ...) — the paper's
/// merge sort tree is only needed for holistic ones. No inverse function is
/// required, so MIN/MAX work and arbitrary frames (including non-monotonic
/// ones) run in O(n log n) total.
///
/// `Ops` follows the aggregate_ops.h concept.
template <typename Ops>
class SegmentTree {
 public:
  using Input = typename Ops::Input;
  using State = typename Ops::State;

  SegmentTree() = default;

  /// Builds the tree over per-position inputs.
  static SegmentTree Build(std::span<const Input> inputs) {
    SegmentTree tree;
    const size_t n = inputs.size();
    tree.n_ = n;
    if (n == 0) return tree;
    tree.nodes_.resize(2 * n);
    for (size_t i = 0; i < n; ++i) {
      tree.nodes_[n + i] = Ops::MakeState(inputs[i]);
    }
    for (size_t i = n - 1; i > 0; --i) {
      State state = tree.nodes_[2 * i];
      if (2 * i + 1 < 2 * n) Ops::Merge(state, tree.nodes_[2 * i + 1]);
      tree.nodes_[i] = state;
    }
    return tree;
  }

  size_t size() const { return n_; }

  /// Aggregate over positions [lo, hi); nullopt when the range is empty.
  std::optional<State> Aggregate(size_t lo, size_t hi) const {
    HWF_DCHECK(hi <= n_);
    if (lo >= hi) return std::nullopt;
    std::optional<State> left;
    std::optional<State> right;
    size_t l = lo + n_;
    size_t r = hi + n_;
    while (l < r) {
      if (l & 1) {
        if (left.has_value()) {
          Ops::Merge(*left, nodes_[l]);
        } else {
          left = nodes_[l];
        }
        ++l;
      }
      if (r & 1) {
        --r;
        if (right.has_value()) {
          State state = nodes_[r];
          Ops::Merge(state, *right);
          right = std::move(state);
        } else {
          right = nodes_[r];
        }
      }
      l >>= 1;
      r >>= 1;
    }
    if (!left.has_value()) return right;
    if (right.has_value()) Ops::Merge(*left, *right);
    return left;
  }

 private:
  size_t n_ = 0;
  std::vector<State> nodes_;
};

/// A segment tree whose nodes store *sorted value lists* — the only
/// previously-known parallelizable structure for framed percentiles
/// (Arasu & Widom's base intervals [1]; Table 1's "segment tree" row).
///
/// Build is O(n log n) (each level is a merge of the level below); a
/// percentile query covers the range with O(log n) nodes and then selects
/// the k-th element of the union of their sorted lists. Selection costs
/// O(log n) rounds of O(log n) per-list narrowing, so a query is
/// O(log² n)–O(log³ n) — asymptotically worse than the merge sort tree's
/// O(log n), which is the point of the comparison.
class SortedListSegmentTree {
 public:
  SortedListSegmentTree() = default;

  static SortedListSegmentTree Build(std::span<const double> values) {
    SortedListSegmentTree tree;
    tree.n_ = values.size();
    if (tree.n_ == 0) return tree;
    // levels_[0] = the raw values; level ℓ holds sorted runs of size 2^ℓ.
    tree.levels_.emplace_back(values.begin(), values.end());
    for (size_t width = 1; width < tree.n_; width *= 2) {
      const std::vector<double>& prev = tree.levels_.back();
      std::vector<double> next(tree.n_);
      for (size_t lo = 0; lo < tree.n_; lo += 2 * width) {
        const size_t mid = std::min(tree.n_, lo + width);
        const size_t hi = std::min(tree.n_, lo + 2 * width);
        std::merge(prev.begin() + lo, prev.begin() + mid, prev.begin() + mid,
                   prev.begin() + hi, next.begin() + lo);
      }
      tree.levels_.push_back(std::move(next));
    }
    return tree;
  }

  size_t size() const { return n_; }

  size_t MemoryUsageBytes() const {
    size_t bytes = 0;
    for (const auto& level : levels_) bytes += level.size() * sizeof(double);
    return bytes;
  }

  /// The k-th smallest value (0-based) among positions [lo, hi).
  /// Requires k < hi - lo.
  double SelectKth(size_t lo, size_t hi, size_t k) const;

 private:
  struct NodeRef {
    const double* begin;
    const double* end;
  };

  /// Collects the canonical cover of [lo, hi) as sorted runs.
  void Cover(size_t lo, size_t hi, std::vector<NodeRef>* out) const;

  size_t n_ = 0;
  std::vector<std::vector<double>> levels_;
};

}  // namespace hwf

#endif  // HWF_BASELINES_SEGMENT_TREE_H_
