#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "baselines/order_statistic_tree.h"
#include "baselines/sliding.h"
#include "mst/permutation.h"
#include "obs/trace.h"
#include "window/evaluator.h"
#include "window/functions/common.h"

namespace hwf {
namespace {

using internal_baselines::SlideFrames;
using internal_window::PositionLess;

/// Sliding order statistic tree over (value, position) pairs — unique keys
/// make Erase unambiguous.
struct TreeState {
  const std::vector<double>* values;
  CountedBTree<std::pair<double, size_t>> tree;

  void Add(size_t pos) { tree.Insert({(*values)[pos], pos}); }
  void Remove(size_t pos) {
    const bool erased = tree.Erase({(*values)[pos], pos});
    HWF_DCHECK(erased);
    (void)erased;
  }
};

}  // namespace

Status EvalOrderStatisticTree(const PartitionView& view,
                              const WindowFunctionCall& call, Column* out) {
  HWF_TRACE_SCOPE_ARG("baseline.order_statistic", "rows", view.size());
  if (view.spec->frame.exclusion != FrameExclusion::kNoOthers) {
    return Status::NotImplemented(
        "order statistic tree engine does not support frame exclusion");
  }
  switch (call.kind) {
    case WindowFunctionKind::kMedian:
    case WindowFunctionKind::kPercentileDisc:
    case WindowFunctionKind::kPercentileCont: {
      const IndexRemap remap = BuildCallRemap(view, call, true);
      const Column& arg = view.col(*call.argument);
      std::vector<double> values(remap.num_surviving());
      for (size_t j = 0; j < values.size(); ++j) {
        values[j] = arg.GetNumeric(view.rows[remap.ToOriginal(j)]);
      }
      const double fraction = call.kind == WindowFunctionKind::kMedian
                                  ? 0.5
                                  : call.fraction;
      const bool cont = call.kind == WindowFunctionKind::kPercentileCont;
      SlideFrames(
          view, remap, [&] { return TreeState{&values, CountedBTree<std::pair<double, size_t>>()}; },
          [&](size_t i, const TreeState& state, size_t) {
            const size_t row = view.rows[i];
            const size_t total = state.tree.size();
            if (total == 0) {
              out->SetNull(row);
              return;
            }
            if (cont) {
              const double pos = fraction * static_cast<double>(total - 1);
              const size_t lo = static_cast<size_t>(std::floor(pos));
              const size_t hi = static_cast<size_t>(std::ceil(pos));
              const double lo_val = state.tree.Kth(lo).first;
              const double hi_val = state.tree.Kth(hi).first;
              const double t = pos - static_cast<double>(lo);
              out->SetDouble(row, lo_val + t * (hi_val - lo_val));
            } else {
              double pos =
                  std::ceil(fraction * static_cast<double>(total)) - 1;
              size_t idx = pos <= 0 ? 0 : static_cast<size_t>(pos);
              if (idx >= total) idx = total - 1;
              const double value = state.tree.Kth(idx).first;
              if (out->type() == DataType::kInt64) {
                out->SetInt64(row, static_cast<int64_t>(value));
              } else {
                out->SetDouble(row, value);
              }
            }
          });
      return Status::OK();
    }
    case WindowFunctionKind::kRank: {
      // Rank via a tree over the function-order codes of the frame rows.
      const IndexRemap remap = BuildCallRemap(view, call, false);
      const std::vector<SortKey> order = EffectiveOrder(*view.spec, call);
      PositionLess less{&view, order};
      auto cmp = [&less](size_t a, size_t b) { return less(a, b); };
      const std::vector<uint64_t> codes =
          ComputeDenseCodes<uint64_t>(view.size(), cmp, nullptr, *view.pool);
      std::vector<double> keys(remap.num_surviving());
      for (size_t j = 0; j < keys.size(); ++j) {
        keys[j] = static_cast<double>(codes[remap.ToOriginal(j)]);
      }
      SlideFrames(
          view, remap, [&] { return TreeState{&keys, CountedBTree<std::pair<double, size_t>>()}; },
          [&](size_t i, const TreeState& state, size_t) {
            const size_t smaller = state.tree.CountLess(
                {static_cast<double>(codes[i]), 0});
            out->SetInt64(view.rows[i], static_cast<int64_t>(smaller) + 1);
          });
      return Status::OK();
    }
    default:
      return Status::NotImplemented(
          std::string("order statistic tree engine does not support ") +
          WindowFunctionKindName(call.kind));
  }
}

}  // namespace hwf
