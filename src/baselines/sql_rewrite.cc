#include "baselines/sql_rewrite.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/macros.h"

namespace hwf {

namespace {

/// Materializes the ROW_NUMBER() CTE: rank of each row under
/// (order_column, row id).
std::vector<size_t> ComputeRowNumbers(const Table& table,
                                      size_t order_column) {
  const Column& order = table.column(order_column);
  const size_t n = table.num_rows();
  std::vector<size_t> by_order(n);
  std::iota(by_order.begin(), by_order.end(), 0);
  std::sort(by_order.begin(), by_order.end(), [&](size_t a, size_t b) {
    const int cmp = order.Compare(a, b);
    if (cmp != 0) return cmp < 0;
    return a < b;
  });
  std::vector<size_t> rn(n);
  for (size_t r = 0; r < n; ++r) rn[by_order[r]] = r;
  return rn;
}

double DiscMedian(std::vector<double>* values) {
  HWF_DCHECK(!values->empty());
  std::sort(values->begin(), values->end());
  const size_t total = values->size();
  double pos = std::ceil(0.5 * static_cast<double>(total)) - 1;
  size_t idx = pos <= 0 ? 0 : static_cast<size_t>(pos);
  if (idx >= total) idx = total - 1;
  return (*values)[idx];
}

}  // namespace

Column CorrelatedSubqueryFramedMedian(const Table& table, size_t value_column,
                                      size_t order_column,
                                      int64_t preceding) {
  const Column& value = table.column(value_column);
  const size_t n = table.num_rows();
  const std::vector<size_t> rn = ComputeRowNumbers(table, order_column);

  Column result(DataType::kDouble, n);
  std::vector<double> frame;
  for (size_t outer = 0; outer < n; ++outer) {
    // The correlated subquery re-scans lineitem_rn for every outer row.
    const int64_t lo = static_cast<int64_t>(rn[outer]) - preceding;
    const int64_t hi = static_cast<int64_t>(rn[outer]);
    frame.clear();
    for (size_t inner = 0; inner < n; ++inner) {
      const int64_t r = static_cast<int64_t>(rn[inner]);
      if (r >= lo && r <= hi) frame.push_back(value.GetNumeric(inner));
    }
    result.SetDouble(outer, DiscMedian(&frame));
  }
  return result;
}

Column SelfJoinFramedMedian(const Table& table, size_t value_column,
                            size_t order_column, int64_t preceding) {
  const Column& value = table.column(value_column);
  const size_t n = table.num_rows();
  const std::vector<size_t> rn = ComputeRowNumbers(table, order_column);

  // Nested-loop join: emit (group = l1 row, l2 value) pairs. The grouped
  // aggregation then consumes each group's materialized values. To keep
  // memory bounded we process the join grouped by the outer side, as the
  // group-aggregate operator above the join would after partitioning —
  // the O(n²) join work is unchanged.
  Column result(DataType::kDouble, n);
  std::vector<double> group;
  for (size_t outer = 0; outer < n; ++outer) {
    const int64_t lo = static_cast<int64_t>(rn[outer]) - preceding;
    const int64_t hi = static_cast<int64_t>(rn[outer]);
    group.clear();
    for (size_t inner = 0; inner < n; ++inner) {
      const int64_t r = static_cast<int64_t>(rn[inner]);
      // The join predicate l2.rn BETWEEN l1.rn - k AND l1.rn, evaluated
      // per pair (this is what the nested-loop join does).
      if (r >= lo && r <= hi) {
        group.push_back(value.GetNumeric(inner));
      }
    }
    result.SetDouble(outer, DiscMedian(&group));
  }
  return result;
}

}  // namespace hwf
