#ifndef HWF_BASELINES_SLIDING_H_
#define HWF_BASELINES_SLIDING_H_

#include <cstddef>

#include "mst/remap.h"
#include "window/evaluator.h"

namespace hwf {
namespace internal_baselines {

/// Drives an incremental aggregation state over consecutive frames.
///
/// Work is cut into morsels (tasks); every task starts from an EMPTY state
/// and replays its first frame from scratch — exactly the task-based
/// parallelization penalty the paper analyzes in §3.2: the larger the
/// frame, the more work each task duplicates. Within a task, consecutive
/// frames are diffed and the state is updated by Add/Remove calls; for
/// non-monotonic frames the diff degenerates to remove-all/add-all, which
/// reproduces the §6.5 behavior.
///
/// `MakeState()` creates a fresh state with methods:
///   void Add(size_t filtered_pos);
///   void Remove(size_t filtered_pos);
/// `emit(i, state, frame_rows)` writes the result for partition position i.
template <typename MakeState, typename Emit>
void SlideFrames(const PartitionView& view, const IndexRemap& remap,
                 MakeState&& make_state, Emit&& emit) {
  ParallelFor(
      0, view.size(),
      [&](size_t morsel_lo, size_t morsel_hi) {
        auto state = make_state();
        RowRange cur{0, 0};
        RowRange mapped[FrameRanges::kMaxRanges];
        for (size_t i = morsel_lo; i < morsel_hi; ++i) {
          const size_t num_ranges =
              MapRangesToFiltered(view.frames[i], remap, mapped);
          HWF_CHECK_MSG(num_ranges <= 1,
                        "incremental engines do not support frame exclusion");
          const RowRange next =
              num_ranges == 1 ? mapped[0] : RowRange{cur.end, cur.end};
          if (next.begin >= cur.end || next.end <= cur.begin) {
            // Disjoint (or empty): full teardown and rebuild.
            for (size_t j = cur.begin; j < cur.end; ++j) state.Remove(j);
            for (size_t j = next.begin; j < next.end; ++j) state.Add(j);
          } else {
            if (next.begin < cur.begin) {
              for (size_t j = next.begin; j < cur.begin; ++j) state.Add(j);
            } else {
              for (size_t j = cur.begin; j < next.begin; ++j) state.Remove(j);
            }
            if (next.end > cur.end) {
              for (size_t j = cur.end; j < next.end; ++j) state.Add(j);
            } else {
              for (size_t j = next.end; j < cur.end; ++j) state.Remove(j);
            }
          }
          cur = next;
          emit(i, state, cur.size());
        }
      },
      *view.pool, view.options->morsel_size);
}

}  // namespace internal_baselines
}  // namespace hwf

#endif  // HWF_BASELINES_SLIDING_H_
