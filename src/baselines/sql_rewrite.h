#ifndef HWF_BASELINES_SQL_REWRITE_H_
#define HWF_BASELINES_SQL_REWRITE_H_

#include <cstdint>

#include "storage/table.h"

namespace hwf {

/// The "traditional SQL" formulations of a framed median from the paper's
/// §6.2 (Fig. 9), executed as the plans the evaluated systems actually
/// chose: O(n²) nested loops. Without native framed-percentile support, a
/// user must express
///
///   percentile_disc(0.5 ORDER BY price)
///     OVER (ORDER BY date ROWS BETWEEN k PRECEDING AND CURRENT ROW)
///
/// through a row-numbered CTE plus either a correlated subquery or a
/// non-equi self-join — and every system (DuckDB, Hyper, PostgreSQL)
/// evaluates the range predicate `l2.rn BETWEEN l1.rn - k AND l1.rn` as a
/// nested-loop join. These functions reproduce those plans faithfully so
/// that Fig. 9's comparison can be regenerated without the external
/// systems (see DESIGN.md, Substitutions).

/// The correlated-subquery plan: for every outer row, scan the whole CTE,
/// keep rows inside the rn window, and aggregate the percentile.
Column CorrelatedSubqueryFramedMedian(const Table& table, size_t value_column,
                                      size_t order_column, int64_t preceding);

/// The self-join plan: produce all join pairs (materialized per outer
/// group, as a hash aggregate over the join output would), then sort each
/// group's values and pick the percentile.
Column SelfJoinFramedMedian(const Table& table, size_t value_column,
                            size_t order_column, int64_t preceding);

}  // namespace hwf

#endif  // HWF_BASELINES_SQL_REWRITE_H_
