#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/sliding.h"
#include "obs/trace.h"
#include "window/evaluator.h"
#include "window/functions/common.h"

namespace hwf {
namespace {

using internal_baselines::SlideFrames;
using internal_window::GatherArgumentCodes;

/// Wesley & Xu's incremental distinct state [38]: a hash table from value
/// code to its multiplicity inside the frame. O(1) amortized per frame
/// move; sums are maintained alongside for SUM/AVG DISTINCT.
struct DistinctState {
  const std::vector<uint64_t>* codes;
  const std::vector<double>* values;      // Null when counting only.
  const std::vector<int64_t>* int_values; // Exact path for int64 sums.
  std::unordered_map<uint64_t, int64_t> multiplicity;
  size_t distinct = 0;
  double sum = 0;
  int64_t int_sum = 0;

  void Add(size_t pos) {
    if (++multiplicity[(*codes)[pos]] == 1) {
      ++distinct;
      if (values != nullptr) sum += (*values)[pos];
      if (int_values != nullptr) int_sum += (*int_values)[pos];
    }
  }
  void Remove(size_t pos) {
    auto it = multiplicity.find((*codes)[pos]);
    HWF_DCHECK(it != multiplicity.end());
    if (--it->second == 0) {
      multiplicity.erase(it);
      --distinct;
      if (values != nullptr) sum -= (*values)[pos];
      if (int_values != nullptr) int_sum -= (*int_values)[pos];
    }
  }
};

/// Wesley & Xu's incremental percentile state [38]: a sorted array with
/// binary-search insertion and deletion — O(frame size) per move, which is
/// the O(n²) behavior Table 1 lists.
struct SortedValuesState {
  const std::vector<double>* values;
  std::vector<double> sorted;

  void Add(size_t pos) {
    const double v = (*values)[pos];
    sorted.insert(std::lower_bound(sorted.begin(), sorted.end(), v), v);
  }
  void Remove(size_t pos) {
    const double v = (*values)[pos];
    auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
    HWF_DCHECK(it != sorted.end() && *it == v);
    sorted.erase(it);
  }
};

/// Wesley & Xu's incremental MODE state [38]: per-value counts plus an
/// ordered ranking of (count, ~tiekey) pairs, so the current mode — the
/// most frequent value, ties to the smallest tiekey — is O(log) per frame
/// move and O(1) to read.
struct ModeState {
  const std::vector<uint64_t>* tiekeys;
  std::unordered_map<uint64_t, int64_t> counts;         // tiekey -> count
  std::unordered_map<uint64_t, size_t> representative;  // tiekey -> position
  std::set<std::pair<int64_t, uint64_t>> ranking;       // (count, ~tiekey)

  void Add(size_t pos) {
    const uint64_t tiekey = (*tiekeys)[pos];
    int64_t& count = counts[tiekey];
    if (count > 0) ranking.erase({count, ~tiekey});
    ++count;
    ranking.insert({count, ~tiekey});
    representative.try_emplace(tiekey, pos);
  }
  void Remove(size_t pos) {
    const uint64_t tiekey = (*tiekeys)[pos];
    auto it = counts.find(tiekey);
    HWF_DCHECK(it != counts.end() && it->second > 0);
    ranking.erase({it->second, ~tiekey});
    if (--it->second > 0) {
      ranking.insert({it->second, ~tiekey});
    } else {
      counts.erase(it);
    }
  }
  /// Position of the mode's representative, or nullopt for an empty frame.
  std::optional<size_t> Best() const {
    if (ranking.empty()) return std::nullopt;
    const uint64_t tiekey = ~ranking.rbegin()->second;
    return representative.at(tiekey);
  }
};

std::vector<double> GatherValues(const PartitionView& view, size_t argument,
                                 const IndexRemap& remap) {
  const Column& column = view.col(argument);
  std::vector<double> values(remap.num_surviving());
  for (size_t j = 0; j < values.size(); ++j) {
    values[j] = column.GetNumeric(view.rows[remap.ToOriginal(j)]);
  }
  return values;
}

}  // namespace

Status EvalIncremental(const PartitionView& view,
                       const WindowFunctionCall& call, Column* out) {
  HWF_TRACE_SCOPE_ARG("baseline.incremental", "rows", view.size());
  if (view.spec->frame.exclusion != FrameExclusion::kNoOthers) {
    return Status::NotImplemented(
        "incremental engine does not support frame exclusion");
  }
  switch (call.kind) {
    case WindowFunctionKind::kCountDistinct: {
      const IndexRemap remap = BuildCallRemap(view, call, true);
      const std::vector<uint64_t> codes =
          GatherArgumentCodes(view, *call.argument, remap);
      SlideFrames(
          view, remap,
          [&] {
            return DistinctState{&codes, nullptr, nullptr, {}, 0, 0, 0};
          },
          [&](size_t i, const DistinctState& state, size_t) {
            out->SetInt64(view.rows[i], static_cast<int64_t>(state.distinct));
          });
      return Status::OK();
    }
    case WindowFunctionKind::kSumDistinct:
    case WindowFunctionKind::kAvgDistinct: {
      const IndexRemap remap = BuildCallRemap(view, call, true);
      const std::vector<uint64_t> codes =
          GatherArgumentCodes(view, *call.argument, remap);
      const bool int_sum = call.kind == WindowFunctionKind::kSumDistinct &&
                           out->type() == DataType::kInt64;
      std::vector<double> values;
      std::vector<int64_t> int_values;
      if (int_sum) {
        const Column& arg = view.col(*call.argument);
        int_values.resize(remap.num_surviving());
        for (size_t j = 0; j < int_values.size(); ++j) {
          int_values[j] = arg.GetInt64(view.rows[remap.ToOriginal(j)]);
        }
      } else {
        values = GatherValues(view, *call.argument, remap);
      }
      SlideFrames(
          view, remap,
          [&] {
            return DistinctState{&codes,
                                 int_sum ? nullptr : &values,
                                 int_sum ? &int_values : nullptr,
                                 {},
                                 0,
                                 0,
                                 0};
          },
          [&](size_t i, const DistinctState& state, size_t) {
            const size_t row = view.rows[i];
            if (state.distinct == 0) {
              out->SetNull(row);
            } else if (call.kind == WindowFunctionKind::kAvgDistinct) {
              out->SetDouble(row, state.sum /
                                      static_cast<double>(state.distinct));
            } else if (int_sum) {
              out->SetInt64(row, state.int_sum);
            } else {
              out->SetDouble(row, state.sum);
            }
          });
      return Status::OK();
    }
    case WindowFunctionKind::kMedian:
    case WindowFunctionKind::kPercentileDisc:
    case WindowFunctionKind::kPercentileCont: {
      const IndexRemap remap = BuildCallRemap(view, call, true);
      const std::vector<double> values =
          GatherValues(view, *call.argument, remap);
      const double fraction = call.kind == WindowFunctionKind::kMedian
                                  ? 0.5
                                  : call.fraction;
      const bool cont = call.kind == WindowFunctionKind::kPercentileCont;
      SlideFrames(
          view, remap, [&] { return SortedValuesState{&values, {}}; },
          [&](size_t i, const SortedValuesState& state, size_t) {
            const size_t row = view.rows[i];
            const size_t total = state.sorted.size();
            if (total == 0) {
              out->SetNull(row);
              return;
            }
            if (cont) {
              const double pos = fraction * static_cast<double>(total - 1);
              const size_t lo = static_cast<size_t>(std::floor(pos));
              const size_t hi = static_cast<size_t>(std::ceil(pos));
              const double t = pos - static_cast<double>(lo);
              out->SetDouble(row, state.sorted[lo] +
                                      t * (state.sorted[hi] -
                                           state.sorted[lo]));
            } else {
              double pos =
                  std::ceil(fraction * static_cast<double>(total)) - 1;
              size_t idx = pos <= 0 ? 0 : static_cast<size_t>(pos);
              if (idx >= total) idx = total - 1;
              if (out->type() == DataType::kInt64) {
                out->SetInt64(row,
                              static_cast<int64_t>(state.sorted[idx]));
              } else {
                out->SetDouble(row, state.sorted[idx]);
              }
            }
          });
      return Status::OK();
    }
    case WindowFunctionKind::kMode: {
      const IndexRemap remap = BuildCallRemap(view, call, true);
      const Column& arg = view.col(*call.argument);
      std::vector<uint64_t> tiekeys(remap.num_surviving());
      for (size_t j = 0; j < tiekeys.size(); ++j) {
        tiekeys[j] = internal_window::ModeTieKey(
            arg, view.rows[remap.ToOriginal(j)]);
      }
      SlideFrames(
          view, remap, [&] { return ModeState{&tiekeys, {}, {}, {}}; },
          [&](size_t i, const ModeState& state, size_t) {
            const size_t row = view.rows[i];
            const std::optional<size_t> best = state.Best();
            if (!best.has_value()) {
              out->SetNull(row);
              return;
            }
            const size_t selected = view.rows[remap.ToOriginal(*best)];
            switch (out->type()) {
              case DataType::kInt64:
                out->SetInt64(row, arg.GetInt64(selected));
                break;
              case DataType::kDouble:
                out->SetDouble(row, arg.GetDouble(selected));
                break;
              case DataType::kString:
                out->SetString(row, arg.GetString(selected));
                break;
            }
          });
      return Status::OK();
    }
    default:
      return Status::NotImplemented(
          std::string("incremental engine does not support ") +
          WindowFunctionKindName(call.kind));
  }
}

}  // namespace hwf
