#include "baselines/segment_tree.h"

namespace hwf {

void SortedListSegmentTree::Cover(size_t lo, size_t hi,
                                  std::vector<NodeRef>* out) const {
  // Classic iterative canonical cover: at each level, shave off the
  // unaligned boundary runs. Every emitted run [start, start + w) is
  // aligned to its width w and thereby a fully sorted run of that level.
  size_t level = 0;
  size_t l = lo;
  size_t r = hi;
  while (l < r) {
    const size_t w = size_t{1} << level;
    HWF_DCHECK(level < levels_.size());
    const std::vector<double>& data = levels_[level];
    if (l & w) {
      out->push_back(NodeRef{data.data() + l, data.data() + l + w});
      l += w;
    }
    if (l >= r) break;
    if (r & w) {
      r -= w;
      out->push_back(NodeRef{data.data() + r, data.data() + r + w});
    }
    ++level;
  }
}

double SortedListSegmentTree::SelectKth(size_t lo, size_t hi, size_t k) const {
  HWF_CHECK(lo < hi && hi <= n_ && k < hi - lo);
  std::vector<NodeRef> runs;
  Cover(lo, hi, &runs);

  // Select the k-th smallest from the union of sorted runs by repeated
  // pivoting: take the middle of the largest remaining window as pivot,
  // count elements <pivot and <=pivot across all windows, and discard the
  // impossible side. Each round halves the largest window.
  for (;;) {
    size_t total = 0;
    size_t largest = 0;
    size_t largest_size = 0;
    for (size_t i = 0; i < runs.size(); ++i) {
      const size_t size = static_cast<size_t>(runs[i].end - runs[i].begin);
      total += size;
      if (size > largest_size) {
        largest_size = size;
        largest = i;
      }
    }
    HWF_DCHECK(k < total);
    if (total == 1) {
      return *runs[largest].begin;
    }
    const NodeRef& big = runs[largest];
    const double pivot = big.begin[(big.end - big.begin) / 2];

    size_t count_less = 0;
    size_t count_leq = 0;
    for (const NodeRef& run : runs) {
      count_less += static_cast<size_t>(
          std::lower_bound(run.begin, run.end, pivot) - run.begin);
      count_leq += static_cast<size_t>(
          std::upper_bound(run.begin, run.end, pivot) - run.begin);
    }
    if (k < count_less) {
      for (NodeRef& run : runs) {
        run.end = std::lower_bound(run.begin, run.end, pivot);
      }
    } else if (k < count_leq) {
      return pivot;
    } else {
      k -= count_leq;
      for (NodeRef& run : runs) {
        run.begin = std::upper_bound(run.begin, run.end, pivot);
      }
    }
  }
}

}  // namespace hwf
