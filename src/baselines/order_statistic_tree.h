#ifndef HWF_BASELINES_ORDER_STATISTIC_TREE_H_
#define HWF_BASELINES_ORDER_STATISTIC_TREE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/macros.h"

namespace hwf {

/// A counted B-tree (Tatham [35]): a B-tree whose nodes carry subtree
/// sizes, turning it into an order statistic tree [17] — the strongest
/// serial competitor for framed percentiles and ranks (Table 1).
///
/// Supports multiset semantics (duplicate keys), O(log n) Insert / Erase /
/// Kth / CountLess. Used by the kOrderStatisticTree window engine, which
/// slides a window over the partition exactly like the incremental
/// algorithms — and therefore shares their task-parallelism penalty: every
/// morsel must first rebuild the tree for its starting frame (§3.2).
template <typename Key, typename Less = std::less<Key>>
class CountedBTree {
 public:
  explicit CountedBTree(Less less = Less()) : less_(less) {}

  CountedBTree(const CountedBTree&) = delete;
  CountedBTree& operator=(const CountedBTree&) = delete;
  CountedBTree(CountedBTree&& other) noexcept
      : less_(other.less_), root_(other.root_) {
    other.root_ = nullptr;
  }
  CountedBTree& operator=(CountedBTree&& other) noexcept {
    if (this != &other) {
      Clear();
      root_ = other.root_;
      less_ = other.less_;
      other.root_ = nullptr;
    }
    return *this;
  }

  ~CountedBTree() { Clear(); }

  size_t size() const { return root_ == nullptr ? 0 : root_->subtree_size; }
  bool empty() const { return size() == 0; }

  void Clear() {
    if (root_ != nullptr) {
      FreeNode(root_);
      root_ = nullptr;
    }
  }

  /// Inserts a key (duplicates allowed; they keep insertion order among
  /// equals to the right).
  void Insert(const Key& key);

  /// Removes one occurrence of `key`. Returns false if absent.
  bool Erase(const Key& key);

  /// The k-th smallest key, 0-based. Requires k < size().
  const Key& Kth(size_t k) const;

  /// Number of keys strictly smaller than `key`.
  size_t CountLess(const Key& key) const;

  /// Test hook: verifies all B-tree invariants (key order, node fill,
  /// subtree sizes, uniform leaf depth). Aborts on violation.
  void CheckInvariants() const;

 private:
  // Minimum degree t: nodes hold t-1 .. 2t-1 keys (root: 1 .. 2t-1).
  static constexpr int kMinDegree = 16;
  static constexpr int kMaxKeys = 2 * kMinDegree - 1;

  struct Node {
    int num_keys = 0;
    bool leaf = true;
    size_t subtree_size = 0;
    Key keys[kMaxKeys];
    Node* children[kMaxKeys + 1];
  };

  static void FreeNode(Node* node) {
    if (!node->leaf) {
      for (int i = 0; i <= node->num_keys; ++i) FreeNode(node->children[i]);
    }
    delete node;
  }

  bool Equal(const Key& a, const Key& b) const {
    return !less_(a, b) && !less_(b, a);
  }

  /// Index of the first key in `node` that is >= key.
  int LowerBound(const Node* node, const Key& key) const {
    int lo = 0;
    int hi = node->num_keys;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (less_(node->keys[mid], key)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Index of the first key in `node` that is > key.
  int UpperBound(const Node* node, const Key& key) const {
    int lo = 0;
    int hi = node->num_keys;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (less_(key, node->keys[mid])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  /// Splits the full child `child_index` of `parent`.
  void SplitChild(Node* parent, int child_index);

  /// Inserts into a non-full subtree.
  void InsertNonFull(Node* node, const Key& key);

  /// Removes one occurrence of `key` from the subtree; the node is
  /// guaranteed to have > kMinDegree - 1 keys (or be the root).
  bool EraseFrom(Node* node, const Key& key);

  /// Ensures child `i` of `node` has >= kMinDegree keys by borrowing from a
  /// sibling or merging; returns the (possibly changed) child index to
  /// descend into.
  int FillChild(Node* node, int i);

  /// Merges children i and i+1 of `node` around separator key i. Both
  /// children must hold kMinDegree - 1 keys. Returns i (the merged child).
  int MergeChildren(Node* node, int i);

  const Key& MaxKey(const Node* node) const {
    while (!node->leaf) node = node->children[node->num_keys];
    return node->keys[node->num_keys - 1];
  }
  const Key& MinKey(const Node* node) const {
    while (!node->leaf) node = node->children[0];
    return node->keys[0];
  }

  size_t CheckNode(const Node* node, bool is_root, int depth,
                   int* leaf_depth) const;

  Less less_;
  Node* root_ = nullptr;
};

// ---------------------------------------------------------------------------
// Implementation.
// ---------------------------------------------------------------------------

template <typename Key, typename Less>
void CountedBTree<Key, Less>::SplitChild(Node* parent, int child_index) {
  Node* child = parent->children[child_index];
  HWF_DCHECK(child->num_keys == kMaxKeys);
  Node* right = new Node;
  right->leaf = child->leaf;
  right->num_keys = kMinDegree - 1;
  for (int j = 0; j < kMinDegree - 1; ++j) {
    right->keys[j] = child->keys[j + kMinDegree];
  }
  if (!child->leaf) {
    for (int j = 0; j < kMinDegree; ++j) {
      right->children[j] = child->children[j + kMinDegree];
    }
  }
  child->num_keys = kMinDegree - 1;

  // Recompute subtree sizes of the split halves.
  auto recompute = [](Node* node) {
    size_t total = static_cast<size_t>(node->num_keys);
    if (!node->leaf) {
      for (int j = 0; j <= node->num_keys; ++j) {
        total += node->children[j]->subtree_size;
      }
    }
    node->subtree_size = total;
  };
  recompute(child);
  recompute(right);

  for (int j = parent->num_keys; j > child_index; --j) {
    parent->children[j + 1] = parent->children[j];
    parent->keys[j] = parent->keys[j - 1];
  }
  parent->children[child_index + 1] = right;
  parent->keys[child_index] = child->keys[kMinDegree - 1];
  ++parent->num_keys;
  // Parent subtree size is unchanged (the median key moved up, nothing was
  // added or removed).
}

template <typename Key, typename Less>
void CountedBTree<Key, Less>::InsertNonFull(Node* node, const Key& key) {
  ++node->subtree_size;
  if (node->leaf) {
    int i = UpperBound(node, key);
    for (int j = node->num_keys; j > i; --j) node->keys[j] = node->keys[j - 1];
    node->keys[i] = key;
    ++node->num_keys;
    return;
  }
  int i = UpperBound(node, key);
  if (node->children[i]->num_keys == kMaxKeys) {
    // Undo the size bump before splitting (split recomputes child sizes
    // from scratch), then redo the descent decision.
    --node->subtree_size;
    SplitChild(node, i);
    if (less_(node->keys[i], key) || Equal(node->keys[i], key)) ++i;
    ++node->subtree_size;
  }
  InsertNonFull(node->children[i], key);
}

template <typename Key, typename Less>
void CountedBTree<Key, Less>::Insert(const Key& key) {
  if (root_ == nullptr) {
    root_ = new Node;
    root_->leaf = true;
  }
  if (root_->num_keys == kMaxKeys) {
    Node* new_root = new Node;
    new_root->leaf = false;
    new_root->num_keys = 0;
    new_root->children[0] = root_;
    new_root->subtree_size = root_->subtree_size;
    root_ = new_root;
    SplitChild(root_, 0);
  }
  InsertNonFull(root_, key);
}

template <typename Key, typename Less>
int CountedBTree<Key, Less>::FillChild(Node* node, int i) {
  Node* child = node->children[i];
  if (child->num_keys >= kMinDegree) return i;

  if (i > 0 && node->children[i - 1]->num_keys >= kMinDegree) {
    // Borrow from the left sibling through the separator key.
    Node* left = node->children[i - 1];
    for (int j = child->num_keys; j > 0; --j) {
      child->keys[j] = child->keys[j - 1];
    }
    if (!child->leaf) {
      for (int j = child->num_keys + 1; j > 0; --j) {
        child->children[j] = child->children[j - 1];
      }
      child->children[0] = left->children[left->num_keys];
      const size_t moved = child->children[0]->subtree_size;
      left->subtree_size -= moved;
      child->subtree_size += moved;
    }
    child->keys[0] = node->keys[i - 1];
    node->keys[i - 1] = left->keys[left->num_keys - 1];
    --left->num_keys;
    --left->subtree_size;
    ++child->num_keys;
    ++child->subtree_size;
    return i;
  }
  if (i < node->num_keys && node->children[i + 1]->num_keys >= kMinDegree) {
    // Borrow from the right sibling.
    Node* right = node->children[i + 1];
    child->keys[child->num_keys] = node->keys[i];
    node->keys[i] = right->keys[0];
    if (!child->leaf) {
      child->children[child->num_keys + 1] = right->children[0];
      const size_t moved = child->children[child->num_keys + 1]->subtree_size;
      right->subtree_size -= moved;
      child->subtree_size += moved;
      for (int j = 0; j < right->num_keys; ++j) {
        right->children[j] = right->children[j + 1];
      }
    }
    for (int j = 0; j < right->num_keys - 1; ++j) {
      right->keys[j] = right->keys[j + 1];
    }
    --right->num_keys;
    --right->subtree_size;
    ++child->num_keys;
    ++child->subtree_size;
    return i;
  }

  // Merge with a sibling (separator key moves down).
  const int left_index = i < node->num_keys ? i : i - 1;
  return MergeChildren(node, left_index);
}

template <typename Key, typename Less>
int CountedBTree<Key, Less>::MergeChildren(Node* node, int i) {
  Node* left = node->children[i];
  Node* right = node->children[i + 1];
  left->keys[left->num_keys] = node->keys[i];
  for (int j = 0; j < right->num_keys; ++j) {
    left->keys[left->num_keys + 1 + j] = right->keys[j];
  }
  if (!left->leaf) {
    for (int j = 0; j <= right->num_keys; ++j) {
      left->children[left->num_keys + 1 + j] = right->children[j];
    }
  }
  left->num_keys += 1 + right->num_keys;
  left->subtree_size += 1 + right->subtree_size;
  for (int j = i; j < node->num_keys - 1; ++j) {
    node->keys[j] = node->keys[j + 1];
  }
  for (int j = i + 1; j < node->num_keys; ++j) {
    node->children[j] = node->children[j + 1];
  }
  --node->num_keys;
  delete right;
  return i;
}

template <typename Key, typename Less>
bool CountedBTree<Key, Less>::EraseFrom(Node* node, const Key& key) {
  const int i = LowerBound(node, key);
  const bool found_here = i < node->num_keys && Equal(node->keys[i], key);

  if (node->leaf) {
    if (!found_here) return false;
    for (int j = i; j < node->num_keys - 1; ++j) {
      node->keys[j] = node->keys[j + 1];
    }
    --node->num_keys;
    --node->subtree_size;
    return true;
  }

  if (found_here) {
    Node* left = node->children[i];
    Node* right = node->children[i + 1];
    if (left->num_keys >= kMinDegree) {
      // Replace with the predecessor and delete it below.
      const Key pred = MaxKey(left);
      node->keys[i] = pred;
      const int idx = FillChild(node, i);
      const bool erased = EraseFrom(node->children[idx], pred);
      HWF_DCHECK(erased);
      (void)erased;
      --node->subtree_size;
      return true;
    }
    if (right->num_keys >= kMinDegree) {
      const Key succ = MinKey(right);
      node->keys[i] = succ;
      const int idx = FillChild(node, i + 1);
      const bool erased = EraseFrom(node->children[idx], succ);
      HWF_DCHECK(erased);
      (void)erased;
      --node->subtree_size;
      return true;
    }
    // Both neighbors minimal: merge around the key, then delete inside.
    // (Must merge children i and i+1 specifically — FillChild could borrow
    // from an uninvolved sibling, leaving the key in `node`.)
    const int idx = MergeChildren(node, i);
    const bool erased = EraseFrom(node->children[idx], key);
    HWF_DCHECK(erased);
    (void)erased;
    --node->subtree_size;
    return true;
  }

  // Key (if present) lives in child i.
  const int idx = FillChild(node, i);
  const bool erased = EraseFrom(node->children[idx], key);
  if (erased) --node->subtree_size;
  return erased;
}

template <typename Key, typename Less>
bool CountedBTree<Key, Less>::Erase(const Key& key) {
  if (root_ == nullptr) return false;
  const bool erased = EraseFrom(root_, key);
  if (root_->num_keys == 0) {
    Node* old_root = root_;
    root_ = root_->leaf ? nullptr : root_->children[0];
    delete old_root;
  }
  return erased;
}

template <typename Key, typename Less>
const Key& CountedBTree<Key, Less>::Kth(size_t k) const {
  HWF_CHECK(root_ != nullptr && k < root_->subtree_size);
  const Node* node = root_;
  for (;;) {
    if (node->leaf) {
      return node->keys[k];
    }
    int i = 0;
    for (;; ++i) {
      const size_t child_size = node->children[i]->subtree_size;
      if (k < child_size) {
        node = node->children[i];
        break;
      }
      k -= child_size;
      HWF_DCHECK(i < node->num_keys);
      if (k == 0) return node->keys[i];
      --k;
    }
  }
}

template <typename Key, typename Less>
size_t CountedBTree<Key, Less>::CountLess(const Key& key) const {
  size_t count = 0;
  const Node* node = root_;
  while (node != nullptr) {
    const int i = LowerBound(node, key);
    count += static_cast<size_t>(i);
    if (node->leaf) break;
    for (int j = 0; j < i; ++j) {
      count += node->children[j]->subtree_size;
    }
    node = node->children[i];
  }
  return count;
}

template <typename Key, typename Less>
size_t CountedBTree<Key, Less>::CheckNode(const Node* node, bool is_root,
                                          int depth, int* leaf_depth) const {
  HWF_CHECK(node->num_keys >= (is_root ? 1 : kMinDegree - 1));
  HWF_CHECK(node->num_keys <= kMaxKeys);
  for (int j = 1; j < node->num_keys; ++j) {
    HWF_CHECK(!less_(node->keys[j], node->keys[j - 1]));
  }
  size_t total = static_cast<size_t>(node->num_keys);
  if (node->leaf) {
    if (*leaf_depth < 0) *leaf_depth = depth;
    HWF_CHECK(*leaf_depth == depth);
  } else {
    for (int j = 0; j <= node->num_keys; ++j) {
      const Node* child = node->children[j];
      if (j > 0) HWF_CHECK(!less_(MinKey(child), node->keys[j - 1]));
      if (j < node->num_keys) HWF_CHECK(!less_(node->keys[j], MaxKey(child)));
      total += CheckNode(child, false, depth + 1, leaf_depth);
    }
  }
  HWF_CHECK(total == node->subtree_size);
  return total;
}

template <typename Key, typename Less>
void CountedBTree<Key, Less>::CheckInvariants() const {
  if (root_ == nullptr) return;
  int leaf_depth = -1;
  CheckNode(root_, true, 0, &leaf_depth);
}

}  // namespace hwf

#endif  // HWF_BASELINES_ORDER_STATISTIC_TREE_H_
