#ifndef HWF_MST_REMAP_H_
#define HWF_MST_REMAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"

namespace hwf {

/// Index remapping between a partition and its filtered representation
/// (paper §4.5 / §4.7): tuples excluded by IGNORE NULLS or a FILTER clause
/// are never inserted into the merge sort tree; frame boundaries expressed
/// in original positions are translated to tree positions and back.
class IndexRemap {
 public:
  /// Builds the remap from an inclusion mask (nonzero = tuple survives).
  static IndexRemap Build(std::span<const uint8_t> include) {
    IndexRemap remap;
    remap.prefix_.resize(include.size() + 1);
    remap.prefix_[0] = 0;
    for (size_t i = 0; i < include.size(); ++i) {
      remap.prefix_[i + 1] = remap.prefix_[i] + (include[i] ? 1 : 0);
      if (include[i]) remap.survivors_.push_back(i);
    }
    return remap;
  }

  /// Identity remap over n positions (no filtering); uses O(1) memory.
  static IndexRemap Identity(size_t n) {
    IndexRemap remap;
    remap.identity_size_ = n;
    remap.is_identity_ = true;
    return remap;
  }

  bool is_identity() const { return is_identity_; }

  /// Number of surviving tuples.
  size_t num_surviving() const {
    return is_identity_ ? identity_size_ : survivors_.size();
  }

  /// Number of original positions.
  size_t num_original() const {
    return is_identity_ ? identity_size_ : prefix_.size() - 1;
  }

  /// Number of surviving positions strictly before original position
  /// `orig`; valid for orig in [0, n]. Maps an original frame boundary to a
  /// filtered one.
  size_t ToFiltered(size_t orig) const {
    if (is_identity_) return orig;
    HWF_DCHECK(orig < prefix_.size());
    return prefix_[orig];
  }

  /// Original position of the `filtered`-th surviving tuple.
  size_t ToOriginal(size_t filtered) const {
    if (is_identity_) return filtered;
    HWF_DCHECK(filtered < survivors_.size());
    return survivors_[filtered];
  }

  /// Hints that ToOriginal(filtered) is about to be called (no-op for the
  /// identity remap, one cache-line prefetch otherwise).
  void PrefetchToOriginal(size_t filtered) const {
    if (!is_identity_) HWF_PREFETCH(survivors_.data() + filtered);
  }

  /// Whether the original position survives the filter.
  bool Included(size_t orig) const {
    if (is_identity_) return true;
    return prefix_[orig + 1] > prefix_[orig];
  }

  /// Approximate resident footprint, for cache accounting.
  size_t ApproxBytes() const {
    return (prefix_.capacity() + survivors_.capacity()) * sizeof(size_t);
  }

 private:
  std::vector<size_t> prefix_;
  std::vector<size_t> survivors_;
  size_t identity_size_ = 0;
  bool is_identity_ = false;
};

}  // namespace hwf

#endif  // HWF_MST_REMAP_H_
