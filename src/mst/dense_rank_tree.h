#ifndef HWF_MST_DENSE_RANK_TREE_H_
#define HWF_MST_DENSE_RANK_TREE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/search.h"
#include "mst/merge_sort_tree.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/parallel_sort.h"
#include "parallel/thread_pool.h"

namespace hwf {

/// The 3-dimensional range-counting structure for framed DENSE_RANK
/// (paper §4.4): a range tree (Bentley [6, 7]) over the value dimension
/// whose canonical nodes each carry a merge sort tree over the
/// (position, previous-equal-occurrence) plane.
///
/// dense_rank(row) - 1 = |{distinct codes c < code(row) present in the
/// frame}|. A code is "present" iff the frame contains its first in-frame
/// occurrence: position ∈ [a, b) ∧ prevEq < a — a 2-d dominance count,
/// restricted to codes < code(row) — the third dimension.
///
/// Layout: V = positions sorted by (code, position). Level ℓ groups V into
/// aligned blocks of 2^ℓ entries, each re-sorted by position; a per-level
/// merge sort tree over the prevEq keys answers the 2-d counts inside any
/// block sub-range. A query decomposes the code-prefix [0, rank(code)) into
/// O(log n) aligned blocks and runs one narrowed 2-d count per block —
/// O(log² n) per row, O(n log² n) space, exactly the paper's bounds.
template <typename Index>
class DenseRankTree {
 public:
  using Options = MergeSortTreeOptions;

  DenseRankTree() = default;

  /// Builds the tree over per-position value codes (codes need not be
  /// dense; only their order matters).
  static DenseRankTree Build(std::span<const Index> codes,
                             const Options& options = {},
                             ThreadPool& pool = ThreadPool::Default()) {
    DenseRankTree tree;
    const size_t n = codes.size();
    HWF_TRACE_SCOPE_ARG("mst.dense_rank_build", "n", n);
    tree.n_ = n;
    tree.codes_.assign(codes.begin(), codes.end());
    if (n == 0) return tree;

    // V: positions sorted by (code, position) — a strict total order, so
    // the parallel sort is deterministic across thread counts.
    std::vector<Index> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = static_cast<Index>(i);
    ParallelSort(
        v,
        [&](Index a, Index b) {
          if (codes[a] != codes[b]) return codes[a] < codes[b];
          return a < b;
        },
        pool);

    // Previous occurrence of the same code, encoded +1 (0 = none). Within
    // V, equal codes are adjacent and position-sorted.
    std::vector<Index> prev_enc(n);
    for (size_t j = 0; j < n; ++j) {
      if (j > 0 && codes[v[j]] == codes[v[j - 1]]) {
        prev_enc[v[j]] = static_cast<Index>(v[j - 1] + 1);
      } else {
        prev_enc[v[j]] = 0;
      }
    }

    // sorted_code_[j] = code of V[j]; used to locate code-prefix bounds.
    tree.sorted_codes_.resize(n);
    for (size_t j = 0; j < n; ++j) tree.sorted_codes_[j] = codes[v[j]];

    // Level 0: blocks of size 1 (V itself, trivially position-sorted).
    Level level0;
    level0.positions = std::move(v);
    level0.keys.resize(n);
    for (size_t j = 0; j < n; ++j) {
      level0.keys[j] = prev_enc[level0.positions[j]];
    }
    level0.block_size = 1;
    tree.levels_.push_back(std::move(level0));

    // Higher levels: merge adjacent blocks by position. Blocks are
    // independent, so each level merges (and gathers its prevEq keys) in
    // parallel; positions are unique, making the merge order-deterministic.
    for (size_t width = 1; width < n; width *= 2) {
      const Level& prev_level = tree.levels_.back();
      Level next;
      next.block_size = 2 * width;
      next.positions.resize(n);
      next.keys.resize(n);
      const size_t num_blocks = (n + 2 * width - 1) / (2 * width);
      ParallelFor(
          0, num_blocks,
          [&](size_t block_lo, size_t block_hi) {
            for (size_t b = block_lo; b < block_hi; ++b) {
              const size_t lo = b * 2 * width;
              const size_t mid = std::min(n, lo + width);
              const size_t hi = std::min(n, lo + 2 * width);
              std::merge(prev_level.positions.begin() + lo,
                         prev_level.positions.begin() + mid,
                         prev_level.positions.begin() + mid,
                         prev_level.positions.begin() + hi,
                         next.positions.begin() + lo);
              for (size_t j = lo; j < hi; ++j) {
                next.keys[j] = prev_enc[next.positions[j]];
              }
            }
          },
          pool, /*morsel_size=*/std::max<size_t>(1, 4096 / (2 * width)));
      tree.levels_.push_back(std::move(next));
    }

    // One merge sort tree per level over the prevEq keys (in block-then-
    // position order). Level 0 sub-ranges have length <= 1 and are handled
    // by direct comparison, so no tree is needed there.
    for (size_t level = 1; level < tree.levels_.size(); ++level) {
      tree.levels_[level].tree = MergeSortTree<Index>::Build(
          tree.levels_[level].keys, options, pool);
    }
    return tree;
  }

  size_t size() const { return n_; }

  size_t MemoryUsageBytes() const {
    size_t bytes = sorted_codes_.capacity() * sizeof(Index) +
                   codes_.capacity() * sizeof(Index);
    for (const Level& level : levels_) {
      bytes += level.positions.capacity() * sizeof(Index);
      bytes += level.keys.capacity() * sizeof(Index);
      bytes += level.tree.MemoryUsageBytes();
    }
    return bytes;
  }

  /// Number of distinct codes < `code` with at least one occurrence at
  /// positions [pos_lo, pos_hi).
  size_t CountDistinctLess(size_t pos_lo, size_t pos_hi, Index code) const {
    if (pos_lo >= pos_hi || n_ == 0) return 0;
    // Code-prefix length: number of V entries with a smaller code.
    const size_t prefix =
        BranchlessLowerBound(sorted_codes_.data(), sorted_codes_.size(), code);
    if (prefix == 0) return 0;

    const Index threshold = static_cast<Index>(pos_lo + 1);
    size_t count = 0;
    // Canonical cover of [0, prefix): shave aligned blocks from the right.
    size_t l = 0;
    size_t r = prefix;
    size_t level = 0;
    while (l < r) {
      const size_t w = size_t{1} << level;
      if (r & w) {
        r -= w;
        count += CountInBlock(level, r, r + w, pos_lo, pos_hi, threshold);
      }
      ++level;
    }
    return count;
  }

  /// One CountDistinctLess query: positions [pos_lo, pos_hi), code bound.
  struct DistinctQuery {
    size_t pos_lo;
    size_t pos_hi;
    Index code;
  };

  /// Batched CountDistinctLess. Decomposes every query's code prefix into
  /// canonical blocks, groups the per-block 2-d counts by level, and
  /// answers each level's group through the merge sort tree's batched
  /// kernel (`group_size` probes in flight). Counts are integer sums, so
  /// the result is identical to per-row CountDistinctLess.
  void CountDistinctLessBatch(std::span<const DistinctQuery> queries,
                              size_t group_size, size_t* out) const {
    using CountQuery = typename MergeSortTree<Index>::CountQuery;
    std::vector<std::vector<CountQuery>> level_items(levels_.size());
    std::vector<std::vector<size_t>> level_query(levels_.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      const DistinctQuery& dq = queries[q];
      out[q] = 0;
      if (dq.pos_lo >= dq.pos_hi || n_ == 0) continue;
      const size_t prefix = BranchlessLowerBound(sorted_codes_.data(),
                                                 sorted_codes_.size(), dq.code);
      if (prefix == 0) continue;
      const Index threshold = static_cast<Index>(dq.pos_lo + 1);
      size_t l = 0;
      size_t r = prefix;
      size_t level = 0;
      while (l < r) {
        const size_t w = size_t{1} << level;
        if (r & w) {
          r -= w;
          const Level& lvl = levels_[level];
          const Index* block = lvl.positions.data() + r;
          const size_t sub_lo =
              r + BranchlessLowerBound(block, w, static_cast<Index>(dq.pos_lo));
          const size_t sub_hi =
              r + BranchlessLowerBound(block, w, static_cast<Index>(dq.pos_hi));
          if (sub_lo < sub_hi) {
            if (level == 0) {
              out[q] += lvl.keys[sub_lo] < threshold ? 1 : 0;
            } else {
              level_items[level].push_back(
                  CountQuery{sub_lo, sub_hi, threshold});
              level_query[level].push_back(q);
            }
          }
        }
        ++level;
      }
    }
    std::vector<size_t> counts;
    for (size_t level = 1; level < levels_.size(); ++level) {
      const std::vector<CountQuery>& items = level_items[level];
      if (items.empty()) continue;
      counts.resize(items.size());
      levels_[level].tree.CountLessBatch(items, group_size, counts.data());
      for (size_t j = 0; j < items.size(); ++j) {
        out[level_query[level][j]] += counts[j];
      }
    }
  }

 private:
  struct Level {
    std::vector<Index> positions;  // Block-concatenated, position-sorted.
    std::vector<Index> keys;       // prevEq (encoded) in the same order.
    MergeSortTree<Index> tree;     // Empty for level 0.
    size_t block_size = 1;
  };

  /// 2-d count inside one aligned block [block_lo, block_hi) of `level`:
  /// entries with position in [pos_lo, pos_hi) and prevEq < threshold.
  size_t CountInBlock(size_t level, size_t block_lo, size_t block_hi,
                      size_t pos_lo, size_t pos_hi, Index threshold) const {
    const Level& lvl = levels_[level];
    const Index* block = lvl.positions.data() + block_lo;
    const size_t len = block_hi - block_lo;
    const size_t sub_lo =
        block_lo + BranchlessLowerBound(block, len, static_cast<Index>(pos_lo));
    const size_t sub_hi =
        block_lo + BranchlessLowerBound(block, len, static_cast<Index>(pos_hi));
    if (sub_lo >= sub_hi) return 0;
    if (level == 0) {
      return lvl.keys[sub_lo] < threshold ? 1 : 0;
    }
    return lvl.tree.CountLess(sub_lo, sub_hi, threshold);
  }

  size_t n_ = 0;
  std::vector<Index> codes_;
  std::vector<Index> sorted_codes_;
  std::vector<Level> levels_;
};

}  // namespace hwf

#endif  // HWF_MST_DENSE_RANK_TREE_H_
