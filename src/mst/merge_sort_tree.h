#ifndef HWF_MST_MERGE_SORT_TREE_H_
#define HWF_MST_MERGE_SORT_TREE_H_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/search.h"
#include "mem/memory_budget.h"
#include "mem/spill_file.h"
#include "mem/spillable_vector.h"
#include "mst/loser_tree.h"
#include "obs/counters.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace hwf {

/// Which k-way merge kernel the build phase uses. The loser tree is the
/// production kernel (⌈log₂ f⌉ comparisons per element over a flat,
/// cache-resident tournament array); the binary-heap kernel is retained as
/// the reference implementation for differential tests and the
/// --kernel=heap bench ablation.
enum class MergeKernel {
  kLoserTree,
  kHeap,
};

/// Tuning parameters of a merge sort tree (paper §5.1, §6.6).
struct MergeSortTreeOptions {
  /// Fanout f: each tree level merges `fanout` runs of the level below.
  /// Larger fanouts shrink the tree height (and thus memory) exponentially
  /// at the cost of more binary searches per level.
  size_t fanout = 32;

  /// Sampling interval k: only every k-th element of a level is annotated
  /// with fractional-cascading pointers. Larger k reduces memory bandwidth
  /// pressure; between samples the query re-searches a window of at most k
  /// elements, which keeps per-level work O(1) for constant k.
  size_t sampling = 32;

  /// Disables fractional cascading entirely (every child run is located via
  /// a full binary search). Only used by the ablation benchmark; turns the
  /// O(n log n) query phase into O(n log² n) as discussed in §4.2.
  bool use_cascading = true;

  /// Merge kernel for the build phase. kLoserTree is strictly faster;
  /// kHeap exists for differential testing and bench ablations.
  MergeKernel kernel = MergeKernel::kLoserTree;

  /// Number of probe queries kept in flight by the batched probe kernel
  /// (probe_batch.h): the window-function evaluators collect a morsel of
  /// rows' queries and walk them through the tree level-by-level in
  /// lockstep, prefetching every query's next touch points one round ahead.
  /// 0 disables batching entirely — the scalar per-row descent is kept as
  /// the differential reference path. Results are bit-identical either way.
  size_t probe_batch_size = 16;

  /// Runs the preprocessing sorts (and the external-sort run merge under a
  /// memory budget) through the offset-value-coded merge kernel
  /// (loser_tree.h): bit-identical order, most comparisons resolved by one
  /// integer compare. Disable to run the uncoded reference merges; ignored
  /// where 128-bit integer support is unavailable.
  bool use_ovc = true;

  /// Derives prevIdcs / nextIdcs / permutation / dense & unique codes from
  /// ONE shared record sort (mst/preprocess.h) instead of re-sorting per
  /// artifact. Disable to run the legacy per-artifact pipeline
  /// (prev_index.h / permutation.h), kept as the differential reference.
  /// Evaluators whose comparator cannot be encoded into sortable records
  /// fall back to the legacy path regardless of this flag.
  bool fuse_preprocess = true;

  /// When non-null, the build reports into this profile: per-level
  /// wall-clock seconds via AddTreeLevelSeconds (index 0 = level 1 and so
  /// on, accumulating across multiple builds) and the kTreeBuild phase
  /// total. The window executor points this at the profile handed to it via
  /// WindowExecutorOptions; benchmarks attach their own.
  obs::ExecutionProfile* profile = nullptr;

  /// Memory governance. When `mem.budget` is set, every level's data and
  /// cascade bytes are reserved against it; when `mem.can_spill()`, the
  /// build evicts completed lower levels to a spill file whenever the next
  /// level's allocation would not fit, and probes re-materialize evicted
  /// entries page-wise through the thread-local spill cache (at most one
  /// page read per level per probe — the cascading windows never span a
  /// page more than once). The level currently being merged from and the
  /// top level are never evicted.
  mem::MemoryContext mem{};
};

/// A half-open key interval [lo, hi) used in tree queries.
template <typename Index>
struct KeyRange {
  Index lo;
  Index hi;
};

namespace internal_mst {

/// Merges `num_children` sorted child runs into `out`, breaking key ties by
/// child index (which equals position order, making every level a stable
/// sort of level 0). When `cascade_out` is non-null, the current child
/// offsets are recorded every `sampling` output elements. When `Payload` is
/// non-void-like (HasPayload), payload values travel with their keys.
///
/// To merge one CHUNK of a larger run in parallel (§5.2 upper-level
/// strategy), pass the chunk's starting position within the run as
/// `out_offset` and the per-child starting offsets (from MultiwaySelect)
/// as `start_offsets`; `out`/`cascade_out` still point at the run start.
///
/// This is the reference binary-heap kernel (MergeKernel::kHeap): two heap
/// operations per output element. Production builds route through
/// MergeRunLoserTree (loser_tree.h), which must stay byte-identical —
/// tests/merge_kernel_test.cc checks the two differentially.
template <typename Index, typename Payload, bool kHasPayload>
void MergeRunHeap(const Index* const* child_data, const size_t* child_lens,
                  size_t num_children, Index* out, size_t out_len,
                  Index* cascade_out, size_t sampling, size_t fanout,
                  const Payload* const* child_payload, Payload* out_payload,
                  size_t out_offset = 0, const size_t* start_offsets = nullptr) {
  // (key, child) min-heap; pair comparison breaks ties on the child index.
  using Entry = std::pair<Index, uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  std::vector<size_t> offsets(num_children, 0);
  for (size_t c = 0; c < num_children; ++c) {
    if (start_offsets != nullptr) offsets[c] = start_offsets[c];
    if (offsets[c] < child_lens[c]) {
      heap.push({child_data[c][offsets[c]], static_cast<uint32_t>(c)});
    }
  }
  for (size_t o = out_offset; o < out_offset + out_len; ++o) {
    if (cascade_out != nullptr && o % sampling == 0) {
      Index* slot = cascade_out + (o / sampling) * fanout;
      for (size_t c = 0; c < num_children; ++c) {
        slot[c] = static_cast<Index>(offsets[c]);
      }
      for (size_t c = num_children; c < fanout; ++c) slot[c] = 0;
    }
    auto [key, child] = heap.top();
    heap.pop();
    out[o] = key;
    if constexpr (kHasPayload) {
      out_payload[o] = child_payload[child][offsets[child]];
    }
    size_t next = ++offsets[child];
    if (next < child_lens[child]) {
      heap.push({child_data[child][next], child});
    }
  }
}

/// Routes one run (or chunk) merge to the configured kernel, applying the
/// small-arity fast paths of the loser-tree kernel:
///   - `leaf_children` (level 1, every child a single element): merging is
///     sorting — std::copy + std::sort for plain keys, an index sort with
///     payload gather otherwise. Level 1 never carries cascade pointers.
///   - 1 and 2 children: straight copy / branchless 2-way merge inside
///     MergeRunLoserTree.
/// The heap kernel takes none of the fast paths so ablations measure the
/// pure heap merge.
template <typename Index, typename Payload, bool kHasPayload>
void MergeRunDispatch(MergeKernel kernel, bool leaf_children,
                      MergeScratch<Index, Payload>& scratch,
                      const Index* const* child_data, const size_t* child_lens,
                      size_t num_children, Index* out, size_t out_len,
                      Index* cascade_out, size_t sampling, size_t fanout,
                      const Payload* const* child_payload,
                      Payload* out_payload, size_t out_offset = 0,
                      const size_t* start_offsets = nullptr) {
  if (kernel == MergeKernel::kHeap) {
    MergeRunHeap<Index, Payload, kHasPayload>(
        child_data, child_lens, num_children, out, out_len, cascade_out,
        sampling, fanout, child_payload, out_payload, out_offset,
        start_offsets);
    return;
  }
  if (leaf_children && start_offsets == nullptr && cascade_out == nullptr) {
    if constexpr (kHasPayload) {
      // Sort a permutation by (key, child index) — the stable merge order —
      // then gather keys and payloads through it.
      std::vector<uint32_t>& idx = scratch.sort_idx;
      idx.resize(out_len);
      for (size_t i = 0; i < out_len; ++i) idx[i] = static_cast<uint32_t>(i);
      std::sort(idx.begin(), idx.end(), [&](uint32_t x, uint32_t y) {
        const Index kx = child_data[x][0];
        const Index ky = child_data[y][0];
        if (kx != ky) return kx < ky;
        return x < y;
      });
      for (size_t o = 0; o < out_len; ++o) {
        out[o] = child_data[idx[o]][0];
        out_payload[o] = child_payload[idx[o]][0];
      }
    } else {
      // Leaf children are adjacent elements of the source level, so child 0
      // points at a contiguous block of out_len keys.
      std::copy(child_data[0], child_data[0] + out_len, out);
      std::sort(out, out + out_len);
    }
    return;
  }
  MergeRunLoserTree<Index, Payload, kHasPayload>(
      scratch, child_data, child_lens, num_children, out, out_len, cascade_out,
      sampling, fanout, child_payload, out_payload, out_offset, start_offsets);
}

/// Computes, for each child run, the input offset at which the k-th output
/// element of the (tie-by-child-index) merge is produced — the balanced
/// multiway merge split of Francis et al. [18] (§5.2). Exploits that keys
/// are integers: binary search over the key domain, then distribute the
/// elements equal to the split key to the children in index order.
template <typename Index>
void MultiwaySelect(const Index* const* child_data, const size_t* child_lens,
                    size_t num_children, size_t k, size_t* offsets_out) {
  auto count_less = [&](Index v) {
    size_t count = 0;
    for (size_t c = 0; c < num_children; ++c) {
      count += BranchlessLowerBound(child_data[c], child_lens[c], v);
    }
    return count;
  };
  // Clamp the binary search to the actual [min, max] key range of the
  // children instead of the full Index domain: count_less is 0 below the
  // minimum and the split key never exceeds the maximum (for k < total),
  // so the clamped search finds the same key in ~log(range) instead of
  // 32/64 iterations, each of which costs f binary searches.
  size_t total = 0;
  Index min_first = std::numeric_limits<Index>::max();
  Index max_last = 0;
  for (size_t c = 0; c < num_children; ++c) {
    if (child_lens[c] == 0) continue;
    min_first = std::min(min_first, child_data[c][0]);
    max_last = std::max(max_last, child_data[c][child_lens[c] - 1]);
    total += child_lens[c];
  }
  HWF_DCHECK(k <= total);
  if (k >= total) {
    for (size_t c = 0; c < num_children; ++c) offsets_out[c] = child_lens[c];
    return;
  }
  // Largest key v with count_less(v) <= k.
  Index lo = min_first;
  Index hi = max_last;
  while (lo < hi) {
    const Index mid = lo + (hi - lo) / 2 + 1;  // Round up: search for max.
    if (count_less(mid) <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const Index split_key = lo;
  size_t remaining = k;
  for (size_t c = 0; c < num_children; ++c) {
    offsets_out[c] =
        BranchlessLowerBound(child_data[c], child_lens[c], split_key);
    remaining -= offsets_out[c];
  }
  // Distribute the elements equal to split_key in child-index order, the
  // same order the tie-breaking merge emits them.
  for (size_t c = 0; c < num_children && remaining > 0; ++c) {
    const size_t eq =
        BranchlessUpperBound(child_data[c] + offsets_out[c],
                             child_lens[c] - offsets_out[c], split_key);
    const size_t take = std::min(remaining, eq);
    offsets_out[c] += take;
    remaining -= take;
  }
  HWF_DCHECK(remaining == 0);
}

}  // namespace internal_mst

/// The paper's merge sort tree (§4): a static index over an integer array
/// that answers two-dimensional range queries.
///
/// Level 0 stores the input array in its original ("frame") order; level ℓ
/// stores the same values as sorted runs of length fanout^ℓ, exactly the
/// intermediate state of a bottom-up merge sort. Fractional-cascading
/// pointers recorded during the merges let a query reuse one top-level
/// binary search across all levels.
///
/// Two query shapes cover all framed holistic aggregates:
///   - CountLess(pos_lo, pos_hi, t): how many entries within a position
///     range have a key < t. Drives COUNT(DISTINCT), RANK, ROW_NUMBER,
///     CUME_DIST etc. (§4.2, §4.4).
///   - Select(key_ranges, i): the i-th position (left to right) whose key
///     falls into the given key ranges. Drives percentiles, NTH_VALUE,
///     LEAD/LAG (§4.5, §4.6).
///
/// Index is uint32_t or uint64_t; the caller picks the narrowest type that
/// fits the partition size (§5.1). Keys must be <= max(Index).
template <typename Index>
class MergeSortTree {
 public:
  using Options = MergeSortTreeOptions;

  MergeSortTree() = default;

  /// Builds the tree over `keys` (consumed). O(n log n) time; the merge of
  /// each output run is an independent task executed on `pool`.
  static MergeSortTree Build(std::vector<Index> keys,
                             const Options& options = {},
                             ThreadPool& pool = ThreadPool::Default()) {
    return BuildWithPayload<char>(std::move(keys), options, pool, nullptr,
                                  nullptr);
  }

  /// Like Build, but additionally permutes `payload` (one value per key)
  /// alongside the keys of every level: on return, (*level_payloads)[ℓ][i]
  /// is the payload of key level ℓ position i. Used by the aggregate-
  /// annotated tree (§4.3). `level_payloads` may be null.
  template <typename Payload>
  static MergeSortTree BuildWithPayload(
      std::vector<Index> keys, const Options& options, ThreadPool& pool,
      std::vector<Payload>* payload,
      std::vector<std::vector<Payload>>* level_payloads);

  /// Number of entries in the tree.
  size_t size() const { return n_; }

  /// Entry `i` of the level-0 array (input order). Spill-aware: resident
  /// level 0 is a plain vector index, an evicted level 0 costs at most one
  /// page read through the thread-local spill cache.
  Index KeyAt(size_t i) const { return levels_.front().data.Get(i); }

  /// Hints that KeyAt(i) is about to be called: prefetches the resident
  /// cache line, or warms the spill page when level 0 is evicted.
  void PrefetchKey(size_t i) const { levels_.front().data.PrefetchElement(i); }

  /// Copies level-0 entries [lo, hi) into `out` (bulk, page-at-a-time when
  /// spilled — for sequential consumers like LEAD/LAG's rank scan).
  void CopyKeys(size_t lo, size_t hi, Index* out) const {
    levels_.front().data.ReadRange(lo, hi, out);
  }

  /// Bytes held in RAM by all levels including cascading pointers.
  size_t MemoryUsageBytes() const;

  /// Bytes of levels currently evicted to the spill file.
  size_t SpilledBytes() const;

  /// Number of levels (including level 0).
  size_t num_levels() const { return levels_.size(); }

  /// Read-only access to a level's concatenated run data (tests/debugging).
  /// Resident levels only — budgeted trees may have evicted lower levels.
  const std::vector<Index>& level_data(size_t level) const {
    HWF_CHECK(level < levels_.size());
    return levels_[level].data.Vector();
  }

  /// Counts entries at positions [pos_lo, pos_hi) with key < threshold.
  /// O(f·log n) with cascading, O(f·log² n) without.
  size_t CountLess(size_t pos_lo, size_t pos_hi, Index threshold) const {
    size_t count = 0;
    VisitCountCover(pos_lo, pos_hi, threshold,
                    [&count](size_t /*level*/, size_t /*run_begin*/,
                             size_t count_in_run) { count += count_in_run; });
    return count;
  }

  /// Counts entries at positions [pos_lo, pos_hi) with key in [klo, khi).
  size_t CountInKeyRange(size_t pos_lo, size_t pos_hi, Index klo,
                         Index khi) const {
    if (klo >= khi) return 0;
    return CountLess(pos_lo, pos_hi, khi) - CountLess(pos_lo, pos_hi, klo);
  }

  /// Visits the canonical cover of the CountLess query: calls
  /// `visit(level, run_begin, count)` for every covered run piece, where
  /// `count` entries at global positions [run_begin, run_begin + count)
  /// within the run's sorted data have keys < threshold. Summing the counts
  /// yields CountLess; the annotated tree uses the (level, run_begin,
  /// count) triples to look up prefix aggregates.
  template <typename Visitor>
  void VisitCountCover(size_t pos_lo, size_t pos_hi, Index threshold,
                       Visitor&& visit) const;

  /// Maximum number of disjoint key ranges a Select query may carry.
  static constexpr size_t kSelectMaxRanges = 8;

  /// Top-level descent state shared between CountKeysInRanges and Select
  /// calls over the same ranges. Both queries start with one lower-bound
  /// bisection of the fully-sorted top run per range boundary; a row that
  /// counts its frame and then selects into it (percentile, value
  /// functions) pays those ~2·log n dependent cache misses once instead of
  /// twice by threading a cursor through the pair of calls.
  struct ProbeCursor {
    bool valid = false;
    size_t pos_lo[kSelectMaxRanges];
    size_t pos_hi[kSelectMaxRanges];
  };

  /// Counts entries (over all positions) whose key lies in any of `ranges`.
  /// The ranges must be disjoint. O(log n) per range. When `cursor` is
  /// non-null the per-range top positions are recorded (or reused when
  /// already valid) so a following Select skips its top-level searches.
  size_t CountKeysInRanges(std::span<const KeyRange<Index>> ranges,
                           ProbeCursor* cursor = nullptr) const;

  /// Returns the position of the i-th entry (0-based, scanning positions
  /// left to right) whose key lies in any of `ranges` (disjoint). Requires
  /// i < CountKeysInRanges(ranges). O(f·log n) with cascading. A valid
  /// `cursor` (from CountKeysInRanges or a prior Select over the same
  /// ranges) skips the top-level bisections; an invalid one is filled.
  size_t Select(std::span<const KeyRange<Index>> ranges, size_t i,
                ProbeCursor* cursor = nullptr) const;

  /// Convenience: Select with a single key range.
  size_t Select(Index key_lo, Index key_hi, size_t i) const {
    KeyRange<Index> range{key_lo, key_hi};
    return Select(std::span<const KeyRange<Index>>(&range, 1), i);
  }

  // --- Batched probe kernel (probe_batch.h) ------------------------------

  /// One Select query of a batch: the `rank`-th entry whose key lies in
  /// ranges[range_begin, range_begin + num_ranges) of the shared range
  /// pool. Queries may share range pool entries.
  struct SelectQuery {
    uint32_t range_begin;
    uint32_t num_ranges;
    size_t rank;
  };

  /// One CountLess / cover query of a batch: entries at positions
  /// [pos_lo, pos_hi) with key < threshold.
  struct CountQuery {
    size_t pos_lo;
    size_t pos_hi;
    Index threshold;
  };

  /// Batched Select: out[q] = Select(ranges of queries[q], queries[q].rank)
  /// for every q, bit-identical to the scalar path. Up to `group_size`
  /// queries are walked through the tree in lockstep (AMAC-style state
  /// machine): each round advances every in-flight query by one level and
  /// prefetches its next level's cascade/data cache lines before any of
  /// them is touched; retired queries are backfilled from the batch.
  void SelectBatch(std::span<const KeyRange<Index>> range_pool,
                   std::span<const SelectQuery> queries, size_t group_size,
                   size_t* out) const;

  /// Batched CountLess: out[q] = CountLess(queries[q]). Same lockstep
  /// group-prefetching machinery as SelectBatch.
  void CountLessBatch(std::span<const CountQuery> queries, size_t group_size,
                      size_t* out) const;

  /// Batched VisitCountCover: invokes visit(q, level, run_begin, count) for
  /// every covered run piece of every query — per query in exactly the
  /// order the scalar VisitCountCover emits (the annotated tree's
  /// floating-point merges depend on it), though queries retire
  /// interleaved. All of a query's pieces are delivered consecutively when
  /// it retires.
  template <typename Visitor>
  void VisitCountCoverBatch(std::span<const CountQuery> queries,
                            size_t group_size, Visitor&& visit) const;

 private:
  struct Level {
    /// All runs of this level, concatenated; size n. Spillable: lower
    /// levels of a budgeted tree may live in the spill file.
    mem::SpillableVector<Index> data;
    /// Cascading pointers: for every run, for sample s (output offset s·k),
    /// `fanout` child offsets. Runs are strided by samples_per_full_run.
    /// Empty for levels 0 and 1 and when cascading is disabled. Evicted
    /// together with `data` (at f = k they are the same order of size).
    mem::SpillableVector<Index> cascade;
    /// Run length fanout^level (last run may be shorter).
    size_t run_len = 1;
    /// Cascade samples per full run: floor((run_len-1)/k) + 1.
    size_t samples_per_full_run = 0;
  };

  /// Number of cascade samples for a run of `len` entries.
  size_t SamplesForLen(size_t len) const {
    return (len - 1) / opts_.sampling + 1;
  }

  /// Lower-bound position of `t` in the (single, fully sorted) top run.
  /// The top level is never evicted, so this is always a resident search.
  size_t TopLowerBoundImpl(Index t) const {
    return levels_.back().data.LowerBound(0, n_, t);
  }

  /// Evicts the lowest resident level with index <= `max_level` (data +
  /// cascade) to the spill file. Returns false when nothing is evictable.
  bool EvictOneLevel(size_t max_level) {
    if (spill_file_ == nullptr) {
      StatusOr<std::unique_ptr<mem::SpillFile>> file =
          mem::SpillFile::Create();
      if (!file.ok()) return false;
      spill_file_ = std::move(file).value();
    }
    for (size_t l = 0; l <= max_level && l < levels_.size(); ++l) {
      Level& level = levels_[l];
      if (level.data.spilled() || level.data.empty()) continue;
      obs::ScopedPhaseTimer spill_timer(opts_.mem.profile,
                                        obs::ProfilePhase::kSpill);
      if (!level.data.Spill(spill_file_.get()).ok()) return false;
      // Cascade eviction failing after data eviction is fine: probes
      // handle mixed residency per vector.
      (void)level.cascade.Spill(spill_file_.get());
      obs::Add(obs::Counter::kMemMstLevelsEvicted);
      return true;
    }
    return false;
  }

  /// Sheds completed levels (lowest first, up to `max_level`) until the
  /// budget could grant `need_bytes` more. Best-effort: when nothing is
  /// left to evict the caller proceeds with ForceReserve and the overshoot
  /// shows up in the forced-over-budget counter.
  void EnsureRoom(size_t need_bytes, size_t max_level) {
    if (!opts_.mem.can_spill()) return;
    while (opts_.mem.budget->available_bytes() < need_bytes) {
      if (!EvictOneLevel(max_level)) break;
    }
  }

  /// Given the lower-bound position `p` of `t` within the run of `level`
  /// starting at `run_begin` (actual length `run_len_actual`), returns the
  /// lower-bound position of `t` within child `child` of that run
  /// (relative to the child run start). Uses the fractional-cascading
  /// window when available, a full binary search otherwise.
  size_t CascadeToChild(size_t level, size_t run_begin, size_t run_len_actual,
                        size_t p, Index t, size_t child,
                        size_t child_len) const;

  /// Recursive worker for VisitCountCover. [lo, hi) is clamped to the run.
  template <typename Visitor>
  void VisitCountCoverInRun(size_t level, size_t run_begin,
                            size_t run_len_actual, size_t p, Index t,
                            size_t lo, size_t hi, Visitor& visit) const;

  /// Shared lockstep worker behind CountLessBatch / VisitCountCoverBatch
  /// (probe_batch.h). The emitter receives the cover pieces.
  template <typename Emitter>
  void RunCountCoverBatch(std::span<const CountQuery> queries,
                          size_t group_size, Emitter& emitter) const;

  size_t n_ = 0;
  Options opts_;
  std::vector<Level> levels_;
  /// Shared destination of all evicted levels; created on first eviction.
  std::unique_ptr<mem::SpillFile> spill_file_;
};

// ---------------------------------------------------------------------------
// Implementation.
// ---------------------------------------------------------------------------

template <typename Index>
template <typename Payload>
MergeSortTree<Index> MergeSortTree<Index>::BuildWithPayload(
    std::vector<Index> keys, const Options& options, ThreadPool& pool,
    std::vector<Payload>* payload,
    std::vector<std::vector<Payload>>* level_payloads) {
  HWF_CHECK(options.fanout >= 2);
  HWF_CHECK(options.sampling >= 1);
  const bool has_payload = payload != nullptr;
  HWF_CHECK(!has_payload || payload->size() == keys.size());
  MergeSortTree tree;
  tree.n_ = keys.size();
  tree.opts_ = options;
  mem::MemoryBudget* budget = options.mem.budget;
  {
    Level level0;
    level0.run_len = 1;
    level0.data.Attach(budget);
    level0.data.AssignResident(std::move(keys));
    tree.levels_.push_back(std::move(level0));
  }
  if (has_payload && level_payloads != nullptr) {
    level_payloads->clear();
    level_payloads->push_back(std::move(*payload));
  }
  const size_t n = tree.n_;
  if (n <= 1) return tree;

  HWF_TRACE_SCOPE_ARG("mst.build", "n", n);
  const size_t f = options.fanout;
  const size_t k = options.sampling;
  const MergeKernel kernel = options.kernel;
  // Per-level wall timing only runs when someone consumes it: a profile is
  // attached or spans are being recorded.
  const bool time_levels =
      options.profile != nullptr || obs::Tracer::IsEnabled();
  size_t child_run_len = 1;
  while (child_run_len < n) {
    std::chrono::steady_clock::time_point level_start;
    if (time_levels) level_start = std::chrono::steady_clock::now();
    const size_t run_len = child_run_len * f;
    const size_t level = tree.levels_.size();
    HWF_TRACE_SCOPE_ARG("mst.build_level", "level", level);
    const bool want_cascade = options.use_cascading && level >= 2;
    Level out;
    out.run_len = run_len;
    const size_t num_runs = (n + run_len - 1) / run_len;
    size_t cascade_elems = 0;
    if (want_cascade) {
      out.samples_per_full_run = tree.SamplesForLen(std::min(run_len, n));
      // The last (possibly short) run still reserves a full stride; the
      // surplus slots are never read.
      cascade_elems = num_runs * out.samples_per_full_run * f;
    }
    // Make room for this level under the budget by evicting completed
    // levels below the merge source (level - 2 and down). The source level
    // must stay resident — it is being read by every merge task.
    {
      size_t need = (n + cascade_elems) * sizeof(Index);
      if (has_payload) need += n * sizeof(Payload);
      if (level >= 2) tree.EnsureRoom(need, level - 2);
    }
    out.data.Attach(budget);
    out.data.ResizeResident(n);
    out.cascade.Attach(budget);
    if (want_cascade) out.cascade.ResizeResident(cascade_elems);
    std::vector<Payload> out_payload;
    const Payload* src_payload_data = nullptr;
    if (has_payload) {
      out_payload.resize(n);
      src_payload_data = (*level_payloads)[level - 1].data();
    }
    const Level& src = tree.levels_.back();
    const size_t parallelism = static_cast<size_t>(pool.parallelism());
    const bool leaf_children = child_run_len == 1;
    if (num_runs >= parallelism || pool.num_workers() == 0) {
      // Lower levels: many independent runs — one task merges whole runs
      // (§5.2 lower-level strategy). All scratch (child descriptors plus
      // the loser tree's node arrays) lives per task and is reused across
      // every run the task claims.
      ParallelFor(
          0, num_runs,
          [&](size_t run_lo, size_t run_hi) {
            MergeScratch<Index, Payload> scratch;
            scratch.child_data.resize(f);
            scratch.child_lens.resize(f);
            scratch.child_payload.resize(has_payload ? f : 0);
            for (size_t r = run_lo; r < run_hi; ++r) {
              const size_t begin = r * run_len;
              const size_t end = std::min(n, begin + run_len);
              size_t num_children = 0;
              for (size_t c = 0; c < f; ++c) {
                const size_t cb = begin + c * child_run_len;
                if (cb >= end) break;
                const size_t ce = std::min(end, cb + child_run_len);
                scratch.child_data[num_children] = src.data.ResidentData() + cb;
                scratch.child_lens[num_children] = ce - cb;
                if (has_payload) {
                  scratch.child_payload[num_children] = src_payload_data + cb;
                }
                ++num_children;
              }
              Index* cascade_out =
                  want_cascade
                      ? out.cascade.MutableData() + r * out.samples_per_full_run * f
                      : nullptr;
              if (has_payload) {
                internal_mst::MergeRunDispatch<Index, Payload, true>(
                    kernel, leaf_children, scratch, scratch.child_data.data(),
                    scratch.child_lens.data(), num_children,
                    out.data.MutableData() + begin, end - begin, cascade_out, k, f,
                    scratch.child_payload.data(), out_payload.data() + begin);
              } else if (kernel == MergeKernel::kHeap && leaf_children &&
                         cascade_out == nullptr) {
                // Level 1 fast path: merging single elements == sorting.
                // (Kept outside the kernel dispatch so the heap ablation
                // still measures what the seed implementation measured.)
                std::copy(scratch.child_data[0],
                          scratch.child_data[0] + (end - begin),
                          out.data.MutableData() + begin);
                std::sort(out.data.MutableData() + begin, out.data.MutableData() + end);
              } else {
                internal_mst::MergeRunDispatch<Index, Payload, false>(
                    kernel, leaf_children, scratch, scratch.child_data.data(),
                    scratch.child_lens.data(), num_children,
                    out.data.MutableData() + begin, end - begin, cascade_out, k, f,
                    nullptr, nullptr);
              }
            }
          },
          pool, /*morsel_size=*/1);
    } else {
      // Upper levels: fewer runs than workers — threads collaborate on
      // each run by merging co-selected chunks (§5.2 upper-level
      // strategy, balanced splits via MultiwaySelect). Chunk scratch is
      // hoisted out of the run loop: chunk slot `i` is only ever used by
      // one in-flight task at a time (runs are processed sequentially).
      std::vector<MergeScratch<Index, Payload>> chunk_scratch(parallelism);
      std::vector<std::vector<size_t>> chunk_offsets(parallelism);
      std::vector<const Index*> child_data(f);
      std::vector<size_t> child_lens(f);
      std::vector<const Payload*> child_payload(has_payload ? f : 0);
      for (size_t r = 0; r < num_runs; ++r) {
        const size_t begin = r * run_len;
        const size_t end = std::min(n, begin + run_len);
        const size_t run_actual = end - begin;
        size_t num_children = 0;
        for (size_t c = 0; c < f; ++c) {
          const size_t cb = begin + c * child_run_len;
          if (cb >= end) break;
          const size_t ce = std::min(end, cb + child_run_len);
          child_data[num_children] = src.data.ResidentData() + cb;
          child_lens[num_children] = ce - cb;
          if (has_payload) child_payload[num_children] = src_payload_data + cb;
          ++num_children;
        }
        Index* cascade_out =
            want_cascade
                ? out.cascade.MutableData() + r * out.samples_per_full_run * f
                : nullptr;
        const size_t num_chunks =
            std::min(parallelism, std::max<size_t>(1, run_actual / 4096));
        TaskGroup group(pool);
        for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
          const size_t k0 = run_actual * chunk / num_chunks;
          const size_t k1 = run_actual * (chunk + 1) / num_chunks;
          if (k0 >= k1) continue;
          chunk_offsets[chunk].resize(num_children);
          internal_mst::MultiwaySelect<Index>(child_data.data(),
                                              child_lens.data(), num_children,
                                              k0, chunk_offsets[chunk].data());
          group.Run([&, chunk, k0, k1] {
            if (has_payload) {
              internal_mst::MergeRunDispatch<Index, Payload, true>(
                  kernel, leaf_children, chunk_scratch[chunk],
                  child_data.data(), child_lens.data(), num_children,
                  out.data.MutableData() + begin, k1 - k0, cascade_out, k, f,
                  child_payload.data(), out_payload.data() + begin, k0,
                  chunk_offsets[chunk].data());
            } else {
              internal_mst::MergeRunDispatch<Index, Payload, false>(
                  kernel, leaf_children, chunk_scratch[chunk],
                  child_data.data(), child_lens.data(), num_children,
                  out.data.MutableData() + begin, k1 - k0, cascade_out, k, f,
                  nullptr, nullptr, k0, chunk_offsets[chunk].data());
            }
          });
        }
        group.Wait();
      }
    }
    obs::Add(obs::Counter::kMstLevelsBuilt);
    obs::Add(obs::Counter::kMstMergeElementsMoved, n);
    obs::Add(obs::Counter::kMstLevelBytesAllocated,
             out.data.resident_bytes() + out.cascade.resident_bytes());
    tree.levels_.push_back(std::move(out));
    if (has_payload) {
      level_payloads->push_back(std::move(out_payload));
    }
    child_run_len = run_len;
    if (options.profile != nullptr) {
      options.profile->AddTreeLevelSeconds(
          level - 1, std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - level_start)
                         .count());
    }
  }
  // Post-build shed: the merge frontier is gone, so every level below the
  // top is evictable. Bring reservations back under the soft limit so the
  // probe phase (and sibling partitions) have headroom.
  if (options.mem.can_spill()) {
    while (options.mem.budget->over_soft_limit() &&
           tree.EvictOneLevel(tree.levels_.size() - 2)) {
    }
  }
  return tree;
}

template <typename Index>
size_t MergeSortTree<Index>::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const Level& level : levels_) {
    bytes += level.data.resident_bytes();
    bytes += level.cascade.resident_bytes();
  }
  return bytes;
}

template <typename Index>
size_t MergeSortTree<Index>::SpilledBytes() const {
  size_t bytes = 0;
  for (const Level& level : levels_) {
    bytes += level.data.spilled_bytes();
    bytes += level.cascade.spilled_bytes();
  }
  return bytes;
}

template <typename Index>
size_t MergeSortTree<Index>::CascadeToChild(size_t level, size_t run_begin,
                                            size_t run_len_actual, size_t p,
                                            Index t, size_t child,
                                            size_t child_len) const {
  const Level& lvl = levels_[level];
  const Level& child_lvl = levels_[level - 1];
  const size_t child_begin = run_begin + child * child_lvl.run_len;

  size_t window_lo = 0;
  size_t window_hi = child_len;
  if (!lvl.cascade.empty()) {
    obs::Add(obs::Counter::kMstCascadeLookups);
    const size_t k = opts_.sampling;
    const size_t f = opts_.fanout;
    const size_t run_index = run_begin / lvl.run_len;
    const size_t num_samples = SamplesForLen(run_len_actual);
    const size_t s = std::min(p / k, num_samples - 1);
    const size_t base = (run_index * lvl.samples_per_full_run + s) * f;
    window_lo = static_cast<size_t>(lvl.cascade.Get(base + child));
    if (s + 1 < num_samples) {
      window_hi = std::min<size_t>(
          static_cast<size_t>(lvl.cascade.Get(base + f + child)), child_len);
    }
  } else {
    obs::Add(obs::Counter::kMstBinarySearchFallbacks);
  }
  return child_lvl.data.LowerBound(child_begin + window_lo,
                                   child_begin + window_hi, t) -
         child_begin;
}

template <typename Index>
template <typename Visitor>
void MergeSortTree<Index>::VisitCountCoverInRun(size_t level, size_t run_begin,
                                                size_t run_len_actual,
                                                size_t p, Index t, size_t lo,
                                                size_t hi,
                                                Visitor& visit) const {
  HWF_DCHECK(lo >= run_begin && hi <= run_begin + run_len_actual);
  if (lo >= hi) return;
  if (lo == run_begin && hi == run_begin + run_len_actual) {
    // The whole run qualifies: p is exactly the count of keys < t.
    if (p > 0) visit(level, run_begin, p);
    return;
  }
  HWF_DCHECK(level > 0);
  const Level& child_lvl = levels_[level - 1];
  const size_t child_run_len = child_lvl.run_len;
  const size_t run_end = run_begin + run_len_actual;
  // Only children overlapping [lo, hi) are inspected.
  const size_t first_child = (lo - run_begin) / child_run_len;
  const size_t last_child = (hi - 1 - run_begin) / child_run_len;
  for (size_t c = first_child; c <= last_child; ++c) {
    const size_t cb = run_begin + c * child_run_len;
    const size_t ce = std::min(run_end, cb + child_run_len);
    size_t pc;
    if (level == 1) {
      // Children are single elements: direct comparison.
      pc = levels_[0].data.Get(cb) < t ? 1 : 0;
    } else {
      pc = CascadeToChild(level, run_begin, run_len_actual, p, t, c, ce - cb);
    }
    if (cb >= lo && ce <= hi) {
      if (pc > 0) visit(level - 1, cb, pc);
    } else {
      VisitCountCoverInRun(level - 1, cb, ce - cb, pc, t, std::max(lo, cb),
                           std::min(hi, ce), visit);
    }
  }
}

template <typename Index>
template <typename Visitor>
void MergeSortTree<Index>::VisitCountCover(size_t pos_lo, size_t pos_hi,
                                           Index threshold,
                                           Visitor&& visit) const {
  HWF_CHECK(pos_hi <= n_);
  if (pos_lo >= pos_hi) return;
  if (n_ == 1) {
    if (levels_[0].data.Get(0) < threshold) {
      visit(size_t{0}, size_t{0}, size_t{1});
    }
    return;
  }
  const size_t top = levels_.size() - 1;
  const size_t p = TopLowerBoundImpl(threshold);
  VisitCountCoverInRun(top, 0, n_, p, threshold, pos_lo, pos_hi, visit);
}

template <typename Index>
size_t MergeSortTree<Index>::CountKeysInRanges(
    std::span<const KeyRange<Index>> ranges, ProbeCursor* cursor) const {
  HWF_CHECK(ranges.size() <= kSelectMaxRanges);
  const mem::SpillableVector<Index>& top = levels_.back().data;
  size_t count = 0;
  if (cursor != nullptr && cursor->valid) {
    for (size_t r = 0; r < ranges.size(); ++r) {
      count += cursor->pos_hi[r] - cursor->pos_lo[r];
    }
    return count;
  }
  for (size_t r = 0; r < ranges.size(); ++r) {
    const size_t lo = top.LowerBound(0, n_, ranges[r].lo);
    const size_t hi = top.LowerBound(lo, n_, ranges[r].hi);
    count += hi - lo;
    if (cursor != nullptr) {
      cursor->pos_lo[r] = lo;
      cursor->pos_hi[r] = hi;
    }
  }
  if (cursor != nullptr) cursor->valid = true;
  return count;
}

template <typename Index>
size_t MergeSortTree<Index>::Select(std::span<const KeyRange<Index>> ranges,
                                    size_t i, ProbeCursor* cursor) const {
  HWF_CHECK(n_ > 0);
  if (n_ == 1) return 0;
  // Cascaded lower-bound positions for every range boundary within the
  // current run (2 per range).
  HWF_CHECK(ranges.size() <= kSelectMaxRanges);
  size_t pos_lo[kSelectMaxRanges];
  size_t pos_hi[kSelectMaxRanges];

  const mem::SpillableVector<Index>& top_data = levels_.back().data;
  if (cursor != nullptr && cursor->valid) {
    for (size_t r = 0; r < ranges.size(); ++r) {
      pos_lo[r] = cursor->pos_lo[r];
      pos_hi[r] = cursor->pos_hi[r];
    }
  } else {
    for (size_t r = 0; r < ranges.size(); ++r) {
      pos_lo[r] = top_data.LowerBound(0, n_, ranges[r].lo);
      pos_hi[r] = top_data.LowerBound(0, n_, ranges[r].hi);
      if (cursor != nullptr) {
        cursor->pos_lo[r] = pos_lo[r];
        cursor->pos_hi[r] = pos_hi[r];
      }
    }
    if (cursor != nullptr) cursor->valid = true;
  }

  size_t level = levels_.size() - 1;
  size_t run_begin = 0;
  size_t run_len_actual = n_;
  while (level > 0) {
    const Level& child_lvl = levels_[level - 1];
    const size_t child_run_len = child_lvl.run_len;
    const size_t run_end = run_begin + run_len_actual;
    const size_t num_children =
        (run_len_actual + child_run_len - 1) / child_run_len;
    bool descended = false;
    for (size_t c = 0; c < num_children; ++c) {
      const size_t cb = run_begin + c * child_run_len;
      const size_t ce = std::min(run_end, cb + child_run_len);
      size_t child_lo[kSelectMaxRanges];
      size_t child_hi[kSelectMaxRanges];
      size_t count = 0;
      for (size_t r = 0; r < ranges.size(); ++r) {
        if (level == 1) {
          const Index key = levels_[0].data.Get(cb);
          const bool in = key >= ranges[r].lo && key < ranges[r].hi;
          child_lo[r] = 0;
          child_hi[r] = in ? 1 : 0;
        } else {
          child_lo[r] = CascadeToChild(level, run_begin, run_len_actual,
                                       pos_lo[r], ranges[r].lo, c, ce - cb);
          child_hi[r] = CascadeToChild(level, run_begin, run_len_actual,
                                       pos_hi[r], ranges[r].hi, c, ce - cb);
        }
        count += child_hi[r] - child_lo[r];
      }
      if (i < count) {
        // Descend into this child.
        for (size_t r = 0; r < ranges.size(); ++r) {
          pos_lo[r] = child_lo[r];
          pos_hi[r] = child_hi[r];
        }
        run_begin = cb;
        run_len_actual = ce - cb;
        --level;
        descended = true;
        break;
      }
      i -= count;
    }
    HWF_CHECK_MSG(descended, "MergeSortTree::Select: i out of range");
  }
  return run_begin;
}

}  // namespace hwf

// Out-of-line definitions of the batched probe kernel (SelectBatch,
// CountLessBatch, VisitCountCoverBatch). Tail-included so the kernel can
// live in its own file while remaining member templates of MergeSortTree.
#include "mst/probe_batch.h"  // IWYU pragma: keep

#endif  // HWF_MST_MERGE_SORT_TREE_H_
