#ifndef HWF_MST_AGGREGATE_OPS_H_
#define HWF_MST_AGGREGATE_OPS_H_

#include <algorithm>
#include <cstdint>

namespace hwf {

/// Aggregate operation concepts for the annotated merge sort tree (§4.3).
///
/// An Ops type provides:
///   using Input = ...;                       // per-row input value
///   using State = ...;                       // aggregation state
///   static State MakeState(Input);           // state of a single input
///   static void Merge(State&, const State&); // combine two states
///
/// Only a merge function is required — no inverse ("retract") function, which
/// is the key property that makes the approach applicable to arbitrary
/// user-defined aggregates (§4.3). All states must be commutative and
/// associative under Merge.

/// SUM(DISTINCT x) over doubles.
struct SumOps {
  using Input = double;
  using State = double;
  static State MakeState(Input v) { return v; }
  static void Merge(State& into, const State& other) { into += other; }
};

/// SUM(DISTINCT x) over 64-bit integers.
struct SumInt64Ops {
  using Input = int64_t;
  using State = int64_t;
  static State MakeState(Input v) { return v; }
  static void Merge(State& into, const State& other) { into += other; }
};

/// MIN(DISTINCT x). (Identical result to plain framed MIN, provided for
/// completeness of the DISTINCT surface.)
struct MinOps {
  using Input = double;
  using State = double;
  static State MakeState(Input v) { return v; }
  static void Merge(State& into, const State& other) {
    into = std::min(into, other);
  }
};

/// MAX(DISTINCT x).
struct MaxOps {
  using Input = double;
  using State = double;
  static State MakeState(Input v) { return v; }
  static void Merge(State& into, const State& other) {
    into = std::max(into, other);
  }
};

/// AVG(DISTINCT x): a decomposed algebraic aggregate (sum, count).
struct AvgOps {
  using Input = double;
  struct State {
    double sum;
    int64_t count;
  };
  static State MakeState(Input v) { return {v, 1}; }
  static void Merge(State& into, const State& other) {
    into.sum += other.sum;
    into.count += other.count;
  }
};

}  // namespace hwf

#endif  // HWF_MST_AGGREGATE_OPS_H_
