#ifndef HWF_MST_PREPROCESS_H_
#define HWF_MST_PREPROCESS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "obs/counters.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/parallel_sort.h"
#include "parallel/thread_pool.h"

namespace hwf {

/// Fused preprocessing (paper Algorithm 1 + §4.4/§4.5 artifacts from ONE
/// sort).
///
/// The legacy pipeline re-derives the same sorted sequence up to three
/// times per evaluator: ComputePrevIndices sorts (code, position) pairs,
/// ComputeNextIndices sorts the identical pairs again, and
/// ComputePermutation / ComputeDenseCodes / ComputeUniqueCodes sort
/// positions by the same ORDER BY criterion. Every artifact is a
/// different linear read-out of one stably sorted sequence, so the fused
/// pipeline sorts once (offset-value-coded when enabled) and emits all
/// requested artifacts in a single morsel-parallel pass. The legacy
/// functions in prev_index.h / permutation.h remain as the reference
/// implementations for differential tests and for comparators the fused
/// records cannot encode.

/// Which artifacts to emit. Evaluators request exactly what they consume;
/// unrequested vectors stay empty.
struct PreprocessRequest {
  bool want_prev = false;    // encoded prevIdcs (0 = none, j+1 = at j)
  bool want_next = false;    // nextIdcs (n = none, un-encoded)
  bool want_perm = false;    // §4.5 permutation: perm[j] = position of rank j
  bool want_dense = false;   // dense value codes (equal values share a code)
  bool want_unique = false;  // unique codes (inverse permutation)
};

template <typename Index>
struct PreprocessResult {
  std::vector<Index> prev;
  std::vector<Index> next;
  std::vector<Index> perm;
  std::vector<Index> dense_codes;
  std::vector<Index> unique_codes;
  size_t num_distinct = 0;  // Only meaningful when want_dense.
};

namespace internal_preprocess {

/// Emits every requested artifact from one stably sorted record sequence.
/// `pos_of(rec)` is the record's original position; `equal(a, b)` is value
/// equality (positions excluded). Records with equal values must appear in
/// ascending position order — the stable sorts used by the entry points
/// guarantee it.
///
/// Dense codes need a global prefix (the code of a row is the number of
/// value boundaries before it), so they get a cheap counting pre-pass over
/// fixed chunks; everything else is position-local. Chunking is explicit
/// and deterministic (kDefaultMorselSize) so the pre-pass counts and the
/// emission pass see identical chunk boundaries regardless of how the
/// morsel scheduler interleaves them.
template <typename Index, typename Rec, typename PosOf, typename Equal>
void EmitFromSorted(const std::vector<Rec>& sorted,
                    const PreprocessRequest& req, PosOf pos_of, Equal equal,
                    ThreadPool& pool, PreprocessResult<Index>* out) {
  const size_t n = sorted.size();
  HWF_TRACE_SCOPE_ARG("mst.preprocess_emit", "n", n);
  if (req.want_prev) out->prev.resize(n);
  if (req.want_next) out->next.resize(n);
  if (req.want_perm) out->perm.resize(n);
  if (req.want_dense) out->dense_codes.resize(n);
  if (req.want_unique) out->unique_codes.resize(n);

  const size_t chunk = kDefaultMorselSize;
  const size_t num_chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;

  std::vector<Index> bases;
  if (req.want_dense) {
    bases.assign(num_chunks + 1, 0);
    ParallelFor(
        0, num_chunks,
        [&](size_t c_lo, size_t c_hi) {
          for (size_t c = c_lo; c < c_hi; ++c) {
            const size_t lo = c * chunk;
            const size_t hi = std::min(n, lo + chunk);
            Index boundaries = 0;
            for (size_t j = std::max<size_t>(lo, 1); j < hi; ++j) {
              boundaries += !equal(sorted[j - 1], sorted[j]);
            }
            bases[c + 1] = boundaries;
          }
        },
        pool, /*morsel_size=*/1);
    for (size_t c = 0; c < num_chunks; ++c) bases[c + 1] += bases[c];
    out->num_distinct =
        n == 0 ? 0 : static_cast<size_t>(bases[num_chunks]) + 1;
  }

  ParallelFor(
      0, num_chunks,
      [&](size_t c_lo, size_t c_hi) {
        for (size_t c = c_lo; c < c_hi; ++c) {
          const size_t lo = c * chunk;
          const size_t hi = std::min(n, lo + chunk);
          Index code = req.want_dense ? bases[c] : Index{0};
          for (size_t j = lo; j < hi; ++j) {
            const bool boundary = j > 0 && !equal(sorted[j - 1], sorted[j]);
            if (req.want_dense && boundary) ++code;
            const size_t pos = static_cast<size_t>(pos_of(sorted[j]));
            if (req.want_perm) out->perm[j] = static_cast<Index>(pos);
            if (req.want_unique) {
              out->unique_codes[pos] = static_cast<Index>(j);
            }
            if (req.want_dense) out->dense_codes[pos] = code;
            if (req.want_prev) {
              out->prev[pos] =
                  j > 0 && !boundary
                      ? static_cast<Index>(
                            static_cast<size_t>(pos_of(sorted[j - 1])) + 1)
                      : Index{0};
            }
            if (req.want_next) {
              out->next[pos] =
                  j + 1 < n && equal(sorted[j], sorted[j + 1])
                      ? static_cast<Index>(pos_of(sorted[j + 1]))
                      : static_cast<Index>(n);
            }
          }
        }
      },
      pool, /*morsel_size=*/1);
}

}  // namespace internal_preprocess

/// Fused preprocessing over 64-bit value codes (hashes or dense codes):
/// the record sort is a stable sort of the codes, so prev/next follow the
/// occurrence-chain semantics of ComputePrevIndices/ComputeNextIndices
/// exactly, and perm/dense/unique use "code order, position tiebreak".
template <typename Index>
PreprocessResult<Index> PreprocessHashedCodes(
    std::span<const uint64_t> codes, const PreprocessRequest& req,
    ThreadPool& pool, bool use_ovc = true,
    obs::ExecutionProfile* profile = nullptr) {
  const size_t n = codes.size();
  HWF_TRACE_SCOPE_ARG("mst.preprocess_fused", "n", n);
  using Rec = std::pair<uint64_t, Index>;
  std::vector<Rec> sorted(n);
  {
    obs::ScopedPreprocessStepTimer sort_timer(
        profile, obs::PreprocessStep::kRecordSort);
    ParallelFor(
        0, n,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            sorted[i] = {codes[i], static_cast<Index>(i)};
          }
        },
        pool);
    // Lexicographic pair order == stable sort of the codes; the pair's
    // word sequence is exactly that order, so OVC applies.
    ParallelSort(
        sorted, [](const Rec& a, const Rec& b) { return a < b; }, pool,
        kDefaultMorselSize, PartitionScheme::kThreeWay, nullptr, use_ovc);
  }
  PreprocessResult<Index> result;
  {
    obs::ScopedPreprocessStepTimer emit_timer(
        profile, obs::PreprocessStep::kEmitArtifacts);
    internal_preprocess::EmitFromSorted<Index>(
        sorted, req, [](const Rec& r) { return r.second; },
        [](const Rec& a, const Rec& b) { return a.first == b.first; }, pool,
        &result);
  }
  obs::Add(obs::Counter::kMstPreprocessFusedRows, n);
  return result;
}

/// The record the encoded ORDER BY sort runs over: null rank, the
/// order-preserving 64-bit key encoding, and the original position as the
/// stability tiebreak. The word sequence doubles as the OVC coding order.
template <typename Index>
struct OrderKeyRec {
  uint8_t null_rank;
  uint64_t key;
  Index pos;

  static constexpr size_t kOvcWords = 3;
  uint64_t OvcWord(size_t w) const {
    return w == 0 ? null_rank
                  : w == 1 ? key : static_cast<uint64_t>(pos);
  }

  bool operator<(const OrderKeyRec& o) const {
    if (null_rank != o.null_rank) return null_rank < o.null_rank;
    if (key != o.key) return key < o.key;
    return pos < o.pos;
  }

  bool SameValue(const OrderKeyRec& o) const {
    return null_rank == o.null_rank && key == o.key;
  }
};

/// Fused preprocessing over encoded ORDER BY keys: `get(i)` returns the
/// (null rank, encoded key) of element i — the same encoding PositionLess
/// uses, so "record order" == "comparator order with position tiebreak",
/// matching ComputePermutation / ComputeDenseCodes / ComputeUniqueCodes.
template <typename Index, typename Get>
PreprocessResult<Index> PreprocessOrderKeys(
    size_t n, Get get, const PreprocessRequest& req, ThreadPool& pool,
    bool use_ovc = true, obs::ExecutionProfile* profile = nullptr) {
  HWF_TRACE_SCOPE_ARG("mst.preprocess_fused", "n", n);
  using Rec = OrderKeyRec<Index>;
  std::vector<Rec> sorted(n);
  {
    obs::ScopedPreprocessStepTimer sort_timer(
        profile, obs::PreprocessStep::kRecordSort);
    ParallelFor(
        0, n,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            const auto [null_rank, key] = get(i);
            sorted[i] = Rec{null_rank, key, static_cast<Index>(i)};
          }
        },
        pool);
    ParallelSort(
        sorted, [](const Rec& a, const Rec& b) { return a < b; }, pool,
        kDefaultMorselSize, PartitionScheme::kThreeWay, nullptr, use_ovc);
  }
  PreprocessResult<Index> result;
  {
    obs::ScopedPreprocessStepTimer emit_timer(
        profile, obs::PreprocessStep::kEmitArtifacts);
    internal_preprocess::EmitFromSorted<Index>(
        sorted, req, [](const Rec& r) { return r.pos; },
        [](const Rec& a, const Rec& b) { return a.SameValue(b); }, pool,
        &result);
  }
  obs::Add(obs::Counter::kMstPreprocessFusedRows, n);
  return result;
}

}  // namespace hwf

#endif  // HWF_MST_PREPROCESS_H_
