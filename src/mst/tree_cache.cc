#include "mst/tree_cache.h"

#include <utility>

#include "obs/counters.h"

namespace hwf {
namespace mst {

std::shared_ptr<const void> TreeCache::GetRaw(const std::string& key,
                                              std::type_index type) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.type != type) {
    ++misses_;
    obs::Add(obs::Counter::kCacheMisses);
    return nullptr;
  }
  it->second.tick = ++tick_;
  ++hits_;
  obs::Add(obs::Counter::kCacheHits);
  return it->second.value;
}

void TreeCache::PutRaw(const std::string& key,
                       std::shared_ptr<const void> value, std::type_index type,
                       size_t bytes) {
  if (bytes > capacity_) return;  // Would evict everything and still thrash.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    entries_.erase(it);
  }
  EvictToFitLocked(bytes);
  Entry entry;
  entry.value = std::move(value);
  entry.type = type;
  entry.bytes = bytes;
  entry.tick = ++tick_;
  entries_.emplace(key, std::move(entry));
  bytes_ += bytes;
  obs::Add(obs::Counter::kCacheInsertBytes, bytes);
}

void TreeCache::EvictToFitLocked(size_t need) {
  while (!entries_.empty() && bytes_ + need > capacity_) {
    auto victim = entries_.begin();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      if (it->second.tick < victim->second.tick) victim = it;
    }
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
    obs::Add(obs::Counter::kCacheEvictions);
  }
}

TreeCache::Stats TreeCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  stats.capacity_bytes = capacity_;
  return stats;
}

void TreeCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  bytes_ = 0;
}

size_t TreeCache::EvictIf(
    const std::function<bool(const std::string&)>& predicate) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (predicate(it->first)) {
      bytes_ -= it->second.bytes;
      it = entries_.erase(it);
      ++dropped;
      ++evictions_;
      obs::Add(obs::Counter::kCacheEvictions);
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace mst
}  // namespace hwf
