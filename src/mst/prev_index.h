#ifndef HWF_MST_PREV_INDEX_H_
#define HWF_MST_PREV_INDEX_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/parallel_sort.h"
#include "parallel/thread_pool.h"

namespace hwf {

/// Computes the previous-occurrence index array (paper Algorithm 1).
///
/// `codes[i]` identifies the value of row i — a 64-bit hash or a dense code;
/// equal codes mean equal values. The result is encoded for the integer-only
/// tree representation (§5.1): entry 0 means "no previous occurrence" and
/// entry j+1 means "previous occurrence at position j". With this encoding,
/// the distinct-count condition "prevIdx < frame_begin or none" becomes a
/// single comparison encoded < frame_begin + 1.
///
/// Implementation: annotate each code with its position, sort the pairs
/// (which is a stable sort of the codes), and read each entry's predecessor
/// in a linear scan — O(n log n), fully parallel.
template <typename Index>
std::vector<Index> ComputePrevIndices(std::span<const uint64_t> codes,
                                      ThreadPool& pool = ThreadPool::Default()) {
  const size_t n = codes.size();
  HWF_TRACE_SCOPE_ARG("mst.prev_indices", "n", n);
  std::vector<std::pair<uint64_t, Index>> sorted(n);
  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          sorted[i] = {codes[i], static_cast<Index>(i)};
        }
      },
      pool);
  // Lexicographic pair order == stable sort of the codes.
  ParallelSort(
      sorted,
      [](const auto& a, const auto& b) { return a < b; },
      pool);
  std::vector<Index> prev(n);
  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          if (i > 0 && sorted[i].first == sorted[i - 1].first) {
            prev[sorted[i].second] =
                static_cast<Index>(sorted[i - 1].second + 1);
          } else {
            prev[sorted[i].second] = 0;
          }
        }
      },
      pool);
  return prev;
}

/// Computes next-occurrence indices: result[i] = position of the next
/// occurrence of codes[i], or n when there is none (un-encoded, since these
/// are only walked directly and never stored in a tree).
///
/// Used by the frame-exclusion correction for DISTINCT aggregates: when an
/// exclusion hole splits the frame, a value whose only pre-gap occurrence
/// lies inside the hole must be re-discovered by walking its occurrence
/// chain forward across the hole (see window/functions/distinct_aggregates).
template <typename Index>
std::vector<Index> ComputeNextIndices(std::span<const uint64_t> codes,
                                      ThreadPool& pool = ThreadPool::Default()) {
  const size_t n = codes.size();
  HWF_TRACE_SCOPE_ARG("mst.next_indices", "n", n);
  std::vector<std::pair<uint64_t, Index>> sorted(n);
  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          sorted[i] = {codes[i], static_cast<Index>(i)};
        }
      },
      pool);
  ParallelSort(
      sorted,
      [](const auto& a, const auto& b) { return a < b; },
      pool);
  std::vector<Index> next(n);
  ParallelFor(
      0, n,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          if (i + 1 < n && sorted[i].first == sorted[i + 1].first) {
            next[sorted[i].second] = sorted[i + 1].second;
          } else {
            next[sorted[i].second] = static_cast<Index>(n);
          }
        }
      },
      pool);
  return next;
}

}  // namespace hwf

#endif  // HWF_MST_PREV_INDEX_H_
